// cast_lint — static analysis for CAST spec files.
//
//   cast_lint [options] SPEC...
//
//   --catalog NAME   storage catalog to lint against (google-cloud|aws-like;
//                    default google-cloud). Enables the catalog-dependent
//                    rules (L010, L011, L017).
//   --models FILE    profiled model set; enables the model-dependent rules
//                    (L009 deadline lower bound, L018 model coverage) and
//                    overrides --catalog with the set's own catalog.
//   --reuse-aware    treat Eq. 7 reuse-group constraints as binding (L005
//                    pin conflicts become errors instead of warnings).
//   --json           machine-readable output: a JSON array with one report
//                    object per spec file.
//
// A spec that does not parse is reported as rule L000 (error) with the
// parser's line/column message; linting continues with the remaining files.
//
// Exit code is the maximum severity across all files: 0 when every spec is
// clean (info-only findings included), 1 when the worst finding is a
// warning, 2 when any error (or parse failure) was found, 3 on usage error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "model/serialize.hpp"
#include "workload/spec_parser.hpp"

namespace {

using namespace cast;

struct Args {
    std::string catalog_name = "google-cloud";
    std::string models_path;
    bool reuse_aware = false;
    bool json = false;
    std::vector<std::string> specs;
};

int usage() {
    std::cerr << "usage: cast_lint [--catalog google-cloud|aws-like] [--models FILE]\n"
                 "                 [--reuse-aware] [--json] SPEC...\n";
    return 3;
}

bool parse_args(int argc, char** argv, Args* out) {
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token == "--catalog" && i + 1 < argc) {
            out->catalog_name = argv[++i];
        } else if (token == "--models" && i + 1 < argc) {
            out->models_path = argv[++i];
        } else if (token == "--reuse-aware") {
            out->reuse_aware = true;
        } else if (token == "--json") {
            out->json = true;
        } else if (token.rfind("--", 0) == 0) {
            std::cerr << "cast_lint: unknown option " << token << "\n";
            return false;
        } else {
            out->specs.push_back(token);
        }
    }
    return !out->specs.empty();
}

/// Lint one spec file; parse failures become a single L000 error finding so
/// broken specs flow through the same reporting/exit-code path as rule hits.
lint::Report lint_file(const std::string& path, const lint::LintContext& ctx) {
    workload::ParsedSpec spec;
    try {
        spec = workload::parse_spec_file(path);
    } catch (const std::exception& e) {
        lint::Report report;
        report.add(lint::Finding{.rule = "L000",
                                 .severity = lint::Severity::kError,
                                 .subject = path,
                                 .message = std::string("spec did not parse: ") + e.what(),
                                 .fix_hint = "fix the syntax error before linting"});
        return report;
    }
    return lint::lint_spec(spec, ctx);
}

}  // namespace

int main(int argc, char** argv) {
    Args args;
    if (!parse_args(argc, argv, &args)) return usage();

    try {
        // Context shared by every file. The model set (when given) carries
        // its own catalog; otherwise lint against the named built-in one.
        std::optional<model::PerfModelSet> models;
        std::optional<cloud::StorageCatalog> catalog;
        lint::LintContext ctx;
        ctx.reuse_aware = args.reuse_aware;
        if (!args.models_path.empty()) {
            models = model::load_model_set_file(args.models_path);
            ctx.models = &*models;
        } else {
            catalog = cloud::StorageCatalog::by_name(args.catalog_name);
            ctx.catalog = &*catalog;
        }

        lint::Severity worst = lint::Severity::kInfo;
        bool any_findings = false;
        if (args.json) std::cout << "[";
        for (std::size_t i = 0; i < args.specs.size(); ++i) {
            const lint::Report report = lint_file(args.specs[i], ctx);
            if (!report.clean()) {
                any_findings = true;
                worst = std::max(worst, report.max_severity());
            }
            if (args.json) {
                if (i > 0) std::cout << ",";
                std::cout << "\n";
                report.write_json(std::cout, args.specs[i]);
            } else if (report.clean()) {
                std::cout << args.specs[i] << ": clean\n";
            } else {
                std::cout << args.specs[i] << ":\n";
                report.write_text(std::cout);
            }
        }
        if (args.json) std::cout << "\n]\n";

        if (!any_findings) return 0;
        switch (worst) {
            case lint::Severity::kError: return 2;
            case lint::Severity::kWarning: return 1;
            case lint::Severity::kInfo: return 0;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "cast_lint: " << e.what() << "\n";
        return 2;
    }
}
