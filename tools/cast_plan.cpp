// cast_plan — command-line storage tiering planner.
//
// The operational entry point a tenant would actually use:
//
//   cast_plan tiers   [--catalog NAME]
//       Print the storage catalog (Table 1).
//
//   cast_plan profile --workers N [--catalog NAME] [--out FILE]
//       Run offline profiling for an N-worker cluster and save the model
//       set (expensive step; do it once per cluster shape).
//
//   cast_plan plan --models FILE --spec FILE [--reuse-aware] [--deploy]
//       Plan a batch workload spec; print the placement, capacities and
//       modeled cost/utility; optionally deploy on the simulator.
//
//   cast_plan workflow --models FILE --spec FILE [--deploy]
//       Plan a workflow spec under its deadline (CAST++ Eq. 8-10).
//
//   cast_plan synth --seed N [--out FILE]
//       Emit the paper's 100-job Facebook-derived workload as an editable
//       spec file.
//
//   cast_plan serve --models FILE --requests FILE [--workers N]
//                   [--governor] [--latency-target-ms X] [--fault-intensity I]
//                   [--metrics] [--metrics-out FILE] [--trace [N]]
//       Replay a request file through the long-lived PlannerService
//       (snapshot cache, batching, coalescing) and print per-request
//       results plus service/cache statistics. --governor enables the
//       overload governor (degradation ladder, deadline admission, retry +
//       circuit breakers); --fault-intensity injects the seeded serve-layer
//       fault profile at intensity I in [0, 1] for resilience drills.
//       --metrics prints the live registry (counters, gauges, latency
//       histograms; --metrics-out also writes the one-line JSON to a file)
//       and --trace dumps the per-request span timeline from the ring.
//
// Every command also accepts `--threads N` to pin thread-pool sizes
// (profiling, solver chains, service workers).
//
// Exit codes: 0 success, 1 usage error, 2 runtime/validation error.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "core/report.hpp"
#include "model/serialize.hpp"
#include "serve/request_spec.hpp"
#include "serve/service.hpp"
#include "workload/facebook.hpp"
#include "workload/spec_parser.hpp"

namespace {

using namespace cast;

struct Args {
    std::string command;
    std::map<std::string, std::string> options;
    std::vector<std::string> flags;

    [[nodiscard]] std::string get(const std::string& key, const std::string& def = "") const {
        const auto it = options.find(key);
        return it == options.end() ? def : it->second;
    }
    [[nodiscard]] bool has_flag(const std::string& f) const {
        return std::find(flags.begin(), flags.end(), f) != flags.end();
    }
};

int usage() {
    std::cerr
        << "usage:\n"
           "  cast_plan tiers    [--catalog google-cloud|aws-like]\n"
           "  cast_plan profile  --workers N [--catalog NAME] [--out FILE]\n"
           "  cast_plan plan     --models FILE --spec FILE [--reuse-aware] [--deploy]\n"
           "  cast_plan workflow --models FILE --spec FILE [--deploy]\n"
           "  cast_plan synth    [--seed N] [--out FILE]\n"
           "  cast_plan serve    --models FILE --requests FILE [--workers N]\n"
           "                     [--queue N] [--batch N] [--budget-ms X]\n"
           "                     [--governor] [--latency-target-ms X]\n"
           "                     [--fault-intensity I] [--fault-seed N]\n"
           "                     [--metrics] [--metrics-out FILE] [--trace [N]]\n"
           "(all commands accept --threads N to pin thread-pool sizes)\n";
    return 1;
}

/// Memo-table summary: how much of the evaluation work the cache absorbed.
void print_cache_stats(const core::EvalCacheStats& cache, std::ostream& os) {
    const std::uint64_t lookups = cache.hits + cache.misses;
    os << "cache:  " << cache.hits << "/" << lookups << " hits";
    if (lookups > 0) {
        os << " (" << fmt(100.0 * static_cast<double>(cache.hits) /
                              static_cast<double>(lookups),
                          1)
           << "%)";
    }
    os << ", L1 " << cache.l1_hits << ", shared " << cache.shared_hits << ", inserts "
       << cache.inserts << ", generation bumps " << cache.generation_bumps << "\n";
}

/// Search-effort and memo-table summary shared by plan/workflow output:
/// how hard the solver worked and how much the cache saved.
void print_solver_stats(int iterations, int best_chain, const core::EvalCacheStats& cache,
                        bool budget_exhausted, std::ostream& os) {
    os << "search: " << iterations << " annealing iterations, best chain " << best_chain;
    if (budget_exhausted) os << "  [budget exhausted: best-so-far plan]";
    os << "\n";
    print_cache_stats(cache, os);
}

Args parse_args(int argc, char** argv) {
    Args args;
    if (argc < 2) return args;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            throw ValidationError("unexpected argument: " + token);
        }
        token.erase(0, 2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            args.options[token] = argv[++i];
        } else {
            args.flags.push_back(token);
        }
    }
    return args;
}

int cmd_tiers(const Args& args) {
    const auto catalog = cloud::StorageCatalog::by_name(args.get("catalog", "google-cloud"));
    std::cout << "catalog: " << catalog.name() << "\n";
    TextTable t({"tier", "description", "persistent", "$/GB/month", "max GB/VM",
                 "MB/s @500GB/VM"});
    for (cloud::StorageTier tier : cloud::kAllTiers) {
        const auto& svc = catalog.service(tier);
        const auto max = svc.max_capacity_per_vm();
        t.add_row({std::string(cloud::tier_name(tier)), svc.description(),
                   svc.persistent() ? "yes" : "no", fmt(svc.price_per_gb_month().value(), 3),
                   max ? fmt(max->value(), 0) : "unlimited",
                   fmt(svc.performance(svc.provision(GigaBytes{500.0})).read_bw.value(), 0)});
    }
    t.print(std::cout);
    return 0;
}

int cmd_profile(const Args& args) {
    const std::string workers = args.get("workers");
    if (workers.empty()) {
        std::cerr << "profile: --workers is required\n";
        return 1;
    }
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker_count = std::stoi(workers);
    const auto catalog = cloud::StorageCatalog::by_name(args.get("catalog", "google-cloud"));
    std::cout << "profiling " << cluster.worker_count << " x " << cluster.worker.name
              << " against catalog '" << catalog.name() << "'...\n";
    ThreadPool pool;
    const auto models = model::Profiler(cluster, catalog).profile(&pool);
    const std::string out = args.get("out", "cast-models.txt");
    model::save_model_set_file(models, out);
    std::cout << "model set written to " << out << "\n";
    return 0;
}

int cmd_plan(const Args& args) {
    const std::string models_path = args.get("models");
    const std::string spec_path = args.get("spec");
    if (models_path.empty() || spec_path.empty()) {
        std::cerr << "plan: --models and --spec are required\n";
        return 1;
    }
    const auto models = model::load_model_set_file(models_path);
    const auto spec = workload::parse_spec_file(spec_path);
    if (spec.is_workflow()) {
        std::cerr << "plan: spec is a workflow; use 'cast_plan workflow'\n";
        return 1;
    }
    const auto& w = *spec.workload;
    const bool reuse_aware = args.has_flag("reuse-aware");

    core::CastOptions opts;
    const std::string budget = args.get("budget-ms");
    if (!budget.empty()) opts.annealing.max_wall_ms = std::stod(budget);
    const std::string seed = args.get("seed");
    if (!seed.empty()) opts.annealing.seed = std::stoull(seed);

    ThreadPool pool;
    const core::CastResult result = reuse_aware
                                        ? core::plan_cast_plus_plus(models, w, opts, &pool)
                                        : core::plan_cast(models, w, opts, &pool);
    core::PlanEvaluator evaluator(models, w, core::EvalOptions{.reuse_aware = reuse_aware});
    std::cout << (reuse_aware ? "CAST++" : "CAST") << " ";
    if (args.has_flag("deploy")) {
        const auto dep = core::Deployer().deploy(evaluator, result.plan);
        core::write_deployment_report(evaluator, result.plan, result.evaluation, dep,
                                      std::cout);
    } else {
        core::write_plan_report(evaluator, result.plan, result.evaluation, std::cout,
                                result.lint_notes);
    }
    print_solver_stats(result.iterations, result.best_chain, result.cache_stats,
                       result.budget_exhausted, std::cout);
    return 0;
}

int cmd_workflow(const Args& args) {
    const std::string models_path = args.get("models");
    const std::string spec_path = args.get("spec");
    if (models_path.empty() || spec_path.empty()) {
        std::cerr << "workflow: --models and --spec are required\n";
        return 1;
    }
    const auto models = model::load_model_set_file(models_path);
    const auto spec = workload::parse_spec_file(spec_path);
    if (!spec.is_workflow()) {
        std::cerr << "workflow: spec is a batch workload; use 'cast_plan plan'\n";
        return 1;
    }
    const auto& wf = *spec.workflow;
    ThreadPool pool;
    core::WorkflowEvaluator evaluator(models, wf);
    const auto solved = core::WorkflowSolver(evaluator).solve(&pool);
    std::cout << "CAST++ workflow plan for '" << wf.name() << "' (deadline "
              << fmt(wf.deadline().minutes(), 1) << " min):\n";
    TextTable t({"job", "tier", "capacity factor"});
    for (std::size_t i = 0; i < wf.size(); ++i) {
        t.add_row({wf.jobs()[i].name,
                   std::string(cloud::tier_name(solved.plan.decisions[i].tier)),
                   fmt(solved.plan.decisions[i].overprovision, 2)});
    }
    t.print(std::cout);
    std::cout << "modeled: runtime " << fmt(solved.evaluation.total_runtime.minutes(), 1)
              << " min, cost $" << fmt(solved.evaluation.total_cost().value(), 2)
              << (solved.evaluation.meets_deadline ? "  [meets deadline]"
                                                   : "  [deadline infeasible]")
              << "\n";
    print_solver_stats(solved.iterations, solved.best_chain, solved.cache_stats,
                       solved.budget_exhausted, std::cout);
    if (args.has_flag("deploy")) {
        const auto dep = core::Deployer().deploy_workflow(evaluator, solved.plan);
        std::cout << "deployed: runtime " << fmt(dep.total_runtime.minutes(), 1)
                  << " min, cost $" << fmt(dep.total_cost().value(), 2) << ", deadline "
                  << (dep.met_deadline ? "MET" : "MISSED") << "\n";
    }
    return 0;
}

int cmd_synth(const Args& args) {
    const std::uint64_t seed = std::stoull(args.get("seed", "42"));
    const auto w = workload::synthesize_facebook_workload(seed);
    const std::string out = args.get("out");
    if (out.empty()) {
        workload::write_spec(w, std::cout);
    } else {
        std::ofstream file(out);
        if (!file) throw ValidationError("cannot open " + out);
        workload::write_spec(w, file);
        std::cout << w.size() << "-job workload spec written to " << out << "\n";
    }
    return 0;
}

int cmd_serve(const Args& args) {
    const std::string models_path = args.get("models");
    const std::string requests_path = args.get("requests");
    if (models_path.empty() || requests_path.empty()) {
        std::cerr << "serve: --models and --requests are required\n";
        return 1;
    }
    serve::ServiceOptions opts;
    const std::string workers = args.get("workers");
    if (!workers.empty()) opts.workers = std::stoul(workers);
    const std::string queue = args.get("queue");
    if (!queue.empty()) opts.queue_capacity = std::stoul(queue);
    const std::string batch = args.get("batch");
    if (!batch.empty()) opts.max_batch = std::stoul(batch);
    const std::string budget = args.get("budget-ms");
    if (!budget.empty()) opts.default_max_wall_ms = std::stod(budget);

    // Overload governor: off by default (bit-identical to the plain
    // service); --latency-target-ms implies it since the target is its
    // only input a replay run would want to tune.
    const std::string latency_target = args.get("latency-target-ms");
    if (args.has_flag("governor") || !latency_target.empty()) {
        opts.governor.enabled = true;
        if (!latency_target.empty()) {
            opts.governor.latency_target_ms = std::stod(latency_target);
        }
    }
    const std::string intensity = args.get("fault-intensity");
    if (!intensity.empty()) {
        const std::string fault_seed = args.get("fault-seed", "1");
        opts.faults = serve::ServeFaultProfile::scaled(std::stod(intensity),
                                                       std::stoull(fault_seed));
    }

    // Observability: --metrics registers the serve.* instruments (tables +
    // one-line JSON after the replay, --metrics-out FILE for scraping);
    // --trace ring-buffers per-request spans (bare flag keeps the last 256,
    // `--trace N` sizes the ring) and prints the span timeline.
    const bool want_metrics = args.has_flag("metrics") || !args.get("metrics-out").empty();
    opts.obs.metrics = want_metrics;
    const std::string trace_n = args.get("trace");
    if (args.has_flag("trace")) {
        opts.obs.trace_capacity = 256;
    } else if (!trace_n.empty()) {
        opts.obs.trace_capacity = std::stoul(trace_n);
    }

    auto requests = serve::load_requests(requests_path);
    if (requests.empty()) {
        std::cerr << "serve: " << requests_path << " contains no requests\n";
        return 1;
    }
    const auto snapshot = serve::make_snapshot(model::load_model_set_file(models_path));
    serve::PlannerService service(snapshot, opts);
    std::cout << "serving " << requests.size() << " requests over " << opts.workers
              << " workers (snapshot epoch " << snapshot->epoch() << ")\n";

    // Open loop: everything is queued up front, so the dispatcher sees deep
    // batches and coalescing/caching get a fair chance to kick in.
    std::vector<std::future<serve::PlanResponse>> futures;
    futures.reserve(requests.size());
    for (serve::PlanRequest& request : requests) {
        futures.push_back(service.submit(std::move(request)));
    }

    TextTable t({"id", "kind", "status", "level", "utility / cost", "queue ms",
                 "solve ms", "notes"});
    int failures = 0;
    for (auto& future : futures) {
        const serve::PlanResponse resp = future.get();
        std::string outcome = "-";
        if (resp.batch) outcome = fmt(resp.batch->evaluation.utility, 3);
        if (resp.workflow) {
            outcome = "$";
            outcome += fmt(resp.workflow->evaluation.total_cost().value(), 2);
        }
        std::string status;
        switch (resp.status) {
            case serve::ResponseStatus::kOk: status = "ok"; break;
            case serve::ResponseStatus::kRejected: status = "rejected"; break;
            case serve::ResponseStatus::kError: status = "error"; break;
        }
        std::string notes;
        if (resp.coalesced) notes += "coalesced ";
        if (resp.budget_exhausted()) notes += "budget-exhausted ";
        if (resp.attempts > 1) {
            notes += "attempts=" + std::to_string(resp.attempts) + " ";
        }
        if (!resp.error.empty()) notes += resp.error;
        if (!resp.ok()) ++failures;
        t.add_row({std::to_string(resp.id),
                   resp.kind == serve::RequestKind::kBatch ? "batch" : "workflow", status,
                   serve::degradation_level_name(resp.degradation_level), outcome,
                   fmt(resp.queue_ms, 2), fmt(resp.solve_ms, 2), notes});
    }
    t.print(std::cout);

    const serve::ServiceStats stats = service.stats();
    std::cout << "service: " << stats.completed << " completed, " << stats.rejected
              << " rejected, " << stats.errors << " errors, " << stats.coalesced
              << " coalesced across " << stats.batches << " dispatches\n";
    if (opts.governor.enabled) {
        std::cout << "governor: full " << stats.served_full << ", trimmed "
                  << stats.served_trimmed << ", greedy " << stats.served_greedy
                  << ", shed " << stats.governor_shed << " overload + "
                  << stats.deadline_shed << " deadline; retries "
                  << stats.solve_retries << ", breaker fast-fails "
                  << stats.breaker_fastfail << " (trips " << stats.breaker_trips
                  << "), ewma solve " << fmt(stats.ewma_solve_ms, 2) << " ms\n";
    }
    if (stats.faults.any()) {
        std::cout << "faults: " << stats.faults.stalls << " stalls ("
                  << fmt(stats.faults.stall_ms, 1) << " ms), "
                  << stats.faults.injected_exceptions << " injected exceptions\n";
    }
    print_cache_stats(stats.cache, std::cout);

    if (service.metrics_enabled()) {
        std::cout << "\nmetrics (live registry):\n";
        service.metrics().write_table(std::cout);
        std::cout << "metrics-json: " << service.metrics().json() << "\n";
        const std::string metrics_out = args.get("metrics-out");
        if (!metrics_out.empty()) {
            std::ofstream out(metrics_out);
            out << service.metrics().json() << "\n";
            out.flush();
            if (!out) {
                std::cerr << "serve: cannot write metrics to " << metrics_out << "\n";
                return 2;
            }
            std::cout << "[metrics written to " << metrics_out << "]\n";
        }
    }
    if (service.trace_ring().enabled()) {
        const auto total = service.trace_ring().total_pushed();
        std::cout << "\ntrace (" << service.trace_ring().size() << " of " << total
                  << " spans buffered):\n";
        service.trace_ring().write_table(std::cout);
    }
    return failures == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const Args args = parse_args(argc, argv);
        // Applied before any ThreadPool exists: default_workers() reads it.
        const std::string threads = args.get("threads");
        if (!threads.empty()) ::setenv("CAST_THREADS", threads.c_str(), 1);
        if (args.command == "tiers") return cmd_tiers(args);
        if (args.command == "profile") return cmd_profile(args);
        if (args.command == "plan") return cmd_plan(args);
        if (args.command == "workflow") return cmd_workflow(args);
        if (args.command == "synth") return cmd_synth(args);
        if (args.command == "serve") return cmd_serve(args);
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "cast_plan: " << e.what() << "\n";
        return 2;
    }
}
