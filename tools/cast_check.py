#!/usr/bin/env python3
"""cast_check: repo-specific source linter for concurrency + determinism discipline.

cast::lint (src/lint) checks *workload specs*; this tool checks the C++
*source tree* for rules the compiler cannot express — which primitives may
be used where. It is the second half of the compile-time concurrency
contract introduced with src/common/annotations.hpp: the Clang
thread-safety lane proves annotated locks are used correctly, and
cast_check proves nobody bypasses the annotated types (or the determinism
and hot-path disciplines from earlier PRs).

Rules (stable IDs, mirrored in DESIGN.md):

  C001  naked std::mutex / std::lock_guard / std::unique_lock /
        std::scoped_lock / std::shared_mutex outside common/annotations.hpp
        (use cast::Mutex / cast::LockGuard / cast::UniqueLock — the
        thread-safety analysis only sees capabilities it knows about)
  C002  naked std::condition_variable outside common/annotations.hpp
        (use cast::CondVar)
  C003  nondeterminism outside common/rng.hpp: rand()/srand(),
        std::random_device, std::mt19937, time(nullptr/NULL/0)
        (every stochastic component takes an explicit seed; see rng.hpp)
  C004  std::this_thread::sleep_for/sleep_until in src/ outside
        fault-injection/retry files (real sleeps belong to
        cast::sleep_backoff_ms and the injectors only)
  C005  new / malloc / calloc / realloc in the sim hot-path files
        (flow_engine.hpp, phase_runner.hpp, mapreduce.cpp — the
        allocation-free steady-state contract from PR 4)
  C006  try_* / *_or_null function with a non-void return missing
        [[nodiscard]] (a dropped failure result is a silent bug)
  C007  CAST_NO_TSA escape without a same-line justification comment
  C008  std::thread construction outside the thread pool and the
        planner service dispatcher (no ad-hoc threads)
  C009  more than 3 CAST_NO_TSA escapes repo-wide (budget; keep escapes
        an audited exception)
  C010  std::cerr / fprintf(stderr, ...) in the serve layer outside
        src/obs (ad-hoc stderr counters bypass the metrics registry;
        telemetry belongs in obs::MetricsRegistry / obs::TraceRing)
  C011  node-based containers (std::map / std::unordered_map / std::set /
        std::unordered_set / std::multimap / std::multiset) in the solver
        hot-path files (annealing.cpp, utility.cpp, soa_eval.cpp — the
        SoA discipline from PR 9: per-iteration state lives in flat
        arrays; the sharded memo table in eval_cache.cpp is the one
        sanctioned exception and is scoped out by file)

Implementation is a libclang/regex hybrid: when python bindings for
libclang are importable they refine C006 (true declaration parsing);
otherwise a conservative regex pass runs — comments and string literals
are stripped first so prose never trips a rule. Output mirrors
cast::lint's Finding schema (text and JSON) with rule IDs C001+.

Usage:
  cast_check.py [--strict] [--json] [--repo-root DIR] [paths...]
With no paths, scans <repo-root>/src. Exit 1 on any error-severity
finding; --strict also fails on warnings.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Files exempt per rule (substring match on the POSIX relative path).
ANNOTATIONS_HEADER = "common/annotations.hpp"
RNG_HEADER = "common/rng.hpp"
SLEEP_ALLOWED = ("faults", "retry")
THREAD_ALLOWED = ("common/thread_pool.hpp", "serve/service.hpp", "serve/service.cpp")
# The allocation-free sim hot path (basename match so fixtures can opt in).
HOT_PATH_BASENAMES = ("flow_engine.hpp", "phase_runner.hpp", "mapreduce.cpp")
# The SoA solver hot path (C011): no node-based containers per iteration.
# eval_cache.cpp is deliberately absent — its sharded map interiors are the
# sanctioned memoization structure.
SOLVER_HOT_BASENAMES = ("annealing.cpp", "utility.cpp", "soa_eval.cpp")

NO_TSA_BUDGET = 3

SEVERITIES = {"C006": "warning"}  # everything else is an error


def severity(rule: str) -> str:
    return SEVERITIES.get(rule, "error")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure.

    Replaced characters become spaces so line/column arithmetic and word
    boundaries survive. Handles //, /* */, "..." and '...' with escapes;
    raw strings are not used in this codebase (and would only over-strip).
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    if text[i + 1] != "\n":
                        out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def finding(rule: str, path: str, line: int, message: str, fix_hint: str = "") -> dict:
    return {
        "rule": rule,
        "severity": severity(rule),
        "subject": path,
        "message": message,
        "fix_hint": fix_hint,
        "line": line,
    }


# --- per-rule matchers over the stripped text -------------------------------

C001_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|"
    r"shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
C002_RE = re.compile(r"std::condition_variable(_any)?\b")
C003_RES = (
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"std::mt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0)\s*\)"), "time()"),
)
C004_RE = re.compile(r"std::this_thread::sleep_(for|until)\b|(?<![\w:])u?sleep\s*\(")
C005_RE = re.compile(r"(?<![\w:.])new\b(?!\s*\()|(?<![\w:.])(malloc|calloc|realloc)\s*\(")
C006_DECL_RE = re.compile(
    r"^\s*(?:(?:virtual|static|constexpr|inline|explicit|friend)\s+)*"
    r"(?P<ret>[A-Za-z_][\w:]*(?:\s*<[^;={}()]*>)?(?:\s*[&*])*)\s+"
    r"(?P<name>try_\w+|\w+_or_null)\s*\("
)
C007_RE = re.compile(r"\bCAST_NO_TSA\b")
C008_RE = re.compile(r"std::(thread|jthread)\b(?!::)")
C010_RE = re.compile(r"std::cerr\b|(?<!\w)fprintf\s*\(\s*stderr\b")
# \b after the name keeps algorithms like std::set_difference /
# std::set_union out of scope (underscore is a word character).
C011_RE = re.compile(r"std::(unordered_map|unordered_set|multimap|multiset|map|set)\b")


def check_file(root: Path, path: Path) -> tuple[list[dict], int]:
    """Lint one file; returns (findings, no_tsa_escape_count)."""
    rel = path.relative_to(root).as_posix() if path.is_relative_to(root) else path.as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()
    found: list[dict] = []
    escapes = 0

    in_annotations_header = rel.endswith(ANNOTATIONS_HEADER)
    in_rng_header = rel.endswith(RNG_HEADER)
    sleep_ok = any(token in rel for token in SLEEP_ALLOWED)
    thread_ok = any(rel.endswith(a) for a in THREAD_ALLOWED)
    hot_path = path.name in HOT_PATH_BASENAMES
    solver_hot = path.name in SOLVER_HOT_BASENAMES
    serve_no_cerr = "serve/" in rel and "obs/" not in rel

    for idx, line in enumerate(lines, start=1):
        if not in_annotations_header:
            if m := C001_RE.search(line):
                found.append(finding(
                    "C001", rel, idx,
                    f"naked std::{m.group(1)}; lock types outside "
                    f"{ANNOTATIONS_HEADER} are invisible to the thread-safety "
                    "analysis",
                    "use cast::Mutex / cast::LockGuard / cast::UniqueLock"))
            if C002_RE.search(line):
                found.append(finding(
                    "C002", rel, idx,
                    "naked std::condition_variable; waits outside the annotated "
                    "wrapper evade the thread-safety analysis",
                    "use cast::CondVar with cast::UniqueLock"))
        if not in_rng_header:
            for rex, what in C003_RES:
                if rex.search(line):
                    found.append(finding(
                        "C003", rel, idx,
                        f"{what} breaks seed-reproducibility; every stochastic "
                        "component must take an explicit seed",
                        "draw from cast::Rng (common/rng.hpp)"))
        if not sleep_ok and C004_RE.search(line):
            found.append(finding(
                "C004", rel, idx,
                "real sleep outside the fault-injection/retry layer",
                "use cast::sleep_backoff_ms (common/retry.hpp) or move the "
                "stall into an injector"))
        if hot_path and C005_RE.search(line):
            found.append(finding(
                "C005", rel, idx,
                "allocation in the sim hot path; the steady-state contract "
                "is allocation-free (PR 4)",
                "preallocate in setup or reuse pooled storage"))
        if m := C006_DECL_RE.match(line):
            ret = m.group("ret").strip()
            context = (raw_lines[idx - 2] if idx >= 2 else "") + " " + raw_lines[idx - 1]
            if ret not in ("void", "return", "delete", "case", "goto", "else",
                           "co_return", "throw", "new") and \
                    "[[nodiscard]]" not in context and "CAST_NODISCARD" not in context:
                found.append(finding(
                    "C006", rel, idx,
                    f"{m.group('name')} returns {ret} without [[nodiscard]]; "
                    "a dropped failure result is a silent bug",
                    "annotate the declaration [[nodiscard]]"))
        if C007_RE.search(line) and "#define" not in line:
            escapes += 1
            comment = raw_lines[idx - 1].split("//", 1)
            justification = comment[1].strip() if len(comment) > 1 else ""
            if len(justification) < 10:
                found.append(finding(
                    "C007", rel, idx,
                    "CAST_NO_TSA escape without a same-line justification "
                    "comment",
                    "append `// justified: <why the analysis cannot model "
                    "this>` or restructure so it can"))
        if solver_hot and (m := C011_RE.search(line)):
            found.append(finding(
                "C011", rel, idx,
                f"std::{m.group(1)} in the solver hot path; node-based "
                "containers wreck the SoA cache density the inner loop "
                "depends on (PR 9)",
                "use flat vectors/arrays indexed by job or tier; memoization "
                "belongs in the sharded EvalCache (eval_cache.cpp)"))
        if not thread_ok and C008_RE.search(line):
            found.append(finding(
                "C008", rel, idx,
                "ad-hoc std::thread; all runtime threads belong to "
                "cast::ThreadPool or the service dispatcher",
                "submit work to a ThreadPool instead of spawning a thread"))
        if serve_no_cerr and C010_RE.search(line):
            found.append(finding(
                "C010", rel, idx,
                "ad-hoc stderr telemetry in the serve layer; counters logged "
                "to std::cerr are invisible to the metrics registry and race "
                "with table output",
                "record through obs::MetricsRegistry (counter/gauge/histogram) "
                "or buffer a span in obs::TraceRing"))
    return found, escapes


def try_libclang_refine(findings: list[dict], paths: list[Path]) -> list[dict]:
    """When libclang python bindings exist, drop C006 findings that a real
    parse shows are not function declarations (regex false positives).
    Silently a no-op otherwise — the regex pass is the portable baseline."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return findings
    keep: list[dict] = []
    index = cindex.Index.create()
    decl_lines: dict[str, set[int]] = {}
    for path in paths:
        try:
            tu = index.parse(str(path), args=["-std=c++20", "-fsyntax-only"])
        except Exception:
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind in (cindex.CursorKind.FUNCTION_DECL,
                               cindex.CursorKind.CXX_METHOD) and cursor.location.file:
                decl_lines.setdefault(cursor.location.file.name, set()).add(
                    cursor.location.line)
    for f in findings:
        if f["rule"] != "C006":
            keep.append(f)
            continue
        lines = decl_lines.get(f["subject"])
        if lines is None or f["line"] in lines:
            keep.append(f)
    return keep


def write_json(findings: list[dict], source: str, out) -> None:
    """Same shape as cast::lint's Report::write_json."""
    errors = sum(1 for f in findings if f["severity"] == "error")
    warnings = sum(1 for f in findings if f["severity"] == "warning")
    doc = {"source": source, "errors": errors, "warnings": warnings, "findings": []}
    order = {"error": 0, "warning": 1, "info": 2}
    for f in sorted(findings, key=lambda f: (order[f["severity"]], f["rule"],
                                             f["subject"], f["line"])):
        entry = {"rule": f["rule"], "severity": f["severity"],
                 "subject": f["subject"], "message": f["message"]}
        if f["fix_hint"]:
            entry["fix_hint"] = f["fix_hint"]
        entry["line"] = f["line"]
        doc["findings"].append(entry)
    json.dump(doc, out)
    out.write("\n")


def write_text(findings: list[dict], out) -> None:
    order = {"error": 0, "warning": 1, "info": 2}
    for f in sorted(findings, key=lambda f: (order[f["severity"]], f["rule"],
                                             f["subject"], f["line"])):
        hint = f". hint: {f['fix_hint']}" if f["fix_hint"] else ""
        out.write(f"{f['severity']} {f['rule']} [{f['subject']}] "
                  f"(line {f['line']}): {f['message']}{hint}\n")
    errors = sum(1 for f in findings if f["severity"] == "error")
    warnings = sum(1 for f in findings if f["severity"] == "warning")
    out.write(f"{errors} error(s), {warnings} warning(s)\n")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="CAST source linter (concurrency + determinism discipline)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: <repo-root>/src)")
    parser.add_argument("--repo-root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--json", action="store_true", help="JSON report (cast_lint shape)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    args = parser.parse_args()

    root = args.repo_root.resolve()
    roots = [p.resolve() for p in args.paths] if args.paths else [root / "src"]
    files: list[Path] = []
    for r in roots:
        if r.is_dir():
            files.extend(sorted(p for p in r.rglob("*") if p.suffix in (".hpp", ".cpp", ".h")))
        elif r.is_file():
            files.append(r)
        else:
            print(f"cast_check: no such path: {r}", file=sys.stderr)
            return 2

    findings: list[dict] = []
    total_escapes = 0
    for path in files:
        f, escapes = check_file(root, path)
        findings.extend(f)
        total_escapes += escapes
    if total_escapes > NO_TSA_BUDGET:
        findings.append(finding(
            "C009", "(repo)", 1,
            f"{total_escapes} CAST_NO_TSA escapes exceed the repo-wide budget "
            f"of {NO_TSA_BUDGET}",
            "restructure the newest escape so the analysis can check it"))
    findings = try_libclang_refine(findings, files)

    source = ", ".join(str(r) for r in roots)
    if args.json:
        write_json(findings, source, sys.stdout)
    else:
        write_text(findings, sys.stdout)

    has_error = any(f["severity"] == "error" for f in findings)
    if has_error or (args.strict and findings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
