#!/usr/bin/env python3
"""Performance gate for the throughput benches (serve + solver).

Re-runs the bench binary in a scratch directory and compares the fresh
numbers against the committed baseline JSON. The gate fails when

  * the bench itself fails (bit-identity or budget contract violated), or
  * any headline metric regressed more than --threshold (default 25%)
    relative to the baseline.

The headline metrics depend on the report shape: serve reports gate the
best service plans/sec over all configurations; solver_throughput reports
gate the per-section `iters_per_sec` numbers (uncached/cached/SoA single
chains plus the independent-chain and tempering solves);
incremental_replan reports gate the per-track `plans_per_sec` numbers
(cold re-solve, warm-start amend, secretary baseline). Sections present
in only one of baseline/fresh (a freshly added bench row) are skipped,
not failed.

Throughput is host-dependent, so the gate is opt-in (ctest -C BenchGate
-L benchgate, or the CI release lane which runs baseline and fresh on the
same runner class). Self-normalizing contract metrics (bit identity,
budget adherence) are enforced unconditionally by the bench binary.

Trend mode (--trend) gates on the committed history of the baseline file
instead of a fresh bench run: every git revision of BENCH_*.json is a data
point, and the gate fails when the newest committed number either dropped
more than --threshold below the mean of its last --window predecessors, or
the fitted slope over that window decays faster than threshold/window per
commit. The slope check is the point: a sequence of small regressions that
each clear the single-baseline gate ("boiling frog") still fails here once
the cumulative drift shows. Only full-mode entries measured on the same
host core count as the newest entry are compared; fewer than three
comparable points is a skip, not a failure. Multi-metric reports run the
window+slope pair per metric (summary names are suffixed ".<metric>";
the serve report's single headline keeps the bare trend_window /
trend_slope names).

Every run ends with exactly one machine-readable line

  BENCH_GATE_SUMMARY {"verdict": ..., "metrics": [...]}

summarizing each gate decision (pass/fail/skip per metric, with baseline,
current and delta), so CI logs are grep-able without parsing prose.

Usage:
  bench_gate.py --bench build/bench/serve_throughput \
                --baseline BENCH_serve_throughput.json [--threshold 0.25]
                [--smoke]
  bench_gate.py --bench build/bench/solver_throughput \
                --baseline BENCH_solver_throughput.json
  bench_gate.py --trend --baseline BENCH_solver_throughput.json
                [--threshold 0.25] [--window 5]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

SUMMARY_TAG = "BENCH_GATE_SUMMARY"
SERVE_METRIC = "service_plans_per_sec"
# solver_throughput sections carrying an iters_per_sec headline. The solve
# rows exercise the whole pool, so they only compare when baseline and
# current hosts have the same core count (the serve-report analogue is the
# workers > 1 configs).
SOLVER_SINGLE_CHAIN = ("uncached_full_evaluation", "cached_incremental_evaluation",
                       "soa_incremental_evaluation")
SOLVER_POOLED = ("multi_chain_solve", "tempering_solve")
# incremental_replan tracks carrying a plans_per_sec headline. All three
# are timed single-threaded (the pooled runs only check bit-identity), so
# they stay comparable even when baseline and current core counts differ.
INCREMENTAL_TRACKS = ("cold_resolve", "incremental_amend", "secretary_baseline")


def metric(name: str, status: str, **fields) -> dict:
    """One gate decision: status is pass/fail/skip; extra fields are the
    numbers the decision was made on (baseline/current/delta/threshold)."""
    return {"name": name, "status": status, **fields}


def emit_summary(metrics: list[dict]) -> None:
    """The one-line JSON record of every gate decision this run."""
    verdict = "FAIL" if any(m["status"] == "fail" for m in metrics) else "OK"
    print(f"{SUMMARY_TAG} " + json.dumps(
        {"verdict": verdict, "metrics": metrics}, sort_keys=True), flush=True)


def best_service_plans_per_sec(report: dict, max_workers: int | None = None) -> float:
    """Headline metric: the best plans/sec over all service configurations.

    Budgeted runs are excluded — their throughput is bounded by the wall
    budget, not by the serving machinery under test. When `max_workers` is
    given, runs with more workers than that are excluded too (used to strip
    parallel-scaling configs when baseline and current hosts differ).
    """
    best = 0.0
    for run in report.get("service_runs", []):
        if report.get("budget_ms", 0.0) > 0.0 and "budget" in str(run.get("config", "")):
            continue
        if max_workers is not None and int(run.get("workers", 1)) > max_workers:
            continue
        best = max(best, float(run.get("plans_per_sec", 0.0)))
    if best <= 0.0:
        raise ValueError("no comparable service_runs with plans_per_sec > 0 in report")
    return best


def headline_metrics(report: dict, max_workers: int | None = None) -> dict:
    """Gate-metric name -> value for one bench report.

    Serve reports contribute their single best-plans/sec headline under the
    historical name; solver_throughput reports contribute one
    `<section>.iters_per_sec` metric per section present. `max_workers == 1`
    strips whole-pool numbers (parallel service configs, multi-chain solve
    rows) when baseline and current hosts are not core-count comparable.
    Raises ValueError when nothing comparable is present.
    """
    if "service_runs" in report:
        return {SERVE_METRIC: best_service_plans_per_sec(report, max_workers)}
    if "incremental_amend" in report:
        metrics = {}
        for key in INCREMENTAL_TRACKS:
            run = report.get(key)
            if isinstance(run, dict) and float(run.get("plans_per_sec", 0.0)) > 0.0:
                metrics[f"{key}.plans_per_sec"] = float(run["plans_per_sec"])
        if not metrics:
            raise ValueError("no comparable headline metrics in report")
        return metrics
    sections = SOLVER_SINGLE_CHAIN
    if max_workers is None or max_workers > 1:
        sections = sections + SOLVER_POOLED
    metrics: dict = {}
    for key in sections:
        run = report.get(key)
        if isinstance(run, dict) and float(run.get("iters_per_sec", 0.0)) > 0.0:
            metrics[f"{key}.iters_per_sec"] = float(run["iters_per_sec"])
    if not metrics:
        raise ValueError("no comparable headline metrics in report")
    return metrics


def baseline_history(baseline_path: Path) -> list[dict]:
    """Every committed revision of the baseline file, oldest first.

    Each entry is {"rev": sha, "report": parsed JSON}. Revisions where the
    file is missing or unparseable are skipped (a truncated baseline from
    before the write_bench_json hardening must not poison the trend).
    Raises RuntimeError when the baseline is not inside a git work tree.
    """
    top = subprocess.run(
        ["git", "-C", str(baseline_path.parent if str(baseline_path.parent) else "."),
         "rev-parse", "--show-toplevel"],
        capture_output=True, text=True)
    if top.returncode != 0:
        raise RuntimeError(f"not a git work tree: {top.stderr.strip()}")
    root = Path(top.stdout.strip())
    rel = baseline_path.resolve().relative_to(root).as_posix()
    log = subprocess.run(["git", "-C", str(root), "log", "--format=%H", "--", rel],
                         capture_output=True, text=True)
    revs = [r for r in log.stdout.split() if r]
    revs.reverse()  # git log is newest-first; the trend wants oldest-first
    history: list[dict] = []
    for rev in revs:
        show = subprocess.run(["git", "-C", str(root), "show", f"{rev}:{rel}"],
                              capture_output=True, text=True)
        if show.returncode != 0:
            continue
        try:
            report = json.loads(show.stdout)
        except json.JSONDecodeError:
            continue
        history.append({"rev": rev, "report": report})
    return history


def run_trend(args) -> int:
    """Gate on the committed BENCH history: last-N window + fitted slope,
    run independently for every headline metric the newest revision carries."""
    metrics: list[dict] = []
    baseline_path = Path(args.baseline)
    try:
        history = baseline_history(baseline_path)
    except RuntimeError as err:
        print(f"bench_gate: {err}", file=sys.stderr)
        emit_summary([metric("trend_history", "fail", reason=str(err))])
        return 2

    # Comparable points only: full-mode runs (smoke workloads are sized
    # differently) measured on the same host core count as the newest one.
    full = [h for h in history if h["report"].get("mode") == "full"]
    points: list[dict] = []
    newest_names: list[str] = []
    if full:
        cores = full[-1]["report"].get("host_cores")
        for h in full:
            if h["report"].get("host_cores") != cores:
                continue
            try:
                values = headline_metrics(h["report"])
            except ValueError:
                continue
            points.append({"rev": h["rev"], "values": values})
        if points:
            newest_names = sorted(points[-1]["values"])

    # Per-metric series. The newest revision decides which metrics are live;
    # a retired bench row stops gating, a freshly added one starts gating
    # once three committed revisions carry it.
    series = {name: [(p["rev"], p["values"][name])
                     for p in points if name in p["values"]]
              for name in newest_names}
    comparable = max((len(s) for s in series.values()), default=0)
    if comparable < 3:
        print(f"bench_gate: only {comparable} comparable baseline revisions; "
              "need 3+ for a trend — skipping")
        metrics.append(metric("trend", "skip", reason="insufficient history",
                              points=comparable))
        emit_summary(metrics)
        return 0

    window = max(1, args.window)
    failed = False
    for name in newest_names:
        # The serve report's single headline keeps the historical bare
        # trend_window/trend_slope names; multi-metric reports suffix.
        suffix = "" if name == SERVE_METRIC else "." + name
        values = [v for _, v in series[name]]
        if len(values) < 3:
            print(f"bench_gate: {name}: only {len(values)} comparable "
                  "revisions; need 3+ for a trend — skipping")
            metrics.append(metric(f"trend{suffix}", "skip",
                                  reason="insufficient history",
                                  points=len(values)))
            continue
        current = values[-1]

        # Window gate: the newest committed number vs the mean of its last
        # `window` predecessors — the trend analogue of the single-baseline
        # comparison, but against a smoothed reference instead of one point.
        prev = values[-(window + 1):-1]
        prev_mean = sum(prev) / len(prev)
        ratio = current / prev_mean
        window_ok = ratio >= 1.0 - args.threshold
        print(f"bench_gate: trend window{suffix} — newest {current:.1f} vs "
              f"mean of last {len(prev)} = {prev_mean:.1f} ({ratio:.2%}) -> "
              f"{'OK' if window_ok else 'REGRESSION'}")
        metrics.append(metric(f"trend_window{suffix}",
                              "pass" if window_ok else "fail",
                              baseline=round(prev_mean, 3),
                              current=round(current, 3),
                              delta=round(ratio - 1.0, 4),
                              threshold=args.threshold, window=len(prev)))

        # Slope gate: least-squares fit over the last window+1 points,
        # normalized by their mean so the threshold is a fractional decay
        # per commit. This is what catches the boiling frog — N small
        # regressions that each clear the window/baseline gate but sum past
        # the threshold.
        tail = values[-(window + 1):]
        n = len(tail)
        mean_x = (n - 1) / 2.0
        mean_y = sum(tail) / n
        denom = sum((x - mean_x) ** 2 for x in range(n))
        slope = sum((x - mean_x) * (y - mean_y)
                    for x, y in zip(range(n), tail)) / denom
        slope_rel = slope / mean_y if mean_y > 0.0 else 0.0
        slope_limit = args.threshold / window
        slope_ok = slope_rel >= -slope_limit
        print(f"bench_gate: trend slope{suffix} — {slope_rel:+.2%} per commit "
              f"over last {n} points (limit -{slope_limit:.2%}) -> "
              f"{'OK' if slope_ok else 'REGRESSION'}")
        metrics.append(metric(f"trend_slope{suffix}",
                              "pass" if slope_ok else "fail",
                              slope_per_commit=round(slope_rel, 4),
                              threshold=round(slope_limit, 4), points=n,
                              newest_rev=series[name][-1][0][:12]))
        failed = failed or not (window_ok and slope_ok)

    emit_summary(metrics)
    if failed:
        print("bench_gate: committed bench history is trending down", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", help="serve_throughput binary (required "
                        "unless --trend)")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional regression (default 0.25)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the bench in --smoke mode (CI wiring checks)")
    parser.add_argument("--trend", action="store_true",
                        help="gate on the committed git history of --baseline "
                             "instead of running the bench")
    parser.add_argument("--window", type=int, default=5,
                        help="trend mode: predecessors in the comparison "
                             "window (default 5)")
    args = parser.parse_args()

    if args.trend:
        return run_trend(args)
    if not args.bench:
        parser.error("--bench is required unless --trend is given")

    metrics: list[dict] = []

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        print(f"bench_gate: baseline not found: {baseline_path}", file=sys.stderr)
        emit_summary([metric("baseline_present", "fail", path=str(baseline_path))])
        return 2
    baseline = json.loads(baseline_path.read_text())

    cmd = [args.bench] + (["--smoke"] if args.smoke else [])
    with tempfile.TemporaryDirectory(prefix="cast_bench_gate_") as scratch:
        print(f"bench_gate: running {' '.join(cmd)}", flush=True)
        proc = subprocess.run(cmd, cwd=scratch)
        if proc.returncode != 0:
            print(f"bench_gate: bench exited {proc.returncode} "
                  "(contract check failed)", file=sys.stderr)
            emit_summary(metrics + [metric("bench_contracts", "fail",
                                           exit_code=proc.returncode)])
            return 1
        metrics.append(metric("bench_contracts", "pass", exit_code=0))
        # The bench writes its own BENCH_*.json into the scratch cwd; the
        # baseline file may live under any name (CI copies it around), so
        # prefer a scratch file matching the baseline's name but fall back
        # to whatever single report the bench produced.
        named = Path(scratch) / baseline_path.name
        if named.is_file():
            result_path = named
        else:
            produced = sorted(Path(scratch).glob("BENCH_*.json"))
            if len(produced) != 1:
                print(f"bench_gate: expected one BENCH_*.json in scratch, "
                      f"found {len(produced)}", file=sys.stderr)
                emit_summary(metrics + [metric("bench_report", "fail",
                                               reason="missing or ambiguous "
                                                      "bench report")])
                return 2
            result_path = produced[0]
        fresh = json.loads(result_path.read_text())

    if args.smoke or fresh.get("mode") != baseline.get("mode"):
        # Different workload sizes are not comparable; the run above already
        # validated the contracts, which is all a smoke gate checks.
        print("bench_gate: modes differ (fresh "
              f"{fresh.get('mode')} vs baseline {baseline.get('mode')}); "
              "skipping throughput comparison")
        try:
            skip_names = sorted(headline_metrics(baseline))
        except ValueError:
            skip_names = ["headline"]
        for name in skip_names:
            metrics.append(metric(name, "skip",
                                  reason="smoke run" if args.smoke
                                         else "mode mismatch",
                                  baseline_mode=baseline.get("mode"),
                                  fresh_mode=fresh.get("mode")))
        emit_summary(metrics)
        return 0

    # Whole-pool numbers (parallel service configs, multi-chain solver rows)
    # only compare apples-to-apples when baseline and current were measured
    # on hosts with the same core count; otherwise restrict the comparison
    # to the single-worker/single-chain metrics.
    max_workers = None
    base_cores = baseline.get("host_cores")
    fresh_cores = fresh.get("host_cores")
    if base_cores != fresh_cores:
        print(f"bench_gate: host_cores differ (baseline {base_cores}, "
              f"current {fresh_cores}); comparing single-worker runs only")
        max_workers = 1

    try:
        base_by_name = headline_metrics(baseline, max_workers)
        now_by_name = headline_metrics(fresh, max_workers)
    except ValueError as err:
        if max_workers is not None:
            print(f"bench_gate: {err}; no core-count-independent runs to "
                  "compare, skipping throughput comparison")
            name = SERVE_METRIC if "service_runs" in baseline else "headline"
            metrics.append(metric(name, "skip",
                                  reason="no core-count-independent runs"))
            emit_summary(metrics)
            return 0
        raise

    failed = False
    for name in sorted(set(base_by_name) | set(now_by_name)):
        if name not in base_by_name or name not in now_by_name:
            # A freshly added (or retired) bench row has nothing to compare
            # against; it starts gating once both sides carry it.
            side = "baseline" if name not in base_by_name else "current"
            print(f"bench_gate: {name} missing in {side} report; skipping")
            metrics.append(metric(name, "skip", reason=f"missing in {side}"))
            continue
        base = base_by_name[name]
        now = now_by_name[name]
        ratio = now / base
        ok = ratio >= 1.0 - args.threshold
        failed = failed or not ok
        print(f"bench_gate: {name} {now:.1f} vs baseline {base:.1f} "
              f"({ratio:.2%}) -> {'OK' if ok else 'REGRESSION'}")
        metrics.append(metric(name, "pass" if ok else "fail",
                              baseline=base, current=now,
                              delta=round(ratio - 1.0, 4),
                              threshold=args.threshold,
                              single_worker_only=max_workers is not None))
    emit_summary(metrics)
    if failed:
        print(f"bench_gate: regressed more than {args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
