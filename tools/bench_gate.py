#!/usr/bin/env python3
"""Performance gate for the serve-throughput bench.

Re-runs the bench binary in a scratch directory and compares the fresh
numbers against the committed baseline JSON. The gate fails when

  * the bench itself fails (bit-identity or budget contract violated), or
  * the best service plans/sec regressed more than --threshold (default
    25%) relative to the baseline's best service plans/sec.

Throughput is host-dependent, so the gate is opt-in (ctest -C BenchGate
-L benchgate, or the CI release lane which runs baseline and fresh on the
same runner class). Self-normalizing contract metrics (bit identity,
budget adherence) are enforced unconditionally by the bench binary.

Every run ends with exactly one machine-readable line

  BENCH_GATE_SUMMARY {"verdict": ..., "metrics": [...]}

summarizing each gate decision (pass/fail/skip per metric, with baseline,
current and delta), so CI logs are grep-able without parsing prose.

Usage:
  bench_gate.py --bench build/bench/serve_throughput \
                --baseline BENCH_serve_throughput.json [--threshold 0.25]
                [--smoke]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

RESULT_NAME = "BENCH_serve_throughput.json"
SUMMARY_TAG = "BENCH_GATE_SUMMARY"


def metric(name: str, status: str, **fields) -> dict:
    """One gate decision: status is pass/fail/skip; extra fields are the
    numbers the decision was made on (baseline/current/delta/threshold)."""
    return {"name": name, "status": status, **fields}


def emit_summary(metrics: list[dict]) -> None:
    """The one-line JSON record of every gate decision this run."""
    verdict = "FAIL" if any(m["status"] == "fail" for m in metrics) else "OK"
    print(f"{SUMMARY_TAG} " + json.dumps(
        {"verdict": verdict, "metrics": metrics}, sort_keys=True), flush=True)


def best_service_plans_per_sec(report: dict, max_workers: int | None = None) -> float:
    """Headline metric: the best plans/sec over all service configurations.

    Budgeted runs are excluded — their throughput is bounded by the wall
    budget, not by the serving machinery under test. When `max_workers` is
    given, runs with more workers than that are excluded too (used to strip
    parallel-scaling configs when baseline and current hosts differ).
    """
    best = 0.0
    for run in report.get("service_runs", []):
        if report.get("budget_ms", 0.0) > 0.0 and "budget" in str(run.get("config", "")):
            continue
        if max_workers is not None and int(run.get("workers", 1)) > max_workers:
            continue
        best = max(best, float(run.get("plans_per_sec", 0.0)))
    if best <= 0.0:
        raise ValueError("no comparable service_runs with plans_per_sec > 0 in report")
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="serve_throughput binary")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional regression (default 0.25)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the bench in --smoke mode (CI wiring checks)")
    args = parser.parse_args()

    metrics: list[dict] = []

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        print(f"bench_gate: baseline not found: {baseline_path}", file=sys.stderr)
        emit_summary([metric("baseline_present", "fail", path=str(baseline_path))])
        return 2
    baseline = json.loads(baseline_path.read_text())

    cmd = [args.bench] + (["--smoke"] if args.smoke else [])
    with tempfile.TemporaryDirectory(prefix="cast_bench_gate_") as scratch:
        print(f"bench_gate: running {' '.join(cmd)}", flush=True)
        proc = subprocess.run(cmd, cwd=scratch)
        if proc.returncode != 0:
            print(f"bench_gate: bench exited {proc.returncode} "
                  "(contract check failed)", file=sys.stderr)
            emit_summary(metrics + [metric("bench_contracts", "fail",
                                           exit_code=proc.returncode)])
            return 1
        metrics.append(metric("bench_contracts", "pass", exit_code=0))
        fresh = json.loads((Path(scratch) / RESULT_NAME).read_text())

    if args.smoke or fresh.get("mode") != baseline.get("mode"):
        # Different workload sizes are not comparable; the run above already
        # validated the contracts, which is all a smoke gate checks.
        print("bench_gate: modes differ (fresh "
              f"{fresh.get('mode')} vs baseline {baseline.get('mode')}); "
              "skipping throughput comparison")
        metrics.append(metric("service_plans_per_sec", "skip",
                              reason="smoke run" if args.smoke else "mode mismatch",
                              baseline_mode=baseline.get("mode"),
                              fresh_mode=fresh.get("mode")))
        emit_summary(metrics)
        return 0

    # Parallel-scaling numbers (workers > 1) only compare apples-to-apples
    # when baseline and current were measured on hosts with the same core
    # count; otherwise restrict the comparison to single-worker runs.
    max_workers = None
    base_cores = baseline.get("host_cores")
    fresh_cores = fresh.get("host_cores")
    if base_cores != fresh_cores:
        print(f"bench_gate: host_cores differ (baseline {base_cores}, "
              f"current {fresh_cores}); comparing single-worker runs only")
        max_workers = 1

    try:
        base = best_service_plans_per_sec(baseline, max_workers)
        now = best_service_plans_per_sec(fresh, max_workers)
    except ValueError as err:
        if max_workers is not None:
            print(f"bench_gate: {err}; no core-count-independent runs to "
                  "compare, skipping throughput comparison")
            metrics.append(metric("service_plans_per_sec", "skip",
                                  reason="no core-count-independent runs"))
            emit_summary(metrics)
            return 0
        raise
    ratio = now / base
    verdict = "OK" if ratio >= 1.0 - args.threshold else "REGRESSION"
    print(f"bench_gate: best service plans/sec {now:.1f} vs baseline {base:.1f} "
          f"({ratio:.2%}) -> {verdict}")
    metrics.append(metric("service_plans_per_sec",
                          "pass" if verdict == "OK" else "fail",
                          baseline=base, current=now,
                          delta=round(ratio - 1.0, 4),
                          threshold=args.threshold,
                          single_worker_only=max_workers is not None))
    emit_summary(metrics)
    if verdict != "OK":
        print(f"bench_gate: regressed more than {args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
