// Facebook-derived workload synthesis (paper Table 4 and §5.1.1, §5.2.1).
//
// The paper samples job input sizes from the distribution observed in
// production traces of a 3,000-machine Hadoop deployment at Facebook
// (Chen et al., PVLDB'12), quantized into 7 bins, then builds a 100-job
// workload with the per-bin job counts of Table 4, 15% shared-input jobs,
// and application types assigned round-robin from Table 2. We reproduce
// exactly that synthesis (the trace itself is not public).
#pragma once

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/job.hpp"
#include "workload/workflow.hpp"

namespace cast::workload {

/// One row of Table 4.
struct FacebookBin {
    int bin = 0;
    /// Map-task count range observed at Facebook.
    int fb_maps_lo = 0;
    int fb_maps_hi = 0;
    /// Fraction of jobs / of total data at Facebook (informational).
    double fb_jobs_fraction = 0.0;
    double fb_data_fraction = 0.0;
    /// Map-task count and job count used in the synthesized workload.
    int workload_maps = 0;
    int workload_jobs = 0;
};

/// Table 4, verbatim.
[[nodiscard]] const std::array<FacebookBin, 7>& facebook_bins();

struct SynthesisOptions {
    /// HDFS chunk size: one map task per chunk.
    GigaBytes chunk{0.128};
    /// Fraction of jobs sharing the same input dataset (§5.1.1: 15%).
    double reuse_fraction = 0.15;
    /// Jobs per reuse group.
    int reuse_group_size = 3;
    /// Application classes assigned round-robin (Table 2's four apps).
    std::vector<AppKind> app_mix = {AppKind::kSort, AppKind::kJoin, AppKind::kGrep,
                                    AppKind::kKMeans};
    /// Reduce tasks per job as a fraction of map tasks (>= 1 task).
    double reduce_ratio = 0.25;
};

/// Synthesize the paper's 100-job evaluation workload. Deterministic for a
/// given seed. Only jobs in the same bin can share input (shared datasets
/// must have equal sizes), mirroring the "moderate amount of data reuse"
/// the paper injects.
[[nodiscard]] Workload synthesize_facebook_workload(std::uint64_t seed,
                                                    const SynthesisOptions& opts = {});

/// The smaller 16-job, ~2 TB workload used for the model-accuracy
/// experiment (Fig. 8).
[[nodiscard]] Workload synthesize_model_accuracy_workload(std::uint64_t seed);

/// The five workflows (31 jobs total, longest 9 jobs, deadlines 15-40 min)
/// used for the deadline experiments (§5.2.1, Fig. 9).
[[nodiscard]] std::vector<Workflow> synthesize_deadline_workflows(std::uint64_t seed);

}  // namespace cast::workload
