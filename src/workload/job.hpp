// Job and workload specifications (the paper's L̂ and J).
//
// A JobSpec is one analytics job: an application class, an input size, and
// map/reduce task counts. A Workload is the set J that the CAST solver
// plans over, together with the data-reuse groups (the paper's set D of
// jobs sharing input, Eq. 7).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/storage.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "workload/application.hpp"

namespace cast::workload {

struct JobSpec {
    int id = 0;
    std::string name;
    AppKind app = AppKind::kSort;
    GigaBytes input;
    int map_tasks = 1;
    int reduce_tasks = 1;
    /// Jobs carrying the same reuse_group value share the same input
    /// dataset (fully); CAST++ pins them to one tier (Eq. 7) and counts the
    /// shared input capacity once.
    std::optional<int> reuse_group;
    /// Operator-imposed tier pin (spec option `tier=`): the job's data must
    /// live on this tier. Solvers may use it as a constraint; the Deployer's
    /// failure-aware validation rejects plans that violate it.
    std::optional<cloud::StorageTier> pinned_tier = std::nullopt;

    [[nodiscard]] const ApplicationProfile& profile() const {
        return ApplicationProfile::of(app);
    }

    [[nodiscard]] GigaBytes intermediate() const { return profile().intermediate_size(input); }
    [[nodiscard]] GigaBytes output() const { return profile().output_size(input); }

    /// Eq. 3: capacity a job needs on its tier for all phases.
    [[nodiscard]] GigaBytes capacity_requirement() const {
        return input + intermediate() + output();
    }

    void validate() const {
        CAST_EXPECTS_MSG(input.value() > 0.0, "job input must be positive");
        CAST_EXPECTS_MSG(map_tasks >= 1, "job needs at least one map task");
        CAST_EXPECTS_MSG(reduce_tasks >= 1, "job needs at least one reduce task");
    }
};

class Workload {
public:
    Workload() = default;
    explicit Workload(std::vector<JobSpec> jobs) : jobs_(std::move(jobs)) { validate(); }

    [[nodiscard]] const std::vector<JobSpec>& jobs() const { return jobs_; }
    [[nodiscard]] std::size_t size() const { return jobs_.size(); }
    [[nodiscard]] bool empty() const { return jobs_.empty(); }
    [[nodiscard]] const JobSpec& job(std::size_t idx) const {
        CAST_EXPECTS(idx < jobs_.size());
        return jobs_[idx];
    }

    /// Map reuse-group id -> indices (into jobs()) of the member jobs.
    /// Groups with a single member are still reported.
    [[nodiscard]] std::map<int, std::vector<std::size_t>> reuse_groups() const {
        std::map<int, std::vector<std::size_t>> groups;
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            if (jobs_[i].reuse_group) groups[*jobs_[i].reuse_group].push_back(i);
        }
        return groups;
    }

    [[nodiscard]] GigaBytes total_input() const {
        GigaBytes total{0.0};
        for (const auto& j : jobs_) total += j.input;
        return total;
    }

    /// Total capacity requirement if every job provisions exactly Eq. 3,
    /// with shared inputs counted once per reuse group.
    [[nodiscard]] GigaBytes total_capacity_requirement() const {
        GigaBytes total{0.0};
        std::map<int, bool> group_input_counted;
        for (const auto& j : jobs_) {
            if (j.reuse_group) {
                total += j.intermediate() + j.output();
                if (!group_input_counted[*j.reuse_group]) {
                    total += j.input;
                    group_input_counted[*j.reuse_group] = true;
                }
            } else {
                total += j.capacity_requirement();
            }
        }
        return total;
    }

    void validate() const {
        std::map<int, const JobSpec*> by_id;
        std::map<int, GigaBytes> group_input;
        for (const auto& j : jobs_) {
            j.validate();
            const auto [it, inserted] = by_id.emplace(j.id, &j);
            if (!inserted) {
                throw ValidationError("duplicate job id " + std::to_string(j.id));
            }
            if (j.reuse_group) {
                // Sharing "the same input dataset" requires identical sizes.
                const auto [git, ginserted] = group_input.emplace(*j.reuse_group, j.input);
                if (!ginserted && !approx_equal(git->second.value(), j.input.value())) {
                    throw ValidationError("reuse group " + std::to_string(*j.reuse_group) +
                                          " has members with differing input sizes");
                }
            }
        }
    }

private:
    std::vector<JobSpec> jobs_;
};

/// A data re-access pattern (§3.1.3): the same input is consumed `accesses`
/// times spread over `lifetime`. The paper studies 7 accesses over 1 hour
/// and 7 accesses over 1 week.
struct ReusePattern {
    int accesses = 1;
    Seconds lifetime{0.0};

    void validate() const {
        CAST_EXPECTS(accesses >= 1);
        CAST_EXPECTS(lifetime.value() >= 0.0);
    }

    [[nodiscard]] static ReusePattern none() { return ReusePattern{1, Seconds{0.0}}; }
    [[nodiscard]] static ReusePattern one_hour() {
        return ReusePattern{7, Seconds::from_hours(1.0)};
    }
    [[nodiscard]] static ReusePattern one_week() {
        return ReusePattern{7, Seconds::from_hours(24.0 * 7.0)};
    }
};

}  // namespace cast::workload
