#include "workload/stream.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace cast::workload {

DeltaApplication apply_delta(const Workload& base, const JobDelta& delta) {
    std::map<int, std::size_t> by_id;
    for (std::size_t i = 0; i < base.size(); ++i) by_id.emplace(base.job(i).id, i);

    std::set<int> departing;
    for (const int id : delta.departures) {
        if (by_id.find(id) == by_id.end()) {
            throw ValidationError("delta departure references unknown job id " +
                                  std::to_string(id));
        }
        if (!departing.insert(id).second) {
            throw ValidationError("delta lists job id " + std::to_string(id) +
                                  " as departing twice");
        }
    }

    std::map<int, const JobSpec*> updates;
    for (const JobSpec& u : delta.updates) {
        if (by_id.find(u.id) == by_id.end()) {
            throw ValidationError("delta update references unknown job id " +
                                  std::to_string(u.id));
        }
        if (departing.count(u.id) != 0) {
            throw ValidationError("delta updates departing job id " + std::to_string(u.id));
        }
        if (!updates.emplace(u.id, &u).second) {
            throw ValidationError("delta lists job id " + std::to_string(u.id) +
                                  " as updated twice");
        }
    }

    DeltaApplication out;
    std::vector<JobSpec> jobs;
    jobs.reserve(base.size() + delta.arrivals.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        const JobSpec& job = base.job(i);
        if (departing.count(job.id) != 0) {
            out.departed.push_back(i);
            continue;
        }
        const auto uit = updates.find(job.id);
        if (uit != updates.end()) {
            out.changed.push_back(jobs.size());
            jobs.push_back(*uit->second);
        } else {
            jobs.push_back(job);
        }
        out.survivor_from.push_back(i);
    }
    std::set<int> arrival_ids;
    for (const JobSpec& a : delta.arrivals) {
        if (by_id.find(a.id) != by_id.end() || !arrival_ids.insert(a.id).second) {
            throw ValidationError("delta arrival reuses job id " + std::to_string(a.id));
        }
        out.changed.push_back(jobs.size());
        out.survivor_from.push_back(DeltaApplication::kNoPrior);
        jobs.push_back(a);
    }
    out.workload = Workload(std::move(jobs));  // re-validates (reuse-group invariants)
    return out;
}

std::vector<JobDelta> synthesize_stream(const Workload& initial, std::uint64_t seed,
                                        const StreamOptions& opts) {
    opts.validate();
    CAST_EXPECTS_MSG(!initial.empty(), "stream synthesis needs a non-empty initial workload");

    std::vector<JobSpec> live = initial.jobs();
    int next_id = 0;
    int next_group = 0;
    for (const JobSpec& j : live) {
        next_id = std::max(next_id, j.id + 1);
        if (j.reuse_group) next_group = std::max(next_group, *j.reuse_group + 1);
    }

    Rng rng(seed);
    // Arrival pool: fresh Table 4 syntheses, refilled on demand. Group ids
    // within one refill are remapped consistently (pool peers that share a
    // group still share one after remapping) but never collide with live
    // groups or with earlier refills.
    std::vector<JobSpec> pool;
    std::size_t pool_cursor = 0;
    std::uint64_t refill = 0;
    const auto draw_arrival = [&]() {
        if (pool_cursor >= pool.size()) {
            const Workload fresh = synthesize_facebook_workload(
                SplitMix64((seed ^ 0x5bf03635aca2fdafULL) + ++refill).next(), opts.synthesis);
            pool = fresh.jobs();
            std::map<int, int> remap;
            for (JobSpec& j : pool) {
                if (!j.reuse_group) continue;
                const auto [it, inserted] = remap.emplace(*j.reuse_group, next_group);
                if (inserted) ++next_group;
                j.reuse_group = it->second;
            }
            pool_cursor = 0;
        }
        JobSpec job = pool[pool_cursor++];
        job.id = next_id++;
        job.name = "arr" + std::to_string(job.id);
        return job;
    };

    std::vector<JobDelta> trace;
    trace.reserve(static_cast<std::size_t>(opts.steps));
    for (int step = 0; step < opts.steps; ++step) {
        const std::size_t n = live.size();
        const auto half = static_cast<std::size_t>(
            std::max(1.0, std::floor(opts.churn * static_cast<double>(n) / 2.0 + 0.5)));
        const std::size_t n_out = std::min(half, n > 1 ? n - 1 : std::size_t{0});

        JobDelta delta;
        std::vector<std::uint8_t> leaving(n, 0);
        for (std::size_t k = 0; k < n_out; ++k) {
            std::size_t idx = static_cast<std::size_t>(rng.below(n));
            while (leaving[idx] != 0) idx = (idx + 1) % n;
            leaving[idx] = 1;
            delta.departures.push_back(live[idx].id);
        }

        const auto n_upd = static_cast<std::size_t>(
            std::floor(opts.update_fraction * static_cast<double>(n) + 0.5));
        std::vector<std::uint8_t> drifted(n, 0);
        for (std::size_t k = 0; k < n_upd; ++k) {
            // Probe for a drift-eligible survivor: not leaving, not already
            // drifted this step, and not a reuse-group member (group inputs
            // must stay equal). Bounded probes keep the loop deterministic
            // even when few candidates remain.
            for (std::size_t probe = 0; probe < 4 * n; ++probe) {
                const auto idx = static_cast<std::size_t>(rng.below(n));
                if (leaving[idx] != 0 || drifted[idx] != 0 || live[idx].reuse_group) continue;
                drifted[idx] = 1;
                JobSpec revised = live[idx];
                const double factor = rng.uniform(opts.drift_lo, opts.drift_hi);
                revised.input = GigaBytes{std::max(0.01, revised.input.value() * factor)};
                revised.map_tasks = std::max(
                    1, static_cast<int>(
                           std::ceil(revised.input.value() / opts.synthesis.chunk.value())));
                revised.reduce_tasks = std::max(
                    1, static_cast<int>(static_cast<double>(revised.map_tasks) *
                                        opts.synthesis.reduce_ratio));
                delta.updates.push_back(std::move(revised));
                break;
            }
        }

        for (std::size_t k = 0; k < n_out; ++k) delta.arrivals.push_back(draw_arrival());

        // Chain: the next step's ids reference the post-delta set.
        const DeltaApplication applied = apply_delta(Workload(live), delta);
        live = applied.workload.jobs();
        trace.push_back(std::move(delta));
    }
    return trace;
}

}  // namespace cast::workload
