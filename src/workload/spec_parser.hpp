// Plain-text workload/workflow specification parser.
//
// Lets users describe their jobs without writing C++ — the input format of
// the cast_plan and cast_lint CLI tools. Line-oriented, '#' comments,
// whitespace-split:
//
//   # a batch workload
//   job 1 Sort 120                      # input in GB; maps/reduces derived
//   job 2 Grep 300 maps=2344 reduces=500
//   job 3 Grep 300 group=1              # shares input dataset "1"
//   job 4 Grep 300 group=1
//   job 5 Join 80 tier=persSSD          # operator pin: data must live here
//
// Sizes, counts and deadlines are validated (finite, positive, well-formed
// tier names); violations raise ValidationError naming the line and column
// of the offending token ("spec line 4, col 12: ...").
//
//   # a workflow (first keyword switches the mode)
//   workflow nightly-etl deadline-min=30
//   job 1 Grep 250
//   job 2 Sort 120
//   edge 1 2                            # output of job 1 feeds job 2
//
// Defaults mirror the paper's conventions: one map task per 128 MB chunk,
// reduce parallelism at a quarter of the maps.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "workload/job.hpp"
#include "workload/workflow.hpp"

namespace cast::workload {

/// Where each spec construct was declared, so downstream diagnostics
/// (cast::lint findings, ValidationError messages) can point back at the
/// offending line of the source file.
struct SpecSourceMap {
    /// job id -> 1-based line of its "job" directive.
    std::map<int, int> job_line;
    /// (from id, to id) -> 1-based line of the "edge" directive.
    std::map<std::pair<int, int>, int> edge_line;
    /// 1-based line of the "workflow" directive (0 for batch workloads).
    int workflow_line = 0;

    [[nodiscard]] std::optional<int> line_of_job(int job_id) const {
        const auto it = job_line.find(job_id);
        if (it == job_line.end()) return std::nullopt;
        return it->second;
    }
    [[nodiscard]] std::optional<int> line_of_edge(int from_id, int to_id) const {
        const auto it = edge_line.find({from_id, to_id});
        if (it == edge_line.end()) return std::nullopt;
        return it->second;
    }
};

/// What a spec file contained: exactly one of the two.
struct ParsedSpec {
    std::optional<Workload> workload;
    std::optional<Workflow> workflow;
    SpecSourceMap source;

    [[nodiscard]] bool is_workflow() const { return workflow.has_value(); }
};

/// Parse a spec from a stream. Throws ValidationError with the line and
/// column of the offending token on any syntax or semantic error.
[[nodiscard]] ParsedSpec parse_spec(std::istream& is);

/// Parse a spec file. Throws ValidationError when the file cannot be read.
[[nodiscard]] ParsedSpec parse_spec_file(const std::string& path);

/// Serialize back to the spec format (inverse of parse; used by tooling to
/// emit synthesized workloads for editing).
void write_spec(const Workload& workload, std::ostream& os);
void write_spec(const Workflow& workflow, std::ostream& os);

}  // namespace cast::workload
