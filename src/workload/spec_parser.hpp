// Plain-text workload/workflow specification parser.
//
// Lets users describe their jobs without writing C++ — the input format of
// the cast_plan CLI tool. Line-oriented, '#' comments, whitespace-split:
//
//   # a batch workload
//   job 1 Sort 120                      # input in GB; maps/reduces derived
//   job 2 Grep 300 maps=2344 reduces=500
//   job 3 Grep 300 group=1              # shares input dataset "1"
//   job 4 Grep 300 group=1
//   job 5 Join 80 tier=persSSD          # operator pin: data must live here
//
// Sizes, counts and deadlines are validated (finite, positive, well-formed
// tier names); violations raise ValidationError naming the line and field.
//
//   # a workflow (first keyword switches the mode)
//   workflow nightly-etl deadline-min=30
//   job 1 Grep 250
//   job 2 Sort 120
//   edge 1 2                            # output of job 1 feeds job 2
//
// Defaults mirror the paper's conventions: one map task per 128 MB chunk,
// reduce parallelism at a quarter of the maps.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/job.hpp"
#include "workload/workflow.hpp"

namespace cast::workload {

/// What a spec file contained: exactly one of the two.
struct ParsedSpec {
    std::optional<Workload> workload;
    std::optional<Workflow> workflow;

    [[nodiscard]] bool is_workflow() const { return workflow.has_value(); }
};

/// Parse a spec from a stream. Throws ValidationError with a line number on
/// any syntax or semantic error.
[[nodiscard]] ParsedSpec parse_spec(std::istream& is);

/// Parse a spec file. Throws ValidationError when the file cannot be read.
[[nodiscard]] ParsedSpec parse_spec_file(const std::string& path);

/// Serialize back to the spec format (inverse of parse; used by tooling to
/// emit synthesized workloads for editing).
void write_spec(const Workload& workload, std::ostream& os);
void write_spec(const Workflow& workflow, std::ostream& os);

}  // namespace cast::workload
