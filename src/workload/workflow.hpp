// Analytics workflows: DAGs of jobs with a completion deadline (§3.1.3).
//
// A workflow is a set of jobs plus directed edges "output of u feeds into
// the input of v". CAST++ plans each workflow separately, minimizing cost
// subject to the deadline (Eq. 8-10), traversing the DAG depth-first when
// generating neighbor solutions.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "workload/job.hpp"

namespace cast::workload {

struct WorkflowEdge {
    int from_job = 0;  // producer job id
    int to_job = 0;    // consumer job id
};

class Workflow {
public:
    Workflow() = default;

    Workflow(std::string name, std::vector<JobSpec> jobs, std::vector<WorkflowEdge> edges,
             Seconds deadline)
        : name_(std::move(name)),
          jobs_(std::move(jobs)),
          edges_(std::move(edges)),
          deadline_(deadline) {
        validate();
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<JobSpec>& jobs() const { return jobs_; }
    [[nodiscard]] const std::vector<WorkflowEdge>& edges() const { return edges_; }
    [[nodiscard]] Seconds deadline() const { return deadline_; }
    [[nodiscard]] std::size_t size() const { return jobs_.size(); }

    [[nodiscard]] std::size_t index_of(int job_id) const {
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            if (jobs_[i].id == job_id) return i;
        }
        throw ValidationError("workflow " + name_ + ": unknown job id " +
                              std::to_string(job_id));
    }

    /// Direct predecessors (producers) of a job, as indices into jobs().
    [[nodiscard]] std::vector<std::size_t> predecessors(std::size_t idx) const {
        CAST_EXPECTS(idx < jobs_.size());
        std::vector<std::size_t> preds;
        for (const auto& e : edges_) {
            if (index_of(e.to_job) == idx) preds.push_back(index_of(e.from_job));
        }
        return preds;
    }

    /// Direct successors (consumers) of a job, as indices into jobs().
    [[nodiscard]] std::vector<std::size_t> successors(std::size_t idx) const {
        CAST_EXPECTS(idx < jobs_.size());
        std::vector<std::size_t> succs;
        for (const auto& e : edges_) {
            if (index_of(e.from_job) == idx) succs.push_back(index_of(e.to_job));
        }
        return succs;
    }

    /// Jobs with no predecessors.
    [[nodiscard]] std::vector<std::size_t> roots() const {
        std::vector<std::size_t> result;
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            if (predecessors(i).empty()) result.push_back(i);
        }
        return result;
    }

    /// A topological order of job indices (Kahn's algorithm; stable w.r.t.
    /// job declaration order so results are deterministic).
    [[nodiscard]] std::vector<std::size_t> topological_order() const {
        const std::size_t n = jobs_.size();
        std::vector<int> indegree(n, 0);
        for (const auto& e : edges_) indegree[index_of(e.to_job)]++;
        std::vector<std::size_t> ready;
        for (std::size_t i = 0; i < n; ++i) {
            if (indegree[i] == 0) ready.push_back(i);
        }
        std::vector<std::size_t> order;
        order.reserve(n);
        while (!ready.empty()) {
            // Pop the smallest index for determinism.
            const auto it = std::min_element(ready.begin(), ready.end());
            const std::size_t u = *it;
            ready.erase(it);
            order.push_back(u);
            for (std::size_t v : successors(u)) {
                if (--indegree[v] == 0) ready.push_back(v);
            }
        }
        CAST_ENSURES_MSG(order.size() == n, "cycle detected in workflow DAG");
        return order;
    }

    /// Depth-first traversal order from the roots (the order CAST++'s
    /// neighbor generation walks the DAG, §4.3).
    [[nodiscard]] std::vector<std::size_t> dfs_order() const {
        std::vector<bool> visited(jobs_.size(), false);
        std::vector<std::size_t> order;
        order.reserve(jobs_.size());
        for (std::size_t root : roots()) dfs_visit(root, visited, order);
        // Disconnected leftovers (defensive; validate() rejects cycles so
        // every job is reachable from some root unless the graph is empty).
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            if (!visited[i]) dfs_visit(i, visited, order);
        }
        return order;
    }

    void validate() const {
        CAST_EXPECTS_MSG(!name_.empty(), "workflow needs a name");
        CAST_EXPECTS(deadline_.value() > 0.0);
        Workload(jobs_).validate();  // ids unique, specs sane
        for (const auto& e : edges_) {
            (void)index_of(e.from_job);
            (void)index_of(e.to_job);
            if (e.from_job == e.to_job) {
                throw ValidationError("workflow " + name_ + ": self-edge on job " +
                                      std::to_string(e.from_job));
            }
        }
        (void)topological_order();  // throws InvariantError on a cycle
    }

private:
    void dfs_visit(std::size_t u, std::vector<bool>& visited,
                   std::vector<std::size_t>& order) const {
        if (visited[u]) return;
        visited[u] = true;
        order.push_back(u);
        for (std::size_t v : successors(u)) dfs_visit(v, visited, order);
    }

    std::string name_;
    std::vector<JobSpec> jobs_;
    std::vector<WorkflowEdge> edges_;
    Seconds deadline_{0.0};
};

/// The paper's running example (Fig. 4a): a four-job search-engine log
/// analysis. Grep(250 G) feeds Sort(120 G); PageRank(20 G) feeds
/// Join(120 G); Sort also feeds Join. (PageRank's 386 MB of page IDs is
/// not counted into Join's input, per the figure caption.)
[[nodiscard]] Workflow make_search_log_workflow(Seconds deadline = Seconds{8000.0});

}  // namespace cast::workload
