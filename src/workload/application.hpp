// Analytics application profiles (paper Table 2).
//
// Each profile captures what the paper's offline profiling observes about
// an application class: per-phase compute rates (how fast one task can chew
// through data when storage is not the bottleneck), data selectivities
// (how much intermediate/output data each phase emits per input byte),
// iteration counts for iterative jobs, and the small-file behaviour that
// interacts with object-store request overheads. These numbers are
// calibrated so that the single-node characterization experiments of §3.1
// reproduce the paper's Figure 1 orderings; the calibration is asserted in
// tests/workload/application_test.cpp and tests/integration.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cast::workload {

enum class AppKind : int {
    kSort = 0,
    kJoin = 1,
    kGrep = 2,
    kKMeans = 3,
    kPageRank = 4,
};

inline constexpr std::array<AppKind, 5> kAllApps = {
    AppKind::kSort, AppKind::kJoin, AppKind::kGrep, AppKind::kKMeans, AppKind::kPageRank,
};

[[nodiscard]] constexpr std::size_t app_index(AppKind a) { return static_cast<std::size_t>(a); }

[[nodiscard]] std::string_view app_name(AppKind a);
[[nodiscard]] std::optional<AppKind> app_from_name(std::string_view name);

/// MapReduce execution phases (Eq. 1 has one sub-model per phase).
enum class Phase : int { kMap = 0, kShuffle = 1, kReduce = 2 };

inline constexpr std::array<Phase, 3> kAllPhases = {Phase::kMap, Phase::kShuffle,
                                                    Phase::kReduce};

[[nodiscard]] constexpr std::size_t phase_index(Phase p) { return static_cast<std::size_t>(p); }

[[nodiscard]] std::string_view phase_name(Phase p);

/// Table 2 classification of one application.
struct PhaseIntensity {
    bool map_io = false;
    bool shuffle_io = false;
    bool reduce_io = false;
    bool cpu = false;
};

class ApplicationProfile {
public:
    ApplicationProfile(AppKind kind, PhaseIntensity intensity, double map_selectivity,
                       double reduce_selectivity, int iterations,
                       MBytesPerSec map_compute_rate, MBytesPerSec shuffle_transfer_rate,
                       MBytesPerSec reduce_compute_rate, int files_per_map_task,
                       int files_per_reduce_task)
        : kind_(kind),
          intensity_(intensity),
          map_selectivity_(map_selectivity),
          reduce_selectivity_(reduce_selectivity),
          iterations_(iterations),
          map_compute_rate_(map_compute_rate),
          shuffle_transfer_rate_(shuffle_transfer_rate),
          reduce_compute_rate_(reduce_compute_rate),
          files_per_map_task_(files_per_map_task),
          files_per_reduce_task_(files_per_reduce_task) {
        CAST_EXPECTS(map_selectivity >= 0.0);
        CAST_EXPECTS(reduce_selectivity >= 0.0);
        CAST_EXPECTS(iterations >= 1);
        CAST_EXPECTS(map_compute_rate.value() > 0.0);
        CAST_EXPECTS(shuffle_transfer_rate.value() > 0.0);
        CAST_EXPECTS(reduce_compute_rate.value() > 0.0);
        CAST_EXPECTS(files_per_map_task >= 1);
        CAST_EXPECTS(files_per_reduce_task >= 1);
    }

    [[nodiscard]] AppKind kind() const { return kind_; }
    [[nodiscard]] std::string_view name() const { return app_name(kind_); }
    [[nodiscard]] PhaseIntensity intensity() const { return intensity_; }

    /// intermediate bytes = map_selectivity * input bytes.
    [[nodiscard]] double map_selectivity() const { return map_selectivity_; }
    /// output bytes = reduce_selectivity * intermediate bytes.
    [[nodiscard]] double reduce_selectivity() const { return reduce_selectivity_; }

    /// Number of map/reduce rounds (KMeans and PageRank are iterative; the
    /// framework re-reads the input and re-runs all phases each round).
    [[nodiscard]] int iterations() const { return iterations_; }

    /// Per-task CPU-side processing rate during the map phase: the rate at
    /// which one map task consumes input when I/O is infinitely fast.
    [[nodiscard]] MBytesPerSec map_compute_rate() const { return map_compute_rate_; }

    /// Per-task shuffle ceiling (network fetch + merge).
    [[nodiscard]] MBytesPerSec shuffle_transfer_rate() const { return shuffle_transfer_rate_; }

    /// Per-task CPU-side processing rate during the reduce phase.
    [[nodiscard]] MBytesPerSec reduce_compute_rate() const { return reduce_compute_rate_; }

    /// How many distinct objects one map task opens (multi-table inputs open
    /// more; drives object-store request overhead).
    [[nodiscard]] int files_per_map_task() const { return files_per_map_task_; }

    /// How many distinct objects one reduce task writes (queries like Join
    /// emit many small files; drives the GCS-connector pathology of
    /// Fig. 1b).
    [[nodiscard]] int files_per_reduce_task() const { return files_per_reduce_task_; }

    [[nodiscard]] GigaBytes intermediate_size(GigaBytes input) const {
        return GigaBytes{input.value() * map_selectivity_};
    }
    [[nodiscard]] GigaBytes output_size(GigaBytes input) const {
        return GigaBytes{input.value() * map_selectivity_ * reduce_selectivity_};
    }

    /// The built-in profile for one application class.
    [[nodiscard]] static const ApplicationProfile& of(AppKind kind);

    /// All built-in profiles, indexed by app_index().
    [[nodiscard]] static std::span<const ApplicationProfile> all();

private:
    AppKind kind_;
    PhaseIntensity intensity_;
    double map_selectivity_;
    double reduce_selectivity_;
    int iterations_;
    MBytesPerSec map_compute_rate_;
    MBytesPerSec shuffle_transfer_rate_;
    MBytesPerSec reduce_compute_rate_;
    int files_per_map_task_;
    int files_per_reduce_task_;
};

}  // namespace cast::workload
