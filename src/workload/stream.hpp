// Streaming job-set scenarios: deltas and seeded arrival/departure traces.
//
// A long-running planning service never sees the whole job set at once:
// jobs arrive, finish, and get their size estimates revised while earlier
// placements are already deployed. A JobDelta captures one such change
// between two planning steps; synthesize_stream generates a deterministic
// trace of deltas over the Facebook-derived workload (Table 4 synthesis),
// so benches and tests can replay identical churn. The incremental
// re-planner (core/incremental.hpp) consumes deltas directly; apply_delta
// is the one shared definition of how a delta maps onto a job set (and
// onto the index space a prior plan was expressed in).
#pragma once

#include <cstdint>
#include <vector>

#include "workload/facebook.hpp"
#include "workload/job.hpp"

namespace cast::workload {

/// One change to a live job set between two planning steps.
struct JobDelta {
    /// New jobs, appended after the survivors. Ids must not collide with
    /// any job already in the set.
    std::vector<JobSpec> arrivals;
    /// Ids of completed jobs, removed from the set.
    std::vector<int> departures;
    /// Runtime-drift re-estimates: replacement specs matched by id to a
    /// surviving job (same id, revised sizes/task counts).
    std::vector<JobSpec> updates;

    [[nodiscard]] bool empty() const {
        return arrivals.empty() && departures.empty() && updates.empty();
    }
    /// Changed-job count (arrivals + departures + updates) — the churn the
    /// incremental re-planner's neighborhood grows from.
    [[nodiscard]] std::size_t churn() const {
        return arrivals.size() + departures.size() + updates.size();
    }
};

/// apply_delta's result: the post-delta job set plus the index mappings an
/// incremental solver needs to carry per-job state (plan decisions) across
/// the delta.
struct DeltaApplication {
    /// Sentinel in survivor_from for jobs with no prior index (arrivals).
    static constexpr std::size_t kNoPrior = static_cast<std::size_t>(-1);

    Workload workload;
    /// new index -> prior index (kNoPrior for arrivals). Survivors keep
    /// their relative order; arrivals are appended in delta order.
    std::vector<std::size_t> survivor_from;
    /// New indices of every arrival and every updated survivor — the
    /// changed-job core of the re-planning neighborhood.
    std::vector<std::size_t> changed;
    /// Prior indices of the departed jobs (their vacated placements drive
    /// the capacity-shift side of the neighborhood).
    std::vector<std::size_t> departed;
};

/// Apply `delta` to `base`. Throws ValidationError when a departure or
/// update references an unknown id, an update targets a departing job, an
/// arrival reuses an existing id, or the same id appears twice in one
/// delta list; the resulting workload is re-validated (so e.g. an update
/// that breaks a reuse group's equal-input invariant is rejected too).
[[nodiscard]] DeltaApplication apply_delta(const Workload& base, const JobDelta& delta);

struct StreamOptions {
    int steps = 20;
    /// Per-step churn as a fraction of the live job count: churn/2 of the
    /// set departs and the same number arrives, so |arrivals| +
    /// |departures| ~= churn * n and the set size stays roughly constant.
    double churn = 0.10;
    /// Fraction of survivors whose input-size estimate drifts per step
    /// (reuse-group members are never drifted — their inputs must stay
    /// equal across the group).
    double update_fraction = 0.02;
    /// Multiplicative drift bounds on a re-estimated input size.
    double drift_lo = 0.8;
    double drift_hi = 1.25;
    /// Synthesis parameters for arriving jobs (Table 4 bins).
    SynthesisOptions synthesis;

    void validate() const {
        CAST_EXPECTS(steps >= 1);
        CAST_EXPECTS(churn > 0.0 && churn <= 1.0);
        CAST_EXPECTS(update_fraction >= 0.0 && update_fraction <= 1.0);
        CAST_EXPECTS(drift_lo > 0.0 && drift_hi >= drift_lo);
    }
};

/// Synthesize a deterministic arrival/departure/drift trace over `initial`:
/// a pure function of (initial, seed, opts). Step deltas chain — step k's
/// departures and updates reference the job set produced by applying steps
/// 0..k-1. Arrivals are drawn from fresh Table 4 syntheses with fresh ids;
/// their reuse groups are remapped so they never collide with live groups.
[[nodiscard]] std::vector<JobDelta> synthesize_stream(const Workload& initial,
                                                      std::uint64_t seed,
                                                      const StreamOptions& opts = {});

}  // namespace cast::workload
