#include "workload/workflow.hpp"

namespace cast::workload {

namespace {

using literals::operator""_GB;

JobSpec make_job(int id, std::string name, AppKind app, GigaBytes input) {
    // One map task per 128 MB HDFS-style chunk; reduce parallelism at the
    // stock Hadoop heuristic of a quarter of the map count.
    const int maps = std::max(1, static_cast<int>(input.value() / 0.128));
    const int reduces = std::max(1, maps / 4);
    return JobSpec{.id = id,
                   .name = std::move(name),
                   .app = app,
                   .input = input,
                   .map_tasks = maps,
                   .reduce_tasks = reduces,
                   .reuse_group = std::nullopt};
}

}  // namespace

Workflow make_search_log_workflow(Seconds deadline) {
    std::vector<JobSpec> jobs;
    jobs.push_back(make_job(1, "Grep-250G", AppKind::kGrep, 250.0_GB));
    jobs.push_back(make_job(2, "Pagerank-20G", AppKind::kPageRank, 20.0_GB));
    jobs.push_back(make_job(3, "Sort-120G", AppKind::kSort, 120.0_GB));
    jobs.push_back(make_job(4, "Join-120G", AppKind::kJoin, 120.0_GB));
    std::vector<WorkflowEdge> edges = {
        {.from_job = 1, .to_job = 3},  // Grep -> Sort
        {.from_job = 2, .to_job = 4},  // Pagerank -> Join
        {.from_job = 3, .to_job = 4},  // Sort -> Join
    };
    return Workflow("search-log-analysis", std::move(jobs), std::move(edges), deadline);
}

}  // namespace cast::workload
