#include "workload/facebook.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace cast::workload {

namespace {
using literals::operator""_GB;
}

const std::array<FacebookBin, 7>& facebook_bins() {
    // Table 4. The Facebook columns are the published trace distribution;
    // the workload columns are the counts the paper synthesizes (35 + 22 +
    // 16 + 13 + 7 + 4 + 3 = 100 jobs). The largest Facebook job has
    // 158,499 map tasks; the paper caps its top bin at 3,000 maps to fit
    // the 400-core cluster.
    static const std::array<FacebookBin, 7> kBins = {{
        {.bin = 1, .fb_maps_lo = 1, .fb_maps_hi = 1, .fb_jobs_fraction = 0.0,
         .fb_data_fraction = 0.0, .workload_maps = 1, .workload_jobs = 35},
        {.bin = 2, .fb_maps_lo = 1, .fb_maps_hi = 10, .fb_jobs_fraction = 0.73,
         .fb_data_fraction = 0.001, .workload_maps = 5, .workload_jobs = 22},
        {.bin = 3, .fb_maps_lo = 10, .fb_maps_hi = 10, .fb_jobs_fraction = 0.0,
         .fb_data_fraction = 0.0, .workload_maps = 10, .workload_jobs = 16},
        {.bin = 4, .fb_maps_lo = 11, .fb_maps_hi = 50, .fb_jobs_fraction = 0.13,
         .fb_data_fraction = 0.009, .workload_maps = 50, .workload_jobs = 13},
        {.bin = 5, .fb_maps_lo = 51, .fb_maps_hi = 500, .fb_jobs_fraction = 0.07,
         .fb_data_fraction = 0.045, .workload_maps = 500, .workload_jobs = 7},
        {.bin = 6, .fb_maps_lo = 501, .fb_maps_hi = 3000, .fb_jobs_fraction = 0.04,
         .fb_data_fraction = 0.165, .workload_maps = 1500, .workload_jobs = 4},
        {.bin = 7, .fb_maps_lo = 3001, .fb_maps_hi = 158499, .fb_jobs_fraction = 0.03,
         .fb_data_fraction = 0.781, .workload_maps = 3000, .workload_jobs = 3},
    }};
    return kBins;
}

namespace {

int reduce_tasks_for(int map_tasks, double reduce_ratio) {
    return std::max(1, static_cast<int>(std::llround(map_tasks * reduce_ratio)));
}

}  // namespace

Workload synthesize_facebook_workload(std::uint64_t seed, const SynthesisOptions& opts) {
    CAST_EXPECTS(opts.chunk.value() > 0.0);
    CAST_EXPECTS(opts.reuse_fraction >= 0.0 && opts.reuse_fraction <= 1.0);
    CAST_EXPECTS(opts.reuse_group_size >= 2);
    CAST_EXPECTS(!opts.app_mix.empty());
    Rng rng(seed);

    std::vector<JobSpec> jobs;
    int next_id = 1;
    for (const FacebookBin& bin : facebook_bins()) {
        for (int k = 0; k < bin.workload_jobs; ++k) {
            const AppKind app =
                opts.app_mix[static_cast<std::size_t>(next_id - 1) % opts.app_mix.size()];
            const GigaBytes input{bin.workload_maps * opts.chunk.value()};
            jobs.push_back(JobSpec{
                .id = next_id,
                .name = "fb-bin" + std::to_string(bin.bin) + "-" + std::to_string(next_id) +
                        "-" + std::string(app_name(app)),
                .app = app,
                .input = input,
                .map_tasks = bin.workload_maps,
                .reduce_tasks = reduce_tasks_for(bin.workload_maps, opts.reduce_ratio),
                .reuse_group = std::nullopt,
            });
            ++next_id;
        }
    }

    // Inject data reuse: reuse_fraction of the jobs are grouped into
    // same-input sets of reuse_group_size. Only jobs of the same bin can
    // share a dataset (equal input sizes). We draw from the data-heavy bins
    // first — the paper notes reuse matters for the jobs that dominate
    // storage cost.
    const auto target_sharing =
        static_cast<std::size_t>(std::llround(opts.reuse_fraction * jobs.size()));
    std::size_t assigned = 0;
    int next_group = 1;
    // Walk bins from largest workload_maps downward.
    std::vector<const FacebookBin*> ordered;
    for (const auto& b : facebook_bins()) ordered.push_back(&b);
    std::sort(ordered.begin(), ordered.end(), [](const FacebookBin* a, const FacebookBin* b) {
        return a->workload_maps > b->workload_maps;
    });
    for (const FacebookBin* bin : ordered) {
        if (assigned >= target_sharing) break;
        // Candidates: jobs of this bin not yet in a group.
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (jobs[i].map_tasks == bin->workload_maps && !jobs[i].reuse_group) {
                candidates.push_back(i);
            }
        }
        while (assigned + static_cast<std::size_t>(opts.reuse_group_size) <=
                   target_sharing + (opts.reuse_group_size - 1) &&
               candidates.size() >= static_cast<std::size_t>(opts.reuse_group_size) &&
               assigned < target_sharing) {
            // Reuse in production traces is dominated by *recurring* jobs:
            // the same application re-run over the same input (hourly or
            // daily instances of one pipeline stage). Group members
            // therefore share the leader's application class, not just its
            // dataset.
            std::optional<AppKind> group_app;
            for (int k = 0; k < opts.reuse_group_size; ++k) {
                const std::size_t pick = rng.below(candidates.size());
                JobSpec& job = jobs[candidates[pick]];
                job.reuse_group = next_group;
                if (!group_app) {
                    group_app = job.app;
                } else {
                    job.app = *group_app;
                    job.name = "fb-bin" + std::to_string(bin->bin) + "-" +
                               std::to_string(job.id) + "-" +
                               std::string(app_name(job.app)) + "-rerun";
                }
                candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
                ++assigned;
            }
            ++next_group;
        }
    }

    return Workload(std::move(jobs));
}

Workload synthesize_model_accuracy_workload(std::uint64_t seed) {
    // 16 modest-sized jobs totalling ~2 TB (§5.1.4). We draw sizes around
    // 128 GB (1000 maps) with mild spread, app types round-robin.
    Rng rng(seed);
    const std::array<AppKind, 4> mix = {AppKind::kSort, AppKind::kJoin, AppKind::kGrep,
                                        AppKind::kKMeans};
    std::vector<JobSpec> jobs;
    for (int i = 0; i < 16; ++i) {
        const int maps = static_cast<int>(rng.between(700, 1300));
        const GigaBytes input{maps * 0.128};
        const AppKind app = mix[static_cast<std::size_t>(i) % mix.size()];
        jobs.push_back(JobSpec{
            .id = i + 1,
            .name = "acc-" + std::to_string(i + 1) + "-" + std::string(app_name(app)),
            .app = app,
            .input = input,
            .map_tasks = maps,
            .reduce_tasks = reduce_tasks_for(maps, 0.25),
            .reuse_group = std::nullopt,
        });
    }
    return Workload(std::move(jobs));
}

std::vector<Workflow> synthesize_deadline_workflows(std::uint64_t seed) {
    // Five workflows, 31 jobs total, the longest with 9 jobs (§5.2.1).
    // Jobs are "large jobs that fully utilize the test cluster's compute
    // capacity"; deadlines are 15-40 minutes "based on the job input sizes
    // and the job types comprising each workflow". We build each workflow
    // as a chain with occasional fan-in (the shape of Fig. 4a) and set the
    // deadline proportional to the workflow's total data volume, clamped to
    // the paper's 15-40 minute band.
    Rng rng(seed);
    const std::array<int, 5> sizes = {9, 7, 6, 5, 4};
    const std::array<AppKind, 5> mix = {AppKind::kGrep, AppKind::kSort, AppKind::kJoin,
                                        AppKind::kPageRank, AppKind::kKMeans};
    std::vector<Workflow> result;
    int next_id = 1;
    for (std::size_t w = 0; w < sizes.size(); ++w) {
        std::vector<JobSpec> jobs;
        std::vector<WorkflowEdge> edges;
        double total_gb = 0.0;
        for (int k = 0; k < sizes[w]; ++k) {
            const AppKind app = mix[(w + static_cast<std::size_t>(k)) % mix.size()];
            const int maps = static_cast<int>(rng.between(450, 1200));
            const GigaBytes input{maps * 0.128};
            total_gb += input.value();
            jobs.push_back(JobSpec{
                .id = next_id,
                .name = "wf" + std::to_string(w + 1) + "-j" + std::to_string(k + 1) + "-" +
                        std::string(app_name(app)),
                .app = app,
                .input = input,
                .map_tasks = maps,
                .reduce_tasks = reduce_tasks_for(maps, 0.25),
                .reuse_group = std::nullopt,
            });
            if (k > 0) {
                edges.push_back(WorkflowEdge{.from_job = jobs[static_cast<std::size_t>(
                                                 rng.below(static_cast<std::uint64_t>(k)))]
                                                 .id,
                                             .to_job = next_id});
            }
            ++next_id;
        }
        // Deadline per the paper's recipe ("based on the job input sizes and
        // the job types comprising each workflow"): ~35% of headroom over
        // what a well-provisioned fast-tier deployment needs on the
        // 400-core cluster (~0.92 s/GB of data plus ~52 s of per-job phase
        // overhead), clamped to the paper's 15-40 minute band. Fast plans
        // can meet these; the slow tiers cannot.
        const double fast_estimate_min =
            0.0153 * total_gb + 0.86 * static_cast<double>(sizes[w]);
        const double deadline_min = std::clamp(1.45 * fast_estimate_min, 15.0, 40.0);
        result.emplace_back("deadline-wf" + std::to_string(w + 1), std::move(jobs),
                            std::move(edges), Seconds::from_minutes(deadline_min));
    }
    return result;
}

}  // namespace cast::workload
