#include "workload/application.hpp"

#include <vector>

namespace cast::workload {

std::string_view app_name(AppKind a) {
    switch (a) {
        case AppKind::kSort: return "Sort";
        case AppKind::kJoin: return "Join";
        case AppKind::kGrep: return "Grep";
        case AppKind::kKMeans: return "KMeans";
        case AppKind::kPageRank: return "PageRank";
    }
    CAST_ENSURES_MSG(false, "unreachable: bad AppKind");
}

std::optional<AppKind> app_from_name(std::string_view name) {
    for (AppKind a : kAllApps) {
        if (app_name(a) == name) return a;
    }
    return std::nullopt;
}

std::string_view phase_name(Phase p) {
    switch (p) {
        case Phase::kMap: return "map";
        case Phase::kShuffle: return "shuffle";
        case Phase::kReduce: return "reduce";
    }
    CAST_ENSURES_MSG(false, "unreachable: bad Phase");
}

namespace {

using literals::operator""_MBps;

std::vector<ApplicationProfile> build_profiles() {
    std::vector<ApplicationProfile> profiles;
    profiles.reserve(kAllApps.size());

    // Sort: shuffle-intensive (Table 2). No data reduction in the map phase
    // (§3.1.2: "there is no data reduction in the map phase and the entire
    // input size is written to intermediate files"), so intermediate and
    // output volumes equal the input and the shuffle dominates. Per-task
    // compute rates are high enough that storage is the bottleneck on every
    // tier but ephSSD.
    profiles.emplace_back(AppKind::kSort,
                          PhaseIntensity{.map_io = false, .shuffle_io = true,
                                         .reduce_io = false, .cpu = false},
                          /*map_selectivity=*/1.0, /*reduce_selectivity=*/1.0,
                          /*iterations=*/1,
                          /*map_compute_rate=*/60.0_MBps,
                          /*shuffle_transfer_rate=*/55.0_MBps,
                          /*reduce_compute_rate=*/50.0_MBps,
                          /*files_per_map_task=*/1, /*files_per_reduce_task=*/1);

    // Join: reduce-intensive query (Table 2); combines rows from multiple
    // tables (several input objects per map task) and its reduce tasks emit
    // many small files — on objStore every one pays the GCS-connector
    // request overhead, which is why Join's utility collapses there
    // (Fig. 1b).
    profiles.emplace_back(AppKind::kJoin,
                          PhaseIntensity{.map_io = false, .shuffle_io = true,
                                         .reduce_io = true, .cpu = false},
                          /*map_selectivity=*/0.5, /*reduce_selectivity=*/0.3,
                          /*iterations=*/1,
                          /*map_compute_rate=*/55.0_MBps,
                          /*shuffle_transfer_rate=*/50.0_MBps,
                          /*reduce_compute_rate=*/14.0_MBps,
                          /*files_per_map_task=*/4, /*files_per_reduce_task=*/96);

    // Grep: map-intensive (Table 2); performance "solely depends on
    // sequential I/O throughput of the storage during the map phase"
    // (§3.1.2). Tiny selectivity, trivial shuffle/reduce, and a per-task
    // scan rate well above any tier's fair share so the map phase is always
    // I/O-bound.
    profiles.emplace_back(AppKind::kGrep,
                          PhaseIntensity{.map_io = true, .shuffle_io = false,
                                         .reduce_io = false, .cpu = false},
                          /*map_selectivity=*/0.001, /*reduce_selectivity=*/1.0,
                          /*iterations=*/1,
                          /*map_compute_rate=*/400.0_MBps,
                          /*shuffle_transfer_rate=*/50.0_MBps,
                          /*reduce_compute_rate=*/50.0_MBps,
                          /*files_per_map_task=*/1, /*files_per_reduce_task=*/1);

    // KMeans: CPU-intensive iterative clustering (Table 2); spends its time
    // computing distances, re-reading the input every iteration, and emits
    // only centroid updates. Its per-task compute rate sits *below* even
    // persHDD's fair share, so persSSD and persHDD perform alike and the
    // cheapest tier wins on utility (Fig. 1d).
    profiles.emplace_back(AppKind::kKMeans,
                          PhaseIntensity{.map_io = false, .shuffle_io = false,
                                         .reduce_io = false, .cpu = true},
                          /*map_selectivity=*/0.001, /*reduce_selectivity=*/1.0,
                          /*iterations=*/5,
                          /*map_compute_rate=*/8.0_MBps,
                          /*shuffle_transfer_rate=*/50.0_MBps,
                          /*reduce_compute_rate=*/20.0_MBps,
                          /*files_per_map_task=*/1, /*files_per_reduce_task=*/1);

    // PageRank: CPU-intensive iterative graph computation; "exhibits the
    // same behavior as KMeans" (§3.1.3 footnote 2). Output is the rank
    // vector (the paper's 20 GB run emits 386 MB ≈ 1.9% of the input).
    profiles.emplace_back(AppKind::kPageRank,
                          PhaseIntensity{.map_io = false, .shuffle_io = false,
                                         .reduce_io = false, .cpu = true},
                          /*map_selectivity=*/0.05, /*reduce_selectivity=*/0.4,
                          /*iterations=*/5,
                          /*map_compute_rate=*/10.0_MBps,
                          /*shuffle_transfer_rate=*/50.0_MBps,
                          /*reduce_compute_rate=*/25.0_MBps,
                          /*files_per_map_task=*/1, /*files_per_reduce_task=*/1);

    return profiles;
}

const std::vector<ApplicationProfile>& profiles() {
    static const std::vector<ApplicationProfile> kProfiles = build_profiles();
    return kProfiles;
}

}  // namespace

const ApplicationProfile& ApplicationProfile::of(AppKind kind) {
    const auto& all = profiles();
    const std::size_t idx = app_index(kind);
    CAST_EXPECTS(idx < all.size());
    const ApplicationProfile& p = all[idx];
    CAST_ENSURES(p.kind() == kind);
    return p;
}

std::span<const ApplicationProfile> ApplicationProfile::all() { return profiles(); }

}  // namespace cast::workload
