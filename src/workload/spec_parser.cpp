#include "workload/spec_parser.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "cloud/storage.hpp"

namespace cast::workload {

namespace {

/// One whitespace-delimited token plus the 1-based column where it starts
/// in the raw (uncommented) source line, for error messages.
struct Token {
    std::string text;
    int column = 0;
};

[[noreturn]] void fail(int line_no, int column, const std::string& what) {
    std::string where = "spec line " + std::to_string(line_no);
    if (column > 0) where += ", col " + std::to_string(column);
    throw ValidationError(where + ": " + what);
}

[[noreturn]] void fail_at(int line_no, const Token& tok, const std::string& what) {
    fail(line_no, tok.column, what);
}

/// Split a raw line into tokens with column positions, dropping a trailing
/// "# comment".
std::vector<Token> tokenize(const std::string& raw) {
    std::string s = raw;
    const auto hash = s.find('#');
    if (hash != std::string::npos) s.erase(hash);
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < s.size()) {
        if (s[i] == ' ' || s[i] == '\t' || s[i] == '\r') {
            ++i;
            continue;
        }
        const std::size_t start = i;
        while (i < s.size() && s[i] != ' ' && s[i] != '\t' && s[i] != '\r') ++i;
        tokens.push_back(Token{s.substr(start, i - start), static_cast<int>(start) + 1});
    }
    return tokens;
}

/// Parse "key=value" into (key, value); returns false for plain tokens.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

/// Column of the value part of a "key=value" token.
int value_column(const Token& tok, const std::string& key) {
    return tok.column + static_cast<int>(key.size()) + 1;
}

double parse_double(const std::string& value, int line_no, int column,
                    const std::string& what) {
    std::size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &consumed);
    } catch (const std::exception&) {
        fail(line_no, column, "bad " + what + " '" + value + "'");
    }
    if (consumed != value.size()) fail(line_no, column, "bad " + what + " '" + value + "'");
    // std::stod happily parses "nan" and "inf"; neither is a meaningful
    // size, count or deadline anywhere in the spec format.
    if (!std::isfinite(v)) {
        fail(line_no, column, what + " must be finite, got '" + value + "'");
    }
    return v;
}

int parse_int(const std::string& value, int line_no, int column, const std::string& what) {
    const double v = parse_double(value, line_no, column, what);
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v) fail(line_no, column, what + " must be an integer");
    return i;
}

JobSpec parse_job_line(const std::vector<Token>& tokens, int line_no) {
    if (tokens.size() < 4) {
        fail(line_no, tokens.front().column,
             "job needs: job <id> <app> <input-GB> [options]");
    }
    const Token& id_tok = tokens[1];
    const Token& app_tok = tokens[2];
    const Token& gb_tok = tokens[3];

    JobSpec job;
    job.id = parse_int(id_tok.text, line_no, id_tok.column, "job id");
    const auto app = app_from_name(app_tok.text);
    if (!app) fail_at(line_no, app_tok, "unknown application '" + app_tok.text + "'");
    job.app = *app;
    job.input = GigaBytes{parse_double(gb_tok.text, line_no, gb_tok.column, "input size")};
    if (job.input.value() <= 0.0) fail_at(line_no, gb_tok, "input size must be positive");

    // Paper defaults: one map per 128 MB chunk, reduces = maps / 4.
    job.map_tasks = std::max(1, static_cast<int>(job.input.value() / 0.128));
    job.reduce_tasks = std::max(1, job.map_tasks / 4);
    job.name = std::string(app_name(job.app)) + "-" + std::to_string(job.id);

    for (std::size_t t = 4; t < tokens.size(); ++t) {
        const Token& tok = tokens[t];
        std::string key;
        std::string value;
        if (!split_kv(tok.text, key, value)) {
            fail_at(line_no, tok, "unexpected token '" + tok.text + "'");
        }
        const int vcol = value_column(tok, key);
        if (key == "maps") {
            job.map_tasks = parse_int(value, line_no, vcol, "maps");
            if (job.map_tasks < 1) fail(line_no, vcol, "maps must be positive");
        } else if (key == "reduces") {
            job.reduce_tasks = parse_int(value, line_no, vcol, "reduces");
            if (job.reduce_tasks < 1) fail(line_no, vcol, "reduces must be positive");
        } else if (key == "group") {
            job.reuse_group = parse_int(value, line_no, vcol, "group");
        } else if (key == "name") {
            job.name = value;
        } else if (key == "tier") {
            const auto tier = cloud::tier_from_name(value);
            if (!tier) {
                fail(line_no, vcol,
                     "malformed tier '" + value +
                         "' for field 'tier' (expected ephSSD, persSSD, "
                         "persHDD or objStore)");
            }
            job.pinned_tier = *tier;
        } else {
            fail_at(line_no, tok, "unknown option '" + key + "'");
        }
    }
    try {
        job.validate();
    } catch (const std::exception& e) {
        fail(line_no, tokens.front().column, e.what());
    }
    return job;
}

}  // namespace

ParsedSpec parse_spec(std::istream& is) {
    std::string raw;
    int line_no = 0;

    bool is_workflow = false;
    std::string wf_name;
    Seconds wf_deadline{0.0};
    std::vector<JobSpec> jobs;
    std::vector<WorkflowEdge> edges;
    SpecSourceMap source;
    bool saw_anything = false;

    while (std::getline(is, raw)) {
        ++line_no;
        const std::vector<Token> tokens = tokenize(raw);
        if (tokens.empty()) continue;
        const Token& keyword = tokens.front();

        if (keyword.text == "workflow") {
            if (saw_anything) {
                fail_at(line_no, keyword, "'workflow' must be the first directive");
            }
            is_workflow = true;
            if (tokens.size() < 2) fail_at(line_no, keyword, "workflow needs a name");
            wf_name = tokens[1].text;
            for (std::size_t t = 2; t < tokens.size(); ++t) {
                std::string key;
                std::string value;
                if (!split_kv(tokens[t].text, key, value) || key != "deadline-min") {
                    fail_at(line_no, tokens[t], "expected deadline-min=<minutes>");
                }
                wf_deadline = Seconds::from_minutes(parse_double(
                    value, line_no, value_column(tokens[t], key), "deadline"));
            }
            if (wf_deadline.value() <= 0.0) {
                fail_at(line_no, keyword, "workflow needs deadline-min=...");
            }
            source.workflow_line = line_no;
            saw_anything = true;
        } else if (keyword.text == "job") {
            jobs.push_back(parse_job_line(tokens, line_no));
            source.job_line.emplace(jobs.back().id, line_no);
            saw_anything = true;
        } else if (keyword.text == "edge") {
            if (!is_workflow) {
                fail_at(line_no, keyword, "'edge' is only valid inside a workflow");
            }
            if (tokens.size() < 3) {
                fail_at(line_no, keyword, "edge needs: edge <from-id> <to-id>");
            }
            const int from =
                parse_int(tokens[1].text, line_no, tokens[1].column, "edge endpoint");
            const int to =
                parse_int(tokens[2].text, line_no, tokens[2].column, "edge endpoint");
            edges.push_back(WorkflowEdge{from, to});
            source.edge_line.emplace(std::make_pair(from, to), line_no);
            saw_anything = true;
        } else {
            fail_at(line_no, keyword, "unknown directive '" + keyword.text + "'");
        }
    }
    if (jobs.empty()) fail(line_no, 0, "spec contains no jobs");

    ParsedSpec result;
    try {
        if (is_workflow) {
            result.workflow = Workflow(wf_name, std::move(jobs), std::move(edges), wf_deadline);
        } else {
            result.workload = Workload(std::move(jobs));
        }
    } catch (const std::exception& e) {
        throw ValidationError(std::string("spec: ") + e.what());
    }
    result.source = std::move(source);
    return result;
}

ParsedSpec parse_spec_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw ValidationError("cannot open spec file: " + path);
    return parse_spec(file);
}

namespace {

void write_job(const JobSpec& job, std::ostream& os) {
    os << "job " << job.id << ' ' << app_name(job.app) << ' ' << job.input.value()
       << " maps=" << job.map_tasks << " reduces=" << job.reduce_tasks;
    if (job.reuse_group) os << " group=" << *job.reuse_group;
    if (job.pinned_tier) os << " tier=" << cloud::tier_name(*job.pinned_tier);
    if (!job.name.empty()) os << " name=" << job.name;
    os << '\n';
}

}  // namespace

void write_spec(const Workload& workload, std::ostream& os) {
    os << "# cast workload spec (" << workload.size() << " jobs)\n";
    for (const auto& job : workload.jobs()) write_job(job, os);
}

void write_spec(const Workflow& workflow, std::ostream& os) {
    os << "workflow " << workflow.name()
       << " deadline-min=" << workflow.deadline().minutes() << '\n';
    for (const auto& job : workflow.jobs()) write_job(job, os);
    for (const auto& edge : workflow.edges()) {
        os << "edge " << edge.from_job << ' ' << edge.to_job << '\n';
    }
}

}  // namespace cast::workload
