#include "workload/spec_parser.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "cloud/storage.hpp"

namespace cast::workload {

namespace {

[[noreturn]] void fail(int line_no, const std::string& what) {
    throw ValidationError("spec line " + std::to_string(line_no) + ": " + what);
}

/// Strip a trailing "# comment" and surrounding whitespace.
std::string strip(const std::string& raw) {
    std::string s = raw;
    const auto hash = s.find('#');
    if (hash != std::string::npos) s.erase(hash);
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos) return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

/// Parse "key=value" into (key, value); returns false for plain tokens.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

double parse_double(const std::string& value, int line_no, const std::string& what) {
    std::size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &consumed);
    } catch (const std::exception&) {
        fail(line_no, "bad " + what + " '" + value + "'");
    }
    if (consumed != value.size()) fail(line_no, "bad " + what + " '" + value + "'");
    // std::stod happily parses "nan" and "inf"; neither is a meaningful
    // size, count or deadline anywhere in the spec format.
    if (!std::isfinite(v)) fail(line_no, what + " must be finite, got '" + value + "'");
    return v;
}

int parse_int(const std::string& value, int line_no, const std::string& what) {
    const double v = parse_double(value, line_no, what);
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v) fail(line_no, what + " must be an integer");
    return i;
}

JobSpec parse_job_line(std::istringstream& tokens, int line_no) {
    std::string id_tok;
    std::string app_tok;
    std::string gb_tok;
    tokens >> id_tok >> app_tok >> gb_tok;
    if (gb_tok.empty()) fail(line_no, "job needs: job <id> <app> <input-GB> [options]");

    JobSpec job;
    job.id = parse_int(id_tok, line_no, "job id");
    const auto app = app_from_name(app_tok);
    if (!app) fail(line_no, "unknown application '" + app_tok + "'");
    job.app = *app;
    job.input = GigaBytes{parse_double(gb_tok, line_no, "input size")};
    if (job.input.value() <= 0.0) fail(line_no, "input size must be positive");

    // Paper defaults: one map per 128 MB chunk, reduces = maps / 4.
    job.map_tasks = std::max(1, static_cast<int>(job.input.value() / 0.128));
    job.reduce_tasks = std::max(1, job.map_tasks / 4);
    job.name = std::string(app_name(job.app)) + "-" + std::to_string(job.id);

    std::string token;
    while (tokens >> token) {
        std::string key;
        std::string value;
        if (!split_kv(token, key, value)) fail(line_no, "unexpected token '" + token + "'");
        if (key == "maps") {
            job.map_tasks = parse_int(value, line_no, "maps");
            if (job.map_tasks < 1) fail(line_no, "maps must be positive");
        } else if (key == "reduces") {
            job.reduce_tasks = parse_int(value, line_no, "reduces");
            if (job.reduce_tasks < 1) fail(line_no, "reduces must be positive");
        } else if (key == "group") {
            job.reuse_group = parse_int(value, line_no, "group");
        } else if (key == "name") {
            job.name = value;
        } else if (key == "tier") {
            const auto tier = cloud::tier_from_name(value);
            if (!tier) {
                fail(line_no, "malformed tier '" + value +
                                  "' for field 'tier' (expected ephSSD, persSSD, "
                                  "persHDD or objStore)");
            }
            job.pinned_tier = *tier;
        } else {
            fail(line_no, "unknown option '" + key + "'");
        }
    }
    try {
        job.validate();
    } catch (const std::exception& e) {
        fail(line_no, e.what());
    }
    return job;
}

}  // namespace

ParsedSpec parse_spec(std::istream& is) {
    std::string raw;
    int line_no = 0;

    bool is_workflow = false;
    std::string wf_name;
    Seconds wf_deadline{0.0};
    std::vector<JobSpec> jobs;
    std::vector<WorkflowEdge> edges;
    bool saw_anything = false;

    while (std::getline(is, raw)) {
        ++line_no;
        const std::string line = strip(raw);
        if (line.empty()) continue;
        std::istringstream tokens(line);
        std::string keyword;
        tokens >> keyword;

        if (keyword == "workflow") {
            if (saw_anything) fail(line_no, "'workflow' must be the first directive");
            is_workflow = true;
            tokens >> wf_name;
            if (wf_name.empty()) fail(line_no, "workflow needs a name");
            std::string token;
            while (tokens >> token) {
                std::string key;
                std::string value;
                if (!split_kv(token, key, value) || key != "deadline-min") {
                    fail(line_no, "expected deadline-min=<minutes>");
                }
                wf_deadline = Seconds::from_minutes(
                    parse_double(value, line_no, "deadline"));
            }
            if (wf_deadline.value() <= 0.0) fail(line_no, "workflow needs deadline-min=...");
            saw_anything = true;
        } else if (keyword == "job") {
            jobs.push_back(parse_job_line(tokens, line_no));
            saw_anything = true;
        } else if (keyword == "edge") {
            if (!is_workflow) fail(line_no, "'edge' is only valid inside a workflow");
            std::string from;
            std::string to;
            tokens >> from >> to;
            if (to.empty()) fail(line_no, "edge needs: edge <from-id> <to-id>");
            edges.push_back(WorkflowEdge{parse_int(from, line_no, "edge endpoint"),
                                         parse_int(to, line_no, "edge endpoint")});
            saw_anything = true;
        } else {
            fail(line_no, "unknown directive '" + keyword + "'");
        }
    }
    if (jobs.empty()) fail(line_no, "spec contains no jobs");

    ParsedSpec result;
    try {
        if (is_workflow) {
            result.workflow = Workflow(wf_name, std::move(jobs), std::move(edges), wf_deadline);
        } else {
            result.workload = Workload(std::move(jobs));
        }
    } catch (const std::exception& e) {
        throw ValidationError(std::string("spec: ") + e.what());
    }
    return result;
}

ParsedSpec parse_spec_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw ValidationError("cannot open spec file: " + path);
    return parse_spec(file);
}

namespace {

void write_job(const JobSpec& job, std::ostream& os) {
    os << "job " << job.id << ' ' << app_name(job.app) << ' ' << job.input.value()
       << " maps=" << job.map_tasks << " reduces=" << job.reduce_tasks;
    if (job.reuse_group) os << " group=" << *job.reuse_group;
    if (job.pinned_tier) os << " tier=" << cloud::tier_name(*job.pinned_tier);
    if (!job.name.empty()) os << " name=" << job.name;
    os << '\n';
}

}  // namespace

void write_spec(const Workload& workload, std::ostream& os) {
    os << "# cast workload spec (" << workload.size() << " jobs)\n";
    for (const auto& job : workload.jobs()) write_job(job, os);
}

void write_spec(const Workflow& workflow, std::ostream& os) {
    os << "workflow " << workflow.name()
       << " deadline-min=" << workflow.deadline().minutes() << '\n';
    for (const auto& job : workflow.jobs()) write_job(job, os);
    for (const auto& edge : workflow.edges()) {
        os << "edge " << edge.from_job << ' ' << edge.to_job << '\n';
    }
}

}  // namespace cast::workload
