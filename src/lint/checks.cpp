#include "lint/checks.hpp"

#include <map>

namespace cast::lint {

namespace {

std::string tier_str(cloud::StorageTier t) { return std::string(cloud::tier_name(t)); }

}  // namespace

void check_tier_pins(const std::vector<workload::JobSpec>& jobs,
                     const std::vector<core::PlacementDecision>& decisions,
                     std::vector<Finding>& out) {
    const std::size_t n = std::min(jobs.size(), decisions.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto& job = jobs[i];
        if (!job.pinned_tier || *job.pinned_tier == decisions[i].tier) continue;
        out.push_back(Finding{
            .rule = "L014",
            .severity = Severity::kError,
            .subject = "job '" + job.name + "'",
            .message = "job '" + job.name + "' is pinned to " +
                       tier_str(*job.pinned_tier) + " but the plan places it on " +
                       tier_str(decisions[i].tier),
            .fix_hint = "move the job back to " + tier_str(*job.pinned_tier) +
                        " or drop the tier= pin from the spec",
        });
    }
}

void check_reuse_pin_conflicts(const std::vector<workload::JobSpec>& jobs,
                               Severity severity, std::vector<Finding>& out) {
    // group id -> (index of first pinned member, its tier)
    std::map<int, std::pair<std::size_t, cloud::StorageTier>> pinned;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto& job = jobs[i];
        if (!job.reuse_group || !job.pinned_tier) continue;
        const auto [it, inserted] = pinned.emplace(*job.reuse_group,
                                                   std::make_pair(i, *job.pinned_tier));
        if (inserted || it->second.second == *job.pinned_tier) continue;
        out.push_back(Finding{
            .rule = "L005",
            .severity = severity,
            .subject = "reuse group " + std::to_string(*job.reuse_group),
            .message = "reuse group " + std::to_string(*job.reuse_group) + " pins '" +
                       jobs[it->second.first].name + "' to " +
                       tier_str(it->second.second) + " but '" + job.name + "' to " +
                       tier_str(*job.pinned_tier) +
                       " (Eq. 7 co-locates the group on one tier)",
            .fix_hint = "make every pinned member of the group agree on one tier",
        });
    }
}

void check_reuse_group_split(const std::vector<workload::JobSpec>& jobs,
                             const std::vector<core::PlacementDecision>& decisions,
                             std::vector<Finding>& out) {
    // group id -> (index of first member, its planned tier)
    std::map<int, std::pair<std::size_t, cloud::StorageTier>> first;
    const std::size_t n = std::min(jobs.size(), decisions.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto& job = jobs[i];
        if (!job.reuse_group) continue;
        const auto [it, inserted] =
            first.emplace(*job.reuse_group, std::make_pair(i, decisions[i].tier));
        if (inserted || it->second.second == decisions[i].tier) continue;
        out.push_back(Finding{
            .rule = "L015",
            .severity = Severity::kError,
            .subject = "reuse group " + std::to_string(*job.reuse_group),
            .message = "plan splits reuse group " + std::to_string(*job.reuse_group) +
                       " across tiers: '" + jobs[it->second.first].name + "' on " +
                       tier_str(it->second.second) + " but '" + job.name + "' on " +
                       tier_str(decisions[i].tier) + " (violates Eq. 7)",
            .fix_hint = "place every member of the group on one tier",
        });
    }
}

}  // namespace cast::lint
