#include "lint/finding.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace cast::lint {

std::string_view severity_name(Severity s) {
    switch (s) {
        case Severity::kInfo: return "info";
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    CAST_ENSURES_MSG(false, "unreachable: bad Severity");
}

std::string Finding::format() const {
    std::string out = std::string(severity_name(severity)) + " " + rule;
    if (!subject.empty()) out += " [" + subject + "]";
    if (line) out += " (line " + std::to_string(*line) + ")";
    out += ": " + message;
    if (!fix_hint.empty()) out += ". hint: " + fix_hint;
    return out;
}

Severity Report::max_severity() const {
    Severity max = Severity::kInfo;
    for (const auto& f : findings) max = std::max(max, f.severity);
    return max;
}

std::size_t Report::count(Severity s) const {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [s](const Finding& f) { return f.severity == s; }));
}

std::vector<const Finding*> Report::at(Severity s) const {
    std::vector<const Finding*> out;
    for (const auto& f : findings) {
        if (f.severity == s) out.push_back(&f);
    }
    return out;
}

void Report::merge(Report other) {
    findings.insert(findings.end(), std::make_move_iterator(other.findings.begin()),
                    std::make_move_iterator(other.findings.end()));
}

void Report::write_text(std::ostream& os) const {
    for (Severity s : {Severity::kError, Severity::kWarning, Severity::kInfo}) {
        for (const Finding* f : at(s)) os << f->format() << "\n";
    }
    os << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
       << " warning(s), " << count(Severity::kInfo) << " note(s)\n";
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static constexpr char kHex[] = "0123456789abcdef";
                    os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

}  // namespace

void Report::write_json(std::ostream& os, const std::string& source) const {
    os << "{";
    if (!source.empty()) {
        os << "\"source\": ";
        write_json_string(os, source);
        os << ", ";
    }
    os << "\"errors\": " << count(Severity::kError)
       << ", \"warnings\": " << count(Severity::kWarning) << ", \"findings\": [";
    bool first = true;
    for (Severity s : {Severity::kError, Severity::kWarning, Severity::kInfo}) {
        for (const Finding* f : at(s)) {
            if (!first) os << ", ";
            first = false;
            os << "{\"rule\": ";
            write_json_string(os, f->rule);
            os << ", \"severity\": ";
            write_json_string(os, severity_name(f->severity));
            os << ", \"subject\": ";
            write_json_string(os, f->subject);
            os << ", \"message\": ";
            write_json_string(os, f->message);
            if (!f->fix_hint.empty()) {
                os << ", \"fix_hint\": ";
                write_json_string(os, f->fix_hint);
            }
            if (f->line) os << ", \"line\": " << *f->line;
            os << "}";
        }
    }
    os << "]}\n";
}

void demote(Report& report, std::string_view rule, Severity severity) {
    for (auto& f : report.findings) {
        if (f.rule == rule && f.severity > severity) f.severity = severity;
    }
}

void enforce(const Report& report) {
    if (report.ok()) return;
    std::string what = "lint rejected the input:";
    for (const Finding* f : report.at(Severity::kError)) {
        what += "\n  " + f->format();
    }
    throw ValidationError(what);
}

}  // namespace cast::lint
