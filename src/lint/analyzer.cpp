#include "lint/analyzer.hpp"

namespace cast::lint {

namespace {

/// Fill catalog from the model set when the caller provided only models.
void complete(LintInput& input, const LintContext& ctx) {
    input.catalog = ctx.catalog;
    input.models = ctx.models;
    input.reuse_aware = ctx.reuse_aware;
    input.source = ctx.source;
    if (input.catalog == nullptr && input.models != nullptr) {
        input.catalog = &input.models->catalog();
    }
}

}  // namespace

Report Analyzer::run(const LintInput& input) const {
    Report report;
    for (const auto& rule : rules_) rule->run(input, report.findings);
    return report;
}

const Analyzer& Analyzer::standard() {
    static const Analyzer instance;
    return instance;
}

Report lint_workload(const workload::Workload& workload, const LintContext& ctx) {
    LintInput input;
    input.jobs = &workload.jobs();
    complete(input, ctx);
    return Analyzer::standard().run(input);
}

Report lint_workload_plan(const workload::Workload& workload, const core::TieringPlan& plan,
                          const LintContext& ctx) {
    LintInput input;
    input.jobs = &workload.jobs();
    input.decisions = &plan.decisions();
    complete(input, ctx);
    return Analyzer::standard().run(input);
}

Report lint_workflow(const workload::Workflow& workflow, const LintContext& ctx) {
    LintInput input;
    input.jobs = &workflow.jobs();
    input.edges = &workflow.edges();
    input.deadline = workflow.deadline();
    input.workflow_name = workflow.name();
    complete(input, ctx);
    return Analyzer::standard().run(input);
}

Report lint_workflow_plan(const workload::Workflow& workflow,
                          const std::vector<core::PlacementDecision>& decisions,
                          const LintContext& ctx) {
    LintInput input;
    input.jobs = &workflow.jobs();
    input.edges = &workflow.edges();
    input.deadline = workflow.deadline();
    input.workflow_name = workflow.name();
    input.decisions = &decisions;
    complete(input, ctx);
    return Analyzer::standard().run(input);
}

Report lint_catalog(const cloud::StorageCatalog& catalog) {
    LintInput input;
    input.catalog = &catalog;
    return Analyzer::standard().run(input);
}

Report lint_spec(const workload::ParsedSpec& spec, const LintContext& ctx) {
    LintContext with_source = ctx;
    with_source.source = &spec.source;
    if (spec.is_workflow()) {
        return lint_workflow(*spec.workflow, with_source);
    }
    CAST_EXPECTS_MSG(spec.workload.has_value(), "parsed spec holds neither kind");
    return lint_workload(*spec.workload, with_source);
}

}  // namespace cast::lint
