// The cast::lint Analyzer: runs a rule set over specs, catalogs, and plans.
//
// Three consumption styles, all over the same rules:
//   * library: lint_workload(...)/lint_workflow(...)/lint_catalog(...)
//     return a Report the caller inspects;
//   * pre-solve/pre-deploy hooks: the solvers and the Deployer run the
//     relevant entry point and enforce() it — error findings reject the
//     input before any search or deployment spends time on it, warnings
//     ride along into reports;
//   * CLI: tools/cast_lint parses spec files and prints text or JSON.
#pragma once

#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "lint/rules.hpp"

namespace cast::lint {

/// Optional surroundings for a lint run. Everything may be null; more
/// context enables more rules (L009-L011, L017, L018 need catalog/models).
struct LintContext {
    const cloud::StorageCatalog* catalog = nullptr;
    const model::PerfModelSet* models = nullptr;
    /// Eq. 7 reuse constraints active (CAST++ planning)?
    bool reuse_aware = false;
    /// Source locations when the input came from a parsed spec file.
    const workload::SpecSourceMap* source = nullptr;
};

class Analyzer {
public:
    /// Analyzer over the standard L001..L018 rule set.
    Analyzer() : Analyzer(standard_rules()) {}
    explicit Analyzer(std::vector<std::unique_ptr<Rule>> rules)
        : rules_(std::move(rules)) {}

    [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }

    /// Run every rule over the input; findings arrive in rule-ID order.
    [[nodiscard]] Report run(const LintInput& input) const;

    /// Shared immutable instance with the standard rules (the hooks use
    /// this to avoid rebuilding the rule set per solve).
    [[nodiscard]] static const Analyzer& standard();

private:
    std::vector<std::unique_ptr<Rule>> rules_;
};

/// Lint a batch workload (plus whatever the context provides).
[[nodiscard]] Report lint_workload(const workload::Workload& workload,
                                   const LintContext& ctx = {});

/// Lint a batch workload together with a tiering plan for it.
[[nodiscard]] Report lint_workload_plan(const workload::Workload& workload,
                                        const core::TieringPlan& plan,
                                        const LintContext& ctx = {});

/// Lint a workflow (DAG rules plus the L009 deadline lower bound when the
/// context carries models).
[[nodiscard]] Report lint_workflow(const workload::Workflow& workflow,
                                   const LintContext& ctx = {});

/// Lint a workflow together with per-stage placement decisions.
[[nodiscard]] Report lint_workflow_plan(const workload::Workflow& workflow,
                                        const std::vector<core::PlacementDecision>& decisions,
                                        const LintContext& ctx = {});

/// Lint a storage catalog on its own (L010/L011).
[[nodiscard]] Report lint_catalog(const cloud::StorageCatalog& catalog);

/// Lint a parsed spec file (workload or workflow), attributing findings to
/// source lines via the spec's source map.
[[nodiscard]] Report lint_spec(const workload::ParsedSpec& spec, const LintContext& ctx = {});

}  // namespace cast::lint
