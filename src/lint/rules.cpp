#include "lint/rules.hpp"

#include <array>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "lint/checks.hpp"
#include "model/mrcute.hpp"

namespace cast::lint {

namespace {

using cloud::StorageTier;
using cloud::tier_index;
using workload::JobSpec;

std::string tier_str(StorageTier t) { return std::string(cloud::tier_name(t)); }

std::optional<int> job_line(const LintInput& in, const JobSpec& job) {
    if (in.source == nullptr) return std::nullopt;
    return in.source->line_of_job(job.id);
}

std::optional<int> edge_line(const LintInput& in, const workload::WorkflowEdge& e) {
    if (in.source == nullptr) return std::nullopt;
    return in.source->line_of_edge(e.from_job, e.to_job);
}

// --- L001: job sizes/counts finite and positive. -------------------------

void run_l001(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr) return;
    for (const auto& job : *in.jobs) {
        std::string what;
        if (!std::isfinite(job.input.value())) {
            what = "input size is not finite";
        } else if (job.input.value() <= 0.0) {
            what = "input size must be positive, got " + std::to_string(job.input.value()) +
                   " GB";
        } else if (job.map_tasks < 1) {
            what = "needs at least one map task, got " + std::to_string(job.map_tasks);
        } else if (job.reduce_tasks < 1) {
            what = "needs at least one reduce task, got " + std::to_string(job.reduce_tasks);
        } else {
            continue;
        }
        out.push_back(Finding{
            .rule = "L001",
            .severity = Severity::kError,
            .subject = "job '" + job.name + "'",
            .message = "job '" + job.name + "': " + what,
            .fix_hint = "give the job a positive input size and task counts >= 1",
            .line = job_line(in, job),
        });
    }
}

// --- L002: magnitudes within plausible operating ranges. ------------------

void run_l002(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr) return;
    constexpr double kMaxPlausibleInputGb = 1e5;   // 100 TB on a small cluster
    constexpr double kMinSplitGb = 0.001;          // 1 MB per map task
    constexpr double kMaxSplitGb = 10.0;           // 10 GB per map task
    for (const auto& job : *in.jobs) {
        if (!std::isfinite(job.input.value()) || job.input.value() <= 0.0 ||
            job.map_tasks < 1) {
            continue;  // L001 territory
        }
        if (job.input.value() > kMaxPlausibleInputGb) {
            out.push_back(Finding{
                .rule = "L002",
                .severity = Severity::kWarning,
                .subject = "job '" + job.name + "'",
                .message = "job '" + job.name + "' declares " +
                           std::to_string(job.input.value()) +
                           " GB of input, far beyond the paper's operating range",
                .fix_hint = "check the unit: sizes are GB, not MB or bytes",
                .line = job_line(in, job),
            });
        }
        const double split = job.input.value() / job.map_tasks;
        if (split < kMinSplitGb || split > kMaxSplitGb) {
            out.push_back(Finding{
                .rule = "L002",
                .severity = Severity::kWarning,
                .subject = "job '" + job.name + "'",
                .message = "job '" + job.name + "' gives each map task " +
                           std::to_string(split * 1024.0) +
                           " MB of input, outside the plausible 1 MB..10 GB split range",
                .fix_hint = "adjust maps= so per-task splits land near the 128 MB default",
                .line = job_line(in, job),
            });
        }
    }
}

// --- L003: job ids unique. ------------------------------------------------

void run_l003(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr) return;
    std::map<int, const JobSpec*> by_id;
    for (const auto& job : *in.jobs) {
        const auto [it, inserted] = by_id.emplace(job.id, &job);
        if (inserted) continue;
        out.push_back(Finding{
            .rule = "L003",
            .severity = Severity::kError,
            .subject = "job '" + job.name + "'",
            .message = "duplicate job id " + std::to_string(job.id) + ": '" +
                       it->second->name + "' and '" + job.name + "'",
            .fix_hint = "give every job a distinct id",
            .line = job_line(in, job),
        });
    }
}

// --- L004: reuse-group members share one input size. ----------------------

void run_l004(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr) return;
    std::map<int, const JobSpec*> first;
    for (const auto& job : *in.jobs) {
        if (!job.reuse_group) continue;
        const auto [it, inserted] = first.emplace(*job.reuse_group, &job);
        if (inserted || approx_equal(it->second->input.value(), job.input.value())) {
            continue;
        }
        out.push_back(Finding{
            .rule = "L004",
            .severity = Severity::kError,
            .subject = "reuse group " + std::to_string(*job.reuse_group),
            .message = "reuse group " + std::to_string(*job.reuse_group) +
                       " members disagree on input size: '" + it->second->name + "' has " +
                       std::to_string(it->second->input.value()) + " GB but '" + job.name +
                       "' has " + std::to_string(job.input.value()) +
                       " GB (a reuse group shares one dataset)",
            .fix_hint = "make the shared-input jobs declare identical sizes, or split the "
                        "group",
            .line = job_line(in, job),
        });
    }
}

// --- L005: reuse-group tier pins agree (shared check). --------------------

void run_l005(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr) return;
    // An error only when Eq. 7 is actually enforced; otherwise the pins
    // merely diverge and the plan can still honor them.
    const Severity severity = in.reuse_aware ? Severity::kError : Severity::kWarning;
    check_reuse_pin_conflicts(*in.jobs, severity, out);
}

// --- L006: workflow DAG acyclic, no self-edges. ---------------------------

void run_l006(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.edges == nullptr) return;
    std::map<int, std::size_t> index_of;
    for (std::size_t i = 0; i < in.jobs->size(); ++i) {
        index_of.emplace((*in.jobs)[i].id, i);  // dups are L003's problem
    }
    std::vector<int> indegree(in.jobs->size(), 0);
    std::vector<std::vector<std::size_t>> succ(in.jobs->size());
    for (const auto& e : *in.edges) {
        if (e.from_job == e.to_job) {
            out.push_back(Finding{
                .rule = "L006",
                .severity = Severity::kError,
                .subject = "edge " + std::to_string(e.from_job) + "->" +
                           std::to_string(e.to_job),
                .message = "self-edge on job " + std::to_string(e.from_job) +
                           ": a job cannot consume its own output",
                .fix_hint = "remove the edge or point it at a different stage",
                .line = edge_line(in, e),
            });
            continue;
        }
        const auto u = index_of.find(e.from_job);
        const auto v = index_of.find(e.to_job);
        if (u == index_of.end() || v == index_of.end()) continue;  // L008 reports
        succ[u->second].push_back(v->second);
        ++indegree[v->second];
    }
    // Kahn's algorithm over the declared edges; whatever survives with a
    // positive indegree sits on (or downstream of) a cycle.
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < indegree.size(); ++i) {
        if (indegree[i] == 0) ready.push_back(i);
    }
    std::size_t seen = 0;
    while (!ready.empty()) {
        const std::size_t u = ready.back();
        ready.pop_back();
        ++seen;
        for (std::size_t v : succ[u]) {
            if (--indegree[v] == 0) ready.push_back(v);
        }
    }
    if (seen == in.jobs->size()) return;
    std::string members;
    for (std::size_t i = 0; i < indegree.size(); ++i) {
        if (indegree[i] <= 0) continue;
        if (!members.empty()) members += ", ";
        members += "'" + (*in.jobs)[i].name + "'";
    }
    out.push_back(Finding{
        .rule = "L006",
        .severity = Severity::kError,
        .subject = in.workflow_name.empty() ? std::string("workflow")
                                            : "workflow " + in.workflow_name,
        .message = "workflow DAG has a cycle through " + members,
        .fix_hint = "break the cycle; stage outputs must flow forward only",
        .line = in.source != nullptr && in.source->workflow_line > 0
                    ? std::optional<int>(in.source->workflow_line)
                    : std::nullopt,
    });
}

// --- L007: no isolated stage in a connected workflow. ---------------------

void run_l007(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.edges == nullptr || in.edges->empty()) return;
    if (in.jobs->size() < 2) return;
    std::set<int> connected;
    for (const auto& e : *in.edges) {
        connected.insert(e.from_job);
        connected.insert(e.to_job);
    }
    for (const auto& job : *in.jobs) {
        if (connected.count(job.id) != 0) continue;
        out.push_back(Finding{
            .rule = "L007",
            .severity = Severity::kWarning,
            .subject = "job '" + job.name + "'",
            .message = "job '" + job.name +
                       "' is not connected to any other stage of the workflow",
            .fix_hint = "wire it into the DAG, or plan it as part of a batch workload "
                        "instead",
            .line = job_line(in, job),
        });
    }
}

// --- L008: edge endpoints reference declared job ids. ---------------------

void run_l008(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.edges == nullptr) return;
    std::set<int> ids;
    for (const auto& job : *in.jobs) ids.insert(job.id);
    for (const auto& e : *in.edges) {
        for (const int endpoint : {e.from_job, e.to_job}) {
            if (ids.count(endpoint) != 0) continue;
            out.push_back(Finding{
                .rule = "L008",
                .severity = Severity::kError,
                .subject = "edge " + std::to_string(e.from_job) + "->" +
                           std::to_string(e.to_job),
                .message = "edge " + std::to_string(e.from_job) + "->" +
                           std::to_string(e.to_job) + " references undeclared job id " +
                           std::to_string(endpoint),
                .fix_hint = "declare the job or fix the edge's ids",
                .line = edge_line(in, e),
            });
        }
    }
}

// --- L009: deadline at least the fastest-possible critical path. ----------

/// A certified lower bound on one job's processing time: the fastest tier
/// under that tier's most favorable profiled scaling knot, with a 5% slack
/// for interpolation wiggle between knots. Staging and cross-tier transfer
/// legs only add time, so summing these bounds under-estimates any real
/// schedule (execution is serial, Eq. 9) and the rule never rejects a
/// feasible deadline.
std::optional<Seconds> fastest_possible(const model::PerfModelSet& models,
                                        const JobSpec& job) {
    constexpr double kInterpolationSlack = 0.95;
    std::optional<Seconds> best;
    for (StorageTier tier : cloud::kAllTiers) {
        if (!models.has_tier_model(job.app, tier)) continue;
        const auto& m = models.tier_model(job.app, tier);
        const Seconds base = model::estimate(models.cluster(), job, m.bandwidths);
        double min_scale = 1.0;
        for (const double y : m.runtime_scale.knots_y()) min_scale = std::min(min_scale, y);
        const Seconds t{base.value() * min_scale * kInterpolationSlack};
        if (!best || t < *best) best = t;
    }
    return best;
}

void run_l009(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || !in.deadline || in.models == nullptr) return;
    if (in.jobs->empty()) return;
    Seconds bound{0.0};
    for (const auto& job : *in.jobs) {
        if (!std::isfinite(job.input.value()) || job.input.value() <= 0.0 ||
            job.map_tasks < 1 || job.reduce_tasks < 1) {
            return;  // L001 territory; estimates would be garbage
        }
        const auto t = fastest_possible(*in.models, job);
        if (!t) return;  // unmodeled app: L018 territory
        bound += *t;
    }
    if (*in.deadline >= bound) return;
    out.push_back(Finding{
        .rule = "L009",
        .severity = Severity::kError,
        .subject = in.workflow_name.empty() ? std::string("workflow")
                                            : "workflow " + in.workflow_name,
        .message = "deadline of " + std::to_string(in.deadline->minutes()) +
                   " min is below the certified lower bound of " +
                   std::to_string(bound.minutes()) +
                   " min (sum of each stage's fastest possible tier)",
        .fix_hint = "raise the deadline or shrink the stages; no tiering plan can meet it",
        .line = in.source != nullptr && in.source->workflow_line > 0
                    ? std::optional<int>(in.source->workflow_line)
                    : std::nullopt,
    });
}

// --- L010: catalog capacity->throughput curves monotone. ------------------

void run_l010(const LintInput& in, std::vector<Finding>& out) {
    if (in.catalog == nullptr) return;
    constexpr int kSamples = 24;
    constexpr double kTolerance = 1e-9;
    for (StorageTier tier : cloud::kAllTiers) {
        const auto& service = in.catalog->service(tier);
        const double hi = service.max_capacity_per_vm()
                              ? service.max_capacity_per_vm()->value()
                              : 10240.0;
        const double lo = hi / kSamples;
        cloud::TierPerformance prev = service.performance(GigaBytes{lo});
        for (int i = 2; i <= kSamples; ++i) {
            const GigaBytes c{lo * i};
            const cloud::TierPerformance perf = service.performance(c);
            const char* which = nullptr;
            if (perf.read_bw.value() < prev.read_bw.value() - kTolerance) {
                which = "read";
            } else if (perf.write_bw.value() < prev.write_bw.value() - kTolerance) {
                which = "write";
            }
            if (which != nullptr) {
                out.push_back(Finding{
                    .rule = "L010",
                    .severity = Severity::kError,
                    .subject = tier_str(tier),
                    .message = tier_str(tier) + " " + which + " bandwidth decreases from " +
                               std::to_string(lo * (i - 1)) + " GB to " +
                               std::to_string(c.value()) +
                               " GB; capacity->throughput must be non-decreasing or the "
                               "over-provisioning search is unsound",
                    .fix_hint = "fix the catalog's performance curve for this tier",
                });
                break;  // one finding per tier is enough
            }
            prev = perf;
        }
    }
}

// --- L011: catalog tier conventions resolvable. ---------------------------

void run_l011(const LintInput& in, std::vector<Finding>& out) {
    if (in.catalog == nullptr) return;
    const StorageTier backing = in.catalog->backing_store();
    if (!in.catalog->service(backing).persistent()) {
        out.push_back(Finding{
            .rule = "L011",
            .severity = Severity::kError,
            .subject = "backing store",
            .message = "backing store " + tier_str(backing) +
                       " is not persistent; ephSSD placements would have nowhere durable "
                       "to stage inputs and outputs",
            .fix_hint = "back workloads with a persistent tier (objStore in the paper)",
        });
    }
    const StorageTier inter = in.catalog->object_store_intermediate_tier();
    if (inter == StorageTier::kObjectStore || !in.catalog->service(inter).persistent()) {
        out.push_back(Finding{
            .rule = "L011",
            .severity = Severity::kError,
            .subject = "objStore intermediate tier",
            .message = "objStore placements keep shuffle data on " + tier_str(inter) +
                       ", which cannot host intermediate data (must be a persistent "
                       "block tier)",
            .fix_hint = "use a persistent block tier (persSSD in the paper, §3.1.1)",
        });
    }
}

// --- L012: plan has one decision per job. ---------------------------------

void run_l012(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.decisions == nullptr) return;
    if (in.decisions->size() == in.jobs->size()) return;
    out.push_back(Finding{
        .rule = "L012",
        .severity = Severity::kError,
        .subject = "plan",
        .message = "plan has " + std::to_string(in.decisions->size()) +
                   " decision(s) for " + std::to_string(in.jobs->size()) + " job(s)",
        .fix_hint = "emit exactly one placement decision per job, in job order",
    });
}

// --- L013: over-provision factors finite and >= 1. ------------------------

void run_l013(const LintInput& in, std::vector<Finding>& out) {
    if (in.decisions == nullptr) return;
    for (std::size_t i = 0; i < in.decisions->size(); ++i) {
        const double k = (*in.decisions)[i].overprovision;
        if (std::isfinite(k) && k >= 1.0) continue;
        const std::string subject =
            in.jobs != nullptr && i < in.jobs->size()
                ? "job '" + (*in.jobs)[i].name + "'"
                : "decision " + std::to_string(i);
        out.push_back(Finding{
            .rule = "L013",
            .severity = Severity::kError,
            .subject = subject,
            .message = subject + " has over-provision factor " + std::to_string(k) +
                       "; k < 1 under-provisions Eq. 3's capacity requirement",
            .fix_hint = "use a finite factor >= 1",
        });
    }
}

// --- L014: plan honors operator tier pins (shared check). -----------------

void run_l014(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.decisions == nullptr) return;
    std::vector<Finding> found;
    check_tier_pins(*in.jobs, *in.decisions, found);
    for (auto& f : found) {
        if (in.source != nullptr) {
            // f.subject is "job '<name>'"; recover the id via the jobs list.
            for (const auto& job : *in.jobs) {
                if (f.subject == "job '" + job.name + "'") {
                    f.line = in.source->line_of_job(job.id);
                    break;
                }
            }
        }
        out.push_back(std::move(f));
    }
}

// --- L015: plan keeps reuse groups on one tier (shared check). ------------

void run_l015(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.decisions == nullptr || !in.reuse_aware) return;
    check_reuse_group_split(*in.jobs, *in.decisions, out);
}

// --- L016: over-provision factors that buy nothing. -----------------------

void run_l016(const LintInput& in, std::vector<Finding>& out) {
    if (in.decisions == nullptr) return;
    constexpr double kMaxUsefulFactor = 16.0;
    for (std::size_t i = 0; i < in.decisions->size(); ++i) {
        const auto& d = (*in.decisions)[i];
        if (!std::isfinite(d.overprovision) || d.overprovision < 1.0) continue;  // L013
        const std::string subject =
            in.jobs != nullptr && i < in.jobs->size()
                ? "job '" + (*in.jobs)[i].name + "'"
                : "decision " + std::to_string(i);
        if (d.tier == StorageTier::kObjectStore && d.overprovision > 1.0) {
            out.push_back(Finding{
                .rule = "L016",
                .severity = Severity::kWarning,
                .subject = subject,
                .message = subject + " over-provisions objStore by " +
                           std::to_string(d.overprovision) +
                           "x, but objStore performance is capacity-flat: the extra "
                           "capacity only costs money",
                .fix_hint = "use k = 1 on objStore",
            });
        } else if (d.overprovision > kMaxUsefulFactor) {
            out.push_back(Finding{
                .rule = "L016",
                .severity = Severity::kWarning,
                .subject = subject,
                .message = subject + " over-provisions by " +
                           std::to_string(d.overprovision) +
                           "x; block-tier bandwidth saturates its per-VM ceiling well "
                           "below that",
                .fix_hint = "cap the factor; past saturation extra capacity is pure cost",
            });
        }
    }
}

// --- L017: per-VM capacities fit provider volume limits. ------------------

void run_l017(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.decisions == nullptr || in.models == nullptr ||
        in.catalog == nullptr) {
        return;
    }
    if (in.decisions->size() != in.jobs->size()) return;  // L012 territory
    const int nvm = in.models->cluster().worker_count;
    // Mirror PlanEvaluator::capacities' aggregation (without the rounding):
    // reuse-group followers provision only their intermediate + output.
    std::set<int> group_input_counted;
    std::array<double, cloud::kTierCount> aggregate{};
    for (std::size_t i = 0; i < in.jobs->size(); ++i) {
        const auto& job = (*in.jobs)[i];
        const auto& d = (*in.decisions)[i];
        if (!std::isfinite(job.input.value()) || job.input.value() <= 0.0) return;  // L001
        if (!std::isfinite(d.overprovision)) return;                                // L013
        GigaBytes req = job.capacity_requirement();
        if (in.reuse_aware && job.reuse_group &&
            !group_input_counted.insert(*job.reuse_group).second) {
            req = job.intermediate() + job.output();
        }
        aggregate[tier_index(d.tier)] += req.value() * d.overprovision;
    }
    for (StorageTier tier : cloud::kAllTiers) {
        const double agg = aggregate[tier_index(tier)];
        if (agg <= 0.0) continue;
        const auto max = in.catalog->service(tier).max_capacity_per_vm();
        if (!max) continue;
        const double per_vm = agg / nvm;
        if (per_vm <= max->value()) continue;
        out.push_back(Finding{
            .rule = "L017",
            .severity = Severity::kError,
            .subject = tier_str(tier),
            .message = "plan needs " + std::to_string(per_vm) + " GB/VM on " +
                       tier_str(tier) + " but the provider caps a VM at " +
                       std::to_string(max->value()) + " GB",
            .fix_hint = "move jobs off " + tier_str(tier) +
                        ", lower over-provisioning, or use more workers",
        });
    }
}

// --- L018: every placement has a profiled model. --------------------------

void run_l018(const LintInput& in, std::vector<Finding>& out) {
    if (in.jobs == nullptr || in.models == nullptr) return;
    if (in.decisions != nullptr && in.decisions->size() == in.jobs->size()) {
        for (std::size_t i = 0; i < in.jobs->size(); ++i) {
            const auto& job = (*in.jobs)[i];
            const StorageTier tier = (*in.decisions)[i].tier;
            if (in.models->has_tier_model(job.app, tier)) continue;
            out.push_back(Finding{
                .rule = "L018",
                .severity = Severity::kError,
                .subject = "job '" + job.name + "'",
                .message = "no profiled model for (" +
                           std::string(workload::app_name(job.app)) + ", " +
                           tier_str(tier) + "); the plan places job '" + job.name +
                           "' on a tier the profiler never calibrated",
                .fix_hint = "re-run the profiler over this tier or place the job "
                            "elsewhere",
                .line = job_line(in, job),
            });
        }
        return;
    }
    // No plan yet: every app must be plannable on at least one tier.
    for (const auto& job : *in.jobs) {
        bool any = false;
        for (StorageTier tier : cloud::kAllTiers) {
            if (in.models->has_tier_model(job.app, tier)) any = true;
        }
        if (any) continue;
        out.push_back(Finding{
            .rule = "L018",
            .severity = Severity::kError,
            .subject = "job '" + job.name + "'",
            .message = "application " + std::string(workload::app_name(job.app)) +
                       " has no profiled model on any tier; job '" + job.name +
                       "' cannot be planned",
            .fix_hint = "profile the application before planning",
            .line = job_line(in, job),
        });
    }
}

// --- Rule wrapper. --------------------------------------------------------

class FnRule final : public Rule {
public:
    using Fn = void (*)(const LintInput&, std::vector<Finding>&);

    FnRule(std::string_view id, Severity severity, std::string_view summary, Fn fn)
        : id_(id), severity_(severity), summary_(summary), fn_(fn) {}

    [[nodiscard]] std::string_view id() const override { return id_; }
    [[nodiscard]] Severity default_severity() const override { return severity_; }
    [[nodiscard]] std::string_view summary() const override { return summary_; }
    void run(const LintInput& input, std::vector<Finding>& out) const override {
        fn_(input, out);
    }

private:
    std::string_view id_;
    Severity severity_;
    std::string_view summary_;
    Fn fn_;
};

}  // namespace

std::vector<std::unique_ptr<Rule>> standard_rules() {
    std::vector<std::unique_ptr<Rule>> rules;
    auto add = [&rules](std::string_view id, Severity sev, std::string_view summary,
                        FnRule::Fn fn) {
        rules.push_back(std::make_unique<FnRule>(id, sev, summary, fn));
    };
    add("L001", Severity::kError, "job sizes and task counts are finite and positive",
        run_l001);
    add("L002", Severity::kWarning, "job magnitudes are within plausible operating ranges",
        run_l002);
    add("L003", Severity::kError, "job ids are unique", run_l003);
    add("L004", Severity::kError, "reuse-group members share one input size", run_l004);
    add("L005", Severity::kError,
        "reuse-group tier pins agree (warning when not reuse-aware)", run_l005);
    add("L006", Severity::kError, "workflow DAG has no cycles or self-edges", run_l006);
    add("L007", Severity::kWarning, "no isolated stage in a connected workflow", run_l007);
    add("L008", Severity::kError, "workflow edges reference declared job ids", run_l008);
    add("L009", Severity::kError, "deadline is at least the certified runtime lower bound",
        run_l009);
    add("L010", Severity::kError,
        "catalog capacity->throughput curves are monotone non-decreasing", run_l010);
    add("L011", Severity::kError, "catalog tier conventions are resolvable", run_l011);
    add("L012", Severity::kError, "plan has exactly one decision per job", run_l012);
    add("L013", Severity::kError, "over-provision factors are finite and >= 1", run_l013);
    add("L014", Severity::kError, "plan honors operator tier pins", run_l014);
    add("L015", Severity::kError, "plan keeps reuse groups on one tier (Eq. 7)", run_l015);
    add("L016", Severity::kWarning, "over-provision factors buy real bandwidth", run_l016);
    add("L017", Severity::kError, "per-VM capacities fit provider volume limits", run_l017);
    add("L018", Severity::kError, "every placement has a profiled model", run_l018);
    return rules;
}

}  // namespace cast::lint
