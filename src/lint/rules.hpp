// The cast::lint rule engine: Rule interface, LintInput, standard rule set.
//
// CAST decides placements before anything runs, so its inputs (workload
// specs, the Table-1 storage catalog, DAG workflows) and outputs (tiering
// plans) are checked statically, before a single simulated second is spent.
// Each rule encodes one invariant under a stable ID; the standard set is:
//
//   L001 error  job sizes/counts finite and positive
//   L002 warn   job magnitudes within plausible operating ranges
//   L003 error  job ids unique
//   L004 error  reuse-group members share one input size
//   L005 error* reuse-group tier pins agree (*warning when not reuse-aware)
//   L006 error  workflow DAG has no cycles or self-edges
//   L007 warn   no isolated (edge-less) stage in a connected workflow
//   L008 error  workflow edges reference declared job ids
//   L009 error  deadline at least the fastest-possible critical path
//   L010 error  catalog capacity->throughput curves monotone non-decreasing
//   L011 error  catalog tier conventions resolvable (durable backing store,
//               block-tier intermediate home)
//   L012 error  plan has one decision per job
//   L013 error  over-provision factors finite and >= 1
//   L014 error  plan honors operator tier pins
//   L015 error  plan keeps reuse groups on one tier (Eq. 7)
//   L016 warn   over-provision factors buy something (<= 16x, not on
//               objStore whose performance is capacity-flat)
//   L017 error  per-VM capacities fit provider volume limits
//   L018 error  a profiled model exists for every (app, tier) placement
//
// Rules run over whatever slice of the input is present: spec-only lint
// skips plan rules, model-free lint skips L009/L017/L018, and so on. Rule
// L000 is reserved for "the spec did not parse" (emitted by tooling, not by
// a Rule).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/storage.hpp"
#include "common/units.hpp"
#include "core/plan.hpp"
#include "lint/finding.hpp"
#include "model/profiler.hpp"
#include "workload/spec_parser.hpp"
#include "workload/workflow.hpp"

namespace cast::lint {

/// Non-owning view of everything a lint run may analyze. Only `jobs` is
/// required; every other field widens the rule set that can run. Raw
/// vectors (not validated Workload/Workflow objects) are deliberate: lint
/// must be able to describe inputs too broken to construct.
struct LintInput {
    const std::vector<workload::JobSpec>* jobs = nullptr;
    /// Workflow context; null/absent for batch workloads.
    const std::vector<workload::WorkflowEdge>* edges = nullptr;
    std::optional<Seconds> deadline;
    std::string workflow_name;
    /// Plan under review (batch or workflow decisions), when any.
    const std::vector<core::PlacementDecision>* decisions = nullptr;
    const cloud::StorageCatalog* catalog = nullptr;
    const model::PerfModelSet* models = nullptr;
    /// Whether Eq. 7 reuse constraints are active (CAST++ planning).
    bool reuse_aware = false;
    /// Spec-file locations for findings, when the input came from a file.
    const workload::SpecSourceMap* source = nullptr;

    [[nodiscard]] bool is_workflow() const { return edges != nullptr; }
};

/// One invariant, identified by a stable rule ID. run() appends a Finding
/// per violation and must tolerate partial inputs (skip, don't crash).
class Rule {
public:
    Rule() = default;
    Rule(const Rule&) = delete;
    Rule& operator=(const Rule&) = delete;
    virtual ~Rule() = default;

    [[nodiscard]] virtual std::string_view id() const = 0;
    [[nodiscard]] virtual Severity default_severity() const = 0;
    /// One-line description of the invariant, for --list-rules and docs.
    [[nodiscard]] virtual std::string_view summary() const = 0;
    virtual void run(const LintInput& input, std::vector<Finding>& out) const = 0;
};

/// The standard L001..L018 rule set, in ID order.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> standard_rules();

}  // namespace cast::lint
