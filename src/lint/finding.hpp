// Structured diagnostics for the cast::lint static analyzer.
//
// A Finding is one rule violation: the stable rule ID ("L014"), a severity,
// the subject it is about ("job 'Sort-3'"), a human-readable message, an
// optional fix hint, and — when the input came from a spec file with a
// SpecSourceMap — the 1-based source line. A Report is the outcome of one
// analyzer run: the findings plus text/JSON serialization and the
// error/warning rollups that drive exit codes and pre-solve rejection.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cast::lint {

/// Ordered so that max_severity() is a plain max over findings.
enum class Severity : int {
    kInfo = 0,
    kWarning = 1,
    kError = 2,
};

[[nodiscard]] std::string_view severity_name(Severity s);

struct Finding {
    std::string rule;     // stable ID, "L001"..."L018" ("L000" = unparsable)
    Severity severity = Severity::kWarning;
    std::string subject;  // what the finding is about, e.g. "job 'Sort-3'"
    std::string message;  // the violated invariant, concretely
    std::string fix_hint; // optional remediation, "" when none applies
    std::optional<int> line;  // 1-based spec line, when a source map is known

    /// One-line rendering: "error L014 [job 'x'] (line 4): message. hint: ..."
    [[nodiscard]] std::string format() const;
};

/// Result of one analyzer run over a lint input.
struct Report {
    std::vector<Finding> findings;

    [[nodiscard]] Severity max_severity() const;
    [[nodiscard]] std::size_t count(Severity s) const;
    /// No error-severity findings (warnings/info allowed).
    [[nodiscard]] bool ok() const { return count(Severity::kError) == 0; }
    /// No findings at all.
    [[nodiscard]] bool clean() const { return findings.empty(); }
    /// Findings of exactly one severity, in report order.
    [[nodiscard]] std::vector<const Finding*> at(Severity s) const;

    /// One finding per line, errors first, then warnings, then info.
    void write_text(std::ostream& os) const;
    /// Machine-readable form (one JSON object; `source` labels the input).
    void write_json(std::ostream& os, const std::string& source = "") const;

    void add(Finding f) { findings.push_back(std::move(f)); }
    void merge(Report other);
};

/// Throw ValidationError naming every error-severity finding; no-op when
/// the report is ok(). This is the pre-solve/pre-deploy rejection hook.
void enforce(const Report& report);

/// Downgrade every finding of `rule` to `severity`. Hooks whose contract
/// requires a best-effort result (the workflow solver and deployer must
/// still produce/execute a plan under an unattainable deadline, §5.2.2's
/// miss-counting baselines depend on it) demote L009 with this before
/// enforce(); the CLI and library keep the rule's default severity.
void demote(Report& report, std::string_view rule, Severity severity);

}  // namespace cast::lint
