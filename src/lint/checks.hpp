// Shared placement-constraint checks.
//
// These are the single source of truth for the constraints that more than
// one layer enforces: the lint rules (L005, L014, L015), the PlanEvaluator
// (which must mark violating plans infeasible so annealing rejects them),
// the Deployer (which must refuse to execute them), and the CAST++ facade
// (which must detect unplaceable reuse groups before projecting the greedy
// plan). Each helper appends Findings only on violation, so the clean path
// allocates nothing and is cheap enough for the solver's inner loop.
#pragma once

#include <vector>

#include "core/plan.hpp"
#include "lint/finding.hpp"
#include "workload/job.hpp"

namespace cast::lint {

/// L014: every decision must honor its job's operator tier pin. `jobs` and
/// `decisions` are parallel; extra/missing decisions are ignored here
/// (rule L012 owns the shape check).
void check_tier_pins(const std::vector<workload::JobSpec>& jobs,
                     const std::vector<core::PlacementDecision>& decisions,
                     std::vector<Finding>& out);

/// L005: the members of one reuse group must not pin different tiers —
/// Eq. 7 co-locates the group, so conflicting pins make it unplaceable.
/// Severity is caller-chosen: an error under reuse-aware planning (the
/// constraint is active), a warning otherwise (the pins merely diverge).
void check_reuse_pin_conflicts(const std::vector<workload::JobSpec>& jobs,
                               Severity severity, std::vector<Finding>& out);

/// L015: under reuse-aware planning every reuse group must sit on one tier
/// (Eq. 7).
void check_reuse_group_split(const std::vector<workload::JobSpec>& jobs,
                             const std::vector<core::PlacementDecision>& decisions,
                             std::vector<Finding>& out);

}  // namespace cast::lint
