#include "serve/governor.hpp"

#include <algorithm>

namespace cast::serve {

const char* degradation_level_name(DegradationLevel level) {
    switch (level) {
        case DegradationLevel::kFull: return "full";
        case DegradationLevel::kTrimmed: return "trimmed";
        case DegradationLevel::kGreedy: return "greedy";
        case DegradationLevel::kShed: return "shed";
    }
    return "unknown";
}

void GovernorOptions::apply(DegradationLevel level, core::CastOptions& opts) const {
    if (level != DegradationLevel::kTrimmed) return;
    opts.annealing.iter_max = std::max(
        1, static_cast<int>(static_cast<double>(opts.annealing.iter_max) * trim_iter_factor));
    opts.annealing.chains = std::max(1, opts.annealing.chains / 2);
    // 0 means unbudgeted; trimming a wall budget only makes sense when the
    // request declared one (iteration trimming above bounds the rest).
    if (opts.annealing.max_wall_ms > 0.0) opts.annealing.max_wall_ms *= trim_wall_factor;
}

void OverloadGovernor::record_solve_ms(double ms) {
    if (ms < 0.0) return;
    LockGuard lock(mutex_);
    ewma_ms_ = seeded_ ? options_.ewma_alpha * ms + (1.0 - options_.ewma_alpha) * ewma_ms_
                       : ms;
    seeded_ = true;
}

double OverloadGovernor::ewma_solve_ms() const {
    LockGuard lock(mutex_);
    return ewma_ms_;
}

bool OverloadGovernor::ewma_seeded() const {
    LockGuard lock(mutex_);
    return seeded_;
}

double OverloadGovernor::pressure(std::size_t queue_depth, std::size_t in_flight) const {
    const double backlog = static_cast<double>(queue_depth + in_flight);
    const double drain_ms =
        backlog * ewma_solve_ms() / static_cast<double>(workers_);
    double p = drain_ms / options_.latency_target_ms;
    if (queue_capacity_ > 0) {
        const double occupancy =
            static_cast<double>(queue_depth) / static_cast<double>(queue_capacity_);
        p = std::max(p, occupancy * options_.shed_pressure);
    }
    return p;
}

DegradationLevel OverloadGovernor::classify(double pressure) const {
    if (pressure >= options_.shed_pressure) return DegradationLevel::kShed;
    if (pressure >= options_.greedy_pressure) return DegradationLevel::kGreedy;
    if (pressure >= options_.trim_pressure) return DegradationLevel::kTrimmed;
    return DegradationLevel::kFull;
}

bool OverloadGovernor::provably_late(double deadline_ms, std::size_t queue_depth,
                                     std::size_t in_flight) const {
    if (deadline_ms <= 0.0) return false;
    double ewma = 0.0;
    {
        LockGuard lock(mutex_);
        if (!seeded_) return false;
        ewma = ewma_ms_;
    }
    const double backlog = static_cast<double>(queue_depth + in_flight);
    const double predicted_wait_ms = backlog * ewma / static_cast<double>(workers_);
    return predicted_wait_ms > deadline_ms;
}

}  // namespace cast::serve
