// Multi-tenant planning service: the serving layer over the CAST solvers.
//
// The one-shot pipeline (cast_plan) pays the full cold cost per request:
// load models, build a fresh EvalCache, solve, exit. PlannerService keeps
// a long-lived process warm instead:
//
//   * requests are admitted through a bounded priority queue (reject on
//     overflow = explicit backpressure, never unbounded memory),
//   * a dispatcher thread pops them in batches, coalesces identical
//     requests (popular-template replay solves once, everyone gets the
//     bits), and fans the unique solves over the work-stealing ThreadPool,
//   * every solve runs against the current immutable Snapshot and its
//     snapshot-scoped EvalCache, so REG runtimes computed for request N
//     are free for request N+1 (bit-identical by EvalCache's contract),
//   * per-request wall budgets and a service CancelToken make every solve
//     boundable: exhaustion returns the best-so-far feasible plan flagged
//     budget_exhausted, never an error.
//
// Determinism: the service calls the exact same plan_cast /
// plan_cast_plus_plus / WorkflowSolver::solve facades a direct caller
// would, with pool=nullptr inside the worker (chains sequential per
// request). Since solvers are deterministic and the cache is
// bit-transparent, a response is bit-identical to the direct solve of the
// same request, regardless of worker count, queue order, cache warmth, or
// a snapshot swap racing other requests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/cancel.hpp"
#include "common/mpmc_queue.hpp"
#include "common/retry.hpp"
#include "common/thread_pool.hpp"
#include "core/castpp.hpp"
#include "core/incremental.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/faults.hpp"
#include "serve/governor.hpp"
#include "serve/snapshot.hpp"
#include "workload/workflow.hpp"

namespace cast::serve {

/// Queue levels, highest first (level 0 drains before level 1, §BoundedPriorityQueue).
enum class Priority : std::size_t { kHigh = 0, kNormal = 1, kLow = 2 };

/// Wire-stable lowercase name ("high" / "normal" / "low"); appears in
/// metric names (serve.latency_ms.<priority>) and trace span labels.
[[nodiscard]] const char* priority_name(Priority priority);

enum class RequestKind { kBatch, kWorkflow, kAmend };

struct PlanRequest {
    std::uint64_t id = 0;
    RequestKind kind = RequestKind::kBatch;
    /// Exactly one of the two, matching `kind`.
    std::optional<workload::Workload> workload;
    std::optional<workload::Workflow> workflow;
    /// Batch requests: plain CAST vs CAST++ Enhancement 1.
    bool reuse_aware = false;
    /// Overrides the service's solver seed when set (golden tests pin it).
    std::optional<std::uint64_t> seed;
    /// Per-request wall budget (ms); 0 inherits the service default, and a
    /// default of 0 means unbudgeted.
    double max_wall_ms = 0.0;
    /// Caller's end-to-end deadline (ms from submit); 0 = none. With the
    /// governor's deadline admission on, a request whose predicted queue
    /// wait already exceeds this is shed instead of solved-then-ignored.
    double deadline_ms = 0.0;
    Priority priority = Priority::kNormal;
    /// Plan-store handle. On a batch request: when non-empty, the solved
    /// (workload, plan) is stored under this handle after an ok solve, so
    /// later amend requests can build on it. On an amend request: names the
    /// stored plan to amend (required). Ignored for workflows.
    std::string plan_handle;
    /// Amend requests only: the job-set delta (arrivals / departures /
    /// re-estimates) to apply to the stored plan.
    std::optional<workload::JobDelta> delta;
};

enum class ResponseStatus {
    kOk,        ///< solved (possibly budget_exhausted — still a plan)
    kRejected,  ///< backpressure: queue full or service shutting down
    kError,     ///< the solve itself threw (e.g. lint rejection)
};

struct PlanResponse {
    std::uint64_t id = 0;
    /// Echo of the request's kind — set on every path, including sheds and
    /// errors where neither result below is populated.
    RequestKind kind = RequestKind::kBatch;
    ResponseStatus status = ResponseStatus::kError;
    std::string error;
    /// Batch result (kind == kBatch); carries plan, evaluation, iteration
    /// counters, cache stats and the budget flag. Amend results (kind ==
    /// kAmend) reuse this carrier: plan/evaluation are the amended plan
    /// over the post-delta job set.
    std::optional<core::CastResult> batch;
    /// Workflow result (kind == kWorkflow).
    std::optional<core::WorkflowSolveResult> workflow;
    /// Epoch of the snapshot this request was solved against.
    std::uint64_t snapshot_epoch = 0;
    /// True when this response was shared from an identical request solved
    /// in the same dispatch (bit-identical by solver determinism — the
    /// duplicate would have computed exactly these bits).
    bool coalesced = false;
    /// Ladder level this response was served at (kFull when the governor is
    /// idle; kShed on a governor/deadline rejection).
    DegradationLevel degradation_level = DegradationLevel::kFull;
    /// Solve attempts consumed (> 1 means the retry wrapper recovered from
    /// at least one exception).
    int attempts = 1;
    double queue_ms = 0.0;
    double solve_ms = 0.0;
    /// Amend responses: jobs the restricted move generator was allowed to
    /// touch (0 on every other kind, and when the delta needed no search).
    std::size_t neighborhood_size = 0;
    /// Amend responses: the escalation rule replaced the restricted solve
    /// with a full unrestricted re-solve.
    bool escalated_cold = false;

    [[nodiscard]] bool ok() const { return status == ResponseStatus::kOk; }
    [[nodiscard]] bool budget_exhausted() const {
        if (batch) return batch->budget_exhausted;
        if (workflow) return workflow->budget_exhausted;
        return false;
    }
};

/// Observability switches. Both default off: an uninstrumented service
/// spends zero cycles on metrics or tracing (every hook is behind a null
/// check / enabled() test), and bit-identity to the pre-obs service is
/// trivial. Turning them on adds relaxed atomic increments and one short
/// ring-mutex critical section per request — the golden tests prove the
/// solve output stays bit-identical either way.
struct ObservabilityOptions {
    /// Register the serve.* instruments and count/observe on every request.
    bool metrics = false;
    /// Completed trace spans to ring-buffer; 0 disables tracing entirely.
    std::size_t trace_capacity = 0;
};

struct ServiceOptions {
    /// Solver pool size (the dispatcher thread is extra).
    std::size_t workers = ThreadPool::default_workers();
    /// Admission-queue bound; try_push beyond it rejects (backpressure).
    std::size_t queue_capacity = 256;
    /// Max requests coalesced into one dispatch: they share one snapshot
    /// capture and fan out over the pool together.
    std::size_t max_batch = 16;
    /// Default per-request wall budget (ms); 0 = unbudgeted.
    double default_max_wall_ms = 0.0;
    /// Solver configuration applied to every request (seed and budget are
    /// overridden per request).
    core::CastOptions solver;
    /// WorkflowSolver deadline-safety margin (Eq. 9 headroom).
    double workflow_deadline_safety = 1.0;
    /// Incremental re-planning policy applied to amend requests (the
    /// governor's trimmed/greedy rungs shrink it further per request).
    core::AmendPolicy amend;
    /// Solve identical requests landing in one dispatch once and share the
    /// response (popular-template replay dedup). Safe because solves are
    /// deterministic functions of (request, snapshot, options).
    bool coalesce_identical = true;
    /// Overload governor; disabled by default, which leaves every response
    /// bit-identical to an ungoverned service.
    GovernorOptions governor;
    /// Serve-layer fault injection; the zero profile (default) injects
    /// nothing and is bit-identical to an uninstrumented service.
    ServeFaultProfile faults;
    /// Metrics + tracing; defaults off (zero overhead, bit-identical).
    ObservabilityOptions obs;
};

/// Monotonic service counters plus the live snapshot's cache statistics.
struct ServiceStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;         ///< dispatches (pop_batch groups)
    std::uint64_t coalesced = 0;       ///< responses shared from a duplicate
    std::uint64_t snapshot_swaps = 0;  ///< swap_snapshot calls
    // Governor ladder counters: how many representative solves ran at each
    // level, and how many requests were shed before any solve.
    std::uint64_t served_full = 0;
    std::uint64_t served_trimmed = 0;
    std::uint64_t served_greedy = 0;
    std::uint64_t governor_shed = 0;   ///< load-shed at dispatch (ladder level 3)
    std::uint64_t deadline_shed = 0;   ///< provably-late drops (admission/dispatch)
    // Incremental re-planning counters (amend requests only).
    std::uint64_t amend_requests = 0;     ///< amend solves that ran (ok or error)
    std::uint64_t amend_escalations = 0;  ///< amends escalated to a full cold re-solve
    std::uint64_t amend_greedy = 0;       ///< amends served on the greedy-only rung
    // Fault-survival counters.
    std::uint64_t solve_retries = 0;      ///< extra attempts after an exception
    std::uint64_t breaker_fastfail = 0;   ///< requests refused by an open breaker
    std::uint64_t breaker_trips = 0;      ///< breaker open transitions (all breakers)
    std::uint64_t swap_clears_suppressed = 0;  ///< storm-guarded cache clears skipped
    double ewma_solve_ms = 0.0;        ///< governor's latency estimate
    /// False until the EWMA has absorbed its first solve sample: a 0.0
    /// estimate right after startup or a pure shed burst is "no evidence",
    /// not "instant solves" — readers must check this before trusting
    /// ewma_solve_ms (and deadline admission cannot fire while false).
    bool ewma_seeded = false;
    core::EvalCacheStats cache;        ///< current snapshot's memo table
    ServeFaultStats faults;            ///< what the injector actually did
};

/// A consistent copy of one stored plan (see PlannerService::stored_plan).
struct StoredPlanView {
    workload::Workload workload;
    core::TieringPlan plan;
    bool reuse_aware = false;
};

class PlannerService {
public:
    PlannerService(SnapshotPtr snapshot, ServiceOptions options = {});

    PlannerService(const PlannerService&) = delete;
    PlannerService& operator=(const PlannerService&) = delete;

    /// Closes admission, drains queued work (unless cancel_inflight() was
    /// called), and joins the dispatcher and pool.
    ~PlannerService();

    /// Enqueue a request. Always returns a future: on admission it resolves
    /// when the solve finishes; on overflow/shutdown it is already resolved
    /// with kRejected. Never blocks on a full queue — backpressure is the
    /// caller's signal to slow down.
    [[nodiscard]] std::future<PlanResponse> submit(PlanRequest request);

    /// Install a new snapshot. In-flight requests keep the snapshot they
    /// were dispatched with (refcount); later dispatches see the new one.
    /// The outgoing snapshot's cache is cleared, bumping its generation so
    /// any thread-local L1 entries die with it.
    void swap_snapshot(SnapshotPtr next) CAST_EXCLUDES(snapshot_mutex_);

    [[nodiscard]] SnapshotPtr snapshot() const CAST_EXCLUDES(snapshot_mutex_);

    /// Cooperative cancellation of everything in flight *and* everything
    /// still queued: each solve stops at its next segment boundary and
    /// returns its best-so-far feasible plan flagged budget_exhausted.
    /// The token latches — this is a fast-drain shutdown aid, not a
    /// per-request cancel.
    void cancel_inflight();

    [[nodiscard]] ServiceStats stats() const;
    [[nodiscard]] const ServiceOptions& options() const { return options_; }

    /// Consistent copy of the plan currently stored under `handle` (written
    /// by a batch request carrying plan_handle, advanced by every ok amend);
    /// nullopt when no such handle exists.
    [[nodiscard]] std::optional<StoredPlanView> stored_plan(const std::string& handle) const
        CAST_EXCLUDES(store_mutex_);

    /// The injector's view of what it has done so far.
    [[nodiscard]] ServeFaultStats fault_stats() const { return injector_.stats(); }

    /// The service's metrics registry. Always present; it only carries the
    /// serve.* instruments when options().obs.metrics was set (exports are
    /// empty otherwise). Pull gauges registered here read live service
    /// state, so an export taken mid-burst shows the burst.
    [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }
    [[nodiscard]] bool metrics_enabled() const { return inst_ != nullptr; }

    /// Buffered trace spans, oldest first (empty unless
    /// options().obs.trace_capacity > 0).
    [[nodiscard]] std::vector<obs::TraceSpan> trace_spans() const {
        return trace_.snapshot();
    }
    [[nodiscard]] const obs::TraceRing& trace_ring() const { return trace_; }

    /// Solve `request` directly against `snapshot` with no queue, no pool
    /// and no shared cache side effects beyond the snapshot's own — the
    /// serial baseline path, also used by the golden tests as the ground
    /// truth the service must match bit-for-bit. `level` selects the
    /// degradation ladder rung to solve at (kFull = the PR 5 behavior;
    /// kShed never reaches a solver and is rejected here). Amend requests
    /// are rejected too: they need the service's plan store.
    [[nodiscard]] static PlanResponse solve_direct(
        const Snapshot& snapshot, const PlanRequest& request,
        const ServiceOptions& options, const CancelToken* cancel = nullptr,
        DegradationLevel level = DegradationLevel::kFull);

private:
    struct Pending {
        PlanRequest request;
        std::promise<PlanResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void dispatcher_loop();
    void dispatch_batch(std::vector<std::unique_ptr<Pending>>& batch);
    /// Compute the response at the given ladder level, surviving injected
    /// and real solver exceptions via the retry/breaker wrapper (never
    /// throws; terminal faults become kError). Timing fields are the
    /// caller's to fill.
    [[nodiscard]] PlanResponse solve_request(const PlanRequest& request,
                                             const Snapshot& snap,
                                             DegradationLevel level);
    /// Amend path: look up the stored plan, run the IncrementalSolver with
    /// the governor's rung mapped onto a smaller neighborhood budget
    /// (kTrimmed) or the greedy-only policy (kGreedy), and advance the
    /// store on success. Throws (ValidationError on unknown handle /
    /// missing delta); solve_request's retry wrapper converts to kError.
    [[nodiscard]] PlanResponse amend_direct(const PlanRequest& request, const Snapshot& snap,
                                            DegradationLevel level)
        CAST_EXCLUDES(store_mutex_);
    /// Store (or overwrite) a plan under `handle` (batch requests carrying
    /// plan_handle call this after an ok solve).
    void store_plan(const std::string& handle, workload::Workload workload,
                    core::TieringPlan plan, bool reuse_aware) CAST_EXCLUDES(store_mutex_);
    /// Per-template breaker lookup (governor path only); the map is bounded
    /// and evicts wholesale when it outgrows kMaxBreakers. Shared ownership
    /// because an eviction may race a worker mid-solve with its breaker.
    [[nodiscard]] std::shared_ptr<CircuitBreaker> breaker_for(const std::string& key)
        CAST_EXCLUDES(breaker_mutex_);
    /// Fulfill one pending with its response, maintaining the
    /// completed/rejected/errors counters (a dispatch-time shed counts as
    /// rejected, not completed).
    void fulfill(Pending& pending, PlanResponse&& resp);
    /// Coalescing identity: kind, solver-relevant options, and the full
    /// workload/workflow content (spec serialization + job names).
    [[nodiscard]] static std::string dedup_key(const PlanRequest& request);

    /// Pre-resolved instrument references (counters mirroring the atomics
    /// below one-for-one, per-priority latency histograms). Null unless
    /// options_.obs.metrics — every hot-path hook is `if (inst_)`.
    struct Instruments;
    /// Register the serve.* pull gauges (queue depth, in-flight, EWMA,
    /// cache stats, breaker states) against live service state. Called
    /// once from the constructor, before the dispatcher starts.
    void register_gauges();
    /// Breaker aggregates for the pull gauges.
    [[nodiscard]] double open_breaker_count() const CAST_EXCLUDES(breaker_mutex_);
    [[nodiscard]] double total_breaker_trips() const CAST_EXCLUDES(breaker_mutex_);
    /// Push a span for one fulfilled response (no-op when tracing is off).
    /// `enqueued`/`dispatched` stamp the admit/dequeue events; `solved` is
    /// unset for sheds, which never reach a solver.
    void trace_response(const PlanRequest& request, const PlanResponse& resp,
                        std::chrono::steady_clock::time_point enqueued,
                        std::optional<std::chrono::steady_clock::time_point> dispatched,
                        std::optional<std::chrono::steady_clock::time_point> solved,
                        const std::string& note);

    ServiceOptions options_;
    mutable Mutex snapshot_mutex_;
    SnapshotPtr snapshot_ CAST_GUARDED_BY(snapshot_mutex_);

    /// Observability state. The registry/ring own their synchronization;
    /// inst_ is written once in the constructor and read-only afterwards.
    obs::MetricsRegistry metrics_;
    obs::TraceRing trace_;
    std::unique_ptr<Instruments> inst_;

    BoundedPriorityQueue<std::unique_ptr<Pending>> queue_;
    ThreadPool pool_;
    CancelToken cancel_;
    OverloadGovernor governor_;
    ServeFaultInjector injector_;

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> swaps_{0};
    std::atomic<std::uint64_t> served_full_{0};
    std::atomic<std::uint64_t> served_trimmed_{0};
    std::atomic<std::uint64_t> served_greedy_{0};
    std::atomic<std::uint64_t> governor_shed_{0};
    std::atomic<std::uint64_t> deadline_shed_{0};
    std::atomic<std::uint64_t> amend_requests_{0};
    std::atomic<std::uint64_t> amend_escalations_{0};
    std::atomic<std::uint64_t> amend_greedy_{0};
    std::atomic<std::uint64_t> solve_retries_{0};
    std::atomic<std::uint64_t> breaker_fastfail_{0};
    std::atomic<std::uint64_t> swap_clears_suppressed_{0};
    /// Requests popped from the queue whose response is not yet fulfilled;
    /// feeds the governor's backlog estimate together with queue depth.
    std::atomic<std::size_t> in_flight_{0};

    /// Plan store for amend requests. Two-level locking: store_mutex_
    /// guards the handle map only; each entry carries its own mutex held
    /// for the whole amend, so amendments to one handle serialize (each
    /// builds on the previous plan) while different handles amend in
    /// parallel. Entries are shared_ptr so a map rehash never moves a
    /// locked entry.
    struct StoredPlan {
        mutable Mutex mu;
        workload::Workload workload CAST_GUARDED_BY(mu);
        core::TieringPlan plan CAST_GUARDED_BY(mu);
        bool reuse_aware CAST_GUARDED_BY(mu) = false;
    };
    mutable Mutex store_mutex_;
    std::unordered_map<std::string, std::shared_ptr<StoredPlan>> plans_
        CAST_GUARDED_BY(store_mutex_);

    static constexpr std::size_t kMaxBreakers = 256;
    mutable Mutex breaker_mutex_;
    std::unordered_map<std::string, std::shared_ptr<CircuitBreaker>> breakers_
        CAST_GUARDED_BY(breaker_mutex_);
    /// Trips carried over from evicted breakers so stats stay monotonic.
    std::uint64_t evicted_breaker_trips_ CAST_GUARDED_BY(breaker_mutex_) = 0;
    /// Swap-storm guard state. The breaker is internally synchronized (it
    /// sits below every service mutex in the lock hierarchy); the storm
    /// detector's timestamps share the snapshot mutex because they are only
    /// touched inside swap_snapshot's swap critical section.
    CircuitBreaker swap_breaker_;
    std::chrono::steady_clock::time_point last_swap_ CAST_GUARDED_BY(snapshot_mutex_){};
    bool any_swap_ CAST_GUARDED_BY(snapshot_mutex_) = false;

    /// Started last: everything it touches must already be constructed.
    std::thread dispatcher_;
};

}  // namespace cast::serve
