#include "serve/request_spec.hpp"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "workload/spec_parser.hpp"

namespace cast::serve {

namespace {

/// Upper bound on `repeat=` expansion — a typo'd repeat should be a parse
/// error, not an out-of-memory.
constexpr std::uint64_t kMaxRepeat = 1'000'000;

[[noreturn]] void fail(const std::string& path, int line, const std::string& what) {
    throw ValidationError("request file " + path + ", line " + std::to_string(line) + ": " +
                          what);
}

std::uint64_t parse_count(const std::string& path, int line, const std::string& key,
                          const std::string& value) {
    if (value.empty()) fail(path, line, key + " needs a value (" + key + "=N)");
    // std::stoull silently wraps negatives ("-1" becomes 2^64-1); reject
    // signs before it gets the chance.
    if (value.front() == '-' || value.front() == '+') {
        fail(path, line, key + " must be an unsigned integer, got '" + value + "'");
    }
    try {
        std::size_t pos = 0;
        const unsigned long long v = std::stoull(value, &pos);
        if (pos != value.size()) {
            fail(path, line, key + " has trailing characters: '" + value + "'");
        }
        return v;
    } catch (const ValidationError&) {
        throw;
    } catch (const std::exception&) {
        fail(path, line, "malformed or out-of-range " + key + " value '" + value + "'");
    }
}

double parse_ms(const std::string& path, int line, const std::string& key,
                const std::string& value) {
    if (value.empty()) fail(path, line, key + " needs a value (" + key + "=X)");
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size()) {
            fail(path, line, key + " has trailing characters: '" + value + "'");
        }
        // std::stod happily parses "inf" and "nan"; neither is a budget.
        if (!std::isfinite(v)) fail(path, line, key + " must be finite, got " + value);
        if (v < 0.0) fail(path, line, key + " must be >= 0, got " + value);
        return v;
    } catch (const ValidationError&) {
        throw;
    } catch (const std::exception&) {
        fail(path, line, "malformed " + key + " value '" + value + "'");
    }
}

Priority parse_priority(const std::string& path, int line, const std::string& value) {
    if (value == "high") return Priority::kHigh;
    if (value == "normal") return Priority::kNormal;
    if (value == "low") return Priority::kLow;
    fail(path, line, "unknown priority '" + value + "' (want high|normal|low)");
}

/// Comma-separated job-id list for depart= (same digits-only discipline as
/// parse_count, per element; empty elements — "1,,2", trailing comma — are
/// rejected rather than silently skipped).
std::vector<int> parse_depart_list(const std::string& path, int line,
                                   const std::string& value) {
    if (value.empty()) fail(path, line, "depart needs a value (depart=id,id,...)");
    std::vector<int> ids;
    std::size_t begin = 0;
    while (begin <= value.size()) {
        const std::size_t comma = value.find(',', begin);
        const std::string element = comma == std::string::npos
                                        ? value.substr(begin)
                                        : value.substr(begin, comma - begin);
        if (element.empty()) fail(path, line, "depart has an empty id in '" + value + "'");
        const std::uint64_t id = parse_count(path, line, "depart", element);
        if (id > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
            fail(path, line, "depart id out of range: '" + element + "'");
        }
        ids.push_back(static_cast<int>(id));
        if (comma == std::string::npos) break;
        begin = comma + 1;
    }
    return ids;
}

/// Parse-once spec loading shared by request and amend lines.
const workload::ParsedSpec& load_spec(std::map<std::string, workload::ParsedSpec>& cache,
                                      const std::string& path, int line,
                                      const std::string& spec_rel,
                                      const std::string& spec_path) {
    auto it = cache.find(spec_path);
    if (it == cache.end()) {
        try {
            it = cache.emplace(spec_path, workload::parse_spec_file(spec_path)).first;
        } catch (const std::exception& e) {
            fail(path, line, std::string("bad spec '") + spec_rel + "': " + e.what());
        }
    }
    return it->second;
}

}  // namespace

std::vector<PlanRequest> load_requests(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw ValidationError("cannot read request file: " + path);
    const std::filesystem::path base = std::filesystem::path(path).parent_path();

    // Each spec file is parsed once even when many lines (or repeats)
    // reference it — a replay file naturally hammers a few templates.
    std::map<std::string, workload::ParsedSpec> spec_cache;
    std::vector<PlanRequest> requests;
    std::uint64_t next_id = 1;

    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream tokens(line);
        std::string keyword;
        if (!(tokens >> keyword)) continue;  // blank/comment line

        if (keyword == "amend") {
            std::string handle;
            if (!(tokens >> handle) || handle.find('=') != std::string::npos) {
                fail(path, lineno, "missing plan handle after 'amend'");
            }
            PlanRequest req;
            req.kind = RequestKind::kAmend;
            req.plan_handle = handle;
            workload::JobDelta delta;
            std::string opt;
            while (tokens >> opt) {
                const auto eq = opt.find('=');
                const std::string key = opt.substr(0, eq);
                const std::string value = eq == std::string::npos ? "" : opt.substr(eq + 1);
                if (key == "arrive") {
                    if (value.empty()) {
                        fail(path, lineno, "arrive needs a value (arrive=path.spec)");
                    }
                    const std::string spec_path = (base / value).string();
                    const workload::ParsedSpec& spec =
                        load_spec(spec_cache, path, lineno, value, spec_path);
                    if (spec.is_workflow()) {
                        fail(path, lineno, "arrive= wants a batch spec, '" + value +
                                               "' is a workflow");
                    }
                    for (const workload::JobSpec& job : spec.workload->jobs()) {
                        delta.arrivals.push_back(job);
                    }
                } else if (key == "depart") {
                    const std::vector<int> ids = parse_depart_list(path, lineno, value);
                    delta.departures.insert(delta.departures.end(), ids.begin(), ids.end());
                } else if (key == "seed") {
                    req.seed = parse_count(path, lineno, "seed", value);
                } else if (key == "priority") {
                    req.priority = parse_priority(path, lineno, value);
                } else if (key == "budget-ms") {
                    req.max_wall_ms = parse_ms(path, lineno, "budget-ms", value);
                } else if (key == "deadline-ms") {
                    req.deadline_ms = parse_ms(path, lineno, "deadline-ms", value);
                    if (req.deadline_ms == 0.0) {
                        fail(path, lineno, "deadline-ms must be positive (omit for none)");
                    }
                } else if (key == "reuse-aware") {
                    fail(path, lineno,
                         "reuse-aware does not apply to amend lines (awareness comes "
                         "from the stored plan)");
                } else if (key == "repeat") {
                    fail(path, lineno,
                         "repeat does not apply to amend lines (amends are stateful, "
                         "not idempotent)");
                } else {
                    fail(path, lineno, "unknown option '" + opt + "'");
                }
            }
            if (delta.arrivals.empty() && delta.departures.empty()) {
                fail(path, lineno, "amend needs at least one of arrive=/depart=");
            }
            req.delta = std::move(delta);
            req.id = next_id++;
            requests.push_back(std::move(req));
            continue;
        }

        if (keyword != "request") {
            fail(path, lineno,
                 "unknown directive '" + keyword + "' (want 'request' or 'amend')");
        }
        std::string spec_rel;
        if (!(tokens >> spec_rel)) fail(path, lineno, "missing spec path after 'request'");
        const std::string spec_path = (base / spec_rel).string();

        PlanRequest proto;
        std::uint64_t repeat = 1;
        std::string opt;
        while (tokens >> opt) {
            const auto eq = opt.find('=');
            const std::string key = opt.substr(0, eq);
            const std::string value = eq == std::string::npos ? "" : opt.substr(eq + 1);
            if (key == "seed") {
                proto.seed = parse_count(path, lineno, "seed", value);
            } else if (key == "priority") {
                proto.priority = parse_priority(path, lineno, value);
            } else if (key == "budget-ms") {
                proto.max_wall_ms = parse_ms(path, lineno, "budget-ms", value);
            } else if (key == "deadline-ms") {
                proto.deadline_ms = parse_ms(path, lineno, "deadline-ms", value);
                if (proto.deadline_ms == 0.0) {
                    fail(path, lineno, "deadline-ms must be positive (omit for none)");
                }
            } else if (key == "reuse-aware") {
                if (eq != std::string::npos) {
                    fail(path, lineno, "reuse-aware is a flag and takes no value");
                }
                proto.reuse_aware = true;
            } else if (key == "handle") {
                if (value.empty()) fail(path, lineno, "handle needs a value (handle=name)");
                proto.plan_handle = value;
            } else if (key == "repeat") {
                repeat = parse_count(path, lineno, "repeat", value);
                if (repeat == 0) fail(path, lineno, "repeat must be >= 1");
                if (repeat > kMaxRepeat) {
                    fail(path, lineno, "repeat too large (max " +
                                           std::to_string(kMaxRepeat) + ")");
                }
            } else {
                fail(path, lineno, "unknown option '" + opt + "'");
            }
        }

        const workload::ParsedSpec& spec =
            load_spec(spec_cache, path, lineno, spec_rel, spec_path);
        if (spec.is_workflow()) {
            proto.kind = RequestKind::kWorkflow;
            proto.workflow = spec.workflow;
            if (proto.reuse_aware) {
                fail(path, lineno, "reuse-aware applies to batch specs, '" + spec_rel +
                                       "' is a workflow");
            }
            if (!proto.plan_handle.empty()) {
                fail(path, lineno, "handle= applies to batch specs, '" + spec_rel +
                                       "' is a workflow");
            }
        } else {
            proto.kind = RequestKind::kBatch;
            proto.workload = spec.workload;
        }

        for (std::uint64_t r = 0; r < repeat; ++r) {
            PlanRequest req = proto;
            req.id = next_id++;
            requests.push_back(std::move(req));
        }
    }
    return requests;
}

}  // namespace cast::serve
