// Plain-text request files for `cast_plan serve` and replay tooling.
//
// One request per line, referencing workload/workflow spec files (the
// format workload/spec_parser.hpp defines). '#' comments, whitespace-split:
//
//   # a replay mix
//   request specs/nightly.spec seed=7 priority=high budget-ms=50
//   request specs/adhoc.spec reuse-aware repeat=20
//   request specs/etl.spec priority=low
//   # streaming: solve once into a handle, then amend as jobs come and go
//   request specs/nightly.spec handle=live seed=7
//   amend live arrive=specs/burst.spec depart=3,17 seed=7
//
// `request` options:
//   seed=N          solver seed override (default: the service's seed)
//   priority=P      high | normal | low          (default normal)
//   budget-ms=X     per-request wall budget      (default: service default)
//   deadline-ms=X   end-to-end deadline; with the overload governor's
//                   deadline admission on, provably-late requests are shed
//   reuse-aware     plan with CAST++ Enhancement 1 (batch specs only)
//   handle=NAME     store the solved plan under NAME for later amends
//                   (batch specs only)
//   repeat=N        expand into N identical requests (replay popular
//                   templates — the cross-request cache's bread and butter)
//
// `amend <handle>` applies a job-set delta to the plan stored under
// <handle> (the incremental re-planner, core/incremental.hpp):
//   arrive=SPEC     jobs of this batch spec arrive (repeatable; appended)
//   depart=I,J,...  comma-separated job ids that completed and leave
//   seed= / priority= / budget-ms= / deadline-ms=   as above
// At least one of arrive=/depart= is required. reuse-aware is rejected
// (awareness comes from the stored plan) and repeat= is rejected (amends
// are stateful, so replaying one is not idempotent).
//
// Spec paths are resolved relative to the request file's own directory, so
// request files are relocatable alongside their specs. Each referenced
// spec is parsed once and shared across its repeats. Ids are assigned
// sequentially in file order, starting at 1.
#pragma once

#include <string>
#include <vector>

#include "serve/service.hpp"

namespace cast::serve {

/// Parse a request file. Throws ValidationError naming the offending line
/// on any syntax error, unknown option, or unreadable spec.
[[nodiscard]] std::vector<PlanRequest> load_requests(const std::string& path);

}  // namespace cast::serve
