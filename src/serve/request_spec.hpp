// Plain-text request files for `cast_plan serve` and replay tooling.
//
// One request per line, referencing workload/workflow spec files (the
// format workload/spec_parser.hpp defines). '#' comments, whitespace-split:
//
//   # a replay mix
//   request specs/nightly.spec seed=7 priority=high budget-ms=50
//   request specs/adhoc.spec reuse-aware repeat=20
//   request specs/etl.spec priority=low
//
// Options:
//   seed=N          solver seed override (default: the service's seed)
//   priority=P      high | normal | low          (default normal)
//   budget-ms=X     per-request wall budget      (default: service default)
//   deadline-ms=X   end-to-end deadline; with the overload governor's
//                   deadline admission on, provably-late requests are shed
//   reuse-aware     plan with CAST++ Enhancement 1 (batch specs only)
//   repeat=N        expand into N identical requests (replay popular
//                   templates — the cross-request cache's bread and butter)
//
// Spec paths are resolved relative to the request file's own directory, so
// request files are relocatable alongside their specs. Each referenced
// spec is parsed once and shared across its repeats. Ids are assigned
// sequentially in file order, starting at 1.
#pragma once

#include <string>
#include <vector>

#include "serve/service.hpp"

namespace cast::serve {

/// Parse a request file. Throws ValidationError naming the offending line
/// on any syntax error, unknown option, or unreadable spec.
[[nodiscard]] std::vector<PlanRequest> load_requests(const std::string& path);

}  // namespace cast::serve
