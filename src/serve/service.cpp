#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "workload/spec_parser.hpp"

namespace cast::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Service-wide solver options specialized to one request: seed and wall
/// budget come from the request (falling back to service defaults), the
/// cancel token from the service. Everything else is shared config.
core::CastOptions request_options(const ServiceOptions& service, const PlanRequest& request,
                                  const CancelToken* cancel) {
    core::CastOptions opts = service.solver;
    if (request.seed) opts.annealing.seed = *request.seed;
    opts.annealing.max_wall_ms =
        request.max_wall_ms > 0.0 ? request.max_wall_ms : service.default_max_wall_ms;
    opts.annealing.cancel = cancel;
    return opts;
}

PlanResponse shed_response(const PlanRequest& request, std::uint64_t epoch,
                           std::string why) {
    PlanResponse resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.status = ResponseStatus::kRejected;
    resp.error = std::move(why);
    resp.snapshot_epoch = epoch;
    resp.degradation_level = DegradationLevel::kShed;
    return resp;
}

}  // namespace

PlannerService::PlannerService(SnapshotPtr snapshot, ServiceOptions options)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      queue_(options_.queue_capacity, 3),
      pool_(options_.workers),
      governor_(options_.governor, std::max<std::size_t>(std::size_t{1}, options_.workers),
                options_.queue_capacity),
      injector_(options_.faults),
      swap_breaker_(options_.governor.swap_breaker) {
    CAST_EXPECTS_MSG(snapshot_ != nullptr, "PlannerService needs a snapshot");
    CAST_EXPECTS(options_.max_batch >= 1);
    CAST_EXPECTS(options_.default_max_wall_ms >= 0.0);
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

PlannerService::~PlannerService() {
    // Close admission; the dispatcher drains whatever is already queued
    // (fast when cancel_inflight() latched the token) and exits on the
    // queue's closed+empty signal. Pool workers join in ~ThreadPool.
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<PlanResponse> PlannerService::submit(PlanRequest request) {
    submitted_.fetch_add(1, std::memory_order_relaxed);

    // Deadline-aware admission: with queue pressure P requests deep and an
    // EWMA solve latency of E ms, a new request waits ~ P*E/workers before
    // any worker touches it. If that alone exceeds the declared deadline,
    // solving it would produce an answer nobody can use — shed now, while
    // it is still free.
    if (governor_.enabled() && options_.governor.deadline_admission &&
        request.deadline_ms > 0.0 &&
        governor_.provably_late(request.deadline_ms, queue_.size(),
                                in_flight_.load(std::memory_order_relaxed))) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        deadline_shed_.fetch_add(1, std::memory_order_relaxed);
        PlanResponse resp = shed_response(
            request, 0, "deadline shed: predicted queue wait exceeds deadline-ms");
        std::promise<PlanResponse> immediate;
        immediate.set_value(std::move(resp));
        return immediate.get_future();
    }

    auto pending = std::make_unique<Pending>();
    pending->request = std::move(request);
    pending->enqueued = std::chrono::steady_clock::now();
    const std::uint64_t id = pending->request.id;
    const RequestKind kind = pending->request.kind;
    const auto level = static_cast<std::size_t>(pending->request.priority);
    // The future must be taken before the push: once admitted, the
    // dispatcher owns the Pending and may fulfill it at any moment.
    std::future<PlanResponse> fut = pending->promise.get_future();
    if (queue_.try_push(std::move(pending), level)) return fut;

    rejected_.fetch_add(1, std::memory_order_relaxed);
    PlanResponse resp;
    resp.id = id;
    resp.kind = kind;
    resp.status = ResponseStatus::kRejected;
    resp.error = "queue full or service shutting down";
    std::promise<PlanResponse> immediate;
    immediate.set_value(std::move(resp));
    return immediate.get_future();
}

void PlannerService::swap_snapshot(SnapshotPtr next) {
    CAST_EXPECTS_MSG(next != nullptr, "cannot swap in a null snapshot");
    SnapshotPtr old;
    bool storm_sample = false;
    {
        LockGuard lock(snapshot_mutex_);
        old = std::exchange(snapshot_, std::move(next));
        if (governor_.enabled()) {
            const auto now = std::chrono::steady_clock::now();
            storm_sample = any_swap_ && ms_between(last_swap_, now) <
                                            options_.governor.swap_storm_window_ms;
            last_swap_ = now;
            any_swap_ = true;
        }
    }
    swaps_.fetch_add(1, std::memory_order_relaxed);

    // Swap-storm guard: back-to-back swaps each clearing the outgoing cache
    // serialize every in-flight solve against a cold memo table. The clear
    // is an eager-invalidation optimization only — refcounting reclaims the
    // snapshot regardless, and the cache is a pure memo (same bits derive
    // either way) — so while the breaker says "storm", skip it.
    if (governor_.enabled()) {
        if (!swap_breaker_.allow()) {
            swap_clears_suppressed_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (storm_sample) {
            swap_breaker_.record_failure();
        } else {
            swap_breaker_.record_success();
        }
    }

    // Solves dispatched against the old snapshot may still be running;
    // clearing bumps the cache generation, so their thread-local L1 slots
    // are invalidated and values re-derive from the model set — the same
    // bits either way, since the cache is a pure memo.
    old->cache().clear();
}

SnapshotPtr PlannerService::snapshot() const {
    LockGuard lock(snapshot_mutex_);
    return snapshot_;
}

void PlannerService::cancel_inflight() { cancel_.request_stop(); }

ServiceStats PlannerService::stats() const {
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
    s.served_full = served_full_.load(std::memory_order_relaxed);
    s.served_trimmed = served_trimmed_.load(std::memory_order_relaxed);
    s.served_greedy = served_greedy_.load(std::memory_order_relaxed);
    s.governor_shed = governor_shed_.load(std::memory_order_relaxed);
    s.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
    s.solve_retries = solve_retries_.load(std::memory_order_relaxed);
    s.breaker_fastfail = breaker_fastfail_.load(std::memory_order_relaxed);
    s.swap_clears_suppressed = swap_clears_suppressed_.load(std::memory_order_relaxed);
    {
        LockGuard lock(breaker_mutex_);
        s.breaker_trips = evicted_breaker_trips_ + swap_breaker_.trips();
        for (const auto& [key, breaker] : breakers_) s.breaker_trips += breaker->trips();
    }
    s.ewma_solve_ms = governor_.ewma_solve_ms();
    s.cache = snapshot()->cache().stats();
    s.faults = injector_.stats();
    return s;
}

void PlannerService::dispatcher_loop() {
    std::vector<std::unique_ptr<Pending>> batch;
    for (;;) {
        batch.clear();
        if (queue_.pop_batch(batch, options_.max_batch) == 0) return;  // closed + drained
        batches_.fetch_add(1, std::memory_order_relaxed);
        dispatch_batch(batch);
    }
}

void PlannerService::fulfill(Pending& pending, PlanResponse&& resp) {
    if (resp.status == ResponseStatus::kRejected) {
        // A dispatch-time shed is backpressure, not completed work — same
        // accounting as a queue-full rejection at submit.
        rejected_.fetch_add(1, std::memory_order_relaxed);
    } else {
        if (resp.status == ResponseStatus::kError) {
            errors_.fetch_add(1, std::memory_order_relaxed);
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(resp));
}

void PlannerService::dispatch_batch(std::vector<std::unique_ptr<Pending>>& batch) {
    // One snapshot capture per dispatch: every request in the batch solves
    // against the same epoch even if a swap lands mid-batch.
    const SnapshotPtr snap = snapshot();
    in_flight_.fetch_add(batch.size(), std::memory_order_relaxed);

    // Coalesce identical requests: one representative solve per dedup key;
    // the duplicates get a copy of its response. The duplicate would have
    // computed exactly the same bits (deterministic solvers, shared
    // snapshot, identical options), so sharing is observationally free.
    std::vector<std::size_t> reps;
    std::vector<std::vector<std::size_t>> dupes;
    if (options_.coalesce_identical && batch.size() > 1) {
        std::map<std::string, std::size_t> groups;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto [it, inserted] =
                groups.emplace(dedup_key(batch[i]->request), reps.size());
            if (inserted) {
                reps.push_back(i);
                dupes.emplace_back();
            } else {
                dupes[it->second].push_back(i);
            }
        }
    } else {
        reps.resize(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) reps[i] = i;
        dupes.resize(batch.size());
    }

    pool_.parallel_for(
        reps.size(),
        [&](std::size_t r) {
            Pending& rep = *batch[reps[r]];
            const auto start = std::chrono::steady_clock::now();
            const double waited_ms = ms_between(rep.enqueued, start);

            // Walk the ladder: classify once per representative against the
            // live backlog, then either shed or solve at the chosen level.
            enum class Shed { kNone, kDeadline, kGovernor } shed = Shed::kNone;
            PlanResponse resp;
            if (governor_.enabled()) {
                const DegradationLevel level = governor_.classify(governor_.pressure(
                    queue_.size(), in_flight_.load(std::memory_order_relaxed)));
                if (options_.governor.deadline_admission &&
                    rep.request.deadline_ms > 0.0 &&
                    waited_ms > rep.request.deadline_ms) {
                    shed = Shed::kDeadline;
                    resp = shed_response(rep.request, snap->epoch(),
                                         "deadline shed: deadline-ms elapsed in queue");
                } else if (level == DegradationLevel::kShed) {
                    shed = Shed::kGovernor;
                    resp = shed_response(rep.request, snap->epoch(),
                                         "overload shed: backlog past the shed threshold");
                } else {
                    resp = solve_request(rep.request, *snap, level);
                }
            } else {
                resp = solve_request(rep.request, *snap, DegradationLevel::kFull);
            }
            resp.queue_ms = waited_ms;
            resp.solve_ms = ms_between(start, std::chrono::steady_clock::now());

            auto count_outcome = [&](const PlanResponse& out) {
                switch (shed) {
                    case Shed::kDeadline:
                        deadline_shed_.fetch_add(1, std::memory_order_relaxed);
                        return;
                    case Shed::kGovernor:
                        governor_shed_.fetch_add(1, std::memory_order_relaxed);
                        return;
                    case Shed::kNone:
                        break;
                }
                if (!out.ok()) return;
                switch (out.degradation_level) {
                    case DegradationLevel::kFull:
                        served_full_.fetch_add(1, std::memory_order_relaxed);
                        break;
                    case DegradationLevel::kTrimmed:
                        served_trimmed_.fetch_add(1, std::memory_order_relaxed);
                        break;
                    case DegradationLevel::kGreedy:
                        served_greedy_.fetch_add(1, std::memory_order_relaxed);
                        break;
                    case DegradationLevel::kShed:
                        break;
                }
            };

            if (shed == Shed::kNone) {
                // Feed the latency EWMA with actual solve time only — sheds
                // are near-free and would talk the governor out of shedding.
                governor_.record_solve_ms(resp.solve_ms);
            }

            for (const std::size_t d : dupes[r]) {
                Pending& dup = *batch[d];
                PlanResponse share = resp;
                share.id = dup.request.id;
                share.coalesced = true;
                share.queue_ms = ms_between(dup.enqueued, start);
                count_outcome(share);
                coalesced_.fetch_add(1, std::memory_order_relaxed);
                fulfill(dup, std::move(share));
            }
            count_outcome(resp);
            fulfill(rep, std::move(resp));
        },
        /*grain=*/1);
}

std::shared_ptr<CircuitBreaker> PlannerService::breaker_for(const std::string& key) {
    LockGuard lock(breaker_mutex_);
    const auto it = breakers_.find(key);
    if (it != breakers_.end()) return it->second;
    if (breakers_.size() >= kMaxBreakers) {
        // Wholesale eviction keeps the map bounded without LRU bookkeeping;
        // a poisoned template that reappears re-trips within one retry
        // budget. Trips are carried so stats stay monotonic.
        for (const auto& [k, b] : breakers_) evicted_breaker_trips_ += b->trips();
        breakers_.clear();
    }
    auto breaker = std::make_shared<CircuitBreaker>(options_.governor.breaker);
    breakers_.emplace(key, breaker);
    return breaker;
}

PlanResponse PlannerService::solve_request(const PlanRequest& request, const Snapshot& snap,
                                           DegradationLevel level) {
    const bool governed = governor_.enabled();

    // One breaker per request template: a template that keeps exhausting
    // its retry budget is failed fast instead of re-burning a worker every
    // time it reappears.
    std::shared_ptr<CircuitBreaker> breaker;
    if (governed) {
        breaker = breaker_for(dedup_key(request));
        if (!breaker->allow()) {
            breaker_fastfail_.fetch_add(1, std::memory_order_relaxed);
            PlanResponse resp;
            resp.id = request.id;
            resp.kind = request.kind;
            resp.status = ResponseStatus::kError;
            resp.error = "circuit breaker open: this request template is failing fast";
            resp.snapshot_epoch = snap.epoch();
            resp.degradation_level = level;
            return resp;
        }
    }

    const int max_attempts = governed ? options_.governor.retry.max_attempts : 1;
    PlanResponse resp;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
            solve_retries_.fetch_add(1, std::memory_order_relaxed);
            sleep_backoff_ms(options_.governor.retry.wait_ms(attempt - 1));
        }
        try {
            if (injector_.enabled()) {
                const AttemptFault fault = injector_.on_attempt(request.id, attempt);
                sleep_backoff_ms(fault.stall_ms);  // worker stall: a real sleep
                if (fault.throw_exception) {
                    throw SimulationError("injected serve-layer solver fault", "",
                                          "serve");
                }
            }
            resp = solve_direct(snap, request, options_, &cancel_, level);
            resp.attempts = attempt + 1;
            if (breaker) breaker->record_success();
            return resp;
        } catch (const std::exception& e) {
            // Lint rejections, validation failures and injected faults are
            // per-request faults; they must never take down the service or
            // the batch.
            if (breaker) breaker->record_failure();
            resp = PlanResponse{};
            resp.id = request.id;
            resp.kind = request.kind;
            resp.status = ResponseStatus::kError;
            resp.error = e.what();
            resp.snapshot_epoch = snap.epoch();
            resp.degradation_level = level;
            resp.attempts = attempt + 1;
        }
    }
    return resp;
}

std::string PlannerService::dedup_key(const PlanRequest& request) {
    std::ostringstream os;
    os << (request.kind == RequestKind::kBatch ? 'B' : 'W') << '|' << request.reuse_aware
       << '|' << (request.seed ? std::to_string(*request.seed) : std::string("-")) << '|'
       << request.max_wall_ms << '|' << request.deadline_ms << '|';
    // The spec serialization covers everything the solvers read (sizes,
    // task counts, pins, reuse groups, deadlines); job names ride along
    // because lint notes quote them.
    if (request.workload) {
        workload::write_spec(*request.workload, os);
        for (std::size_t i = 0; i < request.workload->size(); ++i) {
            os << '|' << request.workload->job(i).name;
        }
    }
    if (request.workflow) {
        workload::write_spec(*request.workflow, os);
        os << '|' << request.workflow->name();
        for (const workload::JobSpec& job : request.workflow->jobs()) {
            os << '|' << job.name;
        }
    }
    return os.str();
}

PlanResponse PlannerService::solve_direct(const Snapshot& snapshot, const PlanRequest& request,
                                          const ServiceOptions& options,
                                          const CancelToken* cancel, DegradationLevel level) {
    CAST_EXPECTS_MSG(level != DegradationLevel::kShed,
                     "kShed is a rejection, not a solver mode");
    PlanResponse resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.snapshot_epoch = snapshot.epoch();
    resp.degradation_level = level;
    core::CastOptions opts = request_options(options, request, cancel);
    options.governor.apply(level, opts);  // kFull/kGreedy: no-op
    core::EvalCache& cache = snapshot.cache();
    if (request.kind == RequestKind::kBatch) {
        CAST_EXPECTS_MSG(request.workload.has_value(), "batch request carries no workload");
        if (level == DegradationLevel::kGreedy) {
            resp.batch = core::plan_cast_greedy(snapshot.models(), *request.workload, opts,
                                                request.reuse_aware, &cache);
        } else if (request.reuse_aware) {
            resp.batch = core::plan_cast_plus_plus(snapshot.models(), *request.workload,
                                                   opts, nullptr, &cache);
        } else {
            resp.batch =
                core::plan_cast(snapshot.models(), *request.workload, opts, nullptr, &cache);
        }
    } else {
        CAST_EXPECTS_MSG(request.workflow.has_value(), "workflow request carries no workflow");
        const core::WorkflowEvaluator evaluator(snapshot.models(), *request.workflow);
        const core::WorkflowSolver solver(evaluator, opts.annealing,
                                          options.workflow_deadline_safety);
        resp.workflow = level == DegradationLevel::kGreedy ? solver.solve_greedy(&cache)
                                                           : solver.solve(nullptr, &cache);
    }
    resp.status = ResponseStatus::kOk;
    return resp;
}

}  // namespace cast::serve
