#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "workload/spec_parser.hpp"

namespace cast::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Service-wide solver options specialized to one request: seed and wall
/// budget come from the request (falling back to service defaults), the
/// cancel token from the service. Everything else is shared config.
core::CastOptions request_options(const ServiceOptions& service, const PlanRequest& request,
                                  const CancelToken* cancel) {
    core::CastOptions opts = service.solver;
    if (request.seed) opts.annealing.seed = *request.seed;
    opts.annealing.max_wall_ms =
        request.max_wall_ms > 0.0 ? request.max_wall_ms : service.default_max_wall_ms;
    opts.annealing.cancel = cancel;
    return opts;
}

PlanResponse shed_response(const PlanRequest& request, std::uint64_t epoch,
                           std::string why) {
    PlanResponse resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.status = ResponseStatus::kRejected;
    resp.error = std::move(why);
    resp.snapshot_epoch = epoch;
    resp.degradation_level = DegradationLevel::kShed;
    return resp;
}

}  // namespace

const char* priority_name(Priority priority) {
    switch (priority) {
        case Priority::kHigh: return "high";
        case Priority::kNormal: return "normal";
        case Priority::kLow: return "low";
    }
    return "unknown";
}

/// One instrument per ServiceStats atomic, resolved once at construction so
/// the hot path touches pre-cached references only. The counters mirror the
/// atomics one-for-one (incremented at the same sites), which is what lets
/// the obs integration test assert exact agreement between the two views.
struct PlannerService::Instruments {
    obs::Counter& submitted;
    obs::Counter& completed;
    obs::Counter& rejected;
    obs::Counter& errors;
    obs::Counter& coalesced;
    obs::Counter& batches;
    obs::Counter& served_full;
    obs::Counter& served_trimmed;
    obs::Counter& served_greedy;
    obs::Counter& shed_overload;
    obs::Counter& shed_deadline;
    obs::Counter& retries;
    obs::Counter& breaker_fastfail;
    obs::Counter& swaps;
    obs::Counter& swap_clears_suppressed;
    /// End-to-end latency (queue wait + solve) by request priority.
    obs::Histogram& latency_high;
    obs::Histogram& latency_normal;
    obs::Histogram& latency_low;
    /// Representative solve time only (coalesced copies share the solve).
    obs::Histogram& solve_ms;
    /// Solves answered by the replica-exchange path (replicas > 0).
    obs::Counter& tempering_solves;
    /// Incremental re-planning instruments, incremented at the same sites
    /// as the amend_* ServiceStats atomics.
    obs::Counter& amends;
    obs::Counter& amend_escalations;
    obs::Counter& amend_greedy;
    /// Restricted-neighborhood size per amend (the knob the ladder shrinks).
    obs::Histogram& amend_neighborhood;
    /// Registry handle for the per-rung/per-replica tempering instruments:
    /// their cardinality is the request's replica count, unknown at
    /// construction, so record_tempering() resolves them by name once per
    /// solve (one mutex+map hit per solve, nothing in the iteration loop).
    obs::MetricsRegistry& registry;

    explicit Instruments(obs::MetricsRegistry& reg)
        : submitted(reg.counter("serve.requests.submitted")),
          completed(reg.counter("serve.requests.completed")),
          rejected(reg.counter("serve.requests.rejected")),
          errors(reg.counter("serve.requests.errors")),
          coalesced(reg.counter("serve.requests.coalesced")),
          batches(reg.counter("serve.dispatch.batches")),
          served_full(reg.counter("serve.governor.served_full")),
          served_trimmed(reg.counter("serve.governor.served_trimmed")),
          served_greedy(reg.counter("serve.governor.served_greedy")),
          shed_overload(reg.counter("serve.governor.shed_overload")),
          shed_deadline(reg.counter("serve.governor.shed_deadline")),
          retries(reg.counter("serve.retry.attempts")),
          breaker_fastfail(reg.counter("serve.breaker.fastfail")),
          swaps(reg.counter("serve.snapshot.swaps")),
          swap_clears_suppressed(reg.counter("serve.snapshot.clears_suppressed")),
          latency_high(reg.histogram("serve.latency_ms.high")),
          latency_normal(reg.histogram("serve.latency_ms.normal")),
          latency_low(reg.histogram("serve.latency_ms.low")),
          solve_ms(reg.histogram("serve.solve_ms")),
          tempering_solves(reg.counter("solver.tempering.solves")),
          amends(reg.counter("solver.incremental.amends")),
          amend_escalations(reg.counter("solver.incremental.escalations")),
          amend_greedy(reg.counter("solver.incremental.greedy_amends")),
          amend_neighborhood(reg.histogram("solver.incremental.neighborhood_jobs")),
          registry(reg) {}

    /// Fold one amend's statistics into the registry. The hit-rate gauge
    /// reflects the shared cache as of the most recent amend — the warm-
    /// cache-across-amendments signal the incremental engine lives on.
    void record_amend(const core::AmendResult& result) {
        amends.add();
        if (result.escalated_cold) amend_escalations.add();
        if (result.greedy_only) amend_greedy.add();
        amend_neighborhood.observe(static_cast<double>(result.neighborhood.size()));
        registry.gauge("solver.incremental.amend_cache_hit_rate")
            .set(result.cache_stats.hit_rate());
    }

    /// Fold one solve's replica-exchange statistics into the registry:
    /// exchange attempt/accept totals per ladder rung (counters, summed
    /// across solves) and per-replica iteration throughput for the most
    /// recent solve (gauges). No-op for legacy-path results.
    void record_tempering(const core::TemperingStats& stats, double ms) {
        if (!stats.enabled()) return;
        tempering_solves.add();
        for (std::size_t k = 0; k < stats.exchange_attempts.size(); ++k) {
            const std::string rung = ".rung" + std::to_string(k);
            registry.counter("solver.tempering.exchanges_attempted" + rung)
                .add(stats.exchange_attempts[k]);
            registry.counter("solver.tempering.exchanges_accepted" + rung)
                .add(stats.exchange_accepts[k]);
        }
        const double secs = ms / 1000.0;
        if (secs <= 0.0) return;
        for (std::size_t r = 0; r < stats.replica_iterations.size(); ++r) {
            registry.gauge("solver.tempering.replica_iters_per_sec.r" + std::to_string(r))
                .set(static_cast<double>(stats.replica_iterations[r]) / secs);
        }
    }

    [[nodiscard]] obs::Histogram& latency_for(Priority priority) {
        switch (priority) {
            case Priority::kHigh: return latency_high;
            case Priority::kLow: return latency_low;
            case Priority::kNormal: break;
        }
        return latency_normal;
    }
};

PlannerService::PlannerService(SnapshotPtr snapshot, ServiceOptions options)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      trace_(options_.obs.trace_capacity),
      queue_(options_.queue_capacity, 3),
      pool_(options_.workers),
      governor_(options_.governor, std::max<std::size_t>(std::size_t{1}, options_.workers),
                options_.queue_capacity),
      injector_(options_.faults),
      swap_breaker_(options_.governor.swap_breaker) {
    CAST_EXPECTS_MSG(snapshot_ != nullptr, "PlannerService needs a snapshot");
    CAST_EXPECTS(options_.max_batch >= 1);
    CAST_EXPECTS(options_.default_max_wall_ms >= 0.0);
    // Instruments and gauges must exist before the dispatcher can run a
    // single request; inst_ is immutable from here on.
    if (options_.obs.metrics) {
        inst_ = std::make_unique<Instruments>(metrics_);
        register_gauges();
    }
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

PlannerService::~PlannerService() {
    // Close admission; the dispatcher drains whatever is already queued
    // (fast when cancel_inflight() latched the token) and exits on the
    // queue's closed+empty signal. Pool workers join in ~ThreadPool.
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
}

void PlannerService::register_gauges() {
    // Pull gauges read live service state at export time. The registry
    // evaluates them outside its own mutex, so taking snapshot_mutex_ /
    // breaker_mutex_ (or the governor's) inside a callback adds no
    // lock-order edge. Callbacks capture `this`; the registry is a member,
    // so exports cannot outlive the service.
    metrics_.gauge_fn("serve.queue.depth",
                      [this] { return static_cast<double>(queue_.size()); });
    metrics_.gauge_fn("serve.inflight", [this] {
        return static_cast<double>(in_flight_.load(std::memory_order_relaxed));
    });
    metrics_.gauge_fn("serve.governor.ewma_solve_ms",
                      [this] { return governor_.ewma_solve_ms(); });
    metrics_.gauge_fn("serve.governor.ewma_seeded",
                      [this] { return governor_.ewma_seeded() ? 1.0 : 0.0; });
    metrics_.gauge_fn("serve.snapshot.epoch", [this] {
        return static_cast<double>(snapshot()->epoch());
    });
    metrics_.gauge_fn("serve.cache.hit_rate",
                      [this] { return snapshot()->cache().stats().hit_rate(); });
    metrics_.gauge_fn("serve.cache.generation_bumps", [this] {
        return static_cast<double>(snapshot()->cache().stats().generation_bumps);
    });
    metrics_.gauge_fn("serve.cache.inserts", [this] {
        return static_cast<double>(snapshot()->cache().stats().inserts);
    });
    metrics_.gauge_fn("serve.breakers.open", [this] { return open_breaker_count(); });
    metrics_.gauge_fn("serve.breakers.trips", [this] { return total_breaker_trips(); });
}

double PlannerService::open_breaker_count() const {
    // Holding breaker_mutex_ while reading each breaker's own lock follows
    // the established order (stats() reads trips() the same way).
    double open = swap_breaker_.state() == BreakerState::kOpen ? 1.0 : 0.0;
    LockGuard lock(breaker_mutex_);
    for (const auto& [key, breaker] : breakers_) {
        if (breaker->state() == BreakerState::kOpen) open += 1.0;
    }
    return open;
}

double PlannerService::total_breaker_trips() const {
    LockGuard lock(breaker_mutex_);
    std::uint64_t trips = evicted_breaker_trips_ + swap_breaker_.trips();
    for (const auto& [key, breaker] : breakers_) trips += breaker->trips();
    return static_cast<double>(trips);
}

void PlannerService::trace_response(
    const PlanRequest& request, const PlanResponse& resp,
    std::chrono::steady_clock::time_point enqueued,
    std::optional<std::chrono::steady_clock::time_point> dispatched,
    std::optional<std::chrono::steady_clock::time_point> solved, const std::string& note) {
    if (!trace_.enabled()) return;
    obs::TraceSpan span;
    span.id = resp.id;
    span.label = priority_name(request.priority);
    switch (resp.status) {
        case ResponseStatus::kOk: span.outcome = "ok"; break;
        case ResponseStatus::kRejected: span.outcome = "rejected"; break;
        case ResponseStatus::kError: span.outcome = "error"; break;
    }
    span.events.push_back({"admit", trace_.at_ms(enqueued), ""});
    if (dispatched) {
        span.events.push_back({"dequeue", trace_.at_ms(*dispatched), ""});
        // The ladder decision is made at dequeue time; kFull on an
        // ungoverned service documents "no governor in the way".
        span.events.push_back({"governor", trace_.at_ms(*dispatched),
                               degradation_level_name(resp.degradation_level)});
    }
    if (solved) {
        span.events.push_back(
            {"solve", trace_.at_ms(*solved), "attempts=" + std::to_string(resp.attempts)});
    }
    span.events.push_back({"respond", trace_.now_ms(), note});
    trace_.push(std::move(span));
}

std::future<PlanResponse> PlannerService::submit(PlanRequest request) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (inst_) inst_->submitted.add();

    // Deadline-aware admission: with queue pressure P requests deep and an
    // EWMA solve latency of E ms, a new request waits ~ P*E/workers before
    // any worker touches it. If that alone exceeds the declared deadline,
    // solving it would produce an answer nobody can use — shed now, while
    // it is still free.
    if (governor_.enabled() && options_.governor.deadline_admission &&
        request.deadline_ms > 0.0 &&
        governor_.provably_late(request.deadline_ms, queue_.size(),
                                in_flight_.load(std::memory_order_relaxed))) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        deadline_shed_.fetch_add(1, std::memory_order_relaxed);
        if (inst_) {
            inst_->rejected.add();
            inst_->shed_deadline.add();
        }
        PlanResponse resp = shed_response(
            request, 0, "deadline shed: predicted queue wait exceeds deadline-ms");
        trace_response(request, resp, std::chrono::steady_clock::now(), std::nullopt,
                       std::nullopt, resp.error);
        std::promise<PlanResponse> immediate;
        immediate.set_value(std::move(resp));
        return immediate.get_future();
    }

    auto pending = std::make_unique<Pending>();
    pending->request = std::move(request);
    pending->enqueued = std::chrono::steady_clock::now();
    const std::uint64_t id = pending->request.id;
    const RequestKind kind = pending->request.kind;
    const auto level = static_cast<std::size_t>(pending->request.priority);
    // The future must be taken before the push: once admitted, the
    // dispatcher owns the Pending and may fulfill it at any moment.
    std::future<PlanResponse> fut = pending->promise.get_future();
    if (queue_.try_push(std::move(pending), level)) return fut;

    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (inst_) inst_->rejected.add();
    PlanResponse resp;
    resp.id = id;
    resp.kind = kind;
    resp.status = ResponseStatus::kRejected;
    resp.error = "queue full or service shutting down";
    if (trace_.enabled()) {
        // The request moved into the queue attempt; stamp a minimal span
        // from what the rejection response carries.
        obs::TraceSpan span;
        span.id = id;
        span.label = priority_name(static_cast<Priority>(level));
        span.outcome = "rejected";
        const double now = trace_.now_ms();
        span.events.push_back({"admit", now, ""});
        span.events.push_back({"respond", now, resp.error});
        trace_.push(std::move(span));
    }
    std::promise<PlanResponse> immediate;
    immediate.set_value(std::move(resp));
    return immediate.get_future();
}

void PlannerService::swap_snapshot(SnapshotPtr next) {
    CAST_EXPECTS_MSG(next != nullptr, "cannot swap in a null snapshot");
    SnapshotPtr old;
    bool storm_sample = false;
    {
        LockGuard lock(snapshot_mutex_);
        old = std::exchange(snapshot_, std::move(next));
        if (governor_.enabled()) {
            const auto now = std::chrono::steady_clock::now();
            storm_sample = any_swap_ && ms_between(last_swap_, now) <
                                            options_.governor.swap_storm_window_ms;
            last_swap_ = now;
            any_swap_ = true;
        }
    }
    swaps_.fetch_add(1, std::memory_order_relaxed);
    if (inst_) inst_->swaps.add();

    // Swap-storm guard: back-to-back swaps each clearing the outgoing cache
    // serialize every in-flight solve against a cold memo table. The clear
    // is an eager-invalidation optimization only — refcounting reclaims the
    // snapshot regardless, and the cache is a pure memo (same bits derive
    // either way) — so while the breaker says "storm", skip it.
    if (governor_.enabled()) {
        if (!swap_breaker_.allow()) {
            swap_clears_suppressed_.fetch_add(1, std::memory_order_relaxed);
            if (inst_) inst_->swap_clears_suppressed.add();
            return;
        }
        if (storm_sample) {
            swap_breaker_.record_failure();
        } else {
            swap_breaker_.record_success();
        }
    }

    // Solves dispatched against the old snapshot may still be running;
    // clearing bumps the cache generation, so their thread-local L1 slots
    // are invalidated and values re-derive from the model set — the same
    // bits either way, since the cache is a pure memo.
    old->cache().clear();
}

SnapshotPtr PlannerService::snapshot() const {
    LockGuard lock(snapshot_mutex_);
    return snapshot_;
}

void PlannerService::cancel_inflight() { cancel_.request_stop(); }

ServiceStats PlannerService::stats() const {
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
    s.served_full = served_full_.load(std::memory_order_relaxed);
    s.served_trimmed = served_trimmed_.load(std::memory_order_relaxed);
    s.served_greedy = served_greedy_.load(std::memory_order_relaxed);
    s.governor_shed = governor_shed_.load(std::memory_order_relaxed);
    s.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
    s.amend_requests = amend_requests_.load(std::memory_order_relaxed);
    s.amend_escalations = amend_escalations_.load(std::memory_order_relaxed);
    s.amend_greedy = amend_greedy_.load(std::memory_order_relaxed);
    s.solve_retries = solve_retries_.load(std::memory_order_relaxed);
    s.breaker_fastfail = breaker_fastfail_.load(std::memory_order_relaxed);
    s.swap_clears_suppressed = swap_clears_suppressed_.load(std::memory_order_relaxed);
    {
        LockGuard lock(breaker_mutex_);
        s.breaker_trips = evicted_breaker_trips_ + swap_breaker_.trips();
        for (const auto& [key, breaker] : breakers_) s.breaker_trips += breaker->trips();
    }
    s.ewma_solve_ms = governor_.ewma_solve_ms();
    s.ewma_seeded = governor_.ewma_seeded();
    s.cache = snapshot()->cache().stats();
    s.faults = injector_.stats();
    return s;
}

void PlannerService::dispatcher_loop() {
    std::vector<std::unique_ptr<Pending>> batch;
    for (;;) {
        batch.clear();
        if (queue_.pop_batch(batch, options_.max_batch) == 0) return;  // closed + drained
        batches_.fetch_add(1, std::memory_order_relaxed);
        if (inst_) inst_->batches.add();
        dispatch_batch(batch);
    }
}

void PlannerService::fulfill(Pending& pending, PlanResponse&& resp) {
    if (resp.status == ResponseStatus::kRejected) {
        // A dispatch-time shed is backpressure, not completed work — same
        // accounting as a queue-full rejection at submit.
        rejected_.fetch_add(1, std::memory_order_relaxed);
        if (inst_) inst_->rejected.add();
    } else {
        if (resp.status == ResponseStatus::kError) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            if (inst_) inst_->errors.add();
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (inst_) {
            inst_->completed.add();
            if (resp.ok()) {
                // End-to-end latency by priority; solve time only for the
                // representative (a coalesced copy shared its rep's solve).
                inst_->latency_for(pending.request.priority)
                    .observe(resp.queue_ms + resp.solve_ms);
                if (!resp.coalesced) inst_->solve_ms.observe(resp.solve_ms);
            }
        }
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(resp));
}

void PlannerService::dispatch_batch(std::vector<std::unique_ptr<Pending>>& batch) {
    // One snapshot capture per dispatch: every request in the batch solves
    // against the same epoch even if a swap lands mid-batch.
    const SnapshotPtr snap = snapshot();
    in_flight_.fetch_add(batch.size(), std::memory_order_relaxed);

    // Coalesce identical requests: one representative solve per dedup key;
    // the duplicates get a copy of its response. The duplicate would have
    // computed exactly the same bits (deterministic solvers, shared
    // snapshot, identical options), so sharing is observationally free.
    std::vector<std::size_t> reps;
    std::vector<std::vector<std::size_t>> dupes;
    if (options_.coalesce_identical && batch.size() > 1) {
        std::map<std::string, std::size_t> groups;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto [it, inserted] =
                groups.emplace(dedup_key(batch[i]->request), reps.size());
            if (inserted) {
                reps.push_back(i);
                dupes.emplace_back();
            } else {
                dupes[it->second].push_back(i);
            }
        }
    } else {
        reps.resize(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) reps[i] = i;
        dupes.resize(batch.size());
    }

    pool_.parallel_for(
        reps.size(),
        [&](std::size_t r) {
            Pending& rep = *batch[reps[r]];
            const auto start = std::chrono::steady_clock::now();
            const double waited_ms = ms_between(rep.enqueued, start);

            // Walk the ladder: classify once per representative against the
            // live backlog, then either shed or solve at the chosen level.
            enum class Shed { kNone, kDeadline, kGovernor } shed = Shed::kNone;
            PlanResponse resp;
            if (governor_.enabled()) {
                const DegradationLevel level = governor_.classify(governor_.pressure(
                    queue_.size(), in_flight_.load(std::memory_order_relaxed)));
                if (options_.governor.deadline_admission &&
                    rep.request.deadline_ms > 0.0 &&
                    waited_ms > rep.request.deadline_ms) {
                    shed = Shed::kDeadline;
                    resp = shed_response(rep.request, snap->epoch(),
                                         "deadline shed: deadline-ms elapsed in queue");
                } else if (level == DegradationLevel::kShed) {
                    shed = Shed::kGovernor;
                    resp = shed_response(rep.request, snap->epoch(),
                                         "overload shed: backlog past the shed threshold");
                } else {
                    resp = solve_request(rep.request, *snap, level);
                }
            } else {
                resp = solve_request(rep.request, *snap, DegradationLevel::kFull);
            }
            const auto solved_at = std::chrono::steady_clock::now();
            resp.queue_ms = waited_ms;
            resp.solve_ms = ms_between(start, solved_at);
            if (inst_ && resp.ok()) {
                if (resp.batch) inst_->record_tempering(resp.batch->tempering, resp.solve_ms);
                if (resp.workflow) {
                    inst_->record_tempering(resp.workflow->tempering, resp.solve_ms);
                }
            }

            auto count_outcome = [&](const PlanResponse& out) {
                switch (shed) {
                    case Shed::kDeadline:
                        deadline_shed_.fetch_add(1, std::memory_order_relaxed);
                        if (inst_) inst_->shed_deadline.add();
                        return;
                    case Shed::kGovernor:
                        governor_shed_.fetch_add(1, std::memory_order_relaxed);
                        if (inst_) inst_->shed_overload.add();
                        return;
                    case Shed::kNone:
                        break;
                }
                if (!out.ok()) return;
                switch (out.degradation_level) {
                    case DegradationLevel::kFull:
                        served_full_.fetch_add(1, std::memory_order_relaxed);
                        if (inst_) inst_->served_full.add();
                        break;
                    case DegradationLevel::kTrimmed:
                        served_trimmed_.fetch_add(1, std::memory_order_relaxed);
                        if (inst_) inst_->served_trimmed.add();
                        break;
                    case DegradationLevel::kGreedy:
                        served_greedy_.fetch_add(1, std::memory_order_relaxed);
                        if (inst_) inst_->served_greedy.add();
                        break;
                    case DegradationLevel::kShed:
                        break;
                }
            };

            if (shed == Shed::kNone) {
                // Feed the latency EWMA with actual solve time only — sheds
                // are near-free and would talk the governor out of shedding.
                governor_.record_solve_ms(resp.solve_ms);
            }

            for (const std::size_t d : dupes[r]) {
                Pending& dup = *batch[d];
                PlanResponse share = resp;
                share.id = dup.request.id;
                share.coalesced = true;
                share.queue_ms = ms_between(dup.enqueued, start);
                count_outcome(share);
                coalesced_.fetch_add(1, std::memory_order_relaxed);
                if (inst_) inst_->coalesced.add();
                trace_response(dup.request, share, dup.enqueued, start, std::nullopt,
                               "coalesced");
                fulfill(dup, std::move(share));
            }
            count_outcome(resp);
            trace_response(rep.request, resp, rep.enqueued, start,
                           shed == Shed::kNone
                               ? std::optional<std::chrono::steady_clock::time_point>(
                                     solved_at)
                               : std::nullopt,
                           resp.error);
            fulfill(rep, std::move(resp));
        },
        /*grain=*/1);
}

std::shared_ptr<CircuitBreaker> PlannerService::breaker_for(const std::string& key) {
    LockGuard lock(breaker_mutex_);
    const auto it = breakers_.find(key);
    if (it != breakers_.end()) return it->second;
    if (breakers_.size() >= kMaxBreakers) {
        // Wholesale eviction keeps the map bounded without LRU bookkeeping;
        // a poisoned template that reappears re-trips within one retry
        // budget. Trips are carried so stats stay monotonic.
        for (const auto& [k, b] : breakers_) evicted_breaker_trips_ += b->trips();
        breakers_.clear();
    }
    auto breaker = std::make_shared<CircuitBreaker>(options_.governor.breaker);
    breakers_.emplace(key, breaker);
    return breaker;
}

PlanResponse PlannerService::solve_request(const PlanRequest& request, const Snapshot& snap,
                                           DegradationLevel level) {
    const bool governed = governor_.enabled();

    // One breaker per request template: a template that keeps exhausting
    // its retry budget is failed fast instead of re-burning a worker every
    // time it reappears.
    std::shared_ptr<CircuitBreaker> breaker;
    if (governed) {
        breaker = breaker_for(dedup_key(request));
        if (!breaker->allow()) {
            breaker_fastfail_.fetch_add(1, std::memory_order_relaxed);
            if (inst_) inst_->breaker_fastfail.add();
            PlanResponse resp;
            resp.id = request.id;
            resp.kind = request.kind;
            resp.status = ResponseStatus::kError;
            resp.error = "circuit breaker open: this request template is failing fast";
            resp.snapshot_epoch = snap.epoch();
            resp.degradation_level = level;
            return resp;
        }
    }

    const int max_attempts = governed ? options_.governor.retry.max_attempts : 1;
    PlanResponse resp;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
            solve_retries_.fetch_add(1, std::memory_order_relaxed);
            if (inst_) inst_->retries.add();
            sleep_backoff_ms(options_.governor.retry.wait_ms(attempt - 1));
        }
        try {
            if (injector_.enabled()) {
                const AttemptFault fault = injector_.on_attempt(request.id, attempt);
                sleep_backoff_ms(fault.stall_ms);  // worker stall: a real sleep
                if (fault.throw_exception) {
                    throw SimulationError("injected serve-layer solver fault", "",
                                          "serve");
                }
            }
            resp = request.kind == RequestKind::kAmend
                       ? amend_direct(request, snap, level)
                       : solve_direct(snap, request, options_, &cancel_, level);
            if (resp.ok() && request.kind == RequestKind::kBatch && resp.batch &&
                !request.plan_handle.empty()) {
                store_plan(request.plan_handle, *request.workload, resp.batch->plan,
                           request.reuse_aware);
            }
            resp.attempts = attempt + 1;
            if (breaker) breaker->record_success();
            return resp;
        } catch (const std::exception& e) {
            // Lint rejections, validation failures and injected faults are
            // per-request faults; they must never take down the service or
            // the batch.
            if (breaker) breaker->record_failure();
            resp = PlanResponse{};
            resp.id = request.id;
            resp.kind = request.kind;
            resp.status = ResponseStatus::kError;
            resp.error = e.what();
            resp.snapshot_epoch = snap.epoch();
            resp.degradation_level = level;
            resp.attempts = attempt + 1;
        }
    }
    return resp;
}

std::string PlannerService::dedup_key(const PlanRequest& request) {
    std::ostringstream os;
    if (request.kind == RequestKind::kAmend) {
        // Amends are stateful (each advances the stored plan), so identical
        // deltas are NOT idempotent — keying on the request id makes every
        // amend its own coalescing group. The handle keeps breaker/trace
        // keys readable.
        os << "A|" << request.plan_handle << '|' << request.id;
        return os.str();
    }
    os << (request.kind == RequestKind::kBatch ? 'B' : 'W') << '|' << request.reuse_aware
       << '|' << (request.seed ? std::to_string(*request.seed) : std::string("-")) << '|'
       << request.max_wall_ms << '|' << request.deadline_ms << '|'
       << request.plan_handle << '|';
    // The spec serialization covers everything the solvers read (sizes,
    // task counts, pins, reuse groups, deadlines); job names ride along
    // because lint notes quote them.
    if (request.workload) {
        workload::write_spec(*request.workload, os);
        for (std::size_t i = 0; i < request.workload->size(); ++i) {
            os << '|' << request.workload->job(i).name;
        }
    }
    if (request.workflow) {
        workload::write_spec(*request.workflow, os);
        os << '|' << request.workflow->name();
        for (const workload::JobSpec& job : request.workflow->jobs()) {
            os << '|' << job.name;
        }
    }
    return os.str();
}

void PlannerService::store_plan(const std::string& handle, workload::Workload workload,
                                core::TieringPlan plan, bool reuse_aware) {
    std::shared_ptr<StoredPlan> entry;
    {
        LockGuard lock(store_mutex_);
        auto& slot = plans_[handle];
        if (slot == nullptr) slot = std::make_shared<StoredPlan>();
        entry = slot;
    }
    LockGuard lock(entry->mu);
    entry->workload = std::move(workload);
    entry->plan = std::move(plan);
    entry->reuse_aware = reuse_aware;
}

std::optional<StoredPlanView> PlannerService::stored_plan(const std::string& handle) const {
    std::shared_ptr<StoredPlan> entry;
    {
        LockGuard lock(store_mutex_);
        const auto it = plans_.find(handle);
        if (it == plans_.end()) return std::nullopt;
        entry = it->second;
    }
    LockGuard lock(entry->mu);
    return StoredPlanView{entry->workload, entry->plan, entry->reuse_aware};
}

PlanResponse PlannerService::amend_direct(const PlanRequest& request, const Snapshot& snap,
                                          DegradationLevel level) {
    CAST_EXPECTS_MSG(level != DegradationLevel::kShed,
                     "kShed is a rejection, not a solver mode");
    if (!request.delta.has_value()) {
        throw ValidationError("amend request carries no delta");
    }
    std::shared_ptr<StoredPlan> entry;
    {
        LockGuard lock(store_mutex_);
        const auto it = plans_.find(request.plan_handle);
        if (it == plans_.end()) {
            throw ValidationError("amend references unknown plan handle '" +
                                  request.plan_handle + "'");
        }
        entry = it->second;
    }

    // The governor's ladder maps onto smaller neighborhoods rather than
    // fewer chains-of-everything: kTrimmed shrinks the per-member iteration
    // budget (the amend analogue of trim_iter_factor) and halves the
    // replica count; kGreedy skips annealing entirely — the irrevocable
    // online placement, the cheapest non-reject amend.
    core::AmendPolicy policy = options_.amend;
    if (level == DegradationLevel::kTrimmed) {
        const double f = options_.governor.trim_iter_factor;
        policy.iters_per_member = std::max(
            1, static_cast<int>(static_cast<double>(policy.iters_per_member) * f));
        policy.min_iters =
            std::max(1, static_cast<int>(static_cast<double>(policy.min_iters) * f));
        policy.max_iters = std::max(policy.min_iters, static_cast<int>(static_cast<double>(
                                                          policy.max_iters) * f));
        policy.chains = std::max(1, policy.chains / 2);
    } else if (level == DegradationLevel::kGreedy) {
        policy.greedy_only = true;
    }
    core::CastOptions opts = request_options(options_, request, &cancel_);
    options_.governor.apply(level, opts);  // trims any escalated cold solve too

    PlanResponse resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.snapshot_epoch = snap.epoch();
    resp.degradation_level = level;

    // Hold the entry lock across the solve: amendments to one handle are a
    // chain (each builds on the last), so per-handle serialization is the
    // semantics, not an implementation accident. Other handles — and every
    // batch/workflow request — proceed in parallel.
    LockGuard lock(entry->mu);
    const core::IncrementalSolver solver(snap.models(), opts, policy, entry->reuse_aware);
    core::AmendResult amended = solver.amend(entry->workload, entry->plan, *request.delta,
                                             /*pool=*/nullptr, &snap.cache());
    amend_requests_.fetch_add(1, std::memory_order_relaxed);
    if (amended.escalated_cold) amend_escalations_.fetch_add(1, std::memory_order_relaxed);
    if (amended.greedy_only) amend_greedy_.fetch_add(1, std::memory_order_relaxed);
    if (inst_) inst_->record_amend(amended);

    entry->workload = amended.workload;
    entry->plan = amended.plan;

    core::CastResult carrier;
    carrier.plan = std::move(amended.plan);
    carrier.evaluation = std::move(amended.evaluation);
    carrier.iterations = amended.iterations;
    carrier.cache_stats = amended.cache_stats;
    carrier.budget_exhausted = amended.budget_exhausted;
    carrier.tempering = amended.tempering;
    resp.batch = std::move(carrier);
    resp.neighborhood_size = amended.neighborhood.size();
    resp.escalated_cold = amended.escalated_cold;
    resp.status = ResponseStatus::kOk;
    return resp;
}

PlanResponse PlannerService::solve_direct(const Snapshot& snapshot, const PlanRequest& request,
                                          const ServiceOptions& options,
                                          const CancelToken* cancel, DegradationLevel level) {
    CAST_EXPECTS_MSG(level != DegradationLevel::kShed,
                     "kShed is a rejection, not a solver mode");
    CAST_EXPECTS_MSG(request.kind != RequestKind::kAmend,
                     "amend requests need the service's plan store; submit() them");
    PlanResponse resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.snapshot_epoch = snapshot.epoch();
    resp.degradation_level = level;
    core::CastOptions opts = request_options(options, request, cancel);
    options.governor.apply(level, opts);  // kFull/kGreedy: no-op
    core::EvalCache& cache = snapshot.cache();
    if (request.kind == RequestKind::kBatch) {
        CAST_EXPECTS_MSG(request.workload.has_value(), "batch request carries no workload");
        if (level == DegradationLevel::kGreedy) {
            resp.batch = core::plan_cast_greedy(snapshot.models(), *request.workload, opts,
                                                request.reuse_aware, &cache);
        } else if (request.reuse_aware) {
            resp.batch = core::plan_cast_plus_plus(snapshot.models(), *request.workload,
                                                   opts, nullptr, &cache);
        } else {
            resp.batch =
                core::plan_cast(snapshot.models(), *request.workload, opts, nullptr, &cache);
        }
    } else {
        CAST_EXPECTS_MSG(request.workflow.has_value(), "workflow request carries no workflow");
        const core::WorkflowEvaluator evaluator(snapshot.models(), *request.workflow);
        const core::WorkflowSolver solver(evaluator, opts.annealing,
                                          options.workflow_deadline_safety);
        resp.workflow = level == DegradationLevel::kGreedy ? solver.solve_greedy(&cache)
                                                           : solver.solve(nullptr, &cache);
    }
    resp.status = ResponseStatus::kOk;
    return resp;
}

}  // namespace cast::serve
