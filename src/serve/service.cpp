#include "serve/service.hpp"

#include <exception>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "workload/spec_parser.hpp"

namespace cast::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Service-wide solver options specialized to one request: seed and wall
/// budget come from the request (falling back to service defaults), the
/// cancel token from the service. Everything else is shared config.
core::CastOptions request_options(const ServiceOptions& service, const PlanRequest& request,
                                  const CancelToken* cancel) {
    core::CastOptions opts = service.solver;
    if (request.seed) opts.annealing.seed = *request.seed;
    opts.annealing.max_wall_ms =
        request.max_wall_ms > 0.0 ? request.max_wall_ms : service.default_max_wall_ms;
    opts.annealing.cancel = cancel;
    return opts;
}

}  // namespace

PlannerService::PlannerService(SnapshotPtr snapshot, ServiceOptions options)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      queue_(options_.queue_capacity, 3),
      pool_(options_.workers) {
    CAST_EXPECTS_MSG(snapshot_ != nullptr, "PlannerService needs a snapshot");
    CAST_EXPECTS(options_.max_batch >= 1);
    CAST_EXPECTS(options_.default_max_wall_ms >= 0.0);
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

PlannerService::~PlannerService() {
    // Close admission; the dispatcher drains whatever is already queued
    // (fast when cancel_inflight() latched the token) and exits on the
    // queue's closed+empty signal. Pool workers join in ~ThreadPool.
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<PlanResponse> PlannerService::submit(PlanRequest request) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    auto pending = std::make_unique<Pending>();
    pending->request = std::move(request);
    pending->enqueued = std::chrono::steady_clock::now();
    const std::uint64_t id = pending->request.id;
    const auto level = static_cast<std::size_t>(pending->request.priority);
    // The future must be taken before the push: once admitted, the
    // dispatcher owns the Pending and may fulfill it at any moment.
    std::future<PlanResponse> fut = pending->promise.get_future();
    if (queue_.try_push(std::move(pending), level)) return fut;

    rejected_.fetch_add(1, std::memory_order_relaxed);
    PlanResponse resp;
    resp.id = id;
    resp.status = ResponseStatus::kRejected;
    resp.error = "queue full or service shutting down";
    std::promise<PlanResponse> immediate;
    immediate.set_value(std::move(resp));
    return immediate.get_future();
}

void PlannerService::swap_snapshot(SnapshotPtr next) {
    CAST_EXPECTS_MSG(next != nullptr, "cannot swap in a null snapshot");
    SnapshotPtr old;
    {
        std::lock_guard lock(snapshot_mutex_);
        old = std::exchange(snapshot_, std::move(next));
    }
    swaps_.fetch_add(1, std::memory_order_relaxed);
    // Solves dispatched against the old snapshot may still be running;
    // clearing bumps the cache generation, so their thread-local L1 slots
    // are invalidated and values re-derive from the model set — the same
    // bits either way, since the cache is a pure memo.
    old->cache().clear();
}

SnapshotPtr PlannerService::snapshot() const {
    std::lock_guard lock(snapshot_mutex_);
    return snapshot_;
}

void PlannerService::cancel_inflight() { cancel_.request_stop(); }

ServiceStats PlannerService::stats() const {
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
    s.cache = snapshot()->cache().stats();
    return s;
}

void PlannerService::dispatcher_loop() {
    std::vector<std::unique_ptr<Pending>> batch;
    for (;;) {
        batch.clear();
        if (queue_.pop_batch(batch, options_.max_batch) == 0) return;  // closed + drained
        batches_.fetch_add(1, std::memory_order_relaxed);
        dispatch_batch(batch);
    }
}

void PlannerService::dispatch_batch(std::vector<std::unique_ptr<Pending>>& batch) {
    // One snapshot capture per dispatch: every request in the batch solves
    // against the same epoch even if a swap lands mid-batch.
    const SnapshotPtr snap = snapshot();

    // Coalesce identical requests: one representative solve per dedup key;
    // the duplicates get a copy of its response. The duplicate would have
    // computed exactly the same bits (deterministic solvers, shared
    // snapshot, identical options), so sharing is observationally free.
    std::vector<std::size_t> reps;
    std::vector<std::vector<std::size_t>> dupes;
    if (options_.coalesce_identical && batch.size() > 1) {
        std::map<std::string, std::size_t> groups;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto [it, inserted] =
                groups.emplace(dedup_key(batch[i]->request), reps.size());
            if (inserted) {
                reps.push_back(i);
                dupes.emplace_back();
            } else {
                dupes[it->second].push_back(i);
            }
        }
    } else {
        reps.resize(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) reps[i] = i;
        dupes.resize(batch.size());
    }

    pool_.parallel_for(
        reps.size(),
        [&](std::size_t r) {
            Pending& rep = *batch[reps[r]];
            const auto start = std::chrono::steady_clock::now();
            PlanResponse resp = solve_request(rep.request, *snap);
            resp.queue_ms = ms_between(rep.enqueued, start);
            resp.solve_ms = ms_between(start, std::chrono::steady_clock::now());
            for (const std::size_t d : dupes[r]) {
                Pending& dup = *batch[d];
                PlanResponse share = resp;
                share.id = dup.request.id;
                share.coalesced = true;
                share.queue_ms = ms_between(dup.enqueued, start);
                if (share.status == ResponseStatus::kError) {
                    errors_.fetch_add(1, std::memory_order_relaxed);
                }
                coalesced_.fetch_add(1, std::memory_order_relaxed);
                completed_.fetch_add(1, std::memory_order_relaxed);
                dup.promise.set_value(std::move(share));
            }
            if (resp.status == ResponseStatus::kError) {
                errors_.fetch_add(1, std::memory_order_relaxed);
            }
            completed_.fetch_add(1, std::memory_order_relaxed);
            rep.promise.set_value(std::move(resp));
        },
        /*grain=*/1);
}

PlanResponse PlannerService::solve_request(const PlanRequest& request, const Snapshot& snap) {
    try {
        return solve_direct(snap, request, options_, &cancel_);
    } catch (const std::exception& e) {
        // Lint rejections and validation failures are per-request faults;
        // they must never take down the service or the batch.
        PlanResponse resp;
        resp.id = request.id;
        resp.status = ResponseStatus::kError;
        resp.error = e.what();
        resp.snapshot_epoch = snap.epoch();
        return resp;
    }
}

std::string PlannerService::dedup_key(const PlanRequest& request) {
    std::ostringstream os;
    os << (request.kind == RequestKind::kBatch ? 'B' : 'W') << '|' << request.reuse_aware
       << '|' << (request.seed ? std::to_string(*request.seed) : std::string("-")) << '|'
       << request.max_wall_ms << '|';
    // The spec serialization covers everything the solvers read (sizes,
    // task counts, pins, reuse groups, deadlines); job names ride along
    // because lint notes quote them.
    if (request.workload) {
        workload::write_spec(*request.workload, os);
        for (std::size_t i = 0; i < request.workload->size(); ++i) {
            os << '|' << request.workload->job(i).name;
        }
    }
    if (request.workflow) {
        workload::write_spec(*request.workflow, os);
        os << '|' << request.workflow->name();
        for (const workload::JobSpec& job : request.workflow->jobs()) {
            os << '|' << job.name;
        }
    }
    return os.str();
}

PlanResponse PlannerService::solve_direct(const Snapshot& snapshot, const PlanRequest& request,
                                          const ServiceOptions& options,
                                          const CancelToken* cancel) {
    PlanResponse resp;
    resp.id = request.id;
    resp.snapshot_epoch = snapshot.epoch();
    const core::CastOptions opts = request_options(options, request, cancel);
    core::EvalCache& cache = snapshot.cache();
    if (request.kind == RequestKind::kBatch) {
        CAST_EXPECTS_MSG(request.workload.has_value(), "batch request carries no workload");
        resp.batch = request.reuse_aware
                         ? core::plan_cast_plus_plus(snapshot.models(), *request.workload,
                                                     opts, nullptr, &cache)
                         : core::plan_cast(snapshot.models(), *request.workload, opts,
                                           nullptr, &cache);
    } else {
        CAST_EXPECTS_MSG(request.workflow.has_value(), "workflow request carries no workflow");
        const core::WorkflowEvaluator evaluator(snapshot.models(), *request.workflow);
        const core::WorkflowSolver solver(evaluator, opts.annealing,
                                          options.workflow_deadline_safety);
        resp.workflow = solver.solve(nullptr, &cache);
    }
    resp.status = ResponseStatus::kOk;
    return resp;
}

}  // namespace cast::serve
