// Immutable planning snapshots for the multi-tenant serving layer.
//
// The one-shot CLI pipeline pays the full cold cost on every invocation:
// it re-loads the catalog and profiled model set and builds a fresh
// EvalCache before the first annealing iteration runs. A Snapshot hoists
// all of that out of the request path. It bundles, loaded exactly once:
//
//   * the profiled PerfModelSet (cluster shape + catalog + REG splines),
//   * pre-derived per-tier capacity/pricing terms (TierTerms) so serving
//     code and reports never re-walk the virtual catalog interface,
//   * one shared EvalCache, scoped to this snapshot's model set — the
//     cross-request memo that lets request N+1 reuse every REG runtime
//     request N computed (bit-identical by EvalCache's contract).
//
// Snapshots are immutable and refcounted (std::shared_ptr<const Snapshot>):
// every in-flight request holds the snapshot it was dispatched with, so a
// swap can never pull models out from under a running solve. Each snapshot
// carries a process-globally unique epoch; PlannerService::swap_snapshot
// installs the next epoch and clear()s the outgoing snapshot's cache,
// which bumps its generation and invalidates every thread's L1 slots at
// once (EvalCache's generation contract). The only mutable member is the
// cache, which is internally synchronized (its shard maps carry
// CAST_GUARDED_BY contracts checked by the Clang thread-safety lane);
// everything else is immutable after construction, so the snapshot itself
// needs no mutex and no annotations.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "cloud/storage.hpp"
#include "core/eval_cache.hpp"
#include "model/profiler.hpp"

namespace cast::serve {

/// Per-tier terms derived from the catalog once per snapshot. Everything a
/// serving-path consumer (admission estimates, reports, the bench JSON)
/// reads per request without touching the virtual StorageService API.
struct TierTerms {
    double price_per_gb_hour = 0.0;
    /// Provider cap on per-VM capacity; nullopt for uncapped tiers
    /// (objStore).
    std::optional<double> max_per_vm_gb;
    bool persistent = false;
    /// Cluster-wide read bandwidth (MB/s) at the 500 GB/VM reference
    /// provisioning — the Fig. 1/Table 1 comparison point.
    double reference_read_mbps = 0.0;
};

class Snapshot {
public:
    /// Derives the tier terms and creates the snapshot-scoped cache. The
    /// epoch is drawn from a process-global counter, so no two snapshots
    /// ever share one (not even across services).
    explicit Snapshot(model::PerfModelSet models);

    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    [[nodiscard]] const model::PerfModelSet& models() const { return models_; }
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

    [[nodiscard]] const TierTerms& tier_terms(cloud::StorageTier tier) const {
        return terms_[cloud::tier_index(tier)];
    }

    /// The snapshot-scoped cross-request memo. Mutable through a const
    /// snapshot by design: EvalCache is internally synchronized and
    /// bit-transparent, so sharing it never changes a result.
    [[nodiscard]] core::EvalCache& cache() const { return cache_; }

private:
    model::PerfModelSet models_;
    std::array<TierTerms, cloud::kTierCount> terms_{};
    mutable core::EvalCache cache_;
    std::uint64_t epoch_;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Convenience: profile-free construction from an already-loaded model set.
[[nodiscard]] SnapshotPtr make_snapshot(model::PerfModelSet models);

}  // namespace cast::serve
