#include "serve/snapshot.hpp"

#include <atomic>

namespace cast::serve {

namespace {
/// Process-global epoch source; see Snapshot::epoch().
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace

Snapshot::Snapshot(model::PerfModelSet models)
    : models_(std::move(models)),
      epoch_(g_epoch.fetch_add(1, std::memory_order_relaxed) + 1) {
    const auto& catalog = models_.catalog();
    for (cloud::StorageTier tier : cloud::kAllTiers) {
        const auto& svc = catalog.service(tier);
        TierTerms& t = terms_[cloud::tier_index(tier)];
        t.price_per_gb_hour = svc.price_per_gb_hour().value();
        if (const auto max = svc.max_capacity_per_vm()) t.max_per_vm_gb = max->value();
        t.persistent = svc.persistent();
        t.reference_read_mbps =
            svc.cluster_read_bw(svc.provision(GigaBytes{500.0}),
                                models_.cluster().worker_count)
                .value();
    }
}

SnapshotPtr make_snapshot(model::PerfModelSet models) {
    return std::make_shared<const Snapshot>(std::move(models));
}

}  // namespace cast::serve
