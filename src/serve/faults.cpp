#include "serve/faults.hpp"

#include <limits>

namespace cast::serve {

ServeFaultProfile ServeFaultProfile::scaled(double intensity, std::uint64_t seed) {
    CAST_EXPECTS_MSG(intensity >= 0.0 && intensity <= 1.0,
                     "fault intensity must be in [0, 1]");
    ServeFaultProfile p;
    p.seed = seed;
    // At intensity 1 roughly a third of requests stall for tens of ms and a
    // quarter throw transiently — a severe-incident shape, still survivable.
    p.stall_prob = 0.35 * intensity;
    p.stall_min_ms = 1.0 * intensity;
    p.stall_max_ms = 40.0 * intensity;
    p.exception_prob = 0.25 * intensity;
    p.max_failed_attempts = 2;
    p.swap_storm_swaps = static_cast<int>(8.0 * intensity);
    p.swap_storm_interval_ms = 1.0;
    p.flood_factor = 1.0 + 3.0 * intensity;
    return p;
}

AttemptFault ServeFaultInjector::on_attempt(std::uint64_t request_id, int attempt) {
    CAST_EXPECTS(attempt >= 0);
    AttemptFault fault;
    if (!profile_.enabled()) return fault;

    // One stream per request, a fixed draw sequence per stream: the fault
    // plan is a pure function of (profile, request_id, attempt), so thread
    // interleaving, batching and coalescing order cannot change it.
    Rng rng = Rng(profile_.seed).fork(request_id);
    const bool stalls = rng.uniform() < profile_.stall_prob;
    const double stall_len = rng.uniform(profile_.stall_min_ms, profile_.stall_max_ms);
    const bool throws = rng.uniform() < profile_.exception_prob;
    int failed_attempts = 0;
    if (throws) {
        failed_attempts =
            profile_.max_failed_attempts == 0
                ? std::numeric_limits<int>::max()  // poisoned: fails forever
                : 1 + static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(profile_.max_failed_attempts)));
    }

    // The stall models a wedged worker, not a flaky solve: it hits the first
    // attempt only, so retries measure the exception path alone.
    if (stalls && attempt == 0 && stall_len > 0.0) {
        fault.stall_ms = stall_len;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        stall_us_.fetch_add(static_cast<std::uint64_t>(stall_len * 1e3),
                            std::memory_order_relaxed);
    }
    if (throws && attempt < failed_attempts) {
        fault.throw_exception = true;
        exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    return fault;
}

}  // namespace cast::serve
