// Overload governor: graceful degradation for the planning service.
//
// PR 5's PlannerService has exactly one defense under pressure — binary
// backpressure (queue full -> kRejected). The governor replaces that cliff
// with a deterministic degradation ladder, walked per request at dispatch
// time:
//
//   kFull     full anneal, the request's own budgets          (level 0)
//   kTrimmed  shrunken iteration/chain/wall budgets           (level 1)
//   kGreedy   Algorithm 1 alone (plan_cast_greedy /           (level 2)
//             WorkflowSolver::solve_greedy) — orders of
//             magnitude cheaper, still a feasible plan
//   kShed     reject; the queue drain is past saving          (level 3)
//
// The signal is a *drain-time estimate*, not raw queue depth: with B
// requests backed up (queued + in flight), an EWMA of recent solve latency
// of E ms and W workers, a newly dispatched request waits roughly
// B * E / W ms. Pressure is that estimate over the configured latency
// target; ladder thresholds are expressed in pressure units. Raw queue
// occupancy only enters as a backstop so a cold EWMA (first requests after
// start) cannot hide a queue that is already full.
//
// Deadline-aware admission uses the same estimate in reverse: a request
// declaring deadline_ms is dropped at submit time when the predicted wait
// alone already exceeds it — solving it would burn a worker to produce an
// answer nobody can use.
//
// Determinism and bit-identity: the governor defaults to enabled = false,
// and every hook in the service is gated on that flag, so a service with an
// idle governor is bit-identical to PR 5. The ladder itself degrades by
// *iteration* budgets (deterministic) first and wall budgets second, so a
// trimmed response is reproducible given the same pressure reading.
#pragma once

#include <cstdint>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/retry.hpp"
#include "core/castpp.hpp"

namespace cast::serve {

/// Ladder position, cheapest-to-serve last. Values are wire-stable: they
/// appear as `degradation_level` on every response and in bench JSON.
enum class DegradationLevel : int { kFull = 0, kTrimmed = 1, kGreedy = 2, kShed = 3 };

[[nodiscard]] const char* degradation_level_name(DegradationLevel level);

struct GovernorOptions {
    /// Master switch; false leaves the service byte-for-byte PR 5.
    bool enabled = false;

    /// Target per-request drain time (ms). Pressure 1.0 means the backlog
    /// drains in exactly this long.
    double latency_target_ms = 250.0;
    /// EWMA smoothing for recent solve latency (weight of the newest
    /// sample).
    double ewma_alpha = 0.2;

    /// Ladder thresholds in pressure units (estimated drain / target).
    double trim_pressure = 1.0;
    double greedy_pressure = 2.0;
    double shed_pressure = 4.0;

    /// kTrimmed budget shrink factors: iterations/chains (deterministic)
    /// and the wall budget when the request has one.
    double trim_iter_factor = 0.25;
    double trim_wall_factor = 0.25;

    /// Drop requests whose declared deadline_ms is provably unreachable
    /// given the predicted queue wait.
    bool deadline_admission = true;

    /// Solve retry budget (injected/solver exceptions). max_attempts = 1
    /// disables retry entirely.
    Backoff retry{.max_attempts = 3, .base_ms = 1.0, .multiplier = 2.0, .cap_ms = 20.0};
    /// Per-request-template circuit breaker (keyed by dedup key): a
    /// template that keeps exhausting its retry budget is failed fast
    /// instead of re-burning a worker every time it reappears.
    CircuitBreakerOptions breaker{.failure_threshold = 3, .open_ms = 250.0, .open_ops = 0};

    /// Swap-storm guard: two swaps closer together than this window count
    /// as a storm sample for the swap breaker; while that breaker is open,
    /// the outgoing snapshot's explicit cache clear is suppressed
    /// (refcounting still reclaims it — the clear is an eager-invalidation
    /// optimization, and the cache is a pure memo either way).
    double swap_storm_window_ms = 5.0;
    CircuitBreakerOptions swap_breaker{.failure_threshold = 3, .open_ms = 50.0,
                                       .open_ops = 0};

    void validate() const {
        CAST_EXPECTS_MSG(latency_target_ms > 0.0, "latency target must be positive");
        CAST_EXPECTS_MSG(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                         "EWMA weight must be in (0, 1]");
        CAST_EXPECTS_MSG(trim_pressure > 0.0, "trim threshold must be positive");
        CAST_EXPECTS_MSG(greedy_pressure >= trim_pressure,
                         "greedy threshold below trim threshold");
        CAST_EXPECTS_MSG(shed_pressure >= greedy_pressure,
                         "shed threshold below greedy threshold");
        CAST_EXPECTS_MSG(trim_iter_factor > 0.0 && trim_iter_factor <= 1.0,
                         "iteration trim factor must be in (0, 1]");
        CAST_EXPECTS_MSG(trim_wall_factor > 0.0 && trim_wall_factor <= 1.0,
                         "wall trim factor must be in (0, 1]");
        CAST_EXPECTS_MSG(swap_storm_window_ms >= 0.0,
                         "storm window must be non-negative");
        retry.validate();
        breaker.validate();
        swap_breaker.validate();
    }

    /// Shrink solver budgets for a ladder level. kFull/kGreedy are no-ops
    /// here (kGreedy degrades by solver choice, not budget); kTrimmed
    /// scales iterations and chains (deterministic) plus the wall budget
    /// when the request carries one. kShed never reaches a solver.
    void apply(DegradationLevel level, core::CastOptions& opts) const;
};

/// Watches queue depth, in-flight count and the solve-latency EWMA; answers
/// "what ladder level does this request get" and "can this deadline still
/// be met". Shared by the dispatcher and all pool workers — the EWMA is the
/// only mutable state and is mutex-guarded.
class OverloadGovernor {
public:
    OverloadGovernor(GovernorOptions options, std::size_t workers,
                     std::size_t queue_capacity)
        : options_(options), workers_(workers), queue_capacity_(queue_capacity) {
        options_.validate();
        CAST_EXPECTS(workers_ >= 1);
    }

    OverloadGovernor(const OverloadGovernor&) = delete;
    OverloadGovernor& operator=(const OverloadGovernor&) = delete;

    [[nodiscard]] bool enabled() const { return options_.enabled; }
    [[nodiscard]] const GovernorOptions& options() const { return options_; }

    /// Feed one completed solve's latency into the EWMA.
    void record_solve_ms(double ms) CAST_EXCLUDES(mutex_);

    /// Current EWMA of solve latency (0 until the first sample).
    [[nodiscard]] double ewma_solve_ms() const CAST_EXCLUDES(mutex_);

    /// True once at least one solve latency has been recorded. Exported
    /// next to the EWMA so a 0.0 reading right after startup or a pure
    /// shed burst (sheds never feed the EWMA) is distinguishable from a
    /// genuinely sub-millisecond estimate — an unseeded EWMA also means
    /// deadline admission has no evidence and cannot fire.
    [[nodiscard]] bool ewma_seeded() const CAST_EXCLUDES(mutex_);

    /// Overload pressure: estimated drain time of the current backlog over
    /// the latency target, with raw queue occupancy as a cold-start
    /// backstop (a full queue reads at least shed pressure even while the
    /// EWMA is unseeded).
    [[nodiscard]] double pressure(std::size_t queue_depth, std::size_t in_flight) const
        CAST_EXCLUDES(mutex_);

    /// Ladder level for a pressure reading.
    [[nodiscard]] DegradationLevel classify(double pressure) const;

    /// True when a request declaring `deadline_ms` provably cannot meet it:
    /// the predicted queue wait alone (backlog x EWMA / workers) already
    /// exceeds the deadline. Never fires before the EWMA is seeded — with
    /// no latency evidence nothing is provable.
    [[nodiscard]] bool provably_late(double deadline_ms, std::size_t queue_depth,
                                     std::size_t in_flight) const CAST_EXCLUDES(mutex_);

private:
    GovernorOptions options_;
    std::size_t workers_;
    std::size_t queue_capacity_;

    mutable Mutex mutex_;
    double ewma_ms_ CAST_GUARDED_BY(mutex_) = 0.0;
    bool seeded_ CAST_GUARDED_BY(mutex_) = false;
};

}  // namespace cast::serve
