// Deterministic fault injection for the serving layer.
//
// sim/faults.hpp perturbs the *modeled* cluster; nothing has ever perturbed
// the serve path itself. This harness closes that gap with the same seeded
// zero-profile-bit-identical discipline: a ServeFaultProfile describes what
// can go wrong between a request leaving the queue and its response being
// fulfilled, a ServeFaultInjector samples it deterministically, and an
// all-zero profile is guaranteed to leave every response bit-identical to
// an uninstrumented service — every injection site is gated on
// ServeFaultProfile::enabled().
//
// Four failure classes, mirroring what takes real serving tiers down:
//   * worker stalls       — a pool worker blocks before its solve (GC
//                           pause, page-cache miss storm, noisy neighbor):
//                           a real sleep, so queue depth and latency EWMAs
//                           respond exactly like they would in production;
//   * solver exceptions   — a solve attempt throws instead of planning
//                           (poisoned input, resource exhaustion). A marked
//                           request fails its first `attempts` tries and
//                           then recovers (transient), or fails forever
//                           when the profile says so (poisoned) — which is
//                           what distinguishes the retry wrapper's job from
//                           the circuit breaker's;
//   * swap storms         — bursts of snapshot swaps; driven by the bench/
//                           test harness via storm parameters here, since
//                           swaps originate outside the dispatcher;
//   * request floods      — open-loop arrival bursts, likewise a driver-
//                           side parameter (flood_factor scales offered
//                           load relative to service capacity).
//
// Determinism: every per-request decision is drawn from a stream forked
// from (profile.seed, request id), so it is independent of thread
// interleaving, dispatch batching and coalescing order — two runs with the
// same profile and request ids inject identical faults, and the
// fault-injection tests assert bit-identical outcomes on the deterministic
// paths.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cast::serve {

/// Everything that can go wrong in the serve path, as a seed-reproducible
/// description. The default-constructed profile injects nothing.
struct ServeFaultProfile {
    /// Seed of the fault sampling stream; independent of solver seeds so
    /// enabling faults never perturbs a solve that does run.
    std::uint64_t seed = 0;

    /// Per-request worker-stall probability and stall length bounds (ms).
    double stall_prob = 0.0;
    double stall_min_ms = 0.0;
    double stall_max_ms = 0.0;

    /// Per-request probability that solve attempts throw. A marked request
    /// fails its first 1..max_failed_attempts tries (sampled uniformly)
    /// and then succeeds — unless max_failed_attempts == 0, which marks it
    /// poisoned: every attempt fails, forever.
    double exception_prob = 0.0;
    int max_failed_attempts = 2;

    /// Driver-side storm/flood knobs (the injector itself never swaps or
    /// submits; bench/serve_degradation and the tests read these).
    int swap_storm_swaps = 0;        ///< snapshot swaps fired per storm burst
    double swap_storm_interval_ms = 0.0;  ///< spacing between storm swaps
    double flood_factor = 1.0;       ///< offered load vs capacity (open loop)

    /// True iff the profile can perturb the serve path at all; every
    /// injection site is gated on this, which is what guarantees the
    /// all-zero profile reproduces the uninstrumented service bit-for-bit.
    [[nodiscard]] bool enabled() const {
        return stall_prob > 0.0 || exception_prob > 0.0;
    }

    void validate() const {
        CAST_EXPECTS_MSG(stall_prob >= 0.0 && stall_prob <= 1.0,
                         "stall probability must be in [0, 1]");
        CAST_EXPECTS_MSG(stall_min_ms >= 0.0, "stall lower bound must be non-negative");
        CAST_EXPECTS_MSG(stall_max_ms >= stall_min_ms,
                         "stall upper bound below its lower bound");
        CAST_EXPECTS_MSG(exception_prob >= 0.0 && exception_prob <= 1.0,
                         "exception probability must be in [0, 1]");
        CAST_EXPECTS_MSG(max_failed_attempts >= 0,
                         "failed-attempt bound must be non-negative");
        CAST_EXPECTS_MSG(swap_storm_swaps >= 0, "storm swap count must be non-negative");
        CAST_EXPECTS_MSG(swap_storm_interval_ms >= 0.0,
                         "storm interval must be non-negative");
        CAST_EXPECTS_MSG(flood_factor > 0.0, "flood factor must be positive");
    }

    [[nodiscard]] static ServeFaultProfile none() { return {}; }

    /// One-knob profile for sweeps: intensity 0 is fault-free, 1 is a
    /// severe incident (a third of requests stall tens of ms, a quarter
    /// throw transiently, swap storms fire). Deterministic in `seed`.
    [[nodiscard]] static ServeFaultProfile scaled(double intensity, std::uint64_t seed);
};

/// What the injector did, aggregated across requests. All counters are
/// atomic — pool workers record concurrently.
struct ServeFaultStats {
    std::uint64_t stalls = 0;
    double stall_ms = 0.0;               ///< total injected stall time
    std::uint64_t injected_exceptions = 0;

    [[nodiscard]] bool any() const {
        return stalls > 0 || injected_exceptions > 0 || stall_ms > 0.0;
    }
};

/// Sampled plan for one solve attempt, consumed by the dispatcher.
struct AttemptFault {
    double stall_ms = 0.0;     ///< sleep this long before the attempt
    bool throw_exception = false;  ///< the attempt fails with SimulationError
};

/// Samples a ServeFaultProfile. One injector serves the whole service; the
/// per-request stream forking keeps sampling deterministic under any
/// thread interleaving.
class ServeFaultInjector {
public:
    explicit ServeFaultInjector(ServeFaultProfile profile) : profile_(profile) {
        profile_.validate();
    }

    ServeFaultInjector(const ServeFaultInjector&) = delete;
    ServeFaultInjector& operator=(const ServeFaultInjector&) = delete;

    [[nodiscard]] const ServeFaultProfile& profile() const { return profile_; }
    [[nodiscard]] bool enabled() const { return profile_.enabled(); }

    /// Fault plan for attempt `attempt` (0-based) of request `request_id`.
    /// Pure function of (profile, request_id, attempt) — never of call
    /// order — and records what it injected into stats().
    [[nodiscard]] AttemptFault on_attempt(std::uint64_t request_id, int attempt);

    [[nodiscard]] ServeFaultStats stats() const {
        ServeFaultStats s;
        s.stalls = stalls_.load(std::memory_order_relaxed);
        s.stall_ms = static_cast<double>(stall_us_.load(std::memory_order_relaxed)) / 1e3;
        s.injected_exceptions = exceptions_.load(std::memory_order_relaxed);
        return s;
    }

private:
    ServeFaultProfile profile_;
    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<std::uint64_t> stall_us_{0};  ///< microseconds, summed exactly
    std::atomic<std::uint64_t> exceptions_{0};
};

}  // namespace cast::serve
