#include "core/annealing.hpp"

#include <cmath>
#include <mutex>

#include "lint/analyzer.hpp"

namespace cast::core {

AnnealingSolver::AnnealingSolver(const PlanEvaluator& evaluator, AnnealingOptions options)
    : evaluator_(&evaluator), options_(std::move(options)) {
    CAST_EXPECTS(options_.iter_max >= 1);
    CAST_EXPECTS(options_.initial_temperature > 0.0);
    CAST_EXPECTS(options_.cooling > 0.0 && options_.cooling < 1.0);
    CAST_EXPECTS(options_.min_temperature > 0.0);
    CAST_EXPECTS(!options_.overprov_choices.empty());
    CAST_EXPECTS(options_.tier_move_probability >= 0.0 &&
                 options_.tier_move_probability <= 1.0);
    CAST_EXPECTS(options_.chains >= 1);
}

std::vector<std::vector<std::size_t>> AnnealingSolver::move_units() const {
    const auto& workload = evaluator_->workload();
    std::vector<std::vector<std::size_t>> units;
    if (!options_.group_moves) {
        for (std::size_t i = 0; i < workload.size(); ++i) units.push_back({i});
        return units;
    }
    std::vector<bool> grouped(workload.size(), false);
    for (const auto& [group, members] : workload.reuse_groups()) {
        units.push_back(members);
        for (std::size_t i : members) grouped[i] = true;
    }
    for (std::size_t i = 0; i < workload.size(); ++i) {
        if (!grouped[i]) units.push_back({i});
    }
    return units;
}

AnnealingResult AnnealingSolver::run_chain(const TieringPlan& initial,
                                           std::uint64_t seed) const {
    const auto units = move_units();
    CAST_EXPECTS_MSG(!units.empty(), "cannot anneal an empty workload");
    Rng rng(seed);

    TieringPlan curr = initial;
    PlanEvaluation curr_eval = evaluator_->evaluate(curr);
    CAST_EXPECTS_MSG(curr_eval.feasible, "annealing needs a feasible initial plan");

    AnnealingResult best;
    best.plan = curr;
    best.evaluation = curr_eval;

    // Temperatures live on the normalized utility scale u/U_init, so the
    // same options work across workloads of any absolute utility.
    const double u_scale = curr_eval.utility;
    CAST_ENSURES(u_scale > 0.0);
    double temperature = options_.initial_temperature;

    for (int iter = 0; iter < options_.iter_max; ++iter) {
        temperature = std::max(temperature * options_.cooling, options_.min_temperature);

        // --- Neighbor: batch-relocate one app class, or perturb one unit.
        TieringPlan neighbor = curr;
        const double move_kind = rng.uniform();
        if (move_kind < options_.app_move_probability) {
            const workload::AppKind app =
                workload::kAllApps[rng.below(workload::kAllApps.size())];
            const cloud::StorageTier t = cloud::kAllTiers[rng.below(cloud::kAllTiers.size())];
            for (const auto& unit : units) {
                if (evaluator_->workload().job(unit.front()).app != app) continue;
                for (std::size_t j : unit) {
                    PlacementDecision d = neighbor.decision(j);
                    d.tier = t;
                    neighbor.set_decision(j, d);
                }
            }
        } else {
            const auto& unit = units[rng.below(units.size())];
            const PlacementDecision old = curr.decision(unit.front());
            PlacementDecision next = old;
            if (move_kind <
                options_.app_move_probability + options_.tier_move_probability) {
                // Random different tier.
                cloud::StorageTier t;
                do {
                    t = cloud::kAllTiers[rng.below(cloud::kAllTiers.size())];
                } while (t == old.tier);
                next.tier = t;
            } else {
                next.overprovision =
                    options_.overprov_choices[rng.below(options_.overprov_choices.size())];
            }
            for (std::size_t j : unit) neighbor.set_decision(j, next);
        }

        const PlanEvaluation neighbor_eval = evaluator_->evaluate(neighbor);
        ++best.iterations;
        if (!neighbor_eval.feasible) continue;

        if (neighbor_eval.utility > best.evaluation.utility) {
            best.plan = neighbor;
            best.evaluation = neighbor_eval;
        }

        // --- Accept(.): Metropolis on the normalized utility difference.
        const double delta = (neighbor_eval.utility - curr_eval.utility) / u_scale;
        const bool accept = delta >= 0.0 || rng.uniform() < std::exp(delta / temperature);
        if (accept) {
            curr = std::move(neighbor);
            curr_eval = neighbor_eval;
            ++best.accepted_moves;
        }
    }
    return best;
}

AnnealingResult AnnealingSolver::solve(const TieringPlan& initial, ThreadPool* pool) const {
    // Pre-solve lint: reject inputs no annealing chain can fix (conflicting
    // reuse-group pins, unmodeled applications, a broken catalog) before
    // burning iterations on them.
    lint::LintContext lint_ctx;
    lint_ctx.models = &evaluator_->models();
    lint_ctx.reuse_aware = evaluator_->options().reuse_aware;
    lint::enforce(lint::lint_workload(evaluator_->workload(), lint_ctx));

    // Multi-start: rotate chains across the supplied initial plan and every
    // feasible uniform plan (Eq. 7-projected in group-moves mode, which
    // uniform plans satisfy trivially).
    std::vector<TieringPlan> starts{initial};
    if (options_.diverse_starts) {
        for (cloud::StorageTier t : cloud::kAllTiers) {
            TieringPlan uniform = TieringPlan::uniform(initial.size(), t);
            if (evaluator_->evaluate(uniform).feasible) starts.push_back(std::move(uniform));
        }
    }
    std::vector<AnnealingResult> results(static_cast<std::size_t>(options_.chains));
    auto run_one = [&](std::size_t c) {
        results[c] = run_chain(starts[c % starts.size()], options_.seed + 7919 * (c + 1));
    };
    if (pool != nullptr && options_.chains > 1) {
        pool->parallel_for(results.size(), run_one);
    } else {
        for (std::size_t c = 0; c < results.size(); ++c) run_one(c);
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < results.size(); ++c) {
        if (results[c].evaluation.utility > results[best].evaluation.utility) best = c;
    }
    return results[best];
}

}  // namespace cast::core
