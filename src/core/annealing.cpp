#include "core/annealing.hpp"

#include <array>
#include <cmath>
#include <memory>

#include "lint/analyzer.hpp"

namespace cast::core {

AnnealingSolver::AnnealingSolver(const PlanEvaluator& evaluator, AnnealingOptions options)
    : evaluator_(&evaluator), options_(std::move(options)) {
    CAST_EXPECTS(options_.iter_max >= 1);
    CAST_EXPECTS(options_.initial_temperature > 0.0);
    CAST_EXPECTS(options_.cooling > 0.0 && options_.cooling < 1.0);
    CAST_EXPECTS(options_.min_temperature > 0.0);
    CAST_EXPECTS(!options_.overprov_choices.empty());
    CAST_EXPECTS(options_.tier_move_probability >= 0.0 &&
                 options_.tier_move_probability <= 1.0);
    CAST_EXPECTS(options_.chains >= 1);
    CAST_EXPECTS(options_.max_wall_ms >= 0.0);
}

std::vector<MoveUnit> AnnealingSolver::move_units() const {
    const auto& workload = evaluator_->workload();
    const auto finish = [&](MoveUnit unit) {
        for (std::size_t j : unit.jobs) {
            const auto& job = workload.job(j);
            unit.app_mask |= 1u << workload::app_index(job.app);
            if (job.pinned_tier) {
                unit.allowed_tiers &= 1u << cloud::tier_index(*job.pinned_tier);
            }
        }
        return unit;
    };
    constexpr std::uint32_t kAllTierBits = (1u << cloud::kTierCount) - 1;
    std::vector<MoveUnit> units;
    if (options_.group_moves) {
        std::vector<bool> grouped(workload.size(), false);
        for (const auto& [group, members] : workload.reuse_groups()) {
            units.push_back(finish(MoveUnit{members, 0, kAllTierBits}));
            for (std::size_t i : members) grouped[i] = true;
        }
        for (std::size_t i = 0; i < workload.size(); ++i) {
            if (!grouped[i]) units.push_back(finish(MoveUnit{{i}, 0, kAllTierBits}));
        }
    } else {
        for (std::size_t i = 0; i < workload.size(); ++i) {
            units.push_back(finish(MoveUnit{{i}, 0, kAllTierBits}));
        }
    }
    return units;
}

TieringPlan AnnealingSolver::propose_neighbor(Rng& rng, const TieringPlan& curr,
                                              const std::vector<MoveUnit>& units,
                                              std::vector<std::size_t>& changed) const {
    changed.clear();
    TieringPlan neighbor = curr;
    const double move_kind = rng.uniform();
    if (move_kind < options_.app_move_probability) {
        // --- Batch move: relocate one app class to one tier. A unit
        // participates when any member runs the drawn application (units
        // are reuse groups in group_moves mode, and Eq. 7 forces the whole
        // group along) and no member's pin forbids the target tier.
        const workload::AppKind app =
            workload::kAllApps[rng.below(workload::kAllApps.size())];
        const cloud::StorageTier t = cloud::kAllTiers[rng.below(cloud::kAllTiers.size())];
        const std::uint32_t app_bit = 1u << workload::app_index(app);
        const std::uint32_t tier_bit = 1u << cloud::tier_index(t);
        for (const auto& unit : units) {
            if ((unit.app_mask & app_bit) == 0 || (unit.allowed_tiers & tier_bit) == 0) {
                continue;
            }
            for (std::size_t j : unit.jobs) {
                PlacementDecision d = neighbor.decision(j);
                if (d.tier == t) continue;
                d.tier = t;
                neighbor.set_decision(j, d);
                changed.push_back(j);
            }
        }
    } else {
        // --- Single-unit move: a pin-respecting tier change, or a new
        // over-provisioning factor.
        const MoveUnit& unit = units[rng.below(units.size())];
        const PlacementDecision old = curr.decision(unit.jobs.front());
        PlacementDecision next = old;
        const bool want_tier_move =
            move_kind < options_.app_move_probability + options_.tier_move_probability;
        std::array<cloud::StorageTier, cloud::kTierCount> allowed{};
        std::size_t n_allowed = 0;
        if (want_tier_move) {
            for (cloud::StorageTier t : cloud::kAllTiers) {
                if (t == old.tier) continue;
                if (unit.allowed_tiers & (1u << cloud::tier_index(t))) {
                    allowed[n_allowed++] = t;
                }
            }
        }
        if (want_tier_move && n_allowed > 0) {
            next.tier = allowed[rng.below(n_allowed)];
        } else {
            // Fully pinned units degrade to factor moves instead of
            // proposing a guaranteed-infeasible tier change.
            next.overprovision =
                options_.overprov_choices[rng.below(options_.overprov_choices.size())];
        }
        for (std::size_t j : unit.jobs) {
            const PlacementDecision& d = curr.decision(j);
            if (d.tier == next.tier && d.overprovision == next.overprovision) continue;
            neighbor.set_decision(j, next);
            changed.push_back(j);
        }
    }
    return neighbor;
}

AnnealingResult AnnealingSolver::run_chain(const TieringPlan& initial, std::uint64_t seed,
                                           EvalCache* cache) const {
    return run_chain(initial, seed, cache, SolveDeadline::from(options_));
}

AnnealingResult AnnealingSolver::run_chain(const TieringPlan& initial, std::uint64_t seed,
                                           EvalCache* cache,
                                           const SolveDeadline& deadline) const {
    const auto units = move_units();
    CAST_EXPECTS_MSG(!units.empty(), "cannot anneal an empty workload");
    Rng rng(seed);

    std::unique_ptr<EvalCache> owned;
    if (!options_.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        owned = std::make_unique<EvalCache>();
        cache = owned.get();
    }

    TieringPlan curr = initial;
    PlanEvaluation curr_eval = evaluator_->evaluate(curr, cache);
    CAST_EXPECTS_MSG(curr_eval.feasible, "annealing needs a feasible initial plan");

    AnnealingResult best;
    best.plan = curr;
    best.evaluation = curr_eval;

    // Temperatures live on the normalized utility scale u/U_init, so the
    // same options work across workloads of any absolute utility.
    const double u_scale = curr_eval.utility;
    CAST_ENSURES(u_scale > 0.0);
    double temperature = options_.initial_temperature;

    const bool bounded = !deadline.unbounded();
    std::vector<std::size_t> changed;
    changed.reserve(evaluator_->workload().size());
    for (int iter = 0; iter < options_.iter_max; ++iter) {
        // Budget/cancel poll once per segment. Checking at iter 0 too makes
        // an already-expired deadline (chains queued behind others on a
        // small pool) return the evaluated initial plan immediately.
        if (bounded && iter % AnnealingOptions::kBudgetCheckStride == 0 &&
            deadline.expired()) {
            best.budget_exhausted = true;
            break;
        }
        temperature = std::max(temperature * options_.cooling, options_.min_temperature);

        TieringPlan neighbor = propose_neighbor(rng, curr, units, changed);
        PlanEvaluation neighbor_eval =
            options_.use_evaluation_cache
                ? evaluator_->evaluate_delta(curr_eval, neighbor, changed, cache)
                : evaluator_->evaluate(neighbor);
        ++best.iterations;
        if (!neighbor_eval.feasible) {
            ++best.infeasible_neighbors;
            continue;
        }

        if (neighbor_eval.utility > best.evaluation.utility) {
            best.plan = neighbor;
            best.evaluation = neighbor_eval;
        }

        // --- Accept(.): Metropolis on the normalized utility difference.
        const double delta = (neighbor_eval.utility - curr_eval.utility) / u_scale;
        const bool accept = delta >= 0.0 || rng.uniform() < std::exp(delta / temperature);
        if (accept) {
            curr = std::move(neighbor);
            curr_eval = std::move(neighbor_eval);
            ++best.accepted_moves;
        }
    }
    return best;
}

AnnealingResult AnnealingSolver::solve(const TieringPlan& initial, ThreadPool* pool,
                                       EvalCache* cache) const {
    // One deadline for the whole solve, armed before any other work so the
    // wall budget covers lint and start-plan evaluation too: chains
    // dispatched late (sequential execution, or more chains than workers)
    // inherit the remaining budget rather than each restarting the clock.
    const SolveDeadline deadline = SolveDeadline::from(options_);
    // Pre-solve lint: reject inputs no annealing chain can fix (conflicting
    // reuse-group pins, unmodeled applications, a broken catalog) before
    // burning iterations on them.
    lint::LintContext lint_ctx;
    lint_ctx.models = &evaluator_->models();
    lint_ctx.reuse_aware = evaluator_->options().reuse_aware;
    lint::enforce(lint::lint_workload(evaluator_->workload(), lint_ctx));

    // One memo table shared by every chain: chains revisit the same
    // (job, tier, capacity) points constantly, so sharing multiplies the
    // hit rate. EvalCache is thread-safe (sharded locks).
    std::unique_ptr<EvalCache> owned;
    if (!options_.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        owned = std::make_unique<EvalCache>();
        cache = owned.get();
    }

    // Multi-start: rotate chains across the supplied initial plan and every
    // feasible uniform plan (Eq. 7-projected in group-moves mode, which
    // uniform plans satisfy trivially).
    std::vector<TieringPlan> starts{initial};
    if (options_.diverse_starts) {
        for (cloud::StorageTier t : cloud::kAllTiers) {
            TieringPlan uniform = TieringPlan::uniform(initial.size(), t);
            if (evaluator_->evaluate(uniform, cache).feasible) {
                starts.push_back(std::move(uniform));
            }
        }
    }
    std::vector<AnnealingResult> results(static_cast<std::size_t>(options_.chains));
    auto run_one = [&](std::size_t c) {
        results[c] = run_chain(starts[c % starts.size()], options_.seed + 7919 * (c + 1),
                               cache, deadline);
    };
    if (pool != nullptr && options_.chains > 1) {
        pool->parallel_for(results.size(), run_one);
    } else {
        for (std::size_t c = 0; c < results.size(); ++c) run_one(c);
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < results.size(); ++c) {
        if (results[c].evaluation.utility > results[best].evaluation.utility) best = c;
    }
    // Report the winning chain's plan but the WHOLE search's effort: summing
    // only the winner used to under-report multi-chain work by ~1/chains.
    AnnealingResult out = std::move(results[best]);
    out.best_chain = static_cast<int>(best);
    out.iterations = 0;
    out.accepted_moves = 0;
    out.infeasible_neighbors = 0;
    out.budget_exhausted = false;
    for (const AnnealingResult& r : results) {
        out.iterations += r.iterations;
        out.accepted_moves += r.accepted_moves;
        out.infeasible_neighbors += r.infeasible_neighbors;
        out.budget_exhausted = out.budget_exhausted || r.budget_exhausted;
    }
    if (cache != nullptr) out.cache_stats = cache->stats();
    return out;
}

}  // namespace cast::core
