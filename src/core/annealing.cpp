#include "core/annealing.hpp"

#include <array>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>

#include "core/soa_eval.hpp"
#include "lint/analyzer.hpp"

namespace cast::core {

AnnealingSolver::AnnealingSolver(const PlanEvaluator& evaluator, AnnealingOptions options)
    : evaluator_(&evaluator), options_(std::move(options)) {
    CAST_EXPECTS(options_.iter_max >= 1);
    CAST_EXPECTS(options_.initial_temperature > 0.0);
    CAST_EXPECTS(options_.cooling > 0.0 && options_.cooling < 1.0);
    CAST_EXPECTS(options_.min_temperature > 0.0);
    CAST_EXPECTS(!options_.overprov_choices.empty());
    CAST_EXPECTS(options_.tier_move_probability >= 0.0 &&
                 options_.tier_move_probability <= 1.0);
    CAST_EXPECTS(options_.chains >= 1);
    CAST_EXPECTS(options_.max_wall_ms >= 0.0);
    CAST_EXPECTS(options_.tempering_ladder_ratio >= 1.0);
    CAST_EXPECTS(options_.exchange_stride >= 1);
    if (!options_.active_jobs.empty()) {
        CAST_EXPECTS_MSG(options_.active_jobs.size() == evaluator.workload().size(),
                         "active_jobs mask must match the workload size");
        bool any = false;
        for (const std::uint8_t a : options_.active_jobs) any = any || a != 0;
        CAST_EXPECTS_MSG(any, "active_jobs mask must flag at least one job");
    }
}

std::vector<MoveUnit> AnnealingSolver::move_units() const {
    const auto& workload = evaluator_->workload();
    const auto finish = [&](MoveUnit unit) {
        for (std::size_t j : unit.jobs) {
            const auto& job = workload.job(j);
            unit.app_mask |= 1u << workload::app_index(job.app);
            if (job.pinned_tier) {
                unit.allowed_tiers &= 1u << cloud::tier_index(*job.pinned_tier);
            }
        }
        return unit;
    };
    constexpr std::uint32_t kAllTierBits = (1u << cloud::kTierCount) - 1;
    std::vector<MoveUnit> units;
    if (options_.group_moves) {
        std::vector<bool> grouped(workload.size(), false);
        for (const auto& [group, members] : workload.reuse_groups()) {
            units.push_back(finish(MoveUnit{members, 0, kAllTierBits}));
            for (std::size_t i : members) grouped[i] = true;
        }
        for (std::size_t i = 0; i < workload.size(); ++i) {
            if (!grouped[i]) units.push_back(finish(MoveUnit{{i}, 0, kAllTierBits}));
        }
    } else {
        for (std::size_t i = 0; i < workload.size(); ++i) {
            units.push_back(finish(MoveUnit{{i}, 0, kAllTierBits}));
        }
    }
    if (!options_.active_jobs.empty()) {
        // Neighborhood restriction: drop units with no flagged member. A
        // reuse-group unit with any flagged member stays whole (Eq. 7 moves
        // the group together); the incremental re-planner closes its
        // neighborhoods under reuse groups so partial units never arise.
        std::erase_if(units, [&](const MoveUnit& unit) {
            for (const std::size_t j : unit.jobs) {
                if (options_.active_jobs[j] != 0) return false;
            }
            return true;
        });
    }
    return units;
}

TieringPlan AnnealingSolver::propose_neighbor(Rng& rng, const TieringPlan& curr,
                                              const std::vector<MoveUnit>& units,
                                              std::vector<std::size_t>& changed) const {
    changed.clear();
    TieringPlan neighbor = curr;
    const double move_kind = rng.uniform();
    if (move_kind < options_.app_move_probability) {
        // --- Batch move: relocate one app class to one tier. A unit
        // participates when any member runs the drawn application (units
        // are reuse groups in group_moves mode, and Eq. 7 forces the whole
        // group along) and no member's pin forbids the target tier.
        const workload::AppKind app =
            workload::kAllApps[rng.below(workload::kAllApps.size())];
        const cloud::StorageTier t = cloud::kAllTiers[rng.below(cloud::kAllTiers.size())];
        const std::uint32_t app_bit = 1u << workload::app_index(app);
        const std::uint32_t tier_bit = 1u << cloud::tier_index(t);
        for (const auto& unit : units) {
            if ((unit.app_mask & app_bit) == 0 || (unit.allowed_tiers & tier_bit) == 0) {
                continue;
            }
            for (std::size_t j : unit.jobs) {
                PlacementDecision d = neighbor.decision(j);
                if (d.tier == t) continue;
                d.tier = t;
                neighbor.set_decision(j, d);
                changed.push_back(j);
            }
        }
    } else {
        // --- Single-unit move: a pin-respecting tier change, or a new
        // over-provisioning factor.
        const MoveUnit& unit = units[rng.below(units.size())];
        const PlacementDecision old = curr.decision(unit.jobs.front());
        PlacementDecision next = old;
        const bool want_tier_move =
            move_kind < options_.app_move_probability + options_.tier_move_probability;
        std::array<cloud::StorageTier, cloud::kTierCount> allowed{};
        std::size_t n_allowed = 0;
        if (want_tier_move) {
            for (cloud::StorageTier t : cloud::kAllTiers) {
                if (t == old.tier) continue;
                if (unit.allowed_tiers & (1u << cloud::tier_index(t))) {
                    allowed[n_allowed++] = t;
                }
            }
        }
        if (want_tier_move && n_allowed > 0) {
            next.tier = allowed[rng.below(n_allowed)];
        } else {
            // Fully pinned units degrade to factor moves instead of
            // proposing a guaranteed-infeasible tier change.
            next.overprovision =
                options_.overprov_choices[rng.below(options_.overprov_choices.size())];
        }
        for (std::size_t j : unit.jobs) {
            const PlacementDecision& d = curr.decision(j);
            if (d.tier == next.tier && d.overprovision == next.overprovision) continue;
            neighbor.set_decision(j, next);
            changed.push_back(j);
        }
    }
    return neighbor;
}

void AnnealingSolver::propose_neighbor_soa(Rng& rng, const SoaEvaluator& soa,
                                           SoaState& state,
                                           const std::vector<MoveUnit>& units,
                                           std::vector<std::size_t>& changed) const {
    changed.clear();
    const double move_kind = rng.uniform();
    if (move_kind < options_.app_move_probability) {
        const workload::AppKind app =
            workload::kAllApps[rng.below(workload::kAllApps.size())];
        const cloud::StorageTier t = cloud::kAllTiers[rng.below(cloud::kAllTiers.size())];
        const auto ti = static_cast<std::uint8_t>(cloud::tier_index(t));
        const std::uint32_t app_bit = 1u << workload::app_index(app);
        const std::uint32_t tier_bit = 1u << cloud::tier_index(t);
        for (const auto& unit : units) {
            if ((unit.app_mask & app_bit) == 0 || (unit.allowed_tiers & tier_bit) == 0) {
                continue;
            }
            for (std::size_t j : unit.jobs) {
                if (state.tier[j] == ti) continue;
                soa.set_decision(state, j, ti, state.overprov[j]);
                changed.push_back(j);
            }
        }
    } else {
        const MoveUnit& unit = units[rng.below(units.size())];
        const std::size_t front = unit.jobs.front();
        std::uint8_t next_tier = state.tier[front];
        double next_overprov = state.overprov[front];
        const bool want_tier_move =
            move_kind < options_.app_move_probability + options_.tier_move_probability;
        std::array<cloud::StorageTier, cloud::kTierCount> allowed{};
        std::size_t n_allowed = 0;
        if (want_tier_move) {
            for (cloud::StorageTier t : cloud::kAllTiers) {
                if (cloud::tier_index(t) == next_tier) continue;
                if (unit.allowed_tiers & (1u << cloud::tier_index(t))) {
                    allowed[n_allowed++] = t;
                }
            }
        }
        if (want_tier_move && n_allowed > 0) {
            next_tier =
                static_cast<std::uint8_t>(cloud::tier_index(allowed[rng.below(n_allowed)]));
        } else {
            next_overprov =
                options_.overprov_choices[rng.below(options_.overprov_choices.size())];
        }
        for (std::size_t j : unit.jobs) {
            if (state.tier[j] == next_tier && state.overprov[j] == next_overprov) continue;
            soa.set_decision(state, j, next_tier, next_overprov);
            changed.push_back(j);
        }
    }
}

struct AnnealingSolver::ChainCtx {
    // AoS mode: the committed plan + evaluation, copied per move.
    TieringPlan curr;
    PlanEvaluation curr_eval;
    // SoA mode: the flat in-place state (core/soa_eval.hpp).
    SoaState soa;
    bool use_soa = false;
    // Temperatures live on the normalized utility scale u/U_init, so the
    // same options work across workloads of any absolute utility. Under
    // tempering every replica shares one scale so exchange energies are
    // comparable across rungs.
    double u_scale = 1.0;
    double temperature = 0.0;
    /// Best-so-far plan/evaluation plus the chain's effort counters.
    AnnealingResult best;
    /// Changed-job scratch, reused across iterations.
    std::vector<std::size_t> changed;
};

double AnnealingSolver::chain_current_utility(const ChainCtx& ctx) {
    return ctx.use_soa ? ctx.soa.utility : ctx.curr_eval.utility;
}

void AnnealingSolver::swap_chain_state(ChainCtx& a, ChainCtx& b) {
    if (a.use_soa) {
        SoaEvaluator::swap_current(a.soa, b.soa);
    } else {
        std::swap(a.curr, b.curr);
        std::swap(a.curr_eval, b.curr_eval);
    }
}

void AnnealingSolver::init_chain(ChainCtx& ctx, const TieringPlan& start,
                                 const PlanEvaluation& start_eval,
                                 const SoaEvaluator* soa) const {
    CAST_EXPECTS_MSG(start_eval.feasible, "annealing needs a feasible initial plan");
    ctx.best.plan = start;
    ctx.best.evaluation = start_eval;
    ctx.u_scale = start_eval.utility;
    CAST_ENSURES(ctx.u_scale > 0.0);
    ctx.temperature = options_.initial_temperature;
    ctx.use_soa = soa != nullptr;
    if (ctx.use_soa) {
        soa->init(ctx.soa, start, start_eval);
    } else {
        ctx.curr = start;
        ctx.curr_eval = start_eval;
    }
    ctx.changed.reserve(evaluator_->workload().size());
}

void AnnealingSolver::finalize_chain(ChainCtx& ctx, const SoaEvaluator* soa) const {
    if (ctx.use_soa && soa != nullptr) {
        ctx.best.plan = soa->best_plan(ctx.soa);
        ctx.best.evaluation = soa->best_evaluation(ctx.soa);
    }
}

void AnnealingSolver::run_span(ChainCtx& ctx, Rng& rng, int iter_begin, int iter_end,
                               const std::vector<MoveUnit>& units, EvalCache* cache,
                               const SolveDeadline& deadline,
                               const SoaEvaluator* soa) const {
    const bool bounded = !deadline.unbounded();
    for (int iter = iter_begin; iter < iter_end; ++iter) {
        // Budget/cancel poll once per segment. Checking at iter 0 too makes
        // an already-expired deadline (chains queued behind others on a
        // small pool) return the evaluated initial plan immediately.
        if (bounded && iter % AnnealingOptions::kBudgetCheckStride == 0 &&
            deadline.expired()) {
            ctx.best.budget_exhausted = true;
            break;
        }
        ctx.temperature =
            std::max(ctx.temperature * options_.cooling, options_.min_temperature);

        if (ctx.use_soa) {
            // The SoA body makes exactly the AoS body's RNG draws and
            // floating-point comparisons; only the data layout differs.
            propose_neighbor_soa(rng, *soa, ctx.soa, units, ctx.changed);
            ++ctx.best.iterations;
            if (ctx.changed.empty()) {
                // The AoS path would get the base evaluation back from
                // evaluate_delta and accept the zero-delta move without
                // drawing; mirror both effects.
                ++ctx.best.accepted_moves;
                continue;
            }
            if (!soa->evaluate_candidate(ctx.soa, ctx.changed, cache)) {
                ++ctx.best.infeasible_neighbors;
                soa->revert(ctx.soa);
                continue;
            }
            if (ctx.soa.cand_utility > ctx.soa.best_utility) soa->save_best(ctx.soa);
            // --- Accept(.): Metropolis on the normalized utility difference.
            const double delta = (ctx.soa.cand_utility - ctx.soa.utility) / ctx.u_scale;
            const bool accept =
                delta >= 0.0 || rng.uniform() < std::exp(delta / ctx.temperature);
            if (accept) {
                soa->commit(ctx.soa);
                ++ctx.best.accepted_moves;
            } else {
                soa->revert(ctx.soa);
            }
        } else {
            TieringPlan neighbor = propose_neighbor(rng, ctx.curr, units, ctx.changed);
            PlanEvaluation neighbor_eval =
                options_.use_evaluation_cache
                    ? evaluator_->evaluate_delta(ctx.curr_eval, neighbor, ctx.changed, cache)
                    : evaluator_->evaluate(neighbor);
            ++ctx.best.iterations;
            if (!neighbor_eval.feasible) {
                ++ctx.best.infeasible_neighbors;
                continue;
            }

            if (neighbor_eval.utility > ctx.best.evaluation.utility) {
                ctx.best.plan = neighbor;
                ctx.best.evaluation = neighbor_eval;
            }

            // --- Accept(.): Metropolis on the normalized utility difference.
            const double delta =
                (neighbor_eval.utility - ctx.curr_eval.utility) / ctx.u_scale;
            const bool accept =
                delta >= 0.0 || rng.uniform() < std::exp(delta / ctx.temperature);
            if (accept) {
                ctx.curr = std::move(neighbor);
                ctx.curr_eval = std::move(neighbor_eval);
                ++ctx.best.accepted_moves;
            }
        }
    }
}

AnnealingResult AnnealingSolver::run_chain(const TieringPlan& initial, std::uint64_t seed,
                                           EvalCache* cache) const {
    return run_chain(initial, seed, cache, SolveDeadline::from(options_));
}

AnnealingResult AnnealingSolver::run_chain(const TieringPlan& initial, std::uint64_t seed,
                                           EvalCache* cache,
                                           const SolveDeadline& deadline) const {
    const auto units = move_units();
    CAST_EXPECTS_MSG(!units.empty(), "cannot anneal an empty workload");
    Rng rng(seed);

    std::unique_ptr<EvalCache> owned;
    if (!options_.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        owned = std::make_unique<EvalCache>();
        cache = owned.get();
    }

    std::optional<SoaEvaluator> soa_store;
    if (options_.use_soa_evaluation && cache != nullptr) soa_store.emplace(*evaluator_);
    const SoaEvaluator* soa = soa_store ? &*soa_store : nullptr;

    ChainCtx ctx;
    init_chain(ctx, initial, evaluator_->evaluate(initial, cache), soa);
    run_span(ctx, rng, 0, options_.iter_max, units, cache, deadline, soa);
    finalize_chain(ctx, soa);
    return std::move(ctx.best);
}

AnnealingResult AnnealingSolver::solve(const TieringPlan& initial, ThreadPool* pool,
                                       EvalCache* cache) const {
    // One deadline for the whole solve, armed before any other work so the
    // wall budget covers lint and start-plan evaluation too: chains
    // dispatched late (sequential execution, or more chains than workers)
    // inherit the remaining budget rather than each restarting the clock.
    const SolveDeadline deadline = SolveDeadline::from(options_);
    // Pre-solve lint: reject inputs no annealing chain can fix (conflicting
    // reuse-group pins, unmodeled applications, a broken catalog) before
    // burning iterations on them.
    lint::LintContext lint_ctx;
    lint_ctx.models = &evaluator_->models();
    lint_ctx.reuse_aware = evaluator_->options().reuse_aware;
    lint::enforce(lint::lint_workload(evaluator_->workload(), lint_ctx));

    // One memo table shared by every chain: chains revisit the same
    // (job, tier, capacity) points constantly, so sharing multiplies the
    // hit rate. EvalCache is thread-safe (sharded locks) and
    // value-deterministic, so sharing cannot perturb trajectories.
    std::unique_ptr<EvalCache> owned;
    if (!options_.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        owned = std::make_unique<EvalCache>();
        cache = owned.get();
    }

    const bool tempering = options_.tempering && options_.chains > 1;

    // Multi-start: rotate chains/replicas across the supplied initial plan
    // and every feasible uniform plan (Eq. 7-projected in group-moves
    // mode, which uniform plans satisfy trivially).
    std::vector<TieringPlan> starts{initial};
    std::vector<PlanEvaluation> start_evals;
    if (tempering) start_evals.push_back(evaluator_->evaluate(initial, cache));
    if (options_.diverse_starts) {
        for (cloud::StorageTier t : cloud::kAllTiers) {
            TieringPlan uniform = TieringPlan::uniform(initial.size(), t);
            PlanEvaluation uniform_eval = evaluator_->evaluate(uniform, cache);
            if (uniform_eval.feasible) {
                starts.push_back(std::move(uniform));
                if (tempering) start_evals.push_back(std::move(uniform_eval));
            }
        }
    }

    if (tempering) return solve_tempering(starts, start_evals, pool, cache, deadline);

    // --- Legacy independent chains (tempering off, or a single chain).
    std::vector<AnnealingResult> results(static_cast<std::size_t>(options_.chains));
    auto run_one = [&](std::size_t c) {
        results[c] = run_chain(starts[c % starts.size()], options_.seed + 7919 * (c + 1),
                               cache, deadline);
    };
    if (pool != nullptr && options_.chains > 1) {
        pool->parallel_for(results.size(), run_one);
    } else {
        for (std::size_t c = 0; c < results.size(); ++c) run_one(c);
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < results.size(); ++c) {
        if (results[c].evaluation.utility > results[best].evaluation.utility) best = c;
    }
    // Report the winning chain's plan but the WHOLE search's effort: summing
    // only the winner used to under-report multi-chain work by ~1/chains.
    AnnealingResult out = std::move(results[best]);
    out.best_chain = static_cast<int>(best);
    out.iterations = 0;
    out.accepted_moves = 0;
    out.infeasible_neighbors = 0;
    out.budget_exhausted = false;
    for (const AnnealingResult& r : results) {
        out.iterations += r.iterations;
        out.accepted_moves += r.accepted_moves;
        out.infeasible_neighbors += r.infeasible_neighbors;
        out.budget_exhausted = out.budget_exhausted || r.budget_exhausted;
    }
    if (cache != nullptr) out.cache_stats = cache->stats();
    return out;
}

AnnealingResult AnnealingSolver::solve_tempering(
    const std::vector<TieringPlan>& starts, const std::vector<PlanEvaluation>& start_evals,
    ThreadPool* pool, EvalCache* cache, const SolveDeadline& deadline) const {
    const auto units = move_units();
    CAST_EXPECTS_MSG(!units.empty(), "cannot anneal an empty workload");
    CAST_EXPECTS(starts.size() == start_evals.size());

    std::optional<SoaEvaluator> soa_store;
    if (options_.use_soa_evaluation && cache != nullptr) soa_store.emplace(*evaluator_);
    const SoaEvaluator* soa = soa_store ? &*soa_store : nullptr;

    const auto replicas = static_cast<std::size_t>(options_.chains);
    // One normalization scale for the whole ladder (the supplied initial
    // plan's utility): exchange energies E = -u/u_scale are then
    // comparable across rungs regardless of which start a replica got.
    const double u_scale = start_evals.front().utility;

    std::vector<ChainCtx> reps(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
        init_chain(reps[r], starts[r % starts.size()], start_evals[r % starts.size()], soa);
        reps[r].u_scale = u_scale;
        reps[r].temperature = options_.initial_temperature *
                              std::pow(options_.tempering_ladder_ratio,
                                       static_cast<double>(r));
    }

    const TemperingSchedule sched(options_.iter_max, options_.exchange_stride,
                                  options_.chains);
    TemperingStats stats;
    stats.replicas = options_.chains;
    stats.exchange_attempts.assign(replicas - 1, 0);
    stats.exchange_accepts.assign(replicas - 1, 0);
    stats.replica_iterations.assign(replicas, 0);

    bool out_of_budget = false;
    for (int round = 0; round < sched.rounds(); ++round) {
        // Within a round replicas are fully independent (per-segment Rng,
        // private state, value-deterministic shared cache), so the pool
        // may execute them in any order on any number of workers without
        // changing a single draw.
        auto run_one = [&](std::size_t r) {
            Rng rng(TemperingSchedule::segment_seed(options_.seed, r,
                                                    static_cast<std::uint64_t>(round)));
            run_span(reps[r], rng, sched.round_begin(round), sched.round_end(round), units,
                     cache, deadline, soa);
        };
        if (pool != nullptr && replicas > 1) {
            pool->parallel_for(replicas, run_one, 1);
        } else {
            for (std::size_t r = 0; r < replicas; ++r) run_one(r);
        }
        ++stats.rounds;
        for (const ChainCtx& c : reps) {
            out_of_budget = out_of_budget || c.best.budget_exhausted;
        }
        if (out_of_budget) break;
        if (round + 1 < sched.rounds() && replicas > 1) {
            // Exchanges run on the calling thread at the barrier: even
            // pairs on even rounds, odd pairs on odd rounds. The draw is
            // consumed before deciding so the exchange stream stays
            // aligned whatever the outcomes.
            Rng ex(TemperingSchedule::exchange_seed(options_.seed,
                                                    static_cast<std::uint64_t>(round)));
            for (int p = TemperingSchedule::first_pair(round);
                 p + 1 < options_.chains; p += 2) {
                const double u = ex.uniform();
                ++stats.exchange_attempts[p];
                const double e_cold = -chain_current_utility(reps[p]) / u_scale;
                const double e_hot = -chain_current_utility(reps[p + 1]) / u_scale;
                if (exchange_accept(1.0 / reps[p].temperature,
                                    1.0 / reps[p + 1].temperature, e_cold, e_hot, u)) {
                    swap_chain_state(reps[p], reps[p + 1]);
                    ++stats.exchange_accepts[p];
                }
            }
        }
    }

    for (std::size_t r = 0; r < replicas; ++r) {
        finalize_chain(reps[r], soa);
        stats.replica_iterations[r] = reps[r].best.iterations;
    }
    std::size_t best = 0;
    for (std::size_t r = 1; r < replicas; ++r) {
        if (reps[r].best.evaluation.utility > reps[best].best.evaluation.utility) best = r;
    }
    AnnealingResult out = std::move(reps[best].best);
    out.best_chain = static_cast<int>(best);
    // Every replica's best already floors at its own start, but with fewer
    // replicas than starts (or a budget that stopped round 0 early) some
    // evaluated start may beat every replica: keep the multi-start
    // guarantee explicit.
    std::size_t best_start = 0;
    for (std::size_t s = 1; s < start_evals.size(); ++s) {
        if (start_evals[s].utility > start_evals[best_start].utility) best_start = s;
    }
    if (start_evals[best_start].utility > out.evaluation.utility) {
        out.plan = starts[best_start];
        out.evaluation = start_evals[best_start];
        out.best_chain = static_cast<int>(best_start % replicas);
    }
    out.iterations = 0;
    out.accepted_moves = 0;
    out.infeasible_neighbors = 0;
    out.budget_exhausted = out_of_budget;
    for (const ChainCtx& c : reps) {
        out.iterations += c.best.iterations;
        out.accepted_moves += c.best.accepted_moves;
        out.infeasible_neighbors += c.best.infeasible_neighbors;
    }
    if (cache != nullptr) out.cache_stats = cache->stats();
    out.tempering = std::move(stats);
    return out;
}

}  // namespace cast::core
