// Incremental re-planning: warm-start amend solves for streaming job sets.
//
// A planning service facing streaming arrivals re-solves the whole job set
// from scratch on every change, even though a small delta (a few arrivals,
// departures, or runtime re-estimates) leaves most placements' utility
// trade-offs untouched. The IncrementalSolver amends an existing
// TieringPlan instead: it seeds the search from the prior plan (survivors
// keep their decisions verbatim, arrivals get a greedy single-job seed,
// then deterministic coordinate-descent repair passes make the seed
// locally optimal), restricts the tempered-annealing move generator to the
// *affected neighborhood* of the delta — the changed jobs, their
// reuse-group peers, and every job on a tier whose provisioned capacity
// the delta shifted materially (capacity couples placements through
// Eq. 4's capacity-scaled runtimes and Eq. 6's shared bill) — and reuses a
// caller-owned EvalCache across amendments (the cache keys on job content,
// so survivors' REG runtimes stay warm across deltas).
//
// Amendments are deterministic: a pure function of (prior plan, delta,
// options), bit-identical at any worker count, because the restricted
// annealing inherits the replica-exchange tempering determinism and every
// seeding/neighborhood rule is branch-stable arithmetic. Quality is
// guarded by an escalation rule: every amend also computes the
// deterministic greedy shadow of a cold solve, and an amendment whose
// utility falls below `escalate_below` of that shadow escalates to a full
// unrestricted re-solve (reported via AmendResult::escalated_cold).
//
// The greedy-only path doubles as the irrevocable online baseline from the
// secretary-problem literature on online assignment (arXiv:1901.07335):
// each arrival is placed once, greedily, and never revisited —
// place_online() exposes it so benches can measure the regret that
// revising placements (amend) recovers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/castpp.hpp"
#include "workload/stream.hpp"

namespace cast::core {

/// Effort and safety knobs for one amend solve.
struct AmendPolicy {
    /// Annealing iterations budgeted per neighborhood member; the actual
    /// iter_max is clamp(iters_per_member * |neighborhood|,
    /// min_iters, max_iters). Small deltas get proportionally cheap solves
    /// — that proportionality is where the plans/sec win over a cold
    /// re-solve comes from.
    int iters_per_member = 300;
    int min_iters = 1500;
    int max_iters = 12000;
    /// Replicas for the restricted solve (the restricted landscape is
    /// small, so a short ladder suffices; a cold solve keeps the full
    /// CastOptions chain count).
    int chains = 3;
    /// Escalate to a full re-solve when the amended utility falls below
    /// this fraction of the deterministic greedy shadow's utility.
    /// <= 0 disables escalation; values > 1 force it (useful in tests).
    double escalate_below = 0.99;
    /// A tier joins the affected neighborhood when its aggregate
    /// provisioned capacity moved by more than this fraction between the
    /// prior plan and the seeded amended plan.
    double capacity_slack = 0.05;
    /// Coordinate-descent repair passes over the neighborhood before the
    /// restricted anneal: each pass walks the members in ascending order
    /// and lets each adopt its best (tier, k) given every other decision
    /// fixed. Starting the anneal from a locally optimal warm plan lets a
    /// small iteration budget match a cold solve's quality; 0 disables.
    int repair_passes = 2;
    /// Skip annealing entirely: survivors keep their placements, arrivals
    /// keep their greedy seeds. This is the governor's cheapest amend rung
    /// and the irrevocable online baseline.
    bool greedy_only = false;

    void validate() const {
        CAST_EXPECTS(iters_per_member >= 1);
        CAST_EXPECTS(min_iters >= 1 && max_iters >= min_iters);
        CAST_EXPECTS(chains >= 1);
        CAST_EXPECTS(capacity_slack >= 0.0);
        CAST_EXPECTS(repair_passes >= 0);
    }
};

struct AmendResult {
    /// The post-delta job set (survivors + arrivals) the plan below covers.
    workload::Workload workload;
    TieringPlan plan;
    PlanEvaluation evaluation;
    /// New-workload indices the move generator was allowed to touch
    /// (sorted; empty when the delta needed no search, e.g. pure
    /// departures with no material capacity shift).
    std::vector<std::size_t> neighborhood;
    /// True when the escalation rule replaced the restricted solve with a
    /// full unrestricted re-solve.
    bool escalated_cold = false;
    /// True when the greedy-only path ran (no annealing at all).
    bool greedy_only = false;
    /// Utility of the deterministic greedy shadow the escalation rule
    /// compared against (0 when the shadow was skipped: greedy-only path
    /// or an empty delta).
    double shadow_utility = 0.0;
    /// Annealing iterations actually spent (restricted + escalation).
    int iterations = 0;
    /// True when a wall budget or cancellation cut any constituent solve
    /// short (best-so-far result, same contract as AnnealingResult).
    bool budget_exhausted = false;
    EvalCacheStats cache_stats{};
    TemperingStats tempering{};
};

/// Amends tiering plans across job-set deltas. Stateless between calls —
/// the caller carries (workload, plan) forward and owns the shared
/// EvalCache — so one solver instance can serve many independent plan
/// streams concurrently.
class IncrementalSolver {
public:
    explicit IncrementalSolver(const model::PerfModelSet& models, CastOptions options = {},
                               AmendPolicy policy = {}, bool reuse_aware = false);

    /// Amend `prior_plan` (a plan over `prior`) across `delta`. Pure
    /// function of its arguments: bit-identical at any `pool` worker
    /// count, including pool == nullptr. Throws ValidationError when the
    /// delta does not apply to `prior` (unknown ids, duplicate arrivals).
    [[nodiscard]] AmendResult amend(const workload::Workload& prior,
                                    const TieringPlan& prior_plan,
                                    const workload::JobDelta& delta,
                                    ThreadPool* pool = nullptr,
                                    EvalCache* cache = nullptr) const;

    /// The irrevocable online baseline: survivors never move, each arrival
    /// is placed greedily once (secretary-style, arXiv:1901.07335), no
    /// escalation. Equivalent to amend() under a greedy_only policy.
    [[nodiscard]] AmendResult place_online(const workload::Workload& prior,
                                           const TieringPlan& prior_plan,
                                           const workload::JobDelta& delta,
                                           EvalCache* cache = nullptr) const;

    [[nodiscard]] const AmendPolicy& policy() const { return policy_; }
    [[nodiscard]] const CastOptions& options() const { return options_; }
    [[nodiscard]] bool reuse_aware() const { return reuse_aware_; }

private:
    /// Greedy single-job seed for an arrival (pin-aware; joins an existing
    /// reuse group's tier when reuse-aware).
    [[nodiscard]] PlacementDecision seed_arrival(const PlanEvaluator& evaluator,
                                                 const TieringPlan& partial,
                                                 std::size_t new_idx, EvalCache* cache) const;

    /// The affected neighborhood: `applied.changed`, closed under reuse
    /// groups, plus every job whose seeded tier's aggregate capacity
    /// shifted by more than policy_.capacity_slack between prior_plan and
    /// the seeded plan. Sorted unique. Sets `capacity_overflow` instead of
    /// throwing when the seeded plan violates provider capacity limits
    /// (the caller escalates to a cold solve).
    [[nodiscard]] std::vector<std::size_t> affected_neighborhood(
        const PlanEvaluator& prior_eval, const TieringPlan& prior_plan,
        const PlanEvaluator& next_eval, const TieringPlan& seeded,
        const workload::DeltaApplication& applied, bool* capacity_overflow) const;

    /// One deterministic coordinate-descent repair pass over the
    /// neighborhood: ascending member order, each member — or its whole
    /// reuse group when reuse-aware (Eq. 7 moves the group together) —
    /// adopts the feasible (tier, k) with the best full-plan utility given
    /// every other decision fixed. `plan`/`eval` are updated in place
    /// (`eval` must be the feasible evaluation of `plan` on entry).
    /// Returns true when any decision changed.
    bool repair_pass(const PlanEvaluator& evaluator,
                     const std::vector<std::size_t>& neighborhood, TieringPlan* plan,
                     PlanEvaluation* eval, EvalCache* cache) const;

    /// Full unrestricted re-solve over `evaluator`, seeded from the best
    /// available plan; fills the result's plan/evaluation/counters.
    void solve_cold(const PlanEvaluator& evaluator, const TieringPlan& seed,
                    ThreadPool* pool, EvalCache* cache, AmendResult* result) const;

    const model::PerfModelSet* models_;
    CastOptions options_;
    AmendPolicy policy_;
    bool reuse_aware_;
};

}  // namespace cast::core
