#include "core/cluster_planner.hpp"

#include <algorithm>

namespace cast::core {

ClusterPlanner::ClusterPlanner(cloud::StorageCatalog catalog,
                               std::vector<ClusterCandidate> candidates,
                               ClusterPlannerOptions options)
    : catalog_(std::move(catalog)),
      candidates_(std::move(candidates)),
      options_(std::move(options)) {
    CAST_EXPECTS_MSG(!candidates_.empty(), "cluster planner needs at least one candidate");
    for (const auto& c : candidates_) {
        CAST_EXPECTS_MSG(!c.label.empty(), "cluster candidate needs a label");
        c.cluster.validate();
    }
}

std::vector<ClusterPlanOutcome> ClusterPlanner::evaluate(const workload::Workload& workload,
                                                         ThreadPool* pool) const {
    // Candidates are independent; evaluate them in parallel, writing by
    // index so the outcome order (and the stable sort below) never depends
    // on worker count. The inner profiling/solver stages reuse the same
    // pool — nested parallel_for is safe on the work-stealing pool.
    std::vector<ClusterPlanOutcome> outcomes(candidates_.size());
    auto evaluate_one = [&](std::size_t i) {
        const ClusterCandidate& candidate = candidates_[i];
        // Profiling is per cluster shape: slot counts and volume geometry
        // change the M̂ matrix and the REG splines.
        model::Profiler profiler(candidate.cluster, catalog_, options_.profiler);
        const model::PerfModelSet models = profiler.profile(pool);
        const CastResult result =
            options_.reuse_aware
                ? plan_cast_plus_plus(models, workload, options_.cast, pool)
                : plan_cast(models, workload, options_.cast, pool);
        outcomes[i] = ClusterPlanOutcome{candidate, result.plan, result.evaluation};
    };
    if (pool != nullptr) {
        pool->parallel_for(candidates_.size(), evaluate_one, /*grain=*/1);
    } else {
        for (std::size_t i = 0; i < candidates_.size(); ++i) evaluate_one(i);
    }
    std::stable_sort(outcomes.begin(), outcomes.end(),
                     [](const ClusterPlanOutcome& a, const ClusterPlanOutcome& b) {
                         if (a.evaluation.feasible != b.evaluation.feasible) {
                             return a.evaluation.feasible;
                         }
                         return a.utility() > b.utility();
                     });
    return outcomes;
}

std::vector<ClusterCandidate> ClusterPlanner::default_candidates() {
    std::vector<ClusterCandidate> candidates;
    for (int workers : {10, 25, 50}) {
        cloud::ClusterSpec spec = cloud::ClusterSpec::paper_400_core();
        spec.worker_count = workers;
        candidates.push_back(
            {"n1-standard-16 x " + std::to_string(workers), std::move(spec)});
    }
    // Same total core count as 25 x 16, spread across twice the nodes:
    // twice the attached volumes (more aggregate block bandwidth) but a
    // higher per-GB-of-compute price and master overhead.
    cloud::ClusterSpec half = cloud::ClusterSpec::paper_400_core();
    half.worker = cloud::MachineType{.name = "n1-standard-8",
                                     .vcpus = 8,
                                     .memory_gb = 30.0,
                                     .map_slots = 4,
                                     .reduce_slots = 4,
                                     .price_per_hour = Dollars{0.418},
                                     .shuffle_network_bw = MBytesPerSec{90.0}};
    half.worker_count = 50;
    candidates.push_back({"n1-standard-8 x 50", std::move(half)});
    return candidates;
}

}  // namespace cast::core
