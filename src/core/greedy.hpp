// Greedy static tiering (paper Algorithm 1).
//
// For each job independently, pick the tier with the highest single-job
// utility. Two variants from §5.1.2: "exact-fit" provisions exactly the
// Eq. 3 requirement; "over-provisioned" additionally sweeps the
// over-provisioning factor per job. Greedy is deliberately myopic — it
// evaluates each job as if it were the whole workload, so it cannot see
// that piling jobs onto one tier changes that tier's capacity-scaled
// performance and everyone's share of the storage bill. CAST's annealing
// solver exists because of exactly this flaw (§4.2.2), and Fig. 7 measures
// the gap.
#pragma once

#include <vector>

#include "core/plan.hpp"
#include "core/utility.hpp"

namespace cast::core {

struct GreedyOptions {
    /// false: exact-fit (kᵢ = 1). true: sweep kᵢ over overprov_choices.
    bool over_provision = false;
    std::vector<double> overprov_choices = {1.0, 1.5, 2.0, 3.0, 4.0};
};

class GreedySolver {
public:
    explicit GreedySolver(const PlanEvaluator& evaluator) : evaluator_(&evaluator) {}

    /// When `cache` is supplied, every single-job evaluation memoizes its
    /// REG runtime through it. The cache keys on job content rather than
    /// workload index, so the same table can be (and in the CAST facades
    /// is) shared with the annealing stage that refines this plan.
    [[nodiscard]] TieringPlan solve(const GreedyOptions& options = {},
                                    EvalCache* cache = nullptr) const;

    /// Single-job utility of placing `job` on `tier` with factor k — the
    /// Utility(j, f) of Algorithm 1. Returns 0 when the placement is
    /// infeasible on its own.
    [[nodiscard]] double single_job_utility(const workload::JobSpec& job,
                                            cloud::StorageTier tier, double k,
                                            EvalCache* cache = nullptr) const;

private:
    const PlanEvaluator* evaluator_;
};

}  // namespace cast::core
