// Deterministic replica-exchange (parallel tempering) schedule.
//
// Independent annealing chains waste parallel hardware: every chain pays
// the full cool-down, and the cold ones get stuck in the first decent
// basin they find. Replica exchange runs N replicas on a temperature
// ladder and periodically swaps the *states* of adjacent rungs, so a plan
// discovered by a hot, exploratory replica can migrate down the ladder
// and be refined by the cold ones — strictly better use of the same
// iteration budget.
//
// The schedule here is built for bit-reproducibility at any worker count:
//
//   * Replicas advance in lock-step rounds of `exchange_stride`
//     iterations. Within a round no replica reads another's state, so the
//     pool may run them in any order on any number of workers.
//   * Each (replica, round) segment draws from a fresh Rng whose seed is
//     a pure function of (solve seed, replica, round) — a replica's
//     trajectory does not depend on how many iterations some worker
//     happened to run before picking it up.
//   * Exchanges happen on the calling thread at the round barrier, with
//     their own per-round seed, sweeping even pairs on even rounds and
//     odd pairs on odd rounds (the standard alternation, so information
//     can traverse the whole ladder).
//
// The only shared mutable structure during a round is the EvalCache,
// which is value-deterministic: a lookup returns the same runtime whether
// it hits or misses, so racing replicas can never change each other's
// trajectories — only the hit/miss statistics.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cast::core {

/// Round boundaries and per-segment seed derivation for one tempered
/// solve. Pure arithmetic; holds no replica state.
class TemperingSchedule {
public:
    TemperingSchedule(int iter_max, int exchange_stride, int replicas)
        : iter_max_(iter_max), stride_(exchange_stride), replicas_(replicas) {
        CAST_EXPECTS(iter_max_ >= 1);
        CAST_EXPECTS(stride_ >= 1);
        CAST_EXPECTS(replicas_ >= 1);
        rounds_ = (iter_max_ + stride_ - 1) / stride_;
    }

    [[nodiscard]] int rounds() const { return rounds_; }
    [[nodiscard]] int replicas() const { return replicas_; }

    /// Global iteration range [begin, end) of `round`; the last round is
    /// short when exchange_stride does not divide iter_max.
    [[nodiscard]] int round_begin(int round) const { return round * stride_; }
    [[nodiscard]] int round_end(int round) const {
        const int end = (round + 1) * stride_;
        return end < iter_max_ ? end : iter_max_;
    }

    /// First rung index of the adjacent-pair sweep after `round`: even
    /// rounds swap (0,1)(2,3)..., odd rounds (1,2)(3,4)... so states can
    /// walk the full ladder over consecutive rounds.
    [[nodiscard]] static int first_pair(int round) { return round % 2; }

    /// Seed of the Rng driving replica `replica` during `round`. Chained
    /// SplitMix64 so nearby (replica, round) pairs land far apart; a pure
    /// function of its inputs, which is the whole determinism argument.
    [[nodiscard]] static std::uint64_t segment_seed(std::uint64_t solve_seed,
                                                    std::uint64_t replica,
                                                    std::uint64_t round) {
        SplitMix64 sm(solve_seed ^ 0x7459aa63d82effc5ULL);
        const std::uint64_t a = sm.next();
        SplitMix64 sm2(a + 0x9e3779b97f4a7c15ULL * (replica + 1));
        const std::uint64_t b = sm2.next();
        SplitMix64 sm3(b + 0xd1b54a32d192ed03ULL * (round + 1));
        return sm3.next();
    }

    /// Seed of the Rng consuming the exchange-acceptance draws after
    /// `round`. Distinct stream from every segment seed by construction
    /// (different salt), so exchange draws never alias move draws.
    [[nodiscard]] static std::uint64_t exchange_seed(std::uint64_t solve_seed,
                                                     std::uint64_t round) {
        SplitMix64 sm(solve_seed ^ 0xb5297a4d3f84d5a3ULL);
        const std::uint64_t a = sm.next();
        SplitMix64 sm2(a + 0xd1b54a32d192ed03ULL * (round + 1));
        return sm2.next();
    }

private:
    int iter_max_;
    int stride_;
    int replicas_;
    int rounds_;
};

/// Standard replica-exchange Metropolis rule on dimensionless energies
/// (here E = -utility/u_scale, matching the annealing accept rule's
/// normalization): swap with probability min(1, exp(Δβ·ΔE)) where
/// Δβ = β_cold - β_hot and ΔE = E_cold - E_hot. `u` is the caller's
/// uniform draw — it is ALWAYS consumed (the caller draws before calling)
/// so the exchange stream stays aligned whatever the outcome.
[[nodiscard]] inline bool exchange_accept(double beta_cold, double beta_hot, double e_cold,
                                          double e_hot, double u) {
    const double log_ratio = (beta_cold - beta_hot) * (e_cold - e_hot);
    return log_ratio >= 0.0 || u < std::exp(log_ratio);
}

/// Per-solve replica-exchange statistics, exported through result structs
/// and the serve-layer MetricsRegistry ("solver.tempering.*").
struct TemperingStats {
    /// 0 when the solve ran the legacy independent-chain path.
    int replicas = 0;
    /// Rounds actually executed (== schedule rounds unless the wall
    /// budget stopped the solve early).
    int rounds = 0;
    /// Per-rung exchange counters: entry r covers swaps attempted/accepted
    /// between rungs r and r+1 (replicas - 1 entries).
    std::vector<std::uint64_t> exchange_attempts;
    std::vector<std::uint64_t> exchange_accepts;
    /// Iterations each replica actually ran (budget exhaustion can stop
    /// replicas mid-ladder).
    std::vector<int> replica_iterations;

    [[nodiscard]] bool enabled() const { return replicas > 0; }
    [[nodiscard]] std::uint64_t total_attempts() const {
        std::uint64_t n = 0;
        for (std::uint64_t a : exchange_attempts) n += a;
        return n;
    }
    [[nodiscard]] std::uint64_t total_accepts() const {
        std::uint64_t n = 0;
        for (std::uint64_t a : exchange_accepts) n += a;
        return n;
    }
};

}  // namespace cast::core
