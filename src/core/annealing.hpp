// Simulated-annealing tiering solver (paper Algorithm 2).
//
// Searches the ⟨sᵢ, kᵢ⟩ space for a plan maximizing tenant utility. Each
// iteration perturbs the current plan (a random job — or, in reuse-aware
// mode, a whole reuse group, preserving Eq. 7 by construction — moves to
// a different tier, or changes its over-provisioning factor), evaluates
// Eq. 2-6, and accepts by the Metropolis rule with a geometrically cooled
// temperature (the paper's Cooling(.)/Accept(.)).
//
// Multi-chain search runs as deterministic replica-exchange tempering by
// default (core/tempering.hpp): the chains become replicas on a
// temperature ladder, advance in lock-step rounds, and swap states at
// round barriers — the same iteration budget as independent chains, but
// hot replicas keep exploring while cold ones refine, and the trajectory
// is a pure function of (seed, chains) at ANY worker count. Inner-loop
// evaluation runs on the flat struct-of-arrays core (core/soa_eval.hpp),
// bit-identical to the AoS evaluator and allocation-free per iteration.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/eval_cache.hpp"
#include "core/plan.hpp"
#include "core/tempering.hpp"
#include "core/utility.hpp"

namespace cast::core {

class SoaEvaluator;
struct SoaState;

struct AnnealingOptions {
    int iter_max = 20000;
    /// Initial temperature as a fraction of the initial solution's utility.
    double initial_temperature = 0.5;
    /// Geometric cooling factor applied once per iteration.
    double cooling = 0.9995;
    /// Temperature floor (search becomes effectively greedy below it).
    double min_temperature = 1e-4;
    /// kᵢ move choices. Large factors matter: block-tier bandwidth scales
    /// with provisioned capacity, and for small datasets the utility-optimal
    /// volume can be many times the data size (§3.1.2).
    std::vector<double> overprov_choices = {1.0, 1.25, 1.5, 2.0, 3.0,
                                            4.0, 6.0,  8.0, 12.0};
    /// Probability a move changes the tier (vs. the over-provision factor).
    double tier_move_probability = 0.7;
    /// Probability of a *batch* move: relocate every job of one randomly
    /// chosen application class to one tier. Block-tier performance scales
    /// with pooled capacity (Fig. 2), so single-job moves onto an empty
    /// tier always look terrible even when the tier is optimal for the
    /// whole class — batch moves let the search cross that valley.
    double app_move_probability = 0.1;
    /// Start chains from a diverse set (the given initial plan plus every
    /// feasible uniform plan) instead of one point. The paper notes P̂init
    /// "specifies preferred regions in the search space"; multi-start makes
    /// that systematic.
    bool diverse_starts = true;
    /// Independent chains (run in parallel when a pool is supplied). With
    /// diverse_starts, chains rotate over the available start plans, so >= 5
    /// covers the initial plan plus the four uniform plans.
    int chains = 6;
    std::uint64_t seed = 1;
    /// CAST++: move whole reuse groups together so Eq. 7 always holds.
    bool group_moves = false;
    /// Restrict the move generator to a job subset: when non-empty (size
    /// must equal the workload size, at least one entry non-zero), only
    /// move units containing a flagged job are generated — every other
    /// decision stays frozen at its start-plan value. Evaluation remains
    /// global, so frozen jobs still feel capacity shifts from their
    /// neighbors. The incremental re-planner (core/incremental.hpp) flags
    /// the affected neighborhood of a job-set delta here; empty (the
    /// default) means every job is movable. The mask is part of the
    /// solve's pure-function inputs, so restricted solves stay
    /// bit-identical at any worker count.
    std::vector<std::uint8_t> active_jobs;
    /// Replica-exchange tempering (core/tempering.hpp): the chains run as
    /// replicas on a temperature ladder with state swaps at fixed
    /// iteration boundaries. Bit-identical at any worker count by
    /// construction. When false (or chains == 1) the legacy
    /// independent-chain search runs instead — the flag exists for the
    /// tempering-vs-independent bench row and for golden tests pinned to
    /// the historical trajectories.
    bool tempering = true;
    /// Geometric rung spacing: replica r starts its cooling at
    /// initial_temperature · ratio^r, so the ladder spans exploration
    /// (hot) to refinement (cold) with roughly constant exchange rates.
    double tempering_ladder_ratio = 1.6;
    /// Iterations between exchange barriers. Coarse enough that barrier
    /// synchronization vanishes against ~µs evaluations, fine enough that
    /// good states traverse the whole ladder many times per solve.
    int exchange_stride = 256;
    /// Evaluate the inner loop through the flat struct-of-arrays core
    /// (core/soa_eval.hpp) instead of TieringPlan copies through
    /// evaluate_delta. Trajectories are bit-identical either way
    /// (golden-tested); the flag exists so bench/solver_throughput can
    /// measure SoA vs AoS. Only effective with use_evaluation_cache (the
    /// uncached baseline stays on the pure AoS path).
    bool use_soa_evaluation = true;
    /// Memoize REG runtimes (EvalCache) and evaluate neighbors through the
    /// incremental evaluate_delta path. Results are bit-identical to the
    /// uncached evaluator for identical seeds; the flag exists so the
    /// solver_throughput bench can measure the uncached baseline.
    bool use_evaluation_cache = true;
    /// Wall-clock budget for the WHOLE solve — all chains together — in
    /// milliseconds; 0 disables the budget. A chain that reaches the
    /// deadline stops at its next segment boundary and returns its
    /// best-so-far plan (feasible by construction: the search never keeps
    /// an infeasible incumbent), with the result flagged budget_exhausted.
    /// Exhaustion is a degraded answer, never an error.
    double max_wall_ms = 0.0;
    /// Cooperative cancellation, polled together with the budget at chain
    /// segment boundaries (every kBudgetCheckStride iterations). The token
    /// must outlive the solve; cancellation reports as budget_exhausted.
    const CancelToken* cancel = nullptr;

    /// Iterations between budget/cancel polls: coarse enough that the
    /// steady_clock read vanishes against ~µs evaluations, fine enough
    /// that deadline overshoot stays well under a millisecond.
    static constexpr int kBudgetCheckStride = 32;
};

/// Shared solve deadline derived from options at solve() entry, so every
/// chain — run in parallel or sequentially — answers to one wall clock.
struct SolveDeadline {
    std::optional<std::chrono::steady_clock::time_point> at;
    const CancelToken* cancel = nullptr;

    [[nodiscard]] static SolveDeadline from(const AnnealingOptions& options) {
        SolveDeadline d;
        if (options.max_wall_ms > 0.0) {
            d.at = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(options.max_wall_ms));
        }
        d.cancel = options.cancel;
        return d;
    }

    [[nodiscard]] bool expired() const {
        if (cancel != nullptr && cancel->stop_requested()) return true;
        return at.has_value() && std::chrono::steady_clock::now() >= *at;
    }

    /// True when neither a wall budget nor a token is armed — the polling
    /// branch is skipped entirely, keeping unbudgeted solves bit-for-bit on
    /// their historical trajectories at zero cost.
    [[nodiscard]] bool unbounded() const { return !at.has_value() && cancel == nullptr; }
};

struct AnnealingResult {
    TieringPlan plan;
    PlanEvaluation evaluation;
    /// Search-effort counters. From run_chain() they cover that one chain;
    /// from solve() they are aggregated across ALL chains, so reports and
    /// benches see the true effort of multi-chain search.
    int iterations = 0;
    int accepted_moves = 0;
    /// Neighbors rejected outright because evaluation found them
    /// infeasible (pin/Eq. 7 violations never reach this: the move
    /// generator respects them by construction).
    int infeasible_neighbors = 0;
    /// Index of the winning chain (solve() only; 0 for a single chain).
    int best_chain = 0;
    /// Memo-table statistics of the run (all zero when the cache is
    /// disabled).
    EvalCacheStats cache_stats{};
    /// True when the wall budget (or a cancellation) stopped the search
    /// early: the plan is the best feasible one found so far, not the
    /// converged optimum. From solve() it is the OR across chains.
    bool budget_exhausted = false;
    /// Replica-exchange statistics (replicas == 0 when the solve ran the
    /// legacy independent-chain path or a single chain).
    TemperingStats tempering{};
};

/// One move unit — a single job, or a whole reuse group in group_moves
/// mode — with its membership and pin constraints precomputed as bitmasks,
/// so the per-iteration move generator tests one bit instead of scanning
/// members.
struct MoveUnit {
    std::vector<std::size_t> jobs;
    /// Bit per workload::AppKind some member runs.
    std::uint32_t app_mask = 0;
    /// Bit per tier no member's `tier=` pin forbids.
    std::uint32_t allowed_tiers = 0;
};

class AnnealingSolver {
public:
    AnnealingSolver(const PlanEvaluator& evaluator, AnnealingOptions options = {});

    /// Anneal from `initial` (e.g. the greedy plan, or a uniform plan).
    /// The initial plan must be feasible. Runs options.chains chains, on
    /// `pool` when provided, and returns the best result with counters
    /// aggregated across chains. All chains share one evaluation cache:
    /// `cache` when supplied, otherwise an internally created one.
    [[nodiscard]] AnnealingResult solve(const TieringPlan& initial,
                                        ThreadPool* pool = nullptr,
                                        EvalCache* cache = nullptr) const;

    /// One chain with an explicit seed (exposed for tests/determinism).
    /// Uses `cache` when supplied, else its own, unless the options disable
    /// caching altogether. The deadline defaults to one freshly derived
    /// from the options; solve() passes its own so all chains share one
    /// wall clock.
    [[nodiscard]] AnnealingResult run_chain(const TieringPlan& initial, std::uint64_t seed,
                                            EvalCache* cache = nullptr) const;
    [[nodiscard]] AnnealingResult run_chain(const TieringPlan& initial, std::uint64_t seed,
                                            EvalCache* cache,
                                            const SolveDeadline& deadline) const;

    /// The move units: single jobs, or reuse groups in group_moves mode,
    /// with membership/pin masks precomputed. Exposed for tests.
    [[nodiscard]] std::vector<MoveUnit> move_units() const;

    /// Generate one neighbor of `curr`, appending the indices of every
    /// decision that actually differs to `changed` (cleared first). Pin-
    /// and app-membership-aware: a proposed move never violates a `tier=`
    /// pin, and app batch moves relocate exactly the units containing the
    /// drawn application class. Exposed for tests.
    [[nodiscard]] TieringPlan propose_neighbor(Rng& rng, const TieringPlan& curr,
                                               const std::vector<MoveUnit>& units,
                                               std::vector<std::size_t>& changed) const;

private:
    /// Per-chain/replica search state: the AoS current plan + evaluation
    /// OR the SoA flat state, the cooling temperature, the normalization
    /// scale, and the best-so-far result with its counters. Defined in
    /// the .cpp (it embeds SoaState).
    struct ChainCtx;

    void init_chain(ChainCtx& ctx, const TieringPlan& start,
                    const PlanEvaluation& start_eval, const SoaEvaluator* soa) const;
    /// Run iterations [iter_begin, iter_end) of one chain. Both the AoS
    /// and SoA bodies make exactly the same RNG draws per iteration, so
    /// the two modes share one trajectory.
    void run_span(ChainCtx& ctx, Rng& rng, int iter_begin, int iter_end,
                  const std::vector<MoveUnit>& units, EvalCache* cache,
                  const SolveDeadline& deadline, const SoaEvaluator* soa) const;
    /// propose_neighbor's SoA twin: identical draw sequence and identical
    /// changed-set, but mutates the flat state under its undo log instead
    /// of copying the plan.
    void propose_neighbor_soa(Rng& rng, const SoaEvaluator& soa, SoaState& state,
                              const std::vector<MoveUnit>& units,
                              std::vector<std::size_t>& changed) const;
    /// Export the SoA best snapshot back into ctx.best's AoS fields.
    void finalize_chain(ChainCtx& ctx, const SoaEvaluator* soa) const;
    [[nodiscard]] static double chain_current_utility(const ChainCtx& ctx);
    static void swap_chain_state(ChainCtx& a, ChainCtx& b);

    [[nodiscard]] AnnealingResult solve_tempering(const std::vector<TieringPlan>& starts,
                                                  const std::vector<PlanEvaluation>& start_evals,
                                                  ThreadPool* pool, EvalCache* cache,
                                                  const SolveDeadline& deadline) const;

    const PlanEvaluator* evaluator_;
    AnnealingOptions options_;
};

}  // namespace cast::core
