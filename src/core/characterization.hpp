// Single-job characterization experiments (paper §3.1, Figures 1-5).
//
// These helpers reproduce the paper's motivating measurements: run one
// application on one storage service on a small cluster (through the
// simulator, our testbed substitute), and compute the paper's tenant
// utility for that run. Used by the Fig. 1/2/3/5 bench binaries and the
// integration tests that assert the published orderings.
#pragma once

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "core/utility.hpp"
#include "sim/mapreduce.hpp"
#include "workload/job.hpp"

namespace cast::core {

struct CharacterizationOptions {
    /// Per-VM block-tier volume size used in the §3.1 experiments (the
    /// paper provisions Table 1's 500 GB volumes; grown when the job needs
    /// more).
    GigaBytes block_volume_per_vm{500.0};
    sim::SimOptions sim;
    EvalOptions eval;
};

struct TierRunResult {
    sim::JobResult sim;
    CapacityBreakdown capacities;
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    double utility = 0.0;

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

/// Provisioned capacities for running `job` wholly on `tier` under the
/// §3.1 conventions (500 GB block volumes, objStore backing for ephSSD,
/// persSSD intermediate volume for objStore).
[[nodiscard]] CapacityBreakdown characterization_capacities(
    const cloud::ClusterSpec& cluster, const cloud::StorageCatalog& catalog,
    const workload::JobSpec& job, cloud::StorageTier tier,
    const CharacterizationOptions& options = {});

/// Fig. 1: run `job` on `tier` and report runtime breakdown + utility.
[[nodiscard]] TierRunResult run_job_on_tier(const cloud::ClusterSpec& cluster,
                                            const cloud::StorageCatalog& catalog,
                                            const workload::JobSpec& job,
                                            cloud::StorageTier tier,
                                            const CharacterizationOptions& options = {});

/// Fig. 5: run `job` with its input split across tiers at task granularity
/// (intermediate/output stay on the first split's tier; no staging), and
/// report the makespan.
[[nodiscard]] Seconds run_job_with_input_split(const cloud::ClusterSpec& cluster,
                                               const cloud::StorageCatalog& catalog,
                                               const workload::JobSpec& job,
                                               const std::vector<sim::InputSplit>& splits,
                                               const CharacterizationOptions& options = {});

}  // namespace cast::core
