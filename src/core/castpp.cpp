#include "core/castpp.hpp"

#include <cmath>
#include <memory>

#include "lint/analyzer.hpp"
#include "lint/checks.hpp"

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;
}  // namespace

// ---------------------------------------------------------------------------
// Facades.
// ---------------------------------------------------------------------------

namespace {

/// Pre-solve lint shared by every batch facade: errors (unplaceable reuse
/// groups, unmodeled apps, a broken catalog) reject before any search
/// spends time; warnings ride along into the result for reports.
lint::Report lint_gate(const model::PerfModelSet& models, const workload::Workload& workload,
                       bool reuse_aware) {
    lint::LintContext lint_ctx;
    lint_ctx.models = &models;
    lint_ctx.reuse_aware = reuse_aware;
    lint::Report pre = lint::lint_workload(workload, lint_ctx);
    lint::enforce(pre);
    return pre;
}

CastResult plan_with(const model::PerfModelSet& models, const workload::Workload& workload,
                     const CastOptions& options, bool reuse_aware, ThreadPool* pool,
                     EvalCache* cache) {
    // A wall budget covers the WHOLE facade, not just annealing: greedy
    // initialization runs on this clock too, and the annealing stage gets
    // only what remains (serving p99 targets would otherwise quietly slip
    // by the greedy time).
    const auto entry = std::chrono::steady_clock::now();
    lint::Report pre = lint_gate(models, workload, reuse_aware);

    PlanEvaluator evaluator(models, workload, EvalOptions{.reuse_aware = reuse_aware});

    // One memo table for the whole pipeline: runtimes computed during the
    // greedy sweep (keyed on job content, not workload index) are reused by
    // every annealing chain. A caller-supplied cache (the serve layer's
    // snapshot-scoped table) replaces the per-call one, so the memo also
    // survives across requests.
    EvalCache local_cache;
    if (!options.annealing.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        cache = &local_cache;
    }

    TieringPlan initial =
        greedy_projected_plan(evaluator, options.greedy_init, reuse_aware, cache);

    AnnealingOptions annealing = options.annealing;
    annealing.group_moves = reuse_aware;
    if (annealing.max_wall_ms > 0.0) {
        const double spent =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      entry)
                .count();
        // Keep the budget armed even when greedy ate all of it: a tiny
        // positive remainder makes every chain bail at its first poll and
        // return its evaluated (feasible) start plan, flagged exhausted.
        annealing.max_wall_ms = std::max(annealing.max_wall_ms - spent, 1e-3);
    }
    AnnealingSolver solver(evaluator, annealing);
    AnnealingResult result = solver.solve(initial, pool, cache);
    CastResult out;
    out.plan = std::move(result.plan);
    out.evaluation = std::move(result.evaluation);
    out.greedy_initial = std::move(initial);
    out.iterations = result.iterations;
    out.best_chain = result.best_chain;
    out.cache_stats = result.cache_stats;
    out.budget_exhausted = result.budget_exhausted;
    out.tempering = std::move(result.tempering);
    for (const lint::Finding* f : pre.at(lint::Severity::kWarning)) {
        out.lint_notes.push_back(f->format());
    }
    return out;
}

}  // namespace

CastResult plan_cast(const model::PerfModelSet& models, const workload::Workload& workload,
                     const CastOptions& options, ThreadPool* pool, EvalCache* cache) {
    return plan_with(models, workload, options, /*reuse_aware=*/false, pool, cache);
}

CastResult plan_cast_plus_plus(const model::PerfModelSet& models,
                               const workload::Workload& workload, const CastOptions& options,
                               ThreadPool* pool, EvalCache* cache) {
    return plan_with(models, workload, options, /*reuse_aware=*/true, pool, cache);
}

CastResult plan_cast_greedy(const model::PerfModelSet& models,
                            const workload::Workload& workload, const CastOptions& options,
                            bool reuse_aware, EvalCache* cache) {
    lint::Report pre = lint_gate(models, workload, reuse_aware);
    PlanEvaluator evaluator(models, workload, EvalOptions{.reuse_aware = reuse_aware});

    EvalCache local_cache;
    if (!options.annealing.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        cache = &local_cache;
    }

    CastResult out;
    out.plan = greedy_projected_plan(evaluator, options.greedy_init, reuse_aware, cache);
    out.evaluation = evaluator.evaluate(out.plan, cache);
    out.greedy_initial = out.plan;
    if (cache != nullptr) out.cache_stats = cache->stats();
    for (const lint::Finding* f : pre.at(lint::Severity::kWarning)) {
        out.lint_notes.push_back(f->format());
    }
    return out;
}

/// Greedy ignores reuse groups, so every group is aligned on its leader's
/// tier to make the plan Eq. 7-feasible; a pinned member dictates the whole
/// group's tier (members pinned apart were rejected by lint rule L005).
TieringPlan greedy_projected_plan(const PlanEvaluator& evaluator, const GreedyOptions& options,
                                  bool reuse_aware, EvalCache* cache) {
    const workload::Workload& workload = evaluator.workload();
    GreedySolver greedy(evaluator);
    TieringPlan initial = greedy.solve(options, cache);
    if (reuse_aware) {
        for (const auto& [group, members] : workload.reuse_groups()) {
            PlacementDecision lead = initial.decision(members.front());
            for (std::size_t m : members) {
                if (workload.job(m).pinned_tier) lead.tier = *workload.job(m).pinned_tier;
            }
            for (std::size_t m : members) initial.set_decision(m, lead);
        }
    }
    return initial;
}

// ---------------------------------------------------------------------------
// Workflow evaluation.
// ---------------------------------------------------------------------------

WorkflowEvaluator::WorkflowEvaluator(const model::PerfModelSet& models,
                                     workload::Workflow workflow, EvalOptions options)
    : models_(&models), workflow_(std::move(workflow)), options_(options) {
    workflow_.validate();
}

GigaBytes WorkflowEvaluator::job_requirement(const WorkflowPlan& plan,
                                             std::size_t job_idx) const {
    // Eq. 10: a job provisions its intermediate and output, plus its input
    // unless the input is already resident — i.e. every predecessor whose
    // output feeds it lives on the same tier.
    const auto& job = workflow_.jobs()[job_idx];
    const StorageTier tier = plan.decisions[job_idx].tier;
    const auto preds = workflow_.predecessors(job_idx);
    bool input_resident = !preds.empty();
    for (std::size_t p : preds) {
        if (plan.decisions[p].tier != tier) input_resident = false;
    }
    GigaBytes req = job.intermediate() + job.output();
    if (!input_resident) req += job.input;
    return req;
}

Seconds WorkflowEvaluator::transfer_time(GigaBytes volume, StorageTier from,
                                         GigaBytes from_per_vm, StorageTier to,
                                         GigaBytes to_per_vm) const {
    if (volume.value() <= 0.0 || from == to) return Seconds{0.0};
    const auto& catalog = models_->catalog();
    const int nvm = models_->cluster().worker_count;
    auto side_bw = [&](StorageTier t, GigaBytes per_vm, bool reading) {
        const auto& svc = catalog.service(t);
        if (t == StorageTier::kObjectStore) {
            return reading ? svc.cluster_read_bw(per_vm, nvm).value()
                           : svc.cluster_write_bw(per_vm, nvm).value();
        }
        const auto perf = svc.performance(svc.provision(per_vm));
        return (reading ? perf.read_bw.value() : perf.write_bw.value()) * nvm;
    };
    const double cluster_mbps =
        std::min(side_bw(from, from_per_vm, true), side_bw(to, to_per_vm, false));
    CAST_ENSURES(cluster_mbps > 0.0);
    return Seconds{volume.megabytes() / cluster_mbps};
}

WorkflowEvaluation WorkflowEvaluator::evaluate(const WorkflowPlan& plan,
                                               EvalCache* cache) const {
    CAST_EXPECTS_MSG(plan.decisions.size() == workflow_.size(),
                     "plan/workflow size mismatch");
    for (const auto& d : plan.decisions) d.validate();

    WorkflowEvaluation eval;
    {
        // Operator pins via the shared lint check (same rule the deployer
        // and CLI enforce).
        std::vector<lint::Finding> violations;
        lint::check_tier_pins(workflow_.jobs(), plan.decisions, violations);
        if (!violations.empty()) {
            eval.infeasibility = violations.front().message;
            return eval;
        }
    }
    const int nvm = models_->cluster().worker_count;

    // --- Capacities (Eq. 10 + deployment conventions).
    bool any_on_object_store = false;
    GigaBytes max_object_store_inter{0.0};
    for (std::size_t i = 0; i < workflow_.size(); ++i) {
        const auto& d = plan.decisions[i];
        const auto& job = workflow_.jobs()[i];
        const GigaBytes ci{job_requirement(plan, i).value() * d.overprovision};
        eval.capacities.aggregate[tier_index(d.tier)] += ci;
        if (d.tier == StorageTier::kEphemeralSsd) {
            GigaBytes backing = job.output();
            if (workflow_.predecessors(i).empty()) backing += job.input;
            eval.capacities.aggregate[tier_index(StorageTier::kObjectStore)] += backing;
        }
        if (d.tier == StorageTier::kObjectStore) {
            any_on_object_store = true;
            if (job.intermediate() > max_object_store_inter) {
                max_object_store_inter = job.intermediate();
            }
        }
    }
    if (any_on_object_store) {
        auto& pers = eval.capacities.aggregate[tier_index(StorageTier::kPersistentSsd)];
        const GigaBytes floor{
            cloud::object_store_intermediate_volume(max_object_store_inter, nvm).value() *
            nvm};
        if (pers < floor) pers = floor;
    }
    try {
        for (StorageTier t : cloud::kAllTiers) {
            const GigaBytes agg = eval.capacities.aggregate[tier_index(t)];
            if (agg.value() <= 0.0) continue;
            if (t == StorageTier::kObjectStore) {
                eval.capacities.per_vm[tier_index(t)] = GigaBytes{agg.value() / nvm};
                continue;
            }
            const auto& service = models_->catalog().service(t);
            const GigaBytes per_vm = service.provision(GigaBytes{agg.value() / nvm});
            eval.capacities.per_vm[tier_index(t)] = per_vm;
            eval.capacities.aggregate[tier_index(t)] = GigaBytes{per_vm.value() * nvm};
        }
    } catch (const ValidationError& e) {
        eval.infeasibility = e.what();
        return eval;
    }

    // --- Runtime: serial execution in topological order (Eq. 9's sum),
    // job estimates via REG plus staging/transfer legs.
    Seconds total{0.0};
    eval.job_runtimes.assign(workflow_.size(), Seconds{0.0});
    for (std::size_t i : workflow_.topological_order()) {
        const auto& d = plan.decisions[i];
        model::StagingLegs legs{false, false};
        if (d.tier == StorageTier::kEphemeralSsd) {
            // Roots must pull their input down from the object store;
            // terminal outputs must be persisted back.
            legs.download_input = workflow_.predecessors(i).empty();
            legs.upload_output = workflow_.successors(i).empty();
        }
        const GigaBytes per_vm = eval.capacities.per_vm[tier_index(d.tier)];
        const Seconds t =
            cache != nullptr
                ? cache->job_runtime(*models_, workflow_.jobs()[i], d.tier, per_vm, legs)
                : models_->job_runtime(workflow_.jobs()[i], d.tier, per_vm, legs);
        eval.job_runtimes[i] = t;
        total += t;
    }
    // Cross-tier transfers on edges (the pipelining of §3.1.3: "the output
    // of one job is pipelined to another storage service where it acts as
    // an input for the subsequent job").
    eval.transfer_times.reserve(workflow_.edges().size());
    for (const auto& edge : workflow_.edges()) {
        const std::size_t u = workflow_.index_of(edge.from_job);
        const std::size_t v = workflow_.index_of(edge.to_job);
        const StorageTier su = plan.decisions[u].tier;
        const StorageTier sv = plan.decisions[v].tier;
        const Seconds t =
            transfer_time(workflow_.jobs()[u].output(), su,
                          eval.capacities.per_vm[tier_index(su)], sv,
                          eval.capacities.per_vm[tier_index(sv)]);
        eval.transfer_times.push_back(t);
        total += t;
    }
    eval.total_runtime = total;

    // --- Cost (Eq. 8): the shared Eq. 5-6 formula over the workflow
    // makespan, so workflow plans are costed exactly like tiering plans.
    const auto [vm, store] = eq5_eq6_costs(*models_, total, eval.capacities);
    eval.vm_cost = vm;
    eval.storage_cost = store;
    eval.meets_deadline = total <= workflow_.deadline();
    eval.feasible = true;
    return eval;
}

// ---------------------------------------------------------------------------
// Workflow solver.
// ---------------------------------------------------------------------------

WorkflowSolver::WorkflowSolver(const WorkflowEvaluator& evaluator, AnnealingOptions options,
                               double deadline_safety)
    : evaluator_(&evaluator), options_(std::move(options)), deadline_safety_(deadline_safety) {
    CAST_EXPECTS(options_.iter_max >= 1);
    CAST_EXPECTS(!options_.overprov_choices.empty());
    CAST_EXPECTS(options_.max_wall_ms >= 0.0);
    CAST_EXPECTS(deadline_safety_ > 0.0 && deadline_safety_ <= 1.0);
    CAST_EXPECTS(options_.tempering_ladder_ratio >= 1.0);
    CAST_EXPECTS(options_.exchange_stride >= 1);
    const auto& wf = evaluator_->workflow();
    if (!options_.active_jobs.empty()) {
        CAST_EXPECTS_MSG(options_.active_jobs.size() == wf.size(),
                         "active_jobs mask must match the workflow size");
        bool any = false;
        for (const std::uint8_t a : options_.active_jobs) any = any || a != 0;
        CAST_EXPECTS_MSG(any, "active_jobs mask must flag at least one job");
    }
    // cᵢ is a continuous decision variable in the paper; our move set
    // discretizes it. Extend the factor menu so a uniform plan can reach
    // the per-VM capacity where persSSD saturates its bandwidth ceiling —
    // for small workflows that takes factors well beyond the default list.
    double total_req = 0.0;
    const WorkflowPlan probe = WorkflowPlan::uniform(wf.size(), StorageTier::kPersistentSsd);
    for (std::size_t i = 0; i < wf.size(); ++i) {
        total_req += evaluator_->job_requirement(probe, i).value();
    }
    if (total_req > 0.0) {
        const double saturating =
            550.0 * evaluator_->models().cluster().worker_count / total_req;
        if (saturating > 1.0) {
            options_.overprov_choices.push_back(std::max(1.0, saturating / 2.0));
            options_.overprov_choices.push_back(saturating);
            options_.overprov_choices.push_back(saturating * 1.5);
        }
    }
}

double WorkflowSolver::score(const WorkflowEvaluation& eval) const {
    if (!eval.feasible) return -1e18;
    double s = -eval.total_cost().value();
    const Seconds target{evaluator_->workflow().deadline().value() * deadline_safety_};
    if (eval.total_runtime > target) {
        const double overtime_min = (eval.total_runtime - target).minutes();
        s -= 1e3 * (1.0 + overtime_min);  // dominate any cost difference
    }
    return s;
}

WorkflowSolveResult WorkflowSolver::run_chain(std::uint64_t seed, EvalCache* cache) const {
    return run_chain(seed, cache, SolveDeadline::from(options_));
}

struct WorkflowSolver::WfChainCtx {
    WorkflowPlan curr;
    WorkflowEvaluation curr_eval;
    double curr_score = 0.0;
    double best_score = 0.0;
    /// Metropolis normalization. Per-chain on the legacy path (derived
    /// from the chain's own start); one shared value under tempering so
    /// exchange energies are comparable across rungs.
    double scale = 1.0;
    double temperature = 0.0;
    /// DFS cursor; identical across replicas at round barriers (all run
    /// the same iteration count), so exchanges never need to swap it.
    std::size_t cursor = 0;
    WorkflowSolveResult best;
};

void WorkflowSolver::init_wf_chain(WfChainCtx& ctx, std::uint64_t start_seed,
                                   EvalCache* cache) const {
    const auto& wf = evaluator_->workflow();
    // Multi-start across chains: chain seeds ending in 0 start from the
    // best canonical uniform plan; the rest rotate the starting tier (and a
    // generous starting over-provision factor, since block-tier speed needs
    // pooled capacity) by seed.
    ctx.curr =
        start_seed % 3 == 0
            ? best_uniform_plan(cache)
            : WorkflowPlan::uniform(
                  wf.size(), cloud::kAllTiers[start_seed % cloud::kAllTiers.size()],
                  options_.overprov_choices[(start_seed / 7) %
                                            options_.overprov_choices.size()]);
    ctx.curr_eval = evaluator_->evaluate(ctx.curr, cache);
    if (!ctx.curr_eval.feasible) {
        ctx.curr = WorkflowPlan::uniform(wf.size(), StorageTier::kPersistentSsd);
        ctx.curr_eval = evaluator_->evaluate(ctx.curr, cache);
    }
    ctx.best.plan = ctx.curr;
    ctx.best.evaluation = ctx.curr_eval;
    ctx.curr_score = score(ctx.curr_eval);
    ctx.best_score = ctx.curr_score;
    ctx.scale = std::max(1.0, std::fabs(ctx.curr_score));
    ctx.temperature = options_.initial_temperature;
    ctx.cursor = 0;
}

void WorkflowSolver::run_wf_span(WfChainCtx& ctx, Rng& rng, int iter_begin, int iter_end,
                                 const std::vector<std::size_t>& dfs, EvalCache* cache,
                                 const SolveDeadline& deadline) const {
    const bool bounded = !deadline.unbounded();
    for (int iter = iter_begin; iter < iter_end; ++iter) {
        // Budget/cancel poll once per segment (incl. iter 0, so a chain
        // dispatched after the deadline returns its evaluated start plan
        // immediately). Best-so-far is feasible whenever any evaluated
        // plan was — the persSSD-uniform retreat above guarantees one for
        // every workflow the lint gate admits.
        if (bounded && iter % AnnealingOptions::kBudgetCheckStride == 0 &&
            deadline.expired()) {
            ctx.best.budget_exhausted = true;
            break;
        }
        ctx.temperature =
            std::max(ctx.temperature * options_.cooling, options_.min_temperature);

        // DFS-order traversal of the DAG for neighbor generation (§4.3).
        // With an active_jobs mask, frozen jobs are skipped in DFS order —
        // the cursor advance is deterministic, so restricted solves keep
        // the bit-identity guarantees (the ctor rejects all-zero masks).
        std::size_t job_idx = dfs[ctx.cursor];
        ctx.cursor = (ctx.cursor + 1) % dfs.size();
        if (!options_.active_jobs.empty()) {
            while (options_.active_jobs[job_idx] == 0) {
                job_idx = dfs[ctx.cursor];
                ctx.cursor = (ctx.cursor + 1) % dfs.size();
            }
        }

        WorkflowPlan neighbor = ctx.curr;
        PlacementDecision d = neighbor.decisions[job_idx];
        if (rng.uniform() < options_.tier_move_probability) {
            StorageTier t;
            do {
                t = cloud::kAllTiers[rng.below(cloud::kAllTiers.size())];
            } while (t == d.tier);
            d.tier = t;
        } else {
            d.overprovision =
                options_.overprov_choices[rng.below(options_.overprov_choices.size())];
        }
        neighbor.decisions[job_idx] = d;

        const WorkflowEvaluation neighbor_eval = evaluator_->evaluate(neighbor, cache);
        const double neighbor_score = score(neighbor_eval);
        ++ctx.best.iterations;
        if (neighbor_eval.feasible && neighbor_score > ctx.best_score) {
            ctx.best.plan = neighbor;
            ctx.best.evaluation = neighbor_eval;
            ctx.best_score = neighbor_score;
        }
        const double delta = (neighbor_score - ctx.curr_score) / ctx.scale;
        if (delta >= 0.0 || rng.uniform() < std::exp(delta / ctx.temperature)) {
            ctx.curr = std::move(neighbor);
            ctx.curr_eval = neighbor_eval;
            ctx.curr_score = neighbor_score;
        }
    }
}

WorkflowSolveResult WorkflowSolver::run_chain(std::uint64_t seed, EvalCache* cache,
                                              const SolveDeadline& deadline) const {
    const auto& wf = evaluator_->workflow();
    const std::vector<std::size_t> dfs = wf.dfs_order();
    CAST_EXPECTS(!dfs.empty());
    Rng rng(seed);

    std::unique_ptr<EvalCache> owned;
    if (!options_.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        owned = std::make_unique<EvalCache>();
        cache = owned.get();
    }

    WfChainCtx ctx;
    init_wf_chain(ctx, seed, cache);
    run_wf_span(ctx, rng, 0, options_.iter_max, dfs, cache, deadline);
    return std::move(ctx.best);
}

WorkflowPlan WorkflowSolver::best_uniform_plan(EvalCache* cache) const {
    const auto& wf = evaluator_->workflow();
    WorkflowPlan best = WorkflowPlan::uniform(wf.size(), StorageTier::kPersistentSsd);
    double best_score = score(evaluator_->evaluate(best, cache));
    for (StorageTier t : cloud::kAllTiers) {
        for (double k : options_.overprov_choices) {
            WorkflowPlan candidate = WorkflowPlan::uniform(wf.size(), t, k);
            const double s = score(evaluator_->evaluate(candidate, cache));
            if (s > best_score) {
                best_score = s;
                best = std::move(candidate);
            }
        }
    }
    return best;
}

WorkflowSolveResult WorkflowSolver::solve(ThreadPool* pool, EvalCache* cache) const {
    // Arm the shared wall clock before lint and the uniform sweep so the
    // whole solve answers to one budget.
    const SolveDeadline deadline = SolveDeadline::from(options_);
    // Pre-solve lint. Structural errors reject; an unattainable deadline
    // (L009's certified lower bound) is demoted to a note because this
    // solver's contract is best-effort — the §5.2.2 baselines count misses,
    // so a plan must come back even when no plan can meet the deadline.
    lint::LintContext lint_ctx;
    lint_ctx.models = &evaluator_->models();
    lint::Report pre = lint::lint_workflow(evaluator_->workflow(), lint_ctx);
    lint::demote(pre, "L009", lint::Severity::kWarning);
    lint::enforce(pre);

    std::unique_ptr<EvalCache> owned;
    if (!options_.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        owned = std::make_unique<EvalCache>();
        cache = owned.get();
    }

    if (options_.tempering && options_.chains > 1) {
        WorkflowSolveResult chosen = solve_tempering(pool, cache, deadline);
        for (const lint::Finding* f : pre.at(lint::Severity::kWarning)) {
            chosen.lint_notes.push_back(f->format());
        }
        return chosen;
    }

    std::vector<WorkflowSolveResult> results(static_cast<std::size_t>(options_.chains));
    auto run_one = [&](std::size_t c) {
        results[c] = run_chain(options_.seed + 104729 * (c + 1), cache, deadline);
    };
    if (pool != nullptr && options_.chains > 1) {
        pool->parallel_for(results.size(), run_one);
    } else {
        for (std::size_t c = 0; c < results.size(); ++c) run_one(c);
    }
    // The canonical uniform sweep is a guaranteed floor: annealing must not
    // return anything it scores below the best single-tier plan.
    WorkflowSolveResult fallback;
    fallback.plan = best_uniform_plan(cache);
    fallback.evaluation = evaluator_->evaluate(fallback.plan, cache);
    fallback.best_chain = -1;
    std::size_t best = 0;
    for (std::size_t c = 1; c < results.size(); ++c) {
        if (score(results[c].evaluation) > score(results[best].evaluation)) best = c;
    }
    const bool fallback_wins = score(fallback.evaluation) > score(results[best].evaluation);
    WorkflowSolveResult chosen =
        fallback_wins ? std::move(fallback) : std::move(results[best]);
    if (!fallback_wins) chosen.best_chain = static_cast<int>(best);
    // Report the whole search's effort, not just the winner's share.
    chosen.iterations = 0;
    chosen.budget_exhausted = false;
    for (const WorkflowSolveResult& r : results) {
        chosen.iterations += r.iterations;
        chosen.budget_exhausted = chosen.budget_exhausted || r.budget_exhausted;
    }
    if (cache != nullptr) chosen.cache_stats = cache->stats();
    for (const lint::Finding* f : pre.at(lint::Severity::kWarning)) {
        chosen.lint_notes.push_back(f->format());
    }
    return chosen;
}

WorkflowSolveResult WorkflowSolver::solve_tempering(ThreadPool* pool, EvalCache* cache,
                                                    const SolveDeadline& deadline) const {
    const auto& wf = evaluator_->workflow();
    const std::vector<std::size_t> dfs = wf.dfs_order();
    CAST_EXPECTS(!dfs.empty());

    // The uniform sweep is both the guaranteed result floor and the source
    // of the SHARED Metropolis/exchange normalization scale — replicas must
    // agree on the energy unit for exchange probabilities to mean anything.
    WorkflowSolveResult fallback;
    fallback.plan = best_uniform_plan(cache);
    fallback.evaluation = evaluator_->evaluate(fallback.plan, cache);
    fallback.best_chain = -1;
    const double scale = std::max(1.0, std::fabs(score(fallback.evaluation)));

    const auto replicas = static_cast<std::size_t>(options_.chains);
    std::vector<WfChainCtx> reps(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
        // Replica starts reuse the legacy chain-seed formula, so the
        // tempered ladder explores the same diverse anchors the
        // independent chains did.
        init_wf_chain(reps[r], options_.seed + 104729 * (r + 1), cache);
        reps[r].scale = scale;
        reps[r].temperature = options_.initial_temperature *
                              std::pow(options_.tempering_ladder_ratio,
                                       static_cast<double>(r));
    }

    const TemperingSchedule sched(options_.iter_max, options_.exchange_stride,
                                  options_.chains);
    TemperingStats stats;
    stats.replicas = options_.chains;
    stats.exchange_attempts.assign(replicas - 1, 0);
    stats.exchange_accepts.assign(replicas - 1, 0);
    stats.replica_iterations.assign(replicas, 0);

    bool out_of_budget = false;
    for (int round = 0; round < sched.rounds(); ++round) {
        auto run_one = [&](std::size_t r) {
            Rng rng(TemperingSchedule::segment_seed(options_.seed, r,
                                                    static_cast<std::uint64_t>(round)));
            run_wf_span(reps[r], rng, sched.round_begin(round), sched.round_end(round), dfs,
                        cache, deadline);
        };
        if (pool != nullptr && replicas > 1) {
            pool->parallel_for(replicas, run_one, 1);
        } else {
            for (std::size_t r = 0; r < replicas; ++r) run_one(r);
        }
        ++stats.rounds;
        for (const WfChainCtx& c : reps) {
            out_of_budget = out_of_budget || c.best.budget_exhausted;
        }
        if (out_of_budget) break;
        if (round + 1 < sched.rounds() && replicas > 1) {
            Rng ex(TemperingSchedule::exchange_seed(options_.seed,
                                                    static_cast<std::uint64_t>(round)));
            for (int p = TemperingSchedule::first_pair(round);
                 p + 1 < options_.chains; p += 2) {
                const double u = ex.uniform();
                ++stats.exchange_attempts[p];
                const double e_cold = -reps[p].curr_score / scale;
                const double e_hot = -reps[p + 1].curr_score / scale;
                if (exchange_accept(1.0 / reps[p].temperature,
                                    1.0 / reps[p + 1].temperature, e_cold, e_hot, u)) {
                    std::swap(reps[p].curr, reps[p + 1].curr);
                    std::swap(reps[p].curr_eval, reps[p + 1].curr_eval);
                    std::swap(reps[p].curr_score, reps[p + 1].curr_score);
                    ++stats.exchange_accepts[p];
                }
            }
        }
    }

    for (std::size_t r = 0; r < replicas; ++r) {
        stats.replica_iterations[r] = reps[r].best.iterations;
    }
    std::size_t best = 0;
    for (std::size_t r = 1; r < replicas; ++r) {
        if (score(reps[r].best.evaluation) > score(reps[best].best.evaluation)) best = r;
    }
    const bool fallback_wins =
        score(fallback.evaluation) > score(reps[best].best.evaluation);
    WorkflowSolveResult chosen =
        fallback_wins ? std::move(fallback) : std::move(reps[best].best);
    if (!fallback_wins) chosen.best_chain = static_cast<int>(best);
    chosen.iterations = 0;
    chosen.budget_exhausted = out_of_budget;
    for (const WfChainCtx& c : reps) chosen.iterations += c.best.iterations;
    if (cache != nullptr) chosen.cache_stats = cache->stats();
    chosen.tempering = std::move(stats);
    return chosen;
}

WorkflowSolveResult WorkflowSolver::solve_greedy(EvalCache* cache) const {
    // Same lint gate as solve(), including the L009 demotion: the degraded
    // path stays best-effort on deadlines no full solve could meet either.
    lint::LintContext lint_ctx;
    lint_ctx.models = &evaluator_->models();
    lint::Report pre = lint::lint_workflow(evaluator_->workflow(), lint_ctx);
    lint::demote(pre, "L009", lint::Severity::kWarning);
    lint::enforce(pre);

    std::unique_ptr<EvalCache> owned;
    if (!options_.use_evaluation_cache) {
        cache = nullptr;
    } else if (cache == nullptr) {
        owned = std::make_unique<EvalCache>();
        cache = owned.get();
    }

    WorkflowSolveResult out;
    out.plan = best_uniform_plan(cache);
    out.evaluation = evaluator_->evaluate(out.plan, cache);
    out.best_chain = -1;  // the uniform sweep "won" by being the only entry
    if (cache != nullptr) out.cache_stats = cache->stats();
    for (const lint::Finding* f : pre.at(lint::Severity::kWarning)) {
        out.lint_notes.push_back(f->format());
    }
    return out;
}

// ---------------------------------------------------------------------------
// Reuse scenarios.
// ---------------------------------------------------------------------------

ReuseScenarioResult evaluate_reuse_scenario(const model::PerfModelSet& models,
                                            const workload::JobSpec& job, StorageTier tier,
                                            const workload::ReusePattern& pattern) {
    pattern.validate();
    job.validate();
    const auto& cluster = models.cluster();
    const auto& catalog = models.catalog();
    const int nvm = cluster.worker_count;

    // Capacity: the job's dataset on its tier (+ conventions). Block tiers
    // are provisioned at the same 500 GB-per-VM experiment volumes as the
    // Fig. 1 characterization (grown when the dataset needs more), so the
    // no-reuse column of Fig. 3 agrees with Fig. 1 by construction.
    CapacityBreakdown caps;
    GigaBytes dataset_capacity = job.capacity_requirement();
    if (tier == StorageTier::kPersistentSsd || tier == StorageTier::kPersistentHdd) {
        dataset_capacity =
            GigaBytes{std::max(500.0 * nvm, dataset_capacity.value())};
    }
    caps.aggregate[tier_index(tier)] = dataset_capacity;
    if (tier == StorageTier::kEphemeralSsd) {
        caps.aggregate[tier_index(StorageTier::kObjectStore)] += job.input + job.output();
    }
    if (tier == StorageTier::kObjectStore) {
        caps.aggregate[tier_index(StorageTier::kPersistentSsd)] +=
            GigaBytes{cloud::object_store_intermediate_volume(job.intermediate(), nvm).value() *
                      nvm};
    }
    for (StorageTier t : cloud::kAllTiers) {
        const GigaBytes agg = caps.aggregate[tier_index(t)];
        if (agg.value() <= 0.0) continue;
        if (t == StorageTier::kObjectStore) {
            caps.per_vm[tier_index(t)] = GigaBytes{agg.value() / nvm};
            continue;
        }
        const auto& service = catalog.service(t);
        const GigaBytes per_vm = service.provision(GigaBytes{agg.value() / nvm});
        caps.per_vm[tier_index(t)] = per_vm;
        caps.aggregate[tier_index(t)] = GigaBytes{per_vm.value() * nvm};
    }

    ReuseScenarioResult result;
    const GigaBytes per_vm = caps.per_vm[tier_index(tier)];
    const model::StagingLegs full = model::StagingLegs::for_tier(tier);
    model::StagingLegs repeat = full;
    repeat.download_input = false;  // dataset already resident after run 1
    result.first_run = models.job_runtime(job, tier, per_vm, full);
    result.repeat_run = models.job_runtime(job, tier, per_vm, repeat);
    result.total_runtime =
        result.first_run + result.repeat_run * static_cast<double>(pattern.accesses - 1);

    // How long the dataset (and, on ephSSD, the VMs) must be held.
    const Seconds hold{std::max(pattern.lifetime.value(), result.total_runtime.value())};

    // VM cost: compute time only on persistent tiers; the whole hold window
    // on ephSSD because terminating the VMs destroys the data (§3.2).
    const Seconds vm_time = tier == StorageTier::kEphemeralSsd ? hold : result.total_runtime;
    result.vm_cost = Dollars{cluster.price_per_minute().value() * vm_time.minutes()};

    // Storage cost: the reused dataset's tier (and the objStore backing of
    // an ephSSD placement) is held for the whole window; the persSSD
    // intermediate volume of an objStore placement is scratch space that
    // only exists while jobs run.
    const double hold_hours = std::ceil(std::max(hold.minutes() / 60.0, 1.0));
    const double run_hours = std::ceil(std::max(result.total_runtime.minutes() / 60.0, 1.0));
    double storage = 0.0;
    for (StorageTier t : cloud::kAllTiers) {
        const GigaBytes cap = caps.aggregate[tier_index(t)];
        if (cap.value() <= 0.0) continue;
        const bool scratch = tier == StorageTier::kObjectStore &&
                             t == StorageTier::kPersistentSsd;
        storage += cap.value() * catalog.service(t).price_per_gb_hour().value() *
                   (scratch ? run_hours : hold_hours);
    }
    result.storage_cost = Dollars{storage};

    const Seconds per_access{result.total_runtime.value() / pattern.accesses};
    result.utility = tenant_utility(per_access, result.total_cost());
    return result;
}

}  // namespace cast::core
