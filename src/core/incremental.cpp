#include "core/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/eval_cache.hpp"
#include "core/greedy.hpp"

namespace cast::core {

namespace {

/// Uniform fallback start plan honoring tier pins and Eq. 7: everything on
/// `tier`, pinned jobs moved to their pin, groups aligned on a pinned
/// member when one exists (mirrors greedy_projected_plan's projection).
TieringPlan pinned_uniform(const workload::Workload& workload, cloud::StorageTier tier) {
    TieringPlan plan = TieringPlan::uniform(workload.size(), tier);
    for (std::size_t i = 0; i < workload.size(); ++i) {
        if (workload.job(i).pinned_tier) {
            plan.set_decision(i, PlacementDecision{*workload.job(i).pinned_tier, 1.0});
        }
    }
    for (const auto& [group, members] : workload.reuse_groups()) {
        PlacementDecision lead = plan.decision(members.front());
        for (const std::size_t m : members) {
            if (workload.job(m).pinned_tier) lead.tier = *workload.job(m).pinned_tier;
        }
        for (const std::size_t m : members) plan.set_decision(m, lead);
    }
    return plan;
}

}  // namespace

IncrementalSolver::IncrementalSolver(const model::PerfModelSet& models, CastOptions options,
                                     AmendPolicy policy, bool reuse_aware)
    : models_(&models),
      options_(std::move(options)),
      policy_(policy),
      reuse_aware_(reuse_aware) {
    policy_.validate();
}

PlacementDecision IncrementalSolver::seed_arrival(const PlanEvaluator& evaluator,
                                                  const TieringPlan& partial,
                                                  std::size_t new_idx, EvalCache* cache) const {
    const workload::Workload& wl = evaluator.workload();
    const workload::JobSpec& job = wl.job(new_idx);
    // An unpinned arrival joining a reuse group adopts the group's existing
    // placement (Eq. 7 co-location; survivors and earlier arrivals are all
    // seeded before this index). A pinned arrival falls through to the
    // pin-restricted sweep instead — a pin contradicting its group is an
    // input problem the evaluation will flag, not something seeding hides.
    if (reuse_aware_ && job.reuse_group && !job.pinned_tier) {
        for (std::size_t j = 0; j < new_idx; ++j) {
            if (wl.job(j).reuse_group == job.reuse_group) return partial.decision(j);
        }
    }
    const GreedySolver greedy(evaluator);
    static const std::vector<double> kExactFit{1.0};
    const std::vector<double>& ks =
        options_.greedy_init.over_provision ? options_.greedy_init.overprov_choices : kExactFit;
    double best_utility = -1.0;
    PlacementDecision best{cloud::StorageTier::kPersistentSsd, 1.0};
    for (const cloud::StorageTier tier : cloud::kAllTiers) {
        if (job.pinned_tier && *job.pinned_tier != tier) continue;
        for (const double k : ks) {
            const double u = greedy.single_job_utility(job, tier, k, cache);
            if (u > best_utility) {
                best_utility = u;
                best = PlacementDecision{tier, k};
            }
        }
    }
    return best;
}

std::vector<std::size_t> IncrementalSolver::affected_neighborhood(
    const PlanEvaluator& prior_eval, const TieringPlan& prior_plan,
    const PlanEvaluator& next_eval, const TieringPlan& seeded,
    const workload::DeltaApplication& applied, bool* capacity_overflow) const {
    *capacity_overflow = false;
    const std::size_t n = next_eval.workload().size();
    std::vector<std::uint8_t> flagged(n, 0);
    for (const std::size_t idx : applied.changed) flagged[idx] = 1;

    // Capacity side: a tier whose aggregate provisioned volume moved
    // materially couples every resident's runtime (capacity-scaled
    // bandwidth, Eq. 4) and bill share (Eq. 6), so its residents join the
    // neighborhood. Departures enter here too — their vacated capacity is
    // exactly such a shift.
    try {
        const CapacityBreakdown prior_caps = prior_eval.capacities(prior_plan);
        const CapacityBreakdown next_caps = next_eval.capacities(seeded);
        for (std::size_t t = 0; t < cloud::kTierCount; ++t) {
            const double prior_gb = prior_caps.aggregate[t].value();
            const double next_gb = next_caps.aggregate[t].value();
            if (std::abs(next_gb - prior_gb) <=
                policy_.capacity_slack * std::max(prior_gb, 1.0)) {
                continue;
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (cloud::tier_index(seeded.decision(i).tier) == t) flagged[i] = 1;
            }
        }
    } catch (const ValidationError&) {
        // The seeded plan overflows a provider capacity limit; no
        // restricted solve can be trusted from it — the caller escalates.
        *capacity_overflow = true;
    }

    // Close under reuse groups: group moves relocate members together
    // (Eq. 7), so a partially flagged group would generate moves touching
    // unflagged jobs. Flag the whole group instead.
    for (const auto& [group, members] : next_eval.workload().reuse_groups()) {
        bool any = false;
        for (const std::size_t m : members) any = any || flagged[m] != 0;
        if (!any) continue;
        for (const std::size_t m : members) flagged[m] = 1;
    }

    std::vector<std::size_t> neighborhood;
    for (std::size_t i = 0; i < n; ++i) {
        if (flagged[i] != 0) neighborhood.push_back(i);
    }
    return neighborhood;
}

bool IncrementalSolver::repair_pass(const PlanEvaluator& evaluator,
                                    const std::vector<std::size_t>& neighborhood,
                                    TieringPlan* plan, PlanEvaluation* eval,
                                    EvalCache* cache) const {
    const workload::Workload& wl = evaluator.workload();
    const auto groups = wl.reuse_groups();
    bool changed = false;
    for (const std::size_t idx : neighborhood) {
        std::vector<std::size_t> unit{idx};
        if (reuse_aware_ && wl.job(idx).reuse_group) {
            const std::vector<std::size_t>& members = groups.at(*wl.job(idx).reuse_group);
            // The neighborhood is closed under reuse groups, so every
            // member is swept; let the lead member do it once for all.
            if (members.front() != idx) continue;
            unit = members;
        }
        std::optional<cloud::StorageTier> pin;
        for (const std::size_t j : unit) {
            if (wl.job(j).pinned_tier) pin = wl.job(j).pinned_tier;
        }
        const PlacementDecision original = plan->decision(idx);
        PlacementDecision best = original;
        for (const cloud::StorageTier tier : cloud::kAllTiers) {
            if (pin && *pin != tier) continue;
            for (const double k : options_.annealing.overprov_choices) {
                if (tier == best.tier && k == best.overprovision) continue;
                for (const std::size_t j : unit) {
                    plan->set_decision(j, PlacementDecision{tier, k});
                }
                // `*eval` always evaluates `*plan` with the unit at `best`,
                // so the candidate differs from it in exactly `unit`.
                const PlanEvaluation candidate =
                    evaluator.evaluate_delta(*eval, *plan, unit, cache);
                if (candidate.feasible && candidate.utility > eval->utility) {
                    best = PlacementDecision{tier, k};
                    *eval = candidate;
                }
            }
        }
        for (const std::size_t j : unit) plan->set_decision(j, best);
        changed = changed || best.tier != original.tier ||
                  best.overprovision != original.overprovision;
    }
    return changed;
}

void IncrementalSolver::solve_cold(const PlanEvaluator& evaluator, const TieringPlan& seed,
                                   ThreadPool* pool, EvalCache* cache,
                                   AmendResult* result) const {
    AnnealingOptions annealing = options_.annealing;
    annealing.group_moves = reuse_aware_;

    // The annealing solver requires a feasible start; fall back through
    // progressively safer plans (objStore has no aggregate capacity limit).
    std::vector<TieringPlan> candidates;
    candidates.push_back(seed);
    candidates.push_back(pinned_uniform(evaluator.workload(), cloud::StorageTier::kObjectStore));
    candidates.push_back(
        pinned_uniform(evaluator.workload(), cloud::StorageTier::kPersistentSsd));
    for (const TieringPlan& candidate : candidates) {
        const PlanEvaluation eval = evaluator.evaluate(candidate, cache);
        if (!eval.feasible) continue;
        const AnnealingSolver solver(evaluator, annealing);
        const AnnealingResult cold = solver.solve(candidate, pool, cache);
        result->plan = cold.plan;
        result->evaluation = cold.evaluation;
        result->iterations += cold.iterations;
        result->budget_exhausted = result->budget_exhausted || cold.budget_exhausted;
        result->tempering = cold.tempering;
        return;
    }
    // Nothing feasible to anneal from: report the seed's (infeasible)
    // evaluation honestly rather than inventing a plan.
    result->plan = seed;
    result->evaluation = evaluator.evaluate(seed, cache);
}

AmendResult IncrementalSolver::amend(const workload::Workload& prior,
                                     const TieringPlan& prior_plan,
                                     const workload::JobDelta& delta, ThreadPool* pool,
                                     EvalCache* cache) const {
    CAST_EXPECTS_MSG(prior_plan.size() == prior.size(),
                     "prior plan does not cover the prior workload");
    const workload::DeltaApplication applied = workload::apply_delta(prior, delta);

    AmendResult out;
    out.workload = applied.workload;
    const PlanEvaluator next_eval(*models_, applied.workload, EvalOptions{reuse_aware_});

    // Warm-start seed: survivors keep their placements verbatim, arrivals
    // get a deterministic greedy single-job seed (in arrival order).
    std::vector<PlacementDecision> decisions;
    decisions.reserve(applied.workload.size());
    for (const std::size_t from : applied.survivor_from) {
        decisions.push_back(from == workload::DeltaApplication::kNoPrior
                                ? PlacementDecision{}
                                : prior_plan.decision(from));
    }
    TieringPlan seeded(std::move(decisions));
    for (std::size_t i = 0; i < applied.survivor_from.size(); ++i) {
        if (applied.survivor_from[i] != workload::DeltaApplication::kNoPrior) continue;
        seeded.set_decision(i, seed_arrival(next_eval, seeded, i, cache));
    }

    if (delta.empty()) {
        out.plan = seeded;
        out.evaluation = next_eval.evaluate(seeded, cache);
        if (cache != nullptr) out.cache_stats = cache->stats();
        return out;
    }

    const PlanEvaluator prior_eval(*models_, prior, EvalOptions{reuse_aware_});
    bool capacity_overflow = false;
    out.neighborhood = affected_neighborhood(prior_eval, prior_plan, next_eval, seeded,
                                             applied, &capacity_overflow);

    if (policy_.greedy_only) {
        out.greedy_only = true;
        out.plan = seeded;
        out.evaluation = next_eval.evaluate(seeded, cache);
        if (cache != nullptr) out.cache_stats = cache->stats();
        return out;
    }

    const PlanEvaluation seeded_eval = next_eval.evaluate(seeded, cache);

    // Deterministic shadow of a cold solve: the Algorithm 1 plan over the
    // amended job set. Cheap (one single-job sweep), deterministic, and
    // the quality floor the escalation rule holds amendments to.
    const TieringPlan shadow =
        greedy_projected_plan(next_eval, options_.greedy_init, reuse_aware_, cache);
    const PlanEvaluation shadow_eval = next_eval.evaluate(shadow, cache);
    out.shadow_utility = shadow_eval.utility;

    if (capacity_overflow || !seeded_eval.feasible) {
        out.escalated_cold = true;
        solve_cold(next_eval, shadow, pool, cache, &out);
    } else if (out.neighborhood.empty()) {
        // Nothing to search (e.g. departures within capacity slack): the
        // seeded plan IS the amendment.
        out.plan = seeded;
        out.evaluation = seeded_eval;
    } else {
        // Repair sweep: deterministic coordinate descent over the
        // neighborhood turns the verbatim-survivors seed into a locally
        // optimal warm start, so the restricted anneal spends its budget
        // escaping basins rather than walking to the nearest one.
        TieringPlan warm = seeded;
        PlanEvaluation warm_eval = seeded_eval;
        for (int pass = 0; pass < policy_.repair_passes; ++pass) {
            if (!repair_pass(next_eval, out.neighborhood, &warm, &warm_eval, cache)) break;
        }
        AnnealingOptions annealing = options_.annealing;
        annealing.group_moves = reuse_aware_;
        annealing.diverse_starts = false;  // the warm start IS the point
        annealing.chains = policy_.chains;
        annealing.iter_max = std::clamp(
            policy_.iters_per_member * static_cast<int>(out.neighborhood.size()),
            policy_.min_iters, policy_.max_iters);
        annealing.active_jobs.assign(applied.workload.size(), 0);
        for (const std::size_t idx : out.neighborhood) annealing.active_jobs[idx] = 1;
        const AnnealingSolver solver(next_eval, annealing);
        const AnnealingResult amended = solver.solve(warm, pool, cache);
        out.plan = amended.plan;
        out.evaluation = amended.evaluation;
        out.iterations += amended.iterations;
        out.budget_exhausted = amended.budget_exhausted;
        out.tempering = amended.tempering;
    }

    // Escalation rule: a restricted solve that cannot match the greedy
    // shadow's utility is evidence the delta moved the optimum outside the
    // neighborhood — re-solve without the restriction.
    if (!out.escalated_cold && policy_.escalate_below > 0.0 &&
        out.evaluation.utility < policy_.escalate_below * out.shadow_utility) {
        out.escalated_cold = true;
        const bool amend_better =
            out.evaluation.feasible && out.evaluation.utility >= shadow_eval.utility;
        solve_cold(next_eval, amend_better ? out.plan : shadow, pool, cache, &out);
    }

    if (cache != nullptr) out.cache_stats = cache->stats();
    return out;
}

AmendResult IncrementalSolver::place_online(const workload::Workload& prior,
                                            const TieringPlan& prior_plan,
                                            const workload::JobDelta& delta,
                                            EvalCache* cache) const {
    IncrementalSolver online(*models_, options_, policy_, reuse_aware_);
    online.policy_.greedy_only = true;
    return online.amend(prior, prior_plan, delta, nullptr, cache);
}

}  // namespace cast::core
