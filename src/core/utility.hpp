// Tenant-utility evaluation of a tiering plan (paper Eq. 2-6).
//
// Implements the solver's objective exactly as modeled in §4.2.1:
//
//   max U = (1/T) / ($vm + $store)                                  (Eq. 2)
//   s.t.  cᵢ >= inputᵢ + interᵢ + outputᵢ                           (Eq. 3)
//   T = Σᵢ REG(sᵢ, capacity[sᵢ], R̂, L̂ᵢ)    [minutes]               (Eq. 4)
//   $vm = nvm · pricevm · T                                         (Eq. 5)
//   $store = Σ_f capacity[f] · pricestore[f] · ceil(T/60)           (Eq. 6)
//
// plus the deployment conventions the paper's measurements include: jobs on
// ephSSD also pay for objStore backing capacity and the staging legs, and
// jobs on objStore reserve a persSSD volume for intermediate data. With
// EvalOptions::reuse_aware (CAST++), inputs shared by a reuse group are
// provisioned once and downloaded once (Eq. 7 co-location is enforced by
// the solver's move generator and checked here).
#pragma once

#include <array>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cloud/storage.hpp"
#include "common/units.hpp"
#include "core/plan.hpp"
#include "model/profiler.hpp"
#include "workload/job.hpp"

namespace cast::core {

class EvalCache;
class SoaEvaluator;

struct EvalOptions {
    /// CAST++ data-reuse awareness (Eq. 7 + shared-capacity accounting).
    bool reuse_aware = false;
};

/// Aggregate and per-VM provisioned capacity per tier implied by a plan.
struct CapacityBreakdown {
    std::array<GigaBytes, cloud::kTierCount> aggregate{};
    std::array<GigaBytes, cloud::kTierCount> per_vm{};

    [[nodiscard]] GigaBytes aggregate_of(cloud::StorageTier t) const {
        return aggregate[cloud::tier_index(t)];
    }
    [[nodiscard]] GigaBytes per_vm_of(cloud::StorageTier t) const {
        return per_vm[cloud::tier_index(t)];
    }
    [[nodiscard]] GigaBytes total() const {
        GigaBytes sum{0.0};
        for (const auto& c : aggregate) sum += c;
        return sum;
    }
};

struct PlanEvaluation {
    bool feasible = false;
    std::string infeasibility;
    Seconds total_runtime{0.0};
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    double utility = 0.0;
    CapacityBreakdown capacities;
    std::vector<Seconds> job_runtimes;

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

class PlanEvaluator {
public:
    PlanEvaluator(const model::PerfModelSet& models, workload::Workload workload,
                  EvalOptions options = {});

    [[nodiscard]] const workload::Workload& workload() const { return workload_; }
    [[nodiscard]] const model::PerfModelSet& models() const { return *models_; }
    [[nodiscard]] const EvalOptions& options() const { return options_; }

    /// Eq. 3 requirement of one job, reuse-adjusted when reuse_aware: the
    /// shared input is charged to the group's first member only.
    [[nodiscard]] GigaBytes job_requirement(std::size_t job_idx) const;

    /// Whether this job pays the input-download staging leg when placed on
    /// a non-persistent tier (false for reuse-group members after the
    /// first, when reuse_aware).
    [[nodiscard]] bool pays_input_download(std::size_t job_idx) const;

    /// Provisioned capacities (incl. objStore backing for ephSSD jobs and
    /// the persSSD intermediate reservation for objStore jobs). Throws
    /// cloud ValidationError via the catalog when a per-VM capacity exceeds
    /// provider limits.
    [[nodiscard]] CapacityBreakdown capacities(const TieringPlan& plan) const;

    /// Full Eq. 2-6 evaluation. Never throws on infeasible plans: returns
    /// feasible=false with utility 0 so annealing can reject them. When a
    /// cache is supplied, per-job REG runtimes are memoized through it
    /// (bit-identical to the uncached path — REG is deterministic).
    [[nodiscard]] PlanEvaluation evaluate(const TieringPlan& plan,
                                          EvalCache* cache = nullptr) const;

    /// Incremental evaluation of a neighbor plan. `base` must be the
    /// evaluation of a plan that differs from `plan` only at the job
    /// indices listed in `changed_jobs` (the caller's contract; annealing's
    /// move generator provides exactly this). Feasibility checks and
    /// capacity accounting are always recomputed in full — they are cheap
    /// arithmetic and carry the tier-coupled terms (objStore persSSD floor,
    /// ephSSD backing capacity, provisioning rounding). Job runtimes are
    /// reused from `base` per tier: a job keeps its base runtime when its
    /// decision is untouched and its tier's per-VM capacity is bitwise
    /// unchanged; jobs on capacity-shifted tiers and the changed jobs
    /// themselves re-derive theirs (memoized through `cache`). The result
    /// is bit-identical to evaluate(plan) in every field.
    [[nodiscard]] PlanEvaluation evaluate_delta(const PlanEvaluation& base,
                                                const TieringPlan& plan,
                                                std::span<const std::size_t> changed_jobs,
                                                EvalCache* cache = nullptr) const;

    /// Cost of running for `runtime` with the given capacities (Eq. 5-6);
    /// shared with the deployer so modeled and measured costs use one
    /// formula.
    [[nodiscard]] std::pair<Dollars, Dollars> costs_for(Seconds runtime,
                                                        const CapacityBreakdown& caps) const;

private:
    /// The struct-of-arrays mirror of this evaluator (core/soa_eval.hpp)
    /// reads the precomputed per-job terms and flags directly so the two
    /// implementations can never drift on inputs.
    friend class SoaEvaluator;

    [[nodiscard]] PlanEvaluation evaluate_impl(const TieringPlan& plan, EvalCache* cache,
                                               const PlanEvaluation* base,
                                               std::span<const std::size_t> changed) const;

    /// REG runtime of job `job_idx` under `plan` at the plan's capacities,
    /// through `cache` when one is supplied.
    [[nodiscard]] Seconds job_runtime_for(const TieringPlan& plan, std::size_t job_idx,
                                          const CapacityBreakdown& caps,
                                          EvalCache* cache) const;

    /// Per-tier runtime reusability between two capacity breakdowns: true
    /// where the tier's per-VM capacity is bitwise identical (objStore is
    /// always reusable unless some workload app's objStore model reads
    /// provisioned capacity) — jobs sitting on a reusable tier whose own
    /// decision did not move keep their base runtime verbatim.
    [[nodiscard]] std::array<bool, cloud::kTierCount> reusable_tiers(
        const CapacityBreakdown& base, const CapacityBreakdown& next) const;

    const model::PerfModelSet* models_;
    workload::Workload workload_;
    EvalOptions options_;
    /// job index -> true when the job is its reuse group's first member
    /// (or has no group).
    std::vector<bool> group_leader_;
    /// Plan-invariant per-job capacity terms, precomputed so the hot
    /// capacities() loop is pure array arithmetic: Eq. 3 requirement
    /// (reuse-adjusted), objStore backing volume when placed on ephSSD,
    /// and intermediate size (the objStore persSSD-floor driver).
    std::vector<GigaBytes> req_;
    std::vector<GigaBytes> eph_backing_;
    std::vector<GigaBytes> inter_;
    /// True when any job carries an operator tier pin; when false the pin
    /// lint check is skipped (it could never fire).
    bool has_tier_pins_ = false;
    /// True when some app's objStore model scales with provisioned capacity
    /// (never the case for the paper's models, whose objStore runtime keys
    /// on the conventional intermediate volume).
    bool objstore_capacity_sensitive_ = false;
};

/// Eq. 5-6 applied to a makespan and a capacity breakdown — the one cost
/// formula shared by PlanEvaluator, WorkflowEvaluator and the Deployer, so
/// modeled and measured costs can never drift apart.
[[nodiscard]] std::pair<Dollars, Dollars> eq5_eq6_costs(const model::PerfModelSet& models,
                                                        Seconds runtime,
                                                        const CapacityBreakdown& caps);

/// Eq. 2's utility for a given runtime and cost.
[[nodiscard]] inline double tenant_utility(Seconds runtime, Dollars total_cost) {
    CAST_EXPECTS(runtime.value() > 0.0);
    CAST_EXPECTS(total_cost.value() > 0.0);
    return (1.0 / runtime.minutes()) / total_cost.value();
}

}  // namespace cast::core
