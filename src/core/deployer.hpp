// Deployment: executing a tiering plan on the (simulated) cloud.
//
// The last box of the paper's Fig. 6: CAST "finally deploys the workload in
// the cloud based on the generated plan". The Deployer converts a
// TieringPlan (or WorkflowPlan) into concrete simulator placements — per-VM
// volume provisioning, staging legs, reuse-aware download elision,
// cross-tier transfers on workflow edges — runs them on ClusterSim, and
// reports *measured* runtime, cost, utility and deadline compliance using
// the same Eq. 5-6 cost formulas the solver optimizes, so modeled and
// measured numbers are directly comparable (Fig. 7-9).
//
// The Deployer is failure-aware: plans are validated up front (typed
// ValidationError instead of a contract trap deep in the simulator), a job
// whose injected faults exhaust the simulator's task-attempt budget is
// retried with exponential backoff (a fresh execution sees fresh luck), and
// a job that keeps failing degrades gracefully — its data is re-homed to
// the durable backing object store instead of failing the whole workload.
// Every such event lands in the deployment's fault_log.
#pragma once

#include <string>
#include <vector>

#include "core/castpp.hpp"
#include "core/plan.hpp"
#include "core/utility.hpp"
#include "sim/mapreduce.hpp"

namespace cast::core {

/// How the Deployer reacts to simulated failures. The defaults retry a few
/// times and then fall back to the backing store; `max_job_attempts = 1`
/// with degradation off reproduces fail-fast behaviour.
struct DeployPolicy {
    /// Executions of one job before declaring its placement failed
    /// (includes the first run).
    int max_job_attempts = 3;
    /// Wall-clock backoff between job re-executions; grows geometrically.
    Seconds retry_backoff_base{30.0};
    double retry_backoff_multiplier = 2.0;
    /// After the attempt budget, re-home the job to the backing object
    /// store (durable, always reachable) instead of propagating the error.
    bool degrade_to_backing_store = true;

    void validate() const {
        CAST_EXPECTS_MSG(max_job_attempts >= 1, "need at least one job attempt");
        CAST_EXPECTS_MSG(retry_backoff_base.value() >= 0.0,
                         "retry backoff must be non-negative");
        CAST_EXPECTS_MSG(retry_backoff_multiplier >= 1.0, "retry backoff must not shrink");
    }
};

struct WorkloadDeployment {
    Seconds total_runtime{0.0};
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    double utility = 0.0;
    CapacityBreakdown capacities;
    std::vector<sim::JobResult> job_results;
    /// Indices of jobs re-homed to the backing object store after their
    /// planned tier kept failing.
    std::vector<std::size_t> degraded_jobs;
    /// Job re-executions the deployer performed (stage-leg and whole-job).
    int retry_count = 0;
    /// Human-readable record of every fault handled during deployment.
    std::vector<std::string> fault_log;
    /// Warning-severity lint findings from pre-deploy validation (errors
    /// throw instead). Rendered by write_deployment_report.
    std::vector<std::string> lint_warnings;

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

struct WorkflowDeployment {
    Seconds total_runtime{0.0};
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    bool met_deadline = false;
    CapacityBreakdown capacities;
    std::vector<sim::JobResult> job_results;   // workflow job order
    std::vector<Seconds> transfer_times;       // workflow edge order
    std::vector<std::size_t> degraded_jobs;    // workflow job indices
    int retry_count = 0;
    std::vector<std::string> fault_log;
    /// Warning-severity lint findings from pre-deploy validation, including
    /// a demoted L009 when the deadline is provably unattainable.
    std::vector<std::string> lint_warnings;

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

class Deployer {
public:
    explicit Deployer(sim::SimOptions sim_options = {}, DeployPolicy policy = {})
        : sim_options_(sim_options), policy_(policy) {
        policy_.validate();
    }

    /// Deploy a workload plan: provision per the evaluator's capacity
    /// breakdown, run all jobs serially, measure. Validates the plan first;
    /// throws ValidationError on a malformed plan and SimulationError only
    /// when a job fails beyond the policy's retry/degradation budget.
    [[nodiscard]] WorkloadDeployment deploy(const PlanEvaluator& evaluator,
                                            const TieringPlan& plan) const;

    /// Deploy a workflow plan: jobs in topological order with cross-tier
    /// transfers on edges whose endpoints differ.
    [[nodiscard]] WorkflowDeployment deploy_workflow(const WorkflowEvaluator& evaluator,
                                                     const WorkflowPlan& plan) const;

    /// Pre-flight validation of a workload plan through cast::lint: size
    /// mismatch (L012), non-finite or sub-1 over-provisioning factors
    /// (L013), violated tier pins (L014), split reuse groups (L015),
    /// unprovisionable capacities (L017) and unmodeled placements (L018)
    /// all raise ValidationError naming the offending finding.
    static void validate_plan(const PlanEvaluator& evaluator, const TieringPlan& plan);

    /// Pre-flight validation of a workflow plan (same rules, plus model
    /// feasibility which the workflow evaluator reports; L009 deadline
    /// infeasibility is a warning here — missed deadlines deploy and
    /// report MISSED).
    static void validate_workflow_plan(const WorkflowEvaluator& evaluator,
                                       const WorkflowPlan& plan);

private:
    /// Build the simulator with the plan's per-VM capacities (persSSD floor
    /// for objStore intermediates included by the evaluators).
    [[nodiscard]] sim::ClusterSim make_sim(const model::PerfModelSet& models,
                                           const CapacityBreakdown& caps,
                                           const sim::SimOptions& options) const;

    /// Run one job with the policy's retry/backoff/degradation semantics.
    struct JobRun {
        sim::JobResult result;
        Seconds backoff{0.0};  // injected wall-clock wait between attempts
        bool degraded = false;
    };
    [[nodiscard]] JobRun run_with_policy(const model::PerfModelSet& models,
                                         const CapacityBreakdown& caps,
                                         const sim::ClusterSim& primary,
                                         const sim::JobPlacement& placement,
                                         std::size_t job_index, int* retry_count,
                                         std::vector<std::string>* fault_log) const;

    sim::SimOptions sim_options_;
    DeployPolicy policy_;
};

}  // namespace cast::core
