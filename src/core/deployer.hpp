// Deployment: executing a tiering plan on the (simulated) cloud.
//
// The last box of the paper's Fig. 6: CAST "finally deploys the workload in
// the cloud based on the generated plan". The Deployer converts a
// TieringPlan (or WorkflowPlan) into concrete simulator placements — per-VM
// volume provisioning, staging legs, reuse-aware download elision,
// cross-tier transfers on workflow edges — runs them on ClusterSim, and
// reports *measured* runtime, cost, utility and deadline compliance using
// the same Eq. 5-6 cost formulas the solver optimizes, so modeled and
// measured numbers are directly comparable (Fig. 7-9).
#pragma once

#include <vector>

#include "core/castpp.hpp"
#include "core/plan.hpp"
#include "core/utility.hpp"
#include "sim/mapreduce.hpp"

namespace cast::core {

struct WorkloadDeployment {
    Seconds total_runtime{0.0};
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    double utility = 0.0;
    CapacityBreakdown capacities;
    std::vector<sim::JobResult> job_results;

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

struct WorkflowDeployment {
    Seconds total_runtime{0.0};
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    bool met_deadline = false;
    CapacityBreakdown capacities;
    std::vector<sim::JobResult> job_results;   // workflow job order
    std::vector<Seconds> transfer_times;       // workflow edge order

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

class Deployer {
public:
    explicit Deployer(sim::SimOptions sim_options = {}) : sim_options_(sim_options) {}

    /// Deploy a workload plan: provision per the evaluator's capacity
    /// breakdown, run all jobs serially, measure.
    [[nodiscard]] WorkloadDeployment deploy(const PlanEvaluator& evaluator,
                                            const TieringPlan& plan) const;

    /// Deploy a workflow plan: jobs in topological order with cross-tier
    /// transfers on edges whose endpoints differ.
    [[nodiscard]] WorkflowDeployment deploy_workflow(const WorkflowEvaluator& evaluator,
                                                     const WorkflowPlan& plan) const;

private:
    /// Build the simulator with the plan's per-VM capacities (persSSD floor
    /// for objStore intermediates included by the evaluators).
    [[nodiscard]] sim::ClusterSim make_sim(const model::PerfModelSet& models,
                                           const CapacityBreakdown& caps) const;

    sim::SimOptions sim_options_;
};

}  // namespace cast::core
