#include "core/utility.hpp"

#include <cmath>

#include "lint/checks.hpp"

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;
}  // namespace

PlanEvaluator::PlanEvaluator(const model::PerfModelSet& models, workload::Workload workload,
                             EvalOptions options)
    : models_(&models), workload_(std::move(workload)), options_(options) {
    group_leader_.assign(workload_.size(), true);
    if (options_.reuse_aware) {
        for (const auto& [group, members] : workload_.reuse_groups()) {
            for (std::size_t i = 1; i < members.size(); ++i) {
                group_leader_[members[i]] = false;
            }
        }
    }
}

GigaBytes PlanEvaluator::job_requirement(std::size_t job_idx) const {
    const auto& job = workload_.job(job_idx);
    if (options_.reuse_aware && job.reuse_group && !group_leader_[job_idx]) {
        // The shared input is provisioned by the group leader.
        return job.intermediate() + job.output();
    }
    return job.capacity_requirement();
}

bool PlanEvaluator::pays_input_download(std::size_t job_idx) const {
    const auto& job = workload_.job(job_idx);
    return !(options_.reuse_aware && job.reuse_group && !group_leader_[job_idx]);
}

CapacityBreakdown PlanEvaluator::capacities(const TieringPlan& plan) const {
    CAST_EXPECTS_MSG(plan.size() == workload_.size(), "plan/workload size mismatch");
    CapacityBreakdown caps;
    GigaBytes max_object_store_inter{0.0};
    bool any_on_object_store = false;
    for (std::size_t i = 0; i < workload_.size(); ++i) {
        const auto& d = plan.decision(i);
        const auto& job = workload_.job(i);
        const GigaBytes ci{job_requirement(i).value() * d.overprovision};
        caps.aggregate[tier_index(d.tier)] += ci;
        if (d.tier == StorageTier::kEphemeralSsd) {
            // Backing store: the input comes from, and the output returns
            // to, objStore (charged there).
            GigaBytes backing = job.output();
            if (pays_input_download(i)) backing += job.input;
            caps.aggregate[tier_index(StorageTier::kObjectStore)] += backing;
        }
        if (d.tier == StorageTier::kObjectStore) {
            any_on_object_store = true;
            if (job.intermediate() > max_object_store_inter) {
                max_object_store_inter = job.intermediate();
            }
        }
    }
    const int nvm = models_->cluster().worker_count;
    if (any_on_object_store) {
        // Reserve the conventional persSSD intermediate volume on each VM
        // if the plan does not already provision at least that much.
        auto& pers = caps.aggregate[tier_index(StorageTier::kPersistentSsd)];
        const GigaBytes floor{
            cloud::object_store_intermediate_volume(max_object_store_inter, nvm).value() *
            nvm};
        if (pers < floor) pers = floor;
    }
    // Round per-VM capacities to what the provider actually provisions;
    // throws when a tier exceeds its per-VM limits.
    for (StorageTier t : cloud::kAllTiers) {
        const GigaBytes agg = caps.aggregate[tier_index(t)];
        if (agg.value() <= 0.0) continue;
        if (t == StorageTier::kObjectStore) {
            caps.per_vm[tier_index(t)] = GigaBytes{agg.value() / nvm};
            continue;
        }
        const auto& service = models_->catalog().service(t);
        const GigaBytes per_vm = service.provision(GigaBytes{agg.value() / nvm});
        caps.per_vm[tier_index(t)] = per_vm;
        caps.aggregate[tier_index(t)] = GigaBytes{per_vm.value() * nvm};
    }
    return caps;
}

std::pair<Dollars, Dollars> PlanEvaluator::costs_for(Seconds runtime,
                                                     const CapacityBreakdown& caps) const {
    CAST_EXPECTS(runtime.value() > 0.0);
    const auto& cluster = models_->cluster();
    // Eq. 5: VM-minutes over the makespan (workers + master).
    const Dollars vm_cost{cluster.price_per_minute().value() * runtime.minutes()};
    // Eq. 6: storage is billed per GB-hour with hourly rounding.
    const double hours = std::ceil(runtime.minutes() / 60.0);
    double storage = 0.0;
    for (StorageTier t : cloud::kAllTiers) {
        const GigaBytes cap = caps.aggregate[tier_index(t)];
        if (cap.value() <= 0.0) continue;
        storage += cap.value() * models_->catalog().service(t).price_per_gb_hour().value() *
                   hours;
    }
    return {vm_cost, Dollars{storage}};
}

PlanEvaluation PlanEvaluator::evaluate(const TieringPlan& plan) const {
    CAST_EXPECTS_MSG(plan.size() == workload_.size(), "plan/workload size mismatch");
    PlanEvaluation eval;
    if (workload_.empty()) {
        eval.infeasibility = "empty workload";
        return eval;
    }
    // Placement constraints (Eq. 7 co-location, operator pins) via the
    // shared lint checks, so solver, deployer and CLI agree on what a
    // violation is; the clean path appends nothing.
    std::vector<lint::Finding> violations;
    if (options_.reuse_aware) {
        lint::check_reuse_group_split(workload_.jobs(), plan.decisions(), violations);
    }
    lint::check_tier_pins(workload_.jobs(), plan.decisions(), violations);
    if (!violations.empty()) {
        eval.infeasibility = violations.front().message;
        return eval;
    }
    try {
        eval.capacities = capacities(plan);
    } catch (const ValidationError& e) {
        eval.infeasibility = e.what();
        return eval;
    }

    // Eq. 4: serial makespan out of per-job REG estimates at the plan's
    // per-VM capacities.
    eval.job_runtimes.reserve(workload_.size());
    Seconds total{0.0};
    for (std::size_t i = 0; i < workload_.size(); ++i) {
        const auto& d = plan.decision(i);
        model::StagingLegs legs = model::StagingLegs::for_tier(d.tier);
        if (legs.download_input) legs.download_input = pays_input_download(i);
        const Seconds t = models_->job_runtime(
            workload_.job(i), d.tier, eval.capacities.per_vm[tier_index(d.tier)], legs);
        eval.job_runtimes.push_back(t);
        total += t;
    }
    eval.total_runtime = total;
    const auto [vm, store] = costs_for(total, eval.capacities);
    eval.vm_cost = vm;
    eval.storage_cost = store;
    eval.utility = tenant_utility(total, eval.total_cost());
    eval.feasible = true;
    return eval;
}

}  // namespace cast::core
