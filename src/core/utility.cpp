#include "core/utility.hpp"

#include <cmath>

#include "core/eval_cache.hpp"
#include "lint/checks.hpp"

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;
}  // namespace

PlanEvaluator::PlanEvaluator(const model::PerfModelSet& models, workload::Workload workload,
                             EvalOptions options)
    : models_(&models), workload_(std::move(workload)), options_(options) {
    group_leader_.assign(workload_.size(), true);
    if (options_.reuse_aware) {
        for (const auto& [group, members] : workload_.reuse_groups()) {
            for (std::size_t i = 1; i < members.size(); ++i) {
                group_leader_[members[i]] = false;
            }
        }
    }
    for (const auto& job : workload_.jobs()) {
        if (models_->has_tier_model(job.app, StorageTier::kObjectStore) &&
            !models_->tier_model(job.app, StorageTier::kObjectStore)
                 .scales_with_intermediate_volume) {
            objstore_capacity_sensitive_ = true;
            break;
        }
    }
    // Per-job capacity terms are invariant across plans; precompute them so
    // the per-iteration capacities() loop is pure array arithmetic. The
    // stored doubles are exactly what the accessors return, so plans
    // evaluate bit-identically to recomputing in the loop.
    req_.reserve(workload_.size());
    eph_backing_.reserve(workload_.size());
    inter_.reserve(workload_.size());
    for (std::size_t i = 0; i < workload_.size(); ++i) {
        const auto& job = workload_.job(i);
        req_.push_back(job_requirement(i));
        GigaBytes backing = job.output();
        if (pays_input_download(i)) backing += job.input;
        eph_backing_.push_back(backing);
        inter_.push_back(job.intermediate());
        if (job.pinned_tier) has_tier_pins_ = true;
    }
}

GigaBytes PlanEvaluator::job_requirement(std::size_t job_idx) const {
    const auto& job = workload_.job(job_idx);
    if (options_.reuse_aware && job.reuse_group && !group_leader_[job_idx]) {
        // The shared input is provisioned by the group leader.
        return job.intermediate() + job.output();
    }
    return job.capacity_requirement();
}

bool PlanEvaluator::pays_input_download(std::size_t job_idx) const {
    const auto& job = workload_.job(job_idx);
    return !(options_.reuse_aware && job.reuse_group && !group_leader_[job_idx]);
}

CapacityBreakdown PlanEvaluator::capacities(const TieringPlan& plan) const {
    CAST_EXPECTS_MSG(plan.size() == workload_.size(), "plan/workload size mismatch");
    CapacityBreakdown caps;
    GigaBytes max_object_store_inter{0.0};
    bool any_on_object_store = false;
    const auto& ds = plan.decisions();
    for (std::size_t i = 0; i < workload_.size(); ++i) {
        const auto& d = ds[i];
        const GigaBytes ci{req_[i].value() * d.overprovision};
        caps.aggregate[tier_index(d.tier)] += ci;
        if (d.tier == StorageTier::kEphemeralSsd) {
            // Backing store: the input comes from, and the output returns
            // to, objStore (charged there).
            caps.aggregate[tier_index(StorageTier::kObjectStore)] += eph_backing_[i];
        } else if (d.tier == StorageTier::kObjectStore) {
            any_on_object_store = true;
            if (inter_[i] > max_object_store_inter) max_object_store_inter = inter_[i];
        }
    }
    const int nvm = models_->cluster().worker_count;
    if (any_on_object_store) {
        // Reserve the conventional persSSD intermediate volume on each VM
        // if the plan does not already provision at least that much.
        auto& pers = caps.aggregate[tier_index(StorageTier::kPersistentSsd)];
        const GigaBytes floor{
            cloud::object_store_intermediate_volume(max_object_store_inter, nvm).value() *
            nvm};
        if (pers < floor) pers = floor;
    }
    // Round per-VM capacities to what the provider actually provisions;
    // throws when a tier exceeds its per-VM limits.
    for (StorageTier t : cloud::kAllTiers) {
        const GigaBytes agg = caps.aggregate[tier_index(t)];
        if (agg.value() <= 0.0) continue;
        if (t == StorageTier::kObjectStore) {
            caps.per_vm[tier_index(t)] = GigaBytes{agg.value() / nvm};
            continue;
        }
        const auto& service = models_->catalog().service(t);
        const GigaBytes per_vm = service.provision(GigaBytes{agg.value() / nvm});
        caps.per_vm[tier_index(t)] = per_vm;
        caps.aggregate[tier_index(t)] = GigaBytes{per_vm.value() * nvm};
    }
    return caps;
}

std::pair<Dollars, Dollars> eq5_eq6_costs(const model::PerfModelSet& models, Seconds runtime,
                                          const CapacityBreakdown& caps) {
    CAST_EXPECTS(runtime.value() > 0.0);
    const auto& cluster = models.cluster();
    // Eq. 5: VM-minutes over the makespan (workers + master).
    const Dollars vm_cost{cluster.price_per_minute().value() * runtime.minutes()};
    // Eq. 6: storage is billed per GB-hour with hourly rounding.
    const double hours = std::ceil(runtime.minutes() / 60.0);
    double storage = 0.0;
    for (StorageTier t : cloud::kAllTiers) {
        const GigaBytes cap = caps.aggregate[tier_index(t)];
        if (cap.value() <= 0.0) continue;
        storage += cap.value() * models.catalog().service(t).price_per_gb_hour().value() *
                   hours;
    }
    return {vm_cost, Dollars{storage}};
}

std::pair<Dollars, Dollars> PlanEvaluator::costs_for(Seconds runtime,
                                                     const CapacityBreakdown& caps) const {
    return eq5_eq6_costs(*models_, runtime, caps);
}

Seconds PlanEvaluator::job_runtime_for(const TieringPlan& plan, std::size_t job_idx,
                                       const CapacityBreakdown& caps,
                                       EvalCache* cache) const {
    const auto& d = plan.decision(job_idx);
    model::StagingLegs legs = model::StagingLegs::for_tier(d.tier);
    if (legs.download_input) legs.download_input = pays_input_download(job_idx);
    const GigaBytes per_vm = caps.per_vm[tier_index(d.tier)];
    if (cache != nullptr) {
        return cache->job_runtime(*models_, workload_.job(job_idx), d.tier, per_vm, legs);
    }
    return models_->job_runtime(workload_.job(job_idx), d.tier, per_vm, legs);
}

std::array<bool, cloud::kTierCount> PlanEvaluator::reusable_tiers(
    const CapacityBreakdown& base, const CapacityBreakdown& next) const {
    std::array<bool, cloud::kTierCount> reusable{};
    for (StorageTier t : cloud::kAllTiers) {
        const std::size_t ti = tier_index(t);
        reusable[ti] = (t == StorageTier::kObjectStore && !objstore_capacity_sensitive_) ||
                       base.per_vm[ti].value() == next.per_vm[ti].value();
    }
    return reusable;
}

PlanEvaluation PlanEvaluator::evaluate_impl(const TieringPlan& plan, EvalCache* cache,
                                            const PlanEvaluation* base,
                                            std::span<const std::size_t> changed) const {
    CAST_EXPECTS_MSG(plan.size() == workload_.size(), "plan/workload size mismatch");
    PlanEvaluation eval;
    if (workload_.empty()) {
        eval.infeasibility = "empty workload";
        return eval;
    }
    // Placement constraints (Eq. 7 co-location, operator pins) via the
    // shared lint checks, so solver, deployer and CLI agree on what a
    // violation is; the clean path appends nothing. These stay full-plan
    // even on the incremental path: they are cheap comparisons, and running
    // them unchanged keeps infeasibility messages bit-identical. A check
    // that cannot fire for this workload (no reuse groups tracked, no pins)
    // is skipped outright — it would append nothing either way.
    if (options_.reuse_aware || has_tier_pins_) {
        std::vector<lint::Finding> violations;
        if (options_.reuse_aware) {
            lint::check_reuse_group_split(workload_.jobs(), plan.decisions(), violations);
        }
        if (has_tier_pins_) {
            lint::check_tier_pins(workload_.jobs(), plan.decisions(), violations);
        }
        if (!violations.empty()) {
            eval.infeasibility = violations.front().message;
            return eval;
        }
    }
    try {
        eval.capacities = capacities(plan);
    } catch (const ValidationError& e) {
        eval.infeasibility = e.what();
        return eval;
    }

    // Eq. 4: serial makespan out of per-job REG estimates at the plan's
    // per-VM capacities. A job's runtime depends only on its own tier, that
    // tier's per-VM capacity and its staging legs, so the base evaluation's
    // runtime carries over for every job whose decision is untouched and
    // whose tier's per-VM capacity is bitwise unchanged — no memo lookup,
    // no model call. Only jobs on tiers whose capacity shifted
    // (provisioning rounding, the objStore persSSD floor, ephSSD backing)
    // and jobs whose own decision moved re-derive their runtime, through
    // the memo table.
    Seconds total{0.0};
    if (base != nullptr && base->feasible && base->job_runtimes.size() == workload_.size()) {
        const std::array<bool, cloud::kTierCount> reusable =
            reusable_tiers(base->capacities, eval.capacities);
        eval.job_runtimes = base->job_runtimes;
        const auto& ds = plan.decisions();
        bool any_runtime_changed = false;
        bool all_reusable = true;
        for (const bool r : reusable) all_reusable = all_reusable && r;
        if (!all_reusable) {
            // Capacity sweep: re-derive directly instead of through the memo
            // table. These keys carry a freshly rounded capacity, so they
            // miss (and would churn the table with inserts) far more often
            // than the per-decision moves below; at REG's evaluation cost a
            // direct call is cheaper than a shard lock either way.
            for (std::size_t i = 0; i < workload_.size(); ++i) {
                if (!reusable[tier_index(ds[i].tier)]) {
                    const Seconds t = job_runtime_for(plan, i, eval.capacities, nullptr);
                    any_runtime_changed |= t.value() != eval.job_runtimes[i].value();
                    eval.job_runtimes[i] = t;
                }
            }
        }
        // A changed job's base runtime belongs to its old decision: recompute
        // it even when its (new) tier's capacity is unchanged, unless the
        // capacity pass above already did. `changed` holds unique indices, so
        // each job is recomputed at most once.
        for (std::size_t j : changed) {
            if (reusable[tier_index(ds[j].tier)]) {
                const Seconds t = job_runtime_for(plan, j, eval.capacities, cache);
                any_runtime_changed |= t.value() != eval.job_runtimes[j].value();
                eval.job_runtimes[j] = t;
            }
        }
        if (any_runtime_changed) {
            // Sum in index order, exactly as the full loop does, so the
            // floating-point total is bit-identical.
            for (const Seconds& t : eval.job_runtimes) total += t;
        } else {
            // Every runtime is bitwise what the base summed (in the same
            // index order), so the base total IS this plan's total.
            total = base->total_runtime;
        }
    } else {
        eval.job_runtimes.reserve(workload_.size());
        for (std::size_t i = 0; i < workload_.size(); ++i) {
            const Seconds t = job_runtime_for(plan, i, eval.capacities, cache);
            eval.job_runtimes.push_back(t);
            total += t;
        }
    }
    eval.total_runtime = total;
    const auto [vm, store] = costs_for(total, eval.capacities);
    eval.vm_cost = vm;
    eval.storage_cost = store;
    eval.utility = tenant_utility(total, eval.total_cost());
    eval.feasible = true;
    return eval;
}

PlanEvaluation PlanEvaluator::evaluate(const TieringPlan& plan, EvalCache* cache) const {
    return evaluate_impl(plan, cache, nullptr, {});
}

PlanEvaluation PlanEvaluator::evaluate_delta(const PlanEvaluation& base,
                                             const TieringPlan& plan,
                                             std::span<const std::size_t> changed_jobs,
                                             EvalCache* cache) const {
    // An infeasible base carries no reusable runtimes; evaluate fresh.
    if (!base.feasible) return evaluate_impl(plan, cache, nullptr, {});
    // No decision differs (the caller's contract): the base evaluation IS
    // the evaluation of `plan`.
    if (changed_jobs.empty()) return base;
    return evaluate_impl(plan, cache, &base, changed_jobs);
}

}  // namespace cast::core
