#include "core/soa_eval.hpp"

#include "core/eval_cache.hpp"
#include "lint/checks.hpp"

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;
constexpr std::size_t kEph = tier_index(StorageTier::kEphemeralSsd);
constexpr std::size_t kPers = tier_index(StorageTier::kPersistentSsd);
constexpr std::size_t kObj = tier_index(StorageTier::kObjectStore);
}  // namespace

SoaEvaluator::SoaEvaluator(const PlanEvaluator& evaluator)
    : aos_(&evaluator),
      n_(evaluator.workload().size()),
      nvm_(evaluator.models().cluster().worker_count),
      reuse_aware_(evaluator.options().reuse_aware),
      has_tier_pins_(evaluator.has_tier_pins_),
      objstore_capacity_sensitive_(evaluator.objstore_capacity_sensitive_) {
    req_.reserve(n_);
    eph_backing_.reserve(n_);
    inter_.reserve(n_);
    legs_.reserve(n_ * cloud::kTierCount);
    for (std::size_t i = 0; i < n_; ++i) {
        // The stored doubles are bitwise the evaluator's own precomputed
        // terms, so the capacity arithmetic below reproduces its results
        // exactly.
        req_.push_back(evaluator.req_[i].value());
        eph_backing_.push_back(evaluator.eph_backing_[i].value());
        inter_.push_back(evaluator.inter_[i].value());
        for (StorageTier t : cloud::kAllTiers) {
            model::StagingLegs legs = model::StagingLegs::for_tier(t);
            if (legs.download_input) legs.download_input = evaluator.pays_input_download(i);
            legs_.push_back(legs);
        }
    }
}

void SoaEvaluator::init(SoaState& state, const TieringPlan& plan,
                        const PlanEvaluation& eval) const {
    CAST_EXPECTS_MSG(plan.size() == n_, "plan/workload size mismatch");
    CAST_EXPECTS_MSG(eval.feasible && eval.job_runtimes.size() == n_,
                     "SoA state needs a feasible evaluated seed plan");
    state.tier.resize(n_);
    state.overprov.resize(n_);
    state.runtime.resize(n_);
    state.mirror = plan.decisions();
    for (std::size_t i = 0; i < n_; ++i) {
        state.tier[i] = static_cast<std::uint8_t>(tier_index(state.mirror[i].tier));
        state.overprov[i] = state.mirror[i].overprovision;
        state.runtime[i] = eval.job_runtimes[i].value();
    }
    state.caps = eval.capacities;
    state.total_runtime = eval.total_runtime.value();
    state.vm_cost = eval.vm_cost.value();
    state.storage_cost = eval.storage_cost.value();
    state.utility = eval.utility;

    state.decision_undo.clear();
    state.runtime_undo.clear();
    state.decision_undo.reserve(n_);
    state.runtime_undo.reserve(n_);

    state.best_mirror = state.mirror;
    state.best_runtime = state.runtime;
    state.best_caps = state.caps;
    state.best_total = state.total_runtime;
    state.best_vm = state.vm_cost;
    state.best_storage = state.storage_cost;
    state.best_utility = state.utility;
}

void SoaEvaluator::set_decision(SoaState& state, std::size_t job, std::uint8_t tier_idx,
                                double overprov) const {
    state.decision_undo.push_back(
        {static_cast<std::uint32_t>(job), state.tier[job], state.overprov[job]});
    state.tier[job] = tier_idx;
    state.overprov[job] = overprov;
    state.mirror[job] = PlacementDecision{cloud::kAllTiers[tier_idx], overprov};
}

double SoaEvaluator::runtime_for(const SoaState& state, std::size_t job,
                                 const CapacityBreakdown& caps, EvalCache* cache) const {
    const std::size_t ti = state.tier[job];
    const StorageTier tier = cloud::kAllTiers[ti];
    const model::StagingLegs legs = legs_[job * cloud::kTierCount + ti];
    const GigaBytes per_vm = caps.per_vm[ti];
    const auto& spec = aos_->workload().job(job);
    if (cache != nullptr) {
        return cache->job_runtime(aos_->models(), spec, tier, per_vm, legs).value();
    }
    return aos_->models().job_runtime(spec, tier, per_vm, legs).value();
}

bool SoaEvaluator::evaluate_candidate(SoaState& state, std::span<const std::size_t> changed,
                                      EvalCache* cache) const {
    state.runtime_undo.clear();
    // Placement constraints exactly as evaluate_impl: the shared lint
    // checks over the AoS mirror, skipped when they could never fire. The
    // clean path pushes nothing, so `violations` never allocates there.
    if (reuse_aware_ || has_tier_pins_) {
        std::vector<lint::Finding> violations;
        if (reuse_aware_) {
            lint::check_reuse_group_split(aos_->workload().jobs(), state.mirror, violations);
        }
        if (has_tier_pins_) {
            lint::check_tier_pins(aos_->workload().jobs(), state.mirror, violations);
        }
        if (!violations.empty()) return false;
    }

    // --- Capacity accounting, bit-identical to PlanEvaluator::capacities:
    // index-order accumulation into the tier aggregates, ephSSD backing on
    // objStore, the objStore persSSD floor, then provider provisioning
    // rounding (which may throw on per-VM limits -> infeasible).
    state.cand_caps = CapacityBreakdown{};
    auto& agg = state.cand_caps.aggregate;
    double max_object_store_inter = 0.0;
    bool any_on_object_store = false;
    for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t ti = state.tier[i];
        agg[ti] += GigaBytes{req_[i] * state.overprov[i]};
        if (ti == kEph) {
            agg[kObj] += GigaBytes{eph_backing_[i]};
        } else if (ti == kObj) {
            any_on_object_store = true;
            if (inter_[i] > max_object_store_inter) max_object_store_inter = inter_[i];
        }
    }
    try {
        if (any_on_object_store) {
            auto& pers = agg[kPers];
            const GigaBytes floor{cloud::object_store_intermediate_volume(
                                      GigaBytes{max_object_store_inter}, nvm_)
                                      .value() *
                                  nvm_};
            if (pers < floor) pers = floor;
        }
        for (StorageTier t : cloud::kAllTiers) {
            const std::size_t ti = tier_index(t);
            const GigaBytes aggregate = agg[ti];
            if (aggregate.value() <= 0.0) continue;
            if (t == StorageTier::kObjectStore) {
                state.cand_caps.per_vm[ti] = GigaBytes{aggregate.value() / nvm_};
                continue;
            }
            const auto& service = aos_->models().catalog().service(t);
            const GigaBytes per_vm = service.provision(GigaBytes{aggregate.value() / nvm_});
            state.cand_caps.per_vm[ti] = per_vm;
            agg[ti] = GigaBytes{per_vm.value() * nvm_};
        }
    } catch (const ValidationError&) {
        return false;
    }

    // --- Runtime reuse, exactly evaluate_impl's incremental branch:
    // bitwise per-VM comparison decides reusability per tier; jobs on
    // capacity-shifted tiers re-derive directly, changed jobs through the
    // memo table; the total re-sums in index order only when some runtime
    // actually changed.
    std::array<bool, cloud::kTierCount> reusable{};
    bool all_reusable = true;
    for (StorageTier t : cloud::kAllTiers) {
        const std::size_t ti = tier_index(t);
        reusable[ti] = (t == StorageTier::kObjectStore && !objstore_capacity_sensitive_) ||
                       state.caps.per_vm[ti].value() == state.cand_caps.per_vm[ti].value();
        all_reusable = all_reusable && reusable[ti];
    }
    bool any_runtime_changed = false;
    if (!all_reusable) {
        for (std::size_t i = 0; i < n_; ++i) {
            if (!reusable[state.tier[i]]) {
                const double t = runtime_for(state, i, state.cand_caps, nullptr);
                any_runtime_changed |= t != state.runtime[i];
                state.runtime_undo.push_back(
                    {static_cast<std::uint32_t>(i), state.runtime[i]});
                state.runtime[i] = t;
            }
        }
    }
    for (std::size_t j : changed) {
        if (reusable[state.tier[j]]) {
            const double t = runtime_for(state, j, state.cand_caps, cache);
            any_runtime_changed |= t != state.runtime[j];
            state.runtime_undo.push_back({static_cast<std::uint32_t>(j), state.runtime[j]});
            state.runtime[j] = t;
        }
    }
    double total = 0.0;
    if (any_runtime_changed) {
        for (const double t : state.runtime) total += t;
    } else {
        total = state.total_runtime;
    }

    const auto [vm, store] = eq5_eq6_costs(aos_->models(), Seconds{total}, state.cand_caps);
    state.cand_total = total;
    state.cand_vm = vm.value();
    state.cand_storage = store.value();
    state.cand_utility = tenant_utility(Seconds{total}, vm + store);
    return true;
}

void SoaEvaluator::commit(SoaState& state) const {
    state.caps = state.cand_caps;
    state.total_runtime = state.cand_total;
    state.vm_cost = state.cand_vm;
    state.storage_cost = state.cand_storage;
    state.utility = state.cand_utility;
    state.decision_undo.clear();
    state.runtime_undo.clear();
}

void SoaEvaluator::revert(SoaState& state) const {
    for (auto it = state.runtime_undo.rbegin(); it != state.runtime_undo.rend(); ++it) {
        state.runtime[it->job] = it->runtime;
    }
    for (auto it = state.decision_undo.rbegin(); it != state.decision_undo.rend(); ++it) {
        state.tier[it->job] = it->tier;
        state.overprov[it->job] = it->overprov;
        state.mirror[it->job] = PlacementDecision{cloud::kAllTiers[it->tier], it->overprov};
    }
    state.decision_undo.clear();
    state.runtime_undo.clear();
}

void SoaEvaluator::save_best(SoaState& state) const {
    state.best_mirror = state.mirror;
    state.best_runtime = state.runtime;
    state.best_caps = state.cand_caps;
    state.best_total = state.cand_total;
    state.best_vm = state.cand_vm;
    state.best_storage = state.cand_storage;
    state.best_utility = state.cand_utility;
}

void SoaEvaluator::swap_current(SoaState& a, SoaState& b) {
    CAST_EXPECTS(a.decision_undo.empty() && a.runtime_undo.empty());
    CAST_EXPECTS(b.decision_undo.empty() && b.runtime_undo.empty());
    a.tier.swap(b.tier);
    a.overprov.swap(b.overprov);
    a.mirror.swap(b.mirror);
    a.runtime.swap(b.runtime);
    std::swap(a.caps, b.caps);
    std::swap(a.total_runtime, b.total_runtime);
    std::swap(a.vm_cost, b.vm_cost);
    std::swap(a.storage_cost, b.storage_cost);
    std::swap(a.utility, b.utility);
}

TieringPlan SoaEvaluator::best_plan(const SoaState& state) const {
    return TieringPlan{state.best_mirror};
}

PlanEvaluation SoaEvaluator::best_evaluation(const SoaState& state) const {
    PlanEvaluation eval;
    eval.feasible = true;
    eval.total_runtime = Seconds{state.best_total};
    eval.vm_cost = Dollars{state.best_vm};
    eval.storage_cost = Dollars{state.best_storage};
    eval.utility = state.best_utility;
    eval.capacities = state.best_caps;
    eval.job_runtimes.reserve(n_);
    for (const double t : state.best_runtime) eval.job_runtimes.push_back(Seconds{t});
    return eval;
}

}  // namespace cast::core
