#include "core/deployer.hpp"

#include <algorithm>
#include <string>

#include "lint/analyzer.hpp"

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;

std::string fault_summary(const std::string& job_name, const sim::FaultStats& f) {
    std::string s = "job '" + job_name + "': " + std::to_string(f.task_retries) +
                    " task re-executions, " + std::to_string(f.request_retries) +
                    " request retries, " + std::to_string(f.stragglers) + " stragglers, " +
                    std::to_string(f.throttle_events) + " throttle events";
    if (f.backoff_delay.value() > 0.0) {
        s += ", " + std::to_string(f.backoff_delay.value()) + "s backoff";
    }
    return s;
}

/// Pre-deploy lint of a workload plan: shape, factor, pin and reuse rules
/// (L012-L018) plus the workload rules, all through the shared analyzer.
lint::Report lint_plan(const PlanEvaluator& evaluator, const TieringPlan& plan) {
    lint::LintContext ctx;
    ctx.models = &evaluator.models();
    ctx.reuse_aware = evaluator.options().reuse_aware;
    return lint::lint_workload_plan(evaluator.workload(), plan, ctx);
}

/// Pre-deploy lint of a workflow plan. L009 (deadline below the certified
/// lower bound) is demoted to a warning: the deployer's job is to execute
/// and measure — a plan that will miss its deadline still deploys, and the
/// report says MISSED (the §5.2.2 baselines depend on exactly that).
lint::Report lint_workflow_plan_for_deploy(const WorkflowEvaluator& evaluator,
                                           const WorkflowPlan& plan) {
    lint::LintContext ctx;
    ctx.models = &evaluator.models();
    lint::Report report =
        lint::lint_workflow_plan(evaluator.workflow(), plan.decisions, ctx);
    lint::demote(report, "L009", lint::Severity::kWarning);
    return report;
}

void capture_warnings(const lint::Report& report, std::vector<std::string>* out) {
    for (const lint::Finding* f : report.at(lint::Severity::kWarning)) {
        out->push_back(f->format());
    }
}

/// Account for a degraded job: its primary data moves to the backing object
/// store (billed there), and intermediates need the conventional persSSD
/// volume to exist.
CapacityBreakdown augment_for_degradation(CapacityBreakdown caps,
                                          const workload::JobSpec& job, int worker_count) {
    const GigaBytes inter_vol =
        cloud::object_store_intermediate_volume(job.intermediate(), worker_count);
    const std::size_t pers = tier_index(StorageTier::kPersistentSsd);
    if (caps.per_vm[pers].value() < inter_vol.value()) {
        caps.per_vm[pers] = inter_vol;
        caps.aggregate[pers] = GigaBytes{inter_vol.value() * worker_count};
    }
    const std::size_t obj = tier_index(StorageTier::kObjectStore);
    caps.aggregate[obj] += job.capacity_requirement();
    caps.per_vm[obj] += GigaBytes{job.capacity_requirement().value() / worker_count};
    return caps;
}

}  // namespace

sim::ClusterSim Deployer::make_sim(const model::PerfModelSet& models,
                                   const CapacityBreakdown& caps,
                                   const sim::SimOptions& options) const {
    sim::TierCapacities tc;
    for (StorageTier t : cloud::kAllTiers) {
        tc.set(t, caps.per_vm[tier_index(t)]);
    }
    return sim::ClusterSim(models.cluster(), models.catalog(), tc, options);
}

void Deployer::validate_plan(const PlanEvaluator& evaluator, const TieringPlan& plan) {
    lint::enforce(lint_plan(evaluator, plan));
    // Provisioning rules (per-VM volume maxima, whole-volume rounding) can
    // reject a decision; surface that before any job runs.
    (void)evaluator.capacities(plan);
}

void Deployer::validate_workflow_plan(const WorkflowEvaluator& evaluator,
                                      const WorkflowPlan& plan) {
    lint::enforce(lint_workflow_plan_for_deploy(evaluator, plan));
    const WorkflowEvaluation modeled = evaluator.evaluate(plan);
    if (!modeled.feasible) {
        throw ValidationError("cannot deploy an infeasible workflow plan: " +
                              modeled.infeasibility);
    }
}

Deployer::JobRun Deployer::run_with_policy(const model::PerfModelSet& models,
                                           const CapacityBreakdown& caps,
                                           const sim::ClusterSim& primary,
                                           const sim::JobPlacement& placement,
                                           std::size_t job_index, int* retry_count,
                                           std::vector<std::string>* fault_log) const {
    const workload::JobSpec& job = placement.job;
    JobRun out;
    std::string last_error;
    for (int attempt = 0; attempt < policy_.max_job_attempts; ++attempt) {
        try {
            if (attempt == 0) {
                out.result = primary.run_job(placement);
            } else {
                // A fresh execution sees fresh luck: salt the fault stream
                // (and only it — determinism of the deployment is preserved
                // because the salt depends only on the attempt number).
                sim::SimOptions salted = sim_options_;
                salted.faults.seed ^=
                    0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt);
                out.result = make_sim(models, caps, salted).run_job(placement);
            }
            if (out.result.faults.any()) {
                fault_log->push_back(fault_summary(job.name, out.result.faults));
            }
            return out;
        } catch (const SimulationError& e) {
            last_error = e.what();
            ++*retry_count;
            if (attempt + 1 < policy_.max_job_attempts) {
                Seconds wait = policy_.retry_backoff_base;
                for (int i = 0; i < attempt; ++i) {
                    wait = Seconds{wait.value() * policy_.retry_backoff_multiplier};
                }
                out.backoff += wait;
                fault_log->push_back("job '" + job.name + "' attempt " +
                                     std::to_string(attempt + 1) + " failed (" + e.phase() +
                                     "): retrying after " + std::to_string(wait.value()) +
                                     "s backoff");
            }
        }
    }

    const bool already_on_backing_store =
        !placement.input_splits.empty() &&
        placement.input_splits.front().tier == StorageTier::kObjectStore;
    if (!policy_.degrade_to_backing_store || already_on_backing_store) {
        throw SimulationError("job failed " + std::to_string(policy_.max_job_attempts) +
                                       " executions; last: " + last_error,
                                   job.name, "deploy");
    }

    // Graceful degradation: re-home the job's data to the durable backing
    // object store and run it there fault-free (the backing store is the
    // reliability anchor of the paper's tiering conventions — ephSSD data
    // is *defined* as recoverable from it).
    fault_log->push_back("job '" + job.name + "' degraded to " +
                         std::string(cloud::tier_name(StorageTier::kObjectStore)) +
                         " after " + std::to_string(policy_.max_job_attempts) +
                         " failed executions");
    const int nvm = models.cluster().worker_count;
    const CapacityBreakdown degraded_caps = augment_for_degradation(caps, job, nvm);
    sim::SimOptions calm = sim_options_;
    calm.faults = sim::FaultProfile::none();
    const sim::JobPlacement fallback =
        sim::JobPlacement::on_tier(job, StorageTier::kObjectStore);
    out.result = make_sim(models, degraded_caps, calm).run_job(fallback);
    out.degraded = true;
    (void)job_index;
    return out;
}

WorkloadDeployment Deployer::deploy(const PlanEvaluator& evaluator,
                                    const TieringPlan& plan) const {
    const lint::Report checked = lint_plan(evaluator, plan);
    lint::enforce(checked);
    const auto& workload = evaluator.workload();

    WorkloadDeployment dep;
    capture_warnings(checked, &dep.lint_warnings);
    dep.capacities = evaluator.capacities(plan);
    const sim::ClusterSim simulator =
        make_sim(evaluator.models(), dep.capacities, sim_options_);

    std::vector<sim::JobPlacement> placements;
    placements.reserve(workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        sim::JobPlacement p =
            sim::JobPlacement::on_tier(workload.job(i), plan.decision(i).tier);
        // Reuse-aware deployment: only the group leader downloads the
        // shared input onto the ephemeral tier; followers find it resident.
        if (p.stage_in) p.stage_in = evaluator.pays_input_download(i);
        placements.push_back(std::move(p));
    }

    Seconds total{0.0};
    dep.job_results.reserve(placements.size());
    for (std::size_t i = 0; i < placements.size(); ++i) {
        JobRun run = run_with_policy(evaluator.models(), dep.capacities, simulator,
                                     placements[i], i, &dep.retry_count, &dep.fault_log);
        if (run.degraded) {
            dep.degraded_jobs.push_back(i);
            dep.capacities = augment_for_degradation(dep.capacities, workload.job(i),
                                                     evaluator.models().cluster().worker_count);
        }
        total += run.result.makespan + run.backoff;
        dep.job_results.push_back(std::move(run.result));
    }
    dep.total_runtime = total;
    const auto [vm, store] = evaluator.costs_for(total, dep.capacities);
    dep.vm_cost = vm;
    dep.storage_cost = store;
    dep.utility = tenant_utility(total, dep.total_cost());
    return dep;
}

WorkflowDeployment Deployer::deploy_workflow(const WorkflowEvaluator& evaluator,
                                             const WorkflowPlan& plan) const {
    const lint::Report checked = lint_workflow_plan_for_deploy(evaluator, plan);
    lint::enforce(checked);
    const auto& wf = evaluator.workflow();

    // Capacity breakdown comes from the workflow evaluator (Eq. 10 +
    // conventions); reuse its provisioning by evaluating once.
    const WorkflowEvaluation modeled = evaluator.evaluate(plan);
    if (!modeled.feasible) {
        throw ValidationError("cannot deploy an infeasible workflow plan: " +
                              modeled.infeasibility);
    }

    WorkflowDeployment dep;
    capture_warnings(checked, &dep.lint_warnings);
    dep.capacities = modeled.capacities;
    const sim::ClusterSim simulator =
        make_sim(evaluator.models(), dep.capacities, sim_options_);

    Seconds total{0.0};
    dep.job_results.resize(wf.size());
    for (std::size_t i : wf.topological_order()) {
        const StorageTier tier = plan.decisions[i].tier;
        sim::JobPlacement p = sim::JobPlacement::on_tier(wf.jobs()[i], tier);
        if (tier == StorageTier::kEphemeralSsd) {
            // Mid-workflow inputs arrive via cross-tier transfers below,
            // not via objStore staging; mid-workflow outputs are consumed
            // downstream, not archived.
            p.stage_in = wf.predecessors(i).empty();
            p.stage_out = wf.successors(i).empty();
        }
        JobRun run = run_with_policy(evaluator.models(), dep.capacities, simulator, p, i,
                                     &dep.retry_count, &dep.fault_log);
        if (run.degraded) {
            dep.degraded_jobs.push_back(i);
            dep.capacities = augment_for_degradation(dep.capacities, wf.jobs()[i],
                                                     evaluator.models().cluster().worker_count);
        }
        total += run.result.makespan + run.backoff;
        dep.job_results[i] = std::move(run.result);
    }
    dep.transfer_times.reserve(wf.edges().size());
    for (const auto& edge : wf.edges()) {
        const std::size_t u = wf.index_of(edge.from_job);
        const std::size_t v = wf.index_of(edge.to_job);
        // A degraded producer's output now lives on the backing store, so
        // the consumer fetches from there instead of the planned tier.
        auto degraded = [&](std::size_t idx) {
            return std::find(dep.degraded_jobs.begin(), dep.degraded_jobs.end(), idx) !=
                   dep.degraded_jobs.end();
        };
        const StorageTier su =
            degraded(u) ? StorageTier::kObjectStore : plan.decisions[u].tier;
        const StorageTier sv =
            degraded(v) ? StorageTier::kObjectStore : plan.decisions[v].tier;
        Seconds t{0.0};
        if (su != sv) t = simulator.run_transfer(wf.jobs()[u].output(), su, sv);
        dep.transfer_times.push_back(t);
        total += t;
    }
    dep.total_runtime = total;

    // Bill via the shared Eq. 5-6 formula (eq5_eq6_costs): a deployed run
    // and its plan's model must cost identically for the same makespan and
    // capacities, or reports comparing them would show phantom drift.
    const auto [vm, store] = eq5_eq6_costs(evaluator.models(), total, dep.capacities);
    dep.vm_cost = vm;
    dep.storage_cost = store;
    dep.met_deadline = total <= wf.deadline();
    return dep;
}

}  // namespace cast::core
