#include "core/deployer.hpp"

#include <cmath>

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;
}  // namespace

sim::ClusterSim Deployer::make_sim(const model::PerfModelSet& models,
                                   const CapacityBreakdown& caps) const {
    sim::TierCapacities tc;
    for (StorageTier t : cloud::kAllTiers) {
        tc.set(t, caps.per_vm[tier_index(t)]);
    }
    return sim::ClusterSim(models.cluster(), models.catalog(), tc, sim_options_);
}

WorkloadDeployment Deployer::deploy(const PlanEvaluator& evaluator,
                                    const TieringPlan& plan) const {
    const auto& workload = evaluator.workload();
    CAST_EXPECTS(plan.size() == workload.size());

    WorkloadDeployment dep;
    dep.capacities = evaluator.capacities(plan);
    const sim::ClusterSim simulator = make_sim(evaluator.models(), dep.capacities);

    std::vector<sim::JobPlacement> placements;
    placements.reserve(workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        sim::JobPlacement p =
            sim::JobPlacement::on_tier(workload.job(i), plan.decision(i).tier);
        // Reuse-aware deployment: only the group leader downloads the
        // shared input onto the ephemeral tier; followers find it resident.
        if (p.stage_in) p.stage_in = evaluator.pays_input_download(i);
        placements.push_back(std::move(p));
    }
    dep.job_results = simulator.run_serial(placements);
    Seconds total{0.0};
    for (const auto& r : dep.job_results) total += r.makespan;
    dep.total_runtime = total;
    const auto [vm, store] = evaluator.costs_for(total, dep.capacities);
    dep.vm_cost = vm;
    dep.storage_cost = store;
    dep.utility = tenant_utility(total, dep.total_cost());
    return dep;
}

WorkflowDeployment Deployer::deploy_workflow(const WorkflowEvaluator& evaluator,
                                             const WorkflowPlan& plan) const {
    const auto& wf = evaluator.workflow();
    CAST_EXPECTS(plan.decisions.size() == wf.size());

    // Capacity breakdown comes from the workflow evaluator (Eq. 10 +
    // conventions); reuse its provisioning by evaluating once.
    const WorkflowEvaluation modeled = evaluator.evaluate(plan);
    CAST_EXPECTS_MSG(modeled.feasible, "cannot deploy an infeasible workflow plan");

    WorkflowDeployment dep;
    dep.capacities = modeled.capacities;
    const sim::ClusterSim simulator = make_sim(evaluator.models(), dep.capacities);

    Seconds total{0.0};
    dep.job_results.resize(wf.size());
    for (std::size_t i : wf.topological_order()) {
        const StorageTier tier = plan.decisions[i].tier;
        sim::JobPlacement p = sim::JobPlacement::on_tier(wf.jobs()[i], tier);
        if (tier == StorageTier::kEphemeralSsd) {
            // Mid-workflow inputs arrive via cross-tier transfers below,
            // not via objStore staging; mid-workflow outputs are consumed
            // downstream, not archived.
            p.stage_in = wf.predecessors(i).empty();
            p.stage_out = wf.successors(i).empty();
        }
        dep.job_results[i] = simulator.run_job(p);
        total += dep.job_results[i].makespan;
    }
    dep.transfer_times.reserve(wf.edges().size());
    for (const auto& edge : wf.edges()) {
        const std::size_t u = wf.index_of(edge.from_job);
        const std::size_t v = wf.index_of(edge.to_job);
        const StorageTier su = plan.decisions[u].tier;
        const StorageTier sv = plan.decisions[v].tier;
        Seconds t{0.0};
        if (su != sv) t = simulator.run_transfer(wf.jobs()[u].output(), su, sv);
        dep.transfer_times.push_back(t);
        total += t;
    }
    dep.total_runtime = total;

    const auto& cluster = evaluator.models().cluster();
    dep.vm_cost = Dollars{cluster.price_per_minute().value() * total.minutes()};
    const double hours = std::ceil(total.minutes() / 60.0);
    double storage = 0.0;
    for (StorageTier t : cloud::kAllTiers) {
        const GigaBytes cap = dep.capacities.aggregate[tier_index(t)];
        if (cap.value() <= 0.0) continue;
        storage += cap.value() *
                   evaluator.models().catalog().service(t).price_per_gb_hour().value() * hours;
    }
    dep.storage_cost = Dollars{storage};
    dep.met_deadline = total <= wf.deadline();
    return dep;
}

}  // namespace cast::core
