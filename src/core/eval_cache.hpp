// Memoized REG runtime lookups for plan evaluation.
//
// The annealing inner loop evaluates one neighbor plan per iteration, and
// the dominant cost of an evaluation is the per-job REG estimate
// (model::PerfModelSet::job_runtime): spline lookups plus the staging-leg
// model. Provider-side provisioning quantizes per-VM capacities (whole
// 375 GB ephSSD volumes, whole-GB persistent volumes), so the search keeps
// revisiting a small set of (job, tier, capacity, legs) configurations —
// across iterations, across chains, and across the greedy initialization.
// EvalCache memoizes exactly that quadruple.
//
// Keying. Jobs are identified by the fields job_runtime actually reads
// (application class, input size, map/reduce task counts) rather than by
// workload index, so one cache is shared safely between evaluators over
// different workloads (e.g. GreedySolver's single-job evaluators and the
// full-workload annealing evaluator). The model set is NOT part of the key:
// a cache must only ever be used with one PerfModelSet (cluster, catalog
// and profiled splines). The capacity key is canonicalized to
// zero for objStore placements whose model scales with the conventional
// intermediate volume instead of provisioned capacity — objStore runtime
// is capacity-independent there, and the canonical key keeps hit rates
// high while objStore aggregates drift.
//
// Thread safety. The table is sharded by key hash; each shard has its own
// mutex, so concurrent annealing chains sharing one cache (the ThreadPool
// path) contend only on colliding shards. Each shard's map carries a
// CAST_GUARDED_BY contract, so the Clang thread-safety lane proves every
// map access holds its shard mutex. Values are deterministic
// functions of their key, so duplicated computation under a race is
// benign: both threads store the same bits.
//
// L1 front. Each thread additionally keeps a small lock-free direct-mapped
// array in front of the shared table: the annealing inner loop re-reads the
// same few hundred hot keys, and a thread-local probe (one index, one key
// compare) costs a fraction of a mutex acquisition. Entries are tagged with
// the owning cache and a globally unique generation, so a cleared or
// destroyed cache can never serve stale values — not even to a new cache
// constructed at the same address.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/annotations.hpp"

#include "cloud/storage.hpp"
#include "common/units.hpp"
#include "model/profiler.hpp"
#include "workload/job.hpp"

namespace cast::core {

struct EvalCacheStats {
    /// Total hits (L1 front + shared table); kept as a field so existing
    /// consumers read one number.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Hits served by the thread-local direct-mapped front (no lock).
    std::uint64_t l1_hits = 0;
    /// Hits served by the sharded shared table (one shard mutex).
    std::uint64_t shared_hits = 0;
    /// Entries stored into the shared table. Can exceed the table size
    /// when racing threads compute one key twice (benign: same bits).
    std::uint64_t inserts = 0;
    /// Times clear() re-generationed the cache (snapshot swaps, epoch
    /// invalidation) over this cache's lifetime. Survives clear() itself.
    std::uint64_t generation_bumps = 0;

    [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
    [[nodiscard]] double hit_rate() const {
        const std::uint64_t n = lookups();
        return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
    }
};

class EvalCache {
public:
    /// `shards` is rounded up to a power of two.
    explicit EvalCache(std::size_t shards = 16);

    EvalCache(const EvalCache&) = delete;
    EvalCache& operator=(const EvalCache&) = delete;

    /// Memoized model::PerfModelSet::job_runtime. On a miss the runtime is
    /// computed through `models` and stored; identical lookups (same job
    /// content, tier, provisioned per-VM capacity and staging legs) return
    /// the identical bits thereafter.
    [[nodiscard]] Seconds job_runtime(const model::PerfModelSet& models,
                                      const workload::JobSpec& job, cloud::StorageTier tier,
                                      GigaBytes per_vm_capacity, model::StagingLegs legs);

    [[nodiscard]] EvalCacheStats stats() const;

    /// Total number of memoized entries across all shards.
    [[nodiscard]] std::size_t size() const;

    void clear();

private:
    struct Key {
        std::uint64_t input_bits = 0;
        std::uint64_t capacity_bits = 0;
        std::int32_t app = 0;
        std::int32_t tier = 0;
        std::int32_t map_tasks = 0;
        std::int32_t reduce_tasks = 0;
        std::uint32_t legs = 0;

        friend bool operator==(const Key&, const Key&) = default;
    };

    struct KeyHash {
        [[nodiscard]] std::size_t operator()(const Key& k) const;
    };

    struct Shard {
        Mutex mutex;
        std::unordered_map<Key, double, KeyHash> map CAST_GUARDED_BY(mutex);
    };

    /// One slot of the thread-local direct-mapped L1. A slot is valid for
    /// this cache only when (owner, generation) both match; generations are
    /// drawn from a process-global counter, so no two logical cache
    /// lifetimes ever share one.
    struct L1Entry {
        const EvalCache* owner = nullptr;
        std::uint64_t generation = 0;
        Key key{};
        double value = 0.0;
    };

    std::unique_ptr<Shard[]> shards_;
    std::size_t shard_mask_;
    std::atomic<std::uint64_t> generation_;
    std::atomic<std::uint64_t> l1_hits_{0};
    std::atomic<std::uint64_t> shared_hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> inserts_{0};
    std::atomic<std::uint64_t> generation_bumps_{0};
};

}  // namespace cast::core
