// Struct-of-arrays evaluation core for the annealing hot loop.
//
// PlanEvaluator::evaluate_delta is already incremental, but every call
// still allocates: propose_neighbor copies the whole TieringPlan
// (~16·n bytes) and evaluate_delta copies the base's job_runtimes vector
// into a fresh PlanEvaluation. At ~1 µs per iteration those two
// alloc/copy pairs dominate the solver's cache behaviour.
//
// SoaEvaluator keeps ONE flat state per chain and mutates it in place:
//
//   tier[]      job -> tier index        (uint8, contiguous)
//   overprov[]  job -> k_i               (double, contiguous)
//   runtime[]   job -> REG seconds       (double, contiguous)
//
// plus plan-invariant per-job capacity terms (req, ephSSD backing,
// intermediate size) and precomputed staging legs, unwrapped from their
// unit types into raw double arrays. A candidate move writes an undo log
// instead of copying the plan, and reverting a rejected move replays the
// log — the steady-state iteration does zero heap allocation.
//
// Equivalence contract: evaluate_candidate performs EXACTLY the floating-
// point operations of PlanEvaluator::evaluate_impl's incremental branch,
// in the same order (index-order capacity accumulation, the objStore
// persSSD floor, provider provisioning rounding, bitwise per-VM
// reusability, index-order runtime summation, Eq. 5/6 via the shared
// eq5_eq6_costs). Golden tests assert exact double equality against the
// AoS evaluator along full annealing trajectories.
//
// An AoS mirror of the decisions is maintained alongside the flat arrays
// (one 16-byte write per decision change) so the shared lint checks and
// the plan exporters see std::vector<PlacementDecision> without a
// gather; TieringPlan stays the boundary type for Deployer/serve/lint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/plan.hpp"
#include "core/utility.hpp"

namespace cast::core {

class EvalCache;

/// Per-chain flat solver state operated on by SoaEvaluator. Owns the
/// committed plan + evaluation, the candidate scratch, the undo logs and
/// the best-so-far snapshot. Plain data; all invariants live in the
/// evaluator.
struct SoaState {
    // --- committed plan (SoA + AoS mirror, kept in sync by set_decision)
    std::vector<std::uint8_t> tier;
    std::vector<double> overprov;
    std::vector<PlacementDecision> mirror;

    // --- committed evaluation
    std::vector<double> runtime;
    CapacityBreakdown caps;
    double total_runtime = 0.0;
    double vm_cost = 0.0;
    double storage_cost = 0.0;
    double utility = 0.0;

    // --- candidate scratch (valid between evaluate_candidate and
    //     commit/revert; runtime[] itself is mutated under the undo log)
    CapacityBreakdown cand_caps;
    double cand_total = 0.0;
    double cand_vm = 0.0;
    double cand_storage = 0.0;
    double cand_utility = 0.0;

    // --- undo logs (capacity reserved once; never reallocate mid-chain)
    struct DecisionUndo {
        std::uint32_t job;
        std::uint8_t tier;
        double overprov;
    };
    struct RuntimeUndo {
        std::uint32_t job;
        double runtime;
    };
    std::vector<DecisionUndo> decision_undo;
    std::vector<RuntimeUndo> runtime_undo;

    // --- best-so-far snapshot (copied only on improvement)
    std::vector<PlacementDecision> best_mirror;
    std::vector<double> best_runtime;
    CapacityBreakdown best_caps;
    double best_total = 0.0;
    double best_vm = 0.0;
    double best_storage = 0.0;
    double best_utility = 0.0;
};

/// Allocation-free incremental evaluation over SoaState. Constructed once
/// per solve from the AoS evaluator (whose models/workload/options it
/// reads); const and thread-safe — replicas each own a SoaState and share
/// one SoaEvaluator.
class SoaEvaluator {
public:
    explicit SoaEvaluator(const PlanEvaluator& evaluator);

    [[nodiscard]] std::size_t size() const { return n_; }

    /// Seed `state` from an already-evaluated feasible plan. Reserves all
    /// vectors; nothing below allocates afterwards.
    void init(SoaState& state, const TieringPlan& plan, const PlanEvaluation& eval) const;

    /// Stage one decision change into the candidate (undo-logged).
    void set_decision(SoaState& state, std::size_t job, std::uint8_t tier_idx,
                      double overprov) const;

    /// Evaluate the staged candidate incrementally against the committed
    /// state; `changed` lists the jobs touched since the last
    /// commit/revert. Returns feasibility; on true the cand_* scalars and
    /// cand_caps hold the candidate's evaluation (runtime[] already holds
    /// its runtimes, under the undo log). On false the runtimes are
    /// untouched — only the decision log needs reverting.
    [[nodiscard]] bool evaluate_candidate(SoaState& state,
                                          std::span<const std::size_t> changed,
                                          EvalCache* cache) const;

    /// Accept the candidate: promote cand_* to committed, clear the logs.
    void commit(SoaState& state) const;

    /// Reject the candidate: replay both undo logs.
    void revert(SoaState& state) const;

    /// Snapshot the CANDIDATE as best. Call only right after a feasible
    /// evaluate_candidate (before commit/revert) — the annealing loop
    /// tracks the best neighbor even when the move is then rejected.
    void save_best(SoaState& state) const;

    /// Swap the COMMITTED states of two replicas (replica exchange).
    /// O(1) vector swaps; bests, logs and scratch stay put. Both logs
    /// must be empty (exchange happens at round barriers).
    static void swap_current(SoaState& a, SoaState& b);

    /// Export the best snapshot back to the AoS boundary types.
    [[nodiscard]] TieringPlan best_plan(const SoaState& state) const;
    [[nodiscard]] PlanEvaluation best_evaluation(const SoaState& state) const;

private:
    [[nodiscard]] double runtime_for(const SoaState& state, std::size_t job,
                                     const CapacityBreakdown& caps, EvalCache* cache) const;

    const PlanEvaluator* aos_;
    std::size_t n_ = 0;
    int nvm_ = 0;
    bool reuse_aware_ = false;
    bool has_tier_pins_ = false;
    bool objstore_capacity_sensitive_ = false;
    /// Plan-invariant per-job capacity terms as raw doubles (GB).
    std::vector<double> req_;
    std::vector<double> eph_backing_;
    std::vector<double> inter_;
    /// Staging legs per (job, tier), row-major by job — for_tier plus the
    /// reuse-aware download adjustment, precomputed.
    std::vector<model::StagingLegs> legs_;
};

}  // namespace cast::core
