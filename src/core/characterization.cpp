#include "core/characterization.hpp"

#include <cmath>

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;
}  // namespace

CapacityBreakdown characterization_capacities(const cloud::ClusterSpec& cluster,
                                              const cloud::StorageCatalog& catalog,
                                              const workload::JobSpec& job, StorageTier tier,
                                              const CharacterizationOptions& options) {
    job.validate();
    cluster.validate();
    const int nvm = cluster.worker_count;
    const double req_per_vm = job.capacity_requirement().value() / nvm;

    CapacityBreakdown caps;
    switch (tier) {
        case StorageTier::kEphemeralSsd: {
            caps.per_vm[tier_index(tier)] =
                catalog.service(tier).provision(GigaBytes{req_per_vm});
            // Backing store for input + output (ephSSD is not persistent).
            caps.per_vm[tier_index(StorageTier::kObjectStore)] =
                GigaBytes{(job.input + job.output()).value() / nvm};
            break;
        }
        case StorageTier::kPersistentSsd:
        case StorageTier::kPersistentHdd: {
            const double vol =
                std::max(options.block_volume_per_vm.value(), req_per_vm);
            caps.per_vm[tier_index(tier)] = catalog.service(tier).provision(GigaBytes{vol});
            break;
        }
        case StorageTier::kObjectStore: {
            caps.per_vm[tier_index(tier)] = GigaBytes{req_per_vm};
            caps.per_vm[tier_index(StorageTier::kPersistentSsd)] =
                catalog.service(StorageTier::kPersistentSsd)
                    .provision(
                        cloud::object_store_intermediate_volume(job.intermediate(), nvm));
            break;
        }
    }
    for (StorageTier t : cloud::kAllTiers) {
        caps.aggregate[tier_index(t)] = GigaBytes{caps.per_vm[tier_index(t)].value() * nvm};
    }
    return caps;
}

TierRunResult run_job_on_tier(const cloud::ClusterSpec& cluster,
                              const cloud::StorageCatalog& catalog,
                              const workload::JobSpec& job, StorageTier tier,
                              const CharacterizationOptions& options) {
    const CapacityBreakdown caps =
        characterization_capacities(cluster, catalog, job, tier, options);

    sim::TierCapacities tc;
    for (StorageTier t : cloud::kAllTiers) tc.set(t, caps.per_vm[tier_index(t)]);
    const sim::ClusterSim simulator(cluster, catalog, tc, options.sim);

    TierRunResult result;
    result.capacities = caps;
    result.sim = simulator.run_job(sim::JobPlacement::on_tier(job, tier));

    const Seconds t = result.sim.makespan;
    result.vm_cost = Dollars{cluster.price_per_minute().value() * t.minutes()};
    const double hours = std::max(std::ceil(t.minutes() / 60.0), 1.0);
    double storage = 0.0;
    for (StorageTier f : cloud::kAllTiers) {
        const GigaBytes cap = caps.aggregate[tier_index(f)];
        if (cap.value() <= 0.0) continue;
        storage += cap.value() * catalog.service(f).price_per_gb_hour().value() * hours;
    }
    result.storage_cost = Dollars{storage};
    result.utility = tenant_utility(t, result.total_cost());
    return result;
}

Seconds run_job_with_input_split(const cloud::ClusterSpec& cluster,
                                 const cloud::StorageCatalog& catalog,
                                 const workload::JobSpec& job,
                                 const std::vector<sim::InputSplit>& splits,
                                 const CharacterizationOptions& options) {
    CAST_EXPECTS(!splits.empty());
    sim::TierCapacities tc;
    // Attach every involved tier at the standard experiment volume.
    for (const auto& s : splits) {
        if (s.tier == StorageTier::kObjectStore) continue;
        const auto& svc = catalog.service(s.tier);
        const double req_per_vm =
            std::max(options.block_volume_per_vm.value(),
                     job.capacity_requirement().value() / cluster.worker_count);
        tc.set(s.tier, svc.provision(GigaBytes{
                           s.tier == StorageTier::kEphemeralSsd
                               ? job.capacity_requirement().value() / cluster.worker_count
                               : req_per_vm}));
    }
    sim::JobPlacement placement = sim::JobPlacement::on_tier(job, splits.front().tier);
    placement.stage_in = false;
    placement.stage_out = false;
    placement.input_splits = splits;
    if (placement.intermediate_tier == StorageTier::kObjectStore) {
        placement.intermediate_tier = StorageTier::kPersistentSsd;
    }
    // Ensure intermediate/output tiers are attached too.
    for (StorageTier t : {placement.intermediate_tier, placement.output_tier}) {
        if (t != StorageTier::kObjectStore && tc.of(t).value() <= 0.0) {
            tc.set(t, catalog.service(t).provision(options.block_volume_per_vm));
        }
    }
    const sim::ClusterSim simulator(cluster, catalog, tc, options.sim);
    return simulator.run_job(placement).makespan;
}

}  // namespace cast::core
