#include "core/plan.hpp"

#include <array>
#include <sstream>

namespace cast::core {

std::string TieringPlan::summarize() const {
    std::array<int, cloud::kTierCount> counts{};
    for (const auto& d : decisions_) counts[cloud::tier_index(d.tier)]++;
    std::ostringstream ss;
    bool first = true;
    for (cloud::StorageTier t : cloud::kAllTiers) {
        const int n = counts[cloud::tier_index(t)];
        if (n == 0) continue;
        if (!first) ss << ", ";
        first = false;
        ss << n << " jobs on " << cloud::tier_name(t);
    }
    if (first) ss << "(empty plan)";
    return ss.str();
}

}  // namespace cast::core
