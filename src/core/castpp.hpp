// CAST and CAST++ planner facades, workflow planning, and reuse scenarios.
//
// CAST (§4.2): greedy initial plan + simulated annealing on tenant utility.
// CAST++ (§4.3) adds:
//   * Enhancement 1 — data-reuse awareness: jobs sharing input are pinned
//     to one tier (Eq. 7, enforced structurally by group moves), shared
//     inputs are provisioned and downloaded once;
//   * Enhancement 2 — workflow awareness: per-workflow cost minimization
//     under a completion deadline (Eq. 8-10), with cross-tier transfer
//     times on DAG edges and DFS-order neighbor traversal.
// This header also provides the data-reuse scenario economics of §3.1.3
// (Fig. 3): utility of re-running a job n times over a reuse lifetime.
#pragma once

#include <optional>
#include <vector>

#include "core/annealing.hpp"
#include "core/greedy.hpp"
#include "core/plan.hpp"
#include "core/utility.hpp"
#include "workload/workflow.hpp"

namespace cast::core {

// ---------------------------------------------------------------------------
// Planner facades.
// ---------------------------------------------------------------------------

struct CastOptions {
    AnnealingOptions annealing;
    GreedyOptions greedy_init;
};

struct CastResult {
    TieringPlan plan;
    PlanEvaluation evaluation;
    TieringPlan greedy_initial;
    /// Pre-solve lint warnings (formatted findings); empty on a clean input.
    std::vector<std::string> lint_notes;
    /// Search-effort counters and memo-table statistics, carried up from
    /// the annealing stage so CLI/serve reports can show them without
    /// re-running anything.
    int iterations = 0;
    int best_chain = 0;
    EvalCacheStats cache_stats{};
    /// True when options.annealing.max_wall_ms (or a CancelToken) stopped
    /// the search early; the plan is best-so-far feasible, not converged.
    bool budget_exhausted = false;
    /// Replica-exchange statistics from the annealing stage (replicas == 0
    /// when the legacy independent-chain path ran). Greedy-only results
    /// always report replicas == 0.
    TemperingStats tempering{};
};

/// Basic CAST: reuse-oblivious utility maximization. When `cache` is
/// supplied the whole pipeline (greedy init + every annealing chain)
/// memoizes through it instead of a per-call table — the serve layer passes
/// its snapshot-scoped cache here so REG runtimes amortize across requests.
[[nodiscard]] CastResult plan_cast(const model::PerfModelSet& models,
                                   const workload::Workload& workload,
                                   const CastOptions& options = {},
                                   ThreadPool* pool = nullptr, EvalCache* cache = nullptr);

/// CAST++ (Enhancement 1): reuse-aware utility maximization.
[[nodiscard]] CastResult plan_cast_plus_plus(const model::PerfModelSet& models,
                                             const workload::Workload& workload,
                                             const CastOptions& options = {},
                                             ThreadPool* pool = nullptr,
                                             EvalCache* cache = nullptr);

/// Greedy-only placement: Algorithm 1 alone, with the same lint gate and
/// reuse-group projection as the full facades but no annealing stage — the
/// cheapest non-reject answer the serving layer's overload governor can
/// degrade to. Orders of magnitude cheaper than a full solve (one
/// single-job sweep instead of iter_max evaluations), deterministic, and
/// Fig. 7 quantifies exactly how much plan quality it gives up.
[[nodiscard]] CastResult plan_cast_greedy(const model::PerfModelSet& models,
                                          const workload::Workload& workload,
                                          const CastOptions& options = {},
                                          bool reuse_aware = false,
                                          EvalCache* cache = nullptr);

/// Algorithm 1 start plan over `evaluator`'s workload, projected onto the
/// Eq. 7 constraint set when reuse-aware (greedy ignores reuse groups, so
/// every group is aligned on its leader's tier; a pinned member dictates
/// the whole group's tier). This is the shared greedy substrate of every
/// facade above, exposed for the incremental re-planner
/// (core/incremental.hpp), which seeds arriving jobs with it and uses it
/// as the deterministic shadow cold reference its escalation rule
/// compares amendments against.
[[nodiscard]] TieringPlan greedy_projected_plan(const PlanEvaluator& evaluator,
                                                const GreedyOptions& options,
                                                bool reuse_aware,
                                                EvalCache* cache = nullptr);

// ---------------------------------------------------------------------------
// Workflow planning (Enhancement 2).
// ---------------------------------------------------------------------------

/// Decisions parallel to Workflow::jobs().
struct WorkflowPlan {
    std::vector<PlacementDecision> decisions;

    [[nodiscard]] static WorkflowPlan uniform(std::size_t job_count, cloud::StorageTier tier,
                                              double k = 1.0) {
        return WorkflowPlan{
            std::vector<PlacementDecision>(job_count, PlacementDecision{tier, k})};
    }
};

struct WorkflowEvaluation {
    bool feasible = false;
    std::string infeasibility;
    Seconds total_runtime{0.0};  // jobs + cross-tier transfers + staging
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    bool meets_deadline = false;
    CapacityBreakdown capacities;
    std::vector<Seconds> job_runtimes;     // per job, workflow order
    std::vector<Seconds> transfer_times;   // per edge, workflow edge order

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

class WorkflowEvaluator {
public:
    WorkflowEvaluator(const model::PerfModelSet& models, workload::Workflow workflow,
                      EvalOptions options = {});

    [[nodiscard]] const workload::Workflow& workflow() const { return workflow_; }
    [[nodiscard]] const model::PerfModelSet& models() const { return *models_; }

    /// Eq. 8-10 evaluation of a workflow plan: serial execution in
    /// topological order; a DAG edge whose endpoints sit on different tiers
    /// pays a cross-tier transfer of the producer's output; root jobs on
    /// ephSSD stage in from objStore, terminal jobs on ephSSD stage out.
    /// When a cache is supplied, per-job REG runtimes are memoized through
    /// it (bit-identical — REG is deterministic).
    [[nodiscard]] WorkflowEvaluation evaluate(const WorkflowPlan& plan,
                                              EvalCache* cache = nullptr) const;

    /// Eq. 10 capacity requirement of one workflow job under a plan.
    [[nodiscard]] GigaBytes job_requirement(const WorkflowPlan& plan,
                                            std::size_t job_idx) const;

    /// Modeled time to move `volume` from tier `from` to tier `to` given
    /// per-VM capacities.
    [[nodiscard]] Seconds transfer_time(GigaBytes volume, cloud::StorageTier from,
                                        GigaBytes from_per_vm, cloud::StorageTier to,
                                        GigaBytes to_per_vm) const;

private:
    const model::PerfModelSet* models_;
    workload::Workflow workflow_;
    EvalOptions options_;
};

struct WorkflowSolveResult {
    WorkflowPlan plan;
    WorkflowEvaluation evaluation;
    /// From solve(): aggregated across ALL chains (a run_chain() result
    /// covers that one chain only).
    int iterations = 0;
    /// Index of the winning chain (solve() only; -1 when the uniform-plan
    /// fallback beat every chain, 0 for a single chain).
    int best_chain = 0;
    /// Memo-table statistics (zero when caching is disabled).
    EvalCacheStats cache_stats{};
    /// Pre-solve lint warnings, including a demoted L009 when the deadline
    /// is below the certified runtime lower bound (the solve is then
    /// best-effort by construction).
    std::vector<std::string> lint_notes;
    /// True when the wall budget or a cancellation stopped the search
    /// early (best-so-far result; OR across chains from solve()).
    bool budget_exhausted = false;
    /// Replica-exchange statistics (replicas == 0 on the legacy path,
    /// from run_chain(), and from solve_greedy()).
    TemperingStats tempering{};
};

/// CAST++ deadline mode: minimize $total subject to the workflow deadline
/// (Eq. 8-9), annealing over tiers/factors with DFS-order traversal.
class WorkflowSolver {
public:
    /// `deadline_safety` shrinks the deadline the *search* targets (Eq. 9
    /// evaluated against safety x deadline): the model under-predicts real
    /// runtimes by a few percent (Fig. 8), so plans that model exactly at
    /// the deadline would miss it when deployed.
    WorkflowSolver(const WorkflowEvaluator& evaluator, AnnealingOptions options = {},
                   double deadline_safety = 1.0);

    /// All chains share one evaluation cache: `cache` when supplied,
    /// otherwise an internally created one (unless options disable caching).
    [[nodiscard]] WorkflowSolveResult solve(ThreadPool* pool = nullptr,
                                            EvalCache* cache = nullptr) const;
    /// Greedy-only workflow answer: the best uniform plan over tiers x
    /// factors (the multi-start anchor), evaluated but never annealed.
    /// Runs the same lint gate as solve(); iterations = 0, best_chain = -1.
    /// The overload governor degrades to this when a full workflow solve
    /// cannot be afforded.
    [[nodiscard]] WorkflowSolveResult solve_greedy(EvalCache* cache = nullptr) const;
    [[nodiscard]] WorkflowSolveResult run_chain(std::uint64_t seed,
                                                EvalCache* cache = nullptr) const;
    /// Chain under an explicit shared deadline (solve() passes its own so
    /// all chains answer to one wall clock).
    [[nodiscard]] WorkflowSolveResult run_chain(std::uint64_t seed, EvalCache* cache,
                                                const SolveDeadline& deadline) const;

private:
    /// Score to maximize: -cost when the deadline holds, else heavily
    /// penalized by the overtime so the search is pulled toward
    /// feasibility first.
    [[nodiscard]] double score(const WorkflowEvaluation& eval) const;

    /// Best-scoring uniform plan over tiers x over-provision factors (the
    /// multi-start anchor and result floor).
    [[nodiscard]] WorkflowPlan best_uniform_plan(EvalCache* cache = nullptr) const;

    /// Per-chain/replica search state; defined in the .cpp.
    struct WfChainCtx;
    /// Seed `ctx` from the legacy multi-start formula for `start_seed`
    /// (uniform-sweep anchor for seeds divisible by 3, rotated uniform
    /// plans otherwise, persSSD retreat when infeasible).
    void init_wf_chain(WfChainCtx& ctx, std::uint64_t start_seed, EvalCache* cache) const;
    /// Run iterations [iter_begin, iter_end) of one chain (the legacy
    /// loop body verbatim; the DFS cursor and temperature live in ctx and
    /// carry across segments).
    void run_wf_span(WfChainCtx& ctx, Rng& rng, int iter_begin, int iter_end,
                     const std::vector<std::size_t>& dfs, EvalCache* cache,
                     const SolveDeadline& deadline) const;
    [[nodiscard]] WorkflowSolveResult solve_tempering(ThreadPool* pool, EvalCache* cache,
                                                      const SolveDeadline& deadline) const;

    const WorkflowEvaluator* evaluator_;
    AnnealingOptions options_;
    double deadline_safety_;
};

// ---------------------------------------------------------------------------
// Data-reuse scenario economics (§3.1.3, Fig. 3).
// ---------------------------------------------------------------------------

struct ReuseScenarioResult {
    Seconds first_run{0.0};
    Seconds repeat_run{0.0};
    Seconds total_runtime{0.0};
    Dollars vm_cost{0.0};
    Dollars storage_cost{0.0};
    double utility = 0.0;  // (1 / per-access runtime in minutes) / total cost

    [[nodiscard]] Dollars total_cost() const { return vm_cost + storage_cost; }
};

/// Economics of accessing `job`'s dataset `pattern.accesses` times over
/// `pattern.lifetime` with the data resident on `tier`. Persistent tiers
/// hold the dataset (and keep billing) for the whole lifetime; ephSSD must
/// keep the *VMs* alive for the whole lifetime to retain data (the paper's
/// key cost caveat, §3.2), but amortizes the objStore download across
/// accesses.
[[nodiscard]] ReuseScenarioResult evaluate_reuse_scenario(const model::PerfModelSet& models,
                                                          const workload::JobSpec& job,
                                                          cloud::StorageTier tier,
                                                          const workload::ReusePattern& pattern);

}  // namespace cast::core
