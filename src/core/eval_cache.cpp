#include "core/eval_cache.hpp"

#include <array>
#include <bit>

namespace cast::core {

namespace {

[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
    // SplitMix64 finalizer: cheap, well-distributed bit mixing.
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Source of globally unique cache generations; see L1Entry.
std::atomic<std::uint64_t> g_generation{0};

}  // namespace

EvalCache::EvalCache(std::size_t shards)
    : shards_(std::make_unique<Shard[]>(round_up_pow2(std::max<std::size_t>(1, shards)))),
      shard_mask_(round_up_pow2(std::max<std::size_t>(1, shards)) - 1),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

std::size_t EvalCache::KeyHash::operator()(const Key& k) const {
    std::uint64_t h = mix64(k.input_bits ^ 0x9e3779b97f4a7c15ULL);
    h = mix64(h ^ k.capacity_bits);
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.app)) |
                   (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tier)) << 8) |
                   (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.legs)) << 16)));
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.map_tasks)) |
                   (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.reduce_tasks))
                    << 32)));
    return static_cast<std::size_t>(h);
}

Seconds EvalCache::job_runtime(const model::PerfModelSet& models,
                               const workload::JobSpec& job, cloud::StorageTier tier,
                               GigaBytes per_vm_capacity, model::StagingLegs legs) {
    // Canonical capacity key: an objStore placement whose model scales with
    // the conventional intermediate volume never reads the provisioned
    // capacity (neither processing nor staging), so all capacities map to
    // one entry.
    double capacity = per_vm_capacity.value();
    if (tier == cloud::StorageTier::kObjectStore && models.has_tier_model(job.app, tier) &&
        models.tier_model(job.app, tier).scales_with_intermediate_volume) {
        capacity = 0.0;
    }
    const Key key{
        .input_bits = std::bit_cast<std::uint64_t>(job.input.value()),
        .capacity_bits = std::bit_cast<std::uint64_t>(capacity),
        .app = static_cast<std::int32_t>(workload::app_index(job.app)),
        .tier = static_cast<std::int32_t>(cloud::tier_index(tier)),
        .map_tasks = job.map_tasks,
        .reduce_tasks = job.reduce_tasks,
        .legs = static_cast<std::uint32_t>(legs.download_input ? 1 : 0) |
                static_cast<std::uint32_t>(legs.upload_output ? 2 : 0),
    };
    const std::size_t h = KeyHash{}(key);

    // Thread-local L1 probe: no lock, no atomic write beyond the stats
    // counter. Valid only when the slot was filled by this cache in its
    // current generation.
    constexpr std::size_t kL1Slots = 2048;  // power of two, ~128 KB/thread
    static thread_local std::array<L1Entry, kL1Slots> l1{};
    const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
    L1Entry& slot = l1[h & (kL1Slots - 1)];
    if (slot.owner == this && slot.generation == gen && slot.key == key) {
        l1_hits_.fetch_add(1, std::memory_order_relaxed);
        return Seconds{slot.value};
    }

    Shard& shard = shards_[h & shard_mask_];
    {
        LockGuard lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shared_hits_.fetch_add(1, std::memory_order_relaxed);
            slot = L1Entry{this, gen, key, it->second};
            return Seconds{it->second};
        }
    }
    // Compute outside the lock: the value is a pure function of the key, so
    // a concurrent duplicate computation stores the same bits.
    const Seconds t = models.job_runtime(job, tier, per_vm_capacity, legs);
    misses_.fetch_add(1, std::memory_order_relaxed);
    {
        LockGuard lock(shard.mutex);
        shard.map.emplace(key, t.value());
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    slot = L1Entry{this, gen, key, t.value()};
    return t;
}

EvalCacheStats EvalCache::stats() const {
    EvalCacheStats s;
    s.l1_hits = l1_hits_.load(std::memory_order_relaxed);
    s.shared_hits = shared_hits_.load(std::memory_order_relaxed);
    s.hits = s.l1_hits + s.shared_hits;
    s.misses = misses_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.generation_bumps = generation_bumps_.load(std::memory_order_relaxed);
    return s;
}

std::size_t EvalCache::size() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
        Shard& shard = shards_[s];
        LockGuard lock(shard.mutex);
        n += shard.map.size();
    }
    return n;
}

void EvalCache::clear() {
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
        Shard& shard = shards_[s];
        LockGuard lock(shard.mutex);
        shard.map.clear();
    }
    // A fresh generation invalidates every thread's L1 slots at once.
    generation_.store(g_generation.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    l1_hits_.store(0, std::memory_order_relaxed);
    shared_hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    inserts_.store(0, std::memory_order_relaxed);
    // The bump counter deliberately survives the reset: it records how many
    // times this cache's generation changed (the serve layer's epoch
    // invalidations), which is exactly the history clear() would erase.
    generation_bumps_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cast::core
