#include "core/greedy.hpp"

#include "lint/analyzer.hpp"

namespace cast::core {

double GreedySolver::single_job_utility(const workload::JobSpec& job, cloud::StorageTier tier,
                                        double k, EvalCache* cache) const {
    // Algorithm 1 computes Utility(j, f) from Eq. 1 and Eq. 2 for the job
    // in isolation: a one-job workload evaluated under the same model.
    workload::JobSpec solo = job;
    solo.reuse_group = std::nullopt;  // isolation: reuse is invisible to greedy
    PlanEvaluator solo_eval(evaluator_->models(), workload::Workload({solo}),
                            evaluator_->options());
    TieringPlan plan(std::vector<PlacementDecision>{PlacementDecision{tier, k}});
    const PlanEvaluation eval = solo_eval.evaluate(plan, cache);
    return eval.feasible ? eval.utility : 0.0;
}

TieringPlan GreedySolver::solve(const GreedyOptions& options, EvalCache* cache) const {
    CAST_EXPECTS(!options.overprov_choices.empty());
    // Pre-solve lint: same rejection the annealing solver applies, so a bad
    // workload fails identically whichever solver sees it first.
    lint::LintContext lint_ctx;
    lint_ctx.models = &evaluator_->models();
    lint_ctx.reuse_aware = evaluator_->options().reuse_aware;
    lint::enforce(lint::lint_workload(evaluator_->workload(), lint_ctx));

    const auto& jobs = evaluator_->workload().jobs();
    std::vector<PlacementDecision> decisions;
    decisions.reserve(jobs.size());
    for (const auto& job : jobs) {
        PlacementDecision best{cloud::kAllTiers.front(), 1.0};
        double best_utility = -1.0;
        for (cloud::StorageTier tier : cloud::kAllTiers) {
            if (options.over_provision) {
                for (double k : options.overprov_choices) {
                    const double u = single_job_utility(job, tier, k, cache);
                    if (u > best_utility) {
                        best_utility = u;
                        best = PlacementDecision{tier, k};
                    }
                }
            } else {
                const double u = single_job_utility(job, tier, 1.0, cache);
                if (u > best_utility) {
                    best_utility = u;
                    best = PlacementDecision{tier, 1.0};
                }
            }
        }
        decisions.push_back(best);
    }
    return TieringPlan(std::move(decisions));
}

}  // namespace cast::core
