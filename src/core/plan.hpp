// Tiering plans: the solver's decision variables (paper Table 3: sᵢ, cᵢ).
//
// A TieringPlan assigns every job of a workload a storage service sᵢ and a
// provisioned capacity cᵢ, expressed as an over-provisioning factor kᵢ >= 1
// applied to the job's Eq. 3 requirement (kᵢ > 1 deliberately buys more
// capacity than the data needs, because block-tier bandwidth scales with
// provisioned capacity — the paper's "careful over-provisioning" insight,
// §3.1.2).
#pragma once

#include <string>
#include <vector>

#include "cloud/storage.hpp"
#include "common/error.hpp"
#include "workload/job.hpp"

namespace cast::core {

/// Decision for one job.
struct PlacementDecision {
    cloud::StorageTier tier = cloud::StorageTier::kPersistentSsd;
    double overprovision = 1.0;  // kᵢ: cᵢ = kᵢ × requirementᵢ

    void validate() const {
        CAST_EXPECTS_MSG(overprovision >= 1.0,
                         "over-provisioning factor below 1 violates Eq. 3");
    }
};

class TieringPlan {
public:
    TieringPlan() = default;
    explicit TieringPlan(std::vector<PlacementDecision> decisions)
        : decisions_(std::move(decisions)) {
        for (const auto& d : decisions_) d.validate();
    }

    /// A uniform plan: every job on `tier` with exact-fit capacity. This is
    /// how the non-tiered baseline configurations ("persSSD 100%", ...) are
    /// expressed.
    [[nodiscard]] static TieringPlan uniform(std::size_t job_count, cloud::StorageTier tier,
                                             double overprovision = 1.0) {
        return TieringPlan(std::vector<PlacementDecision>(
            job_count, PlacementDecision{tier, overprovision}));
    }

    [[nodiscard]] std::size_t size() const { return decisions_.size(); }
    [[nodiscard]] bool empty() const { return decisions_.empty(); }

    [[nodiscard]] const PlacementDecision& decision(std::size_t job_idx) const {
        CAST_EXPECTS(job_idx < decisions_.size());
        return decisions_[job_idx];
    }

    void set_decision(std::size_t job_idx, PlacementDecision d) {
        CAST_EXPECTS(job_idx < decisions_.size());
        d.validate();
        decisions_[job_idx] = d;
    }

    [[nodiscard]] const std::vector<PlacementDecision>& decisions() const { return decisions_; }

    /// Eq. 7 check: all members of every reuse group share one tier.
    [[nodiscard]] bool respects_reuse_groups(const workload::Workload& workload) const {
        CAST_EXPECTS(workload.size() == decisions_.size());
        for (const auto& [group, members] : workload.reuse_groups()) {
            for (std::size_t i = 1; i < members.size(); ++i) {
                if (decisions_[members[i]].tier != decisions_[members[0]].tier) return false;
            }
        }
        return true;
    }

    /// Human-readable one-line summary ("33% ephSSD, 31% persSSD, ...").
    [[nodiscard]] std::string summarize() const;

private:
    std::vector<PlacementDecision> decisions_;
};

}  // namespace cast::core
