#include "core/report.hpp"

#include <cmath>
#include <ostream>

#include "common/table.hpp"

namespace cast::core {

namespace {
using cloud::StorageTier;
using cloud::tier_index;

/// Shared fault section for workload/workflow deployments: silent when the
/// deployment saw no faults, so fault-free reports are unchanged.
void write_fault_section(int retry_count, const std::vector<std::size_t>& degraded_jobs,
                         const std::vector<std::string>& fault_log, std::ostream& os) {
    if (retry_count == 0 && degraded_jobs.empty() && fault_log.empty()) return;
    os << "\nfault handling: " << retry_count << " job re-execution(s), "
       << degraded_jobs.size() << " job(s) degraded to the backing store\n";
    for (const auto& line : fault_log) os << "  - " << line << "\n";
}

/// Shared lint-note section: silent when pre-solve/pre-deploy lint found
/// nothing, so clean reports are unchanged.
void write_lint_section(const std::vector<std::string>& notes, std::ostream& os) {
    if (notes.empty()) return;
    os << "\nlint notes:\n";
    for (const auto& line : notes) os << "  - " << line << "\n";
}
}  // namespace

void write_capacity_bill(const CapacityBreakdown& caps, Seconds runtime,
                         const cloud::StorageCatalog& catalog, std::ostream& os) {
    const double hours = std::max(std::ceil(runtime.minutes() / 60.0), 1.0);
    TextTable t({"tier", "aggregate (GB)", "per VM (GB)", "$/GB/hr", "billed hours",
                 "cost ($)"});
    double total = 0.0;
    for (StorageTier tier : cloud::kAllTiers) {
        const double agg = caps.aggregate_of(tier).value();
        if (agg <= 0.0) continue;
        const double rate = catalog.service(tier).price_per_gb_hour().value();
        const double cost = agg * rate * hours;
        total += cost;
        t.add_row({std::string(cloud::tier_name(tier)), fmt(agg, 0),
                   fmt(caps.per_vm_of(tier).value(), 0), fmt(rate, 6), fmt(hours, 0),
                   fmt(cost, 2)});
    }
    t.add_row({"total", fmt(caps.total().value(), 0), "", "", "", fmt(total, 2)});
    t.print(os);
}

void write_plan_report(const PlanEvaluator& evaluator, const TieringPlan& plan,
                       const PlanEvaluation& evaluation, std::ostream& os,
                       const std::vector<std::string>& lint_notes) {
    const auto& workload = evaluator.workload();
    CAST_EXPECTS(plan.size() == workload.size());
    os << "tiering plan: " << plan.summarize() << "\n\n";
    TextTable t({"job", "app", "input (GB)", "tier", "k", "modeled runtime (min)"});
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const auto& job = workload.job(i);
        const auto& d = plan.decision(i);
        t.add_row({job.name, std::string(workload::app_name(job.app)),
                   fmt(job.input.value(), 1), std::string(cloud::tier_name(d.tier)),
                   fmt(d.overprovision, 2),
                   evaluation.feasible && i < evaluation.job_runtimes.size()
                       ? fmt(evaluation.job_runtimes[i].minutes(), 1)
                       : "-"});
    }
    t.print(os);
    if (!evaluation.feasible) {
        os << "\nINFEASIBLE: " << evaluation.infeasibility << "\n";
        write_lint_section(lint_notes, os);
        return;
    }
    os << "\nmodeled: runtime " << fmt(evaluation.total_runtime.minutes(), 1)
       << " min | VM $" << fmt(evaluation.vm_cost.value(), 2) << " + storage $"
       << fmt(evaluation.storage_cost.value(), 2) << " = $"
       << fmt(evaluation.total_cost().value(), 2) << " | tenant utility "
       << evaluation.utility << "\n\nprovisioning bill:\n";
    write_capacity_bill(evaluation.capacities, evaluation.total_runtime,
                        evaluator.models().catalog(), os);
    write_lint_section(lint_notes, os);
}

void write_deployment_report(const PlanEvaluator& evaluator, const TieringPlan& plan,
                             const PlanEvaluation& modeled,
                             const WorkloadDeployment& measured, std::ostream& os) {
    const auto& workload = evaluator.workload();
    CAST_EXPECTS(plan.size() == workload.size());
    CAST_EXPECTS(measured.job_results.size() == workload.size());
    os << "deployment report: " << plan.summarize() << "\n\n";
    TextTable t({"job", "tier", "stage-in (s)", "processing (s)", "stage-out (s)",
                 "measured (min)", "modeled (min)", "delta"});
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const auto& r = measured.job_results[i];
        const double measured_min = r.makespan.minutes();
        const double modeled_min = modeled.feasible && i < modeled.job_runtimes.size()
                                       ? modeled.job_runtimes[i].minutes()
                                       : 0.0;
        const double delta =
            measured_min > 0.0 ? (modeled_min - measured_min) / measured_min : 0.0;
        t.add_row({workload.job(i).name,
                   std::string(cloud::tier_name(plan.decision(i).tier)),
                   fmt(r.phases.stage_in.value(), 0), fmt(r.phases.processing().value(), 0),
                   fmt(r.phases.stage_out.value(), 0), fmt(measured_min, 1),
                   fmt(modeled_min, 1), fmt_pct(delta, 1)});
    }
    t.print(os);
    os << "\nmeasured: runtime " << fmt(measured.total_runtime.minutes(), 1) << " min | $"
       << fmt(measured.total_cost().value(), 2) << " | utility " << measured.utility;
    if (modeled.feasible) {
        os << "   (modeled: " << fmt(modeled.total_runtime.minutes(), 1) << " min, $"
           << fmt(modeled.total_cost().value(), 2) << ", utility " << modeled.utility << ")";
    }
    os << "\n\nprovisioning bill (billed on measured runtime):\n";
    write_capacity_bill(measured.capacities, measured.total_runtime,
                        evaluator.models().catalog(), os);
    write_fault_section(measured.retry_count, measured.degraded_jobs, measured.fault_log,
                        os);
    write_lint_section(measured.lint_warnings, os);
}

void write_workflow_report(const WorkflowEvaluator& evaluator, const WorkflowPlan& plan,
                           const WorkflowDeployment& measured, std::ostream& os) {
    const auto& wf = evaluator.workflow();
    CAST_EXPECTS(plan.decisions.size() == wf.size());
    os << "workflow '" << wf.name() << "', deadline " << fmt(wf.deadline().minutes(), 1)
       << " min — " << (measured.met_deadline ? "MET" : "MISSED") << " at "
       << fmt(measured.total_runtime.minutes(), 1) << " min, $"
       << fmt(measured.total_cost().value(), 2) << "\n\n";
    TextTable jobs({"job", "tier", "k", "measured (min)"});
    for (std::size_t i : wf.topological_order()) {
        jobs.add_row({wf.jobs()[i].name,
                      std::string(cloud::tier_name(plan.decisions[i].tier)),
                      fmt(plan.decisions[i].overprovision, 2),
                      fmt(measured.job_results[i].makespan.minutes(), 1)});
    }
    jobs.print(os);
    bool any_transfer = false;
    for (const auto& tt : measured.transfer_times) any_transfer |= tt.value() > 0.0;
    if (any_transfer) {
        os << "\ncross-tier transfers:\n";
        TextTable edges({"edge", "volume (GB)", "time (s)"});
        for (std::size_t k = 0; k < wf.edges().size(); ++k) {
            if (measured.transfer_times[k].value() <= 0.0) continue;
            const auto& e = wf.edges()[k];
            edges.add_row({wf.jobs()[wf.index_of(e.from_job)].name + " -> " +
                               wf.jobs()[wf.index_of(e.to_job)].name,
                           fmt(wf.jobs()[wf.index_of(e.from_job)].output().value(), 1),
                           fmt(measured.transfer_times[k].value(), 0)});
        }
        edges.print(os);
    }
    write_fault_section(measured.retry_count, measured.degraded_jobs, measured.fault_log,
                        os);
    write_lint_section(measured.lint_warnings, os);
}

}  // namespace cast::core
