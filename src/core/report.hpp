// Deployment reports: human-readable summaries of a planned or deployed
// workload, for operators and CI logs.
//
// Turns a (plan, evaluation/deployment) pair into the artifacts a tenant
// reviews before committing money: the per-job placement and runtime
// table, the per-tier provisioning bill, and the modeled-vs-measured
// comparison when both are available.
#pragma once

#include <iosfwd>

#include "core/castpp.hpp"
#include "core/deployer.hpp"

namespace cast::core {

/// Per-tier provisioning + cost bill for a capacity breakdown over a given
/// runtime (hourly storage billing, Eq. 6).
void write_capacity_bill(const CapacityBreakdown& caps, Seconds runtime,
                         const cloud::StorageCatalog& catalog, std::ostream& os);

/// Full plan report: placement table, modeled runtime/cost/utility, bill.
/// `lint_notes` (e.g. CastResult::lint_notes) are rendered as a trailing
/// section when non-empty.
void write_plan_report(const PlanEvaluator& evaluator, const TieringPlan& plan,
                       const PlanEvaluation& evaluation, std::ostream& os,
                       const std::vector<std::string>& lint_notes = {});

/// Deployment report: adds measured per-job phase times and the
/// modeled-vs-measured deltas.
void write_deployment_report(const PlanEvaluator& evaluator, const TieringPlan& plan,
                             const PlanEvaluation& modeled,
                             const WorkloadDeployment& measured, std::ostream& os);

/// Workflow report: per-job placements, per-edge transfers, deadline verdict.
void write_workflow_report(const WorkflowEvaluator& evaluator, const WorkflowPlan& plan,
                           const WorkflowDeployment& measured, std::ostream& os);

}  // namespace cast::core
