// Cluster planning: joint compute + storage provisioning.
//
// The paper fixes one VM flavour and plans only storage ("extending the
// model to incorporate heterogeneous VM types is part of our future work",
// §4.2.1 fn. 3). This module implements that extension: given a set of
// candidate cluster shapes (machine type x worker count), it profiles each
// candidate, runs the CAST solver on it, and ranks the candidates by the
// same tenant-utility objective — exposing the compute-side trade-off the
// utility metric already encodes (more/faster VMs shrink T but grow $vm).
#pragma once

#include <string>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "common/thread_pool.hpp"
#include "core/castpp.hpp"
#include "model/profiler.hpp"

namespace cast::core {

/// One candidate cluster shape.
struct ClusterCandidate {
    std::string label;
    cloud::ClusterSpec cluster;
};

/// Outcome of planning the workload on one candidate.
struct ClusterPlanOutcome {
    ClusterCandidate candidate;
    TieringPlan plan;
    PlanEvaluation evaluation;  // modeled under that candidate's models

    [[nodiscard]] double utility() const { return evaluation.utility; }
};

struct ClusterPlannerOptions {
    model::ProfilerOptions profiler;
    CastOptions cast;
    /// Use CAST++ (reuse-aware) instead of basic CAST per candidate.
    bool reuse_aware = false;
};

class ClusterPlanner {
public:
    ClusterPlanner(cloud::StorageCatalog catalog, std::vector<ClusterCandidate> candidates,
                   ClusterPlannerOptions options = {});

    /// Profile + plan the workload on every candidate; results are returned
    /// sorted by descending utility (best first). Candidates for which no
    /// feasible plan exists are reported with evaluation.feasible == false
    /// at the end of the list.
    [[nodiscard]] std::vector<ClusterPlanOutcome> evaluate(
        const workload::Workload& workload, ThreadPool* pool = nullptr) const;

    /// A sensible default candidate set around the paper's testbed: the
    /// n1-standard-16 flavour at several cluster sizes plus an
    /// n1-standard-8-style flavour at double the node count (equal total
    /// cores, different slot/volume geometry).
    [[nodiscard]] static std::vector<ClusterCandidate> default_candidates();

private:
    cloud::StorageCatalog catalog_;
    std::vector<ClusterCandidate> candidates_;
    ClusterPlannerOptions options_;
};

}  // namespace cast::core
