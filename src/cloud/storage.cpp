#include "cloud/storage.hpp"

#include <cmath>

#include "common/spline.hpp"

namespace cast::cloud {

std::string_view tier_name(StorageTier t) {
    switch (t) {
        case StorageTier::kEphemeralSsd: return "ephSSD";
        case StorageTier::kPersistentSsd: return "persSSD";
        case StorageTier::kPersistentHdd: return "persHDD";
        case StorageTier::kObjectStore: return "objStore";
    }
    CAST_ENSURES_MSG(false, "unreachable: bad StorageTier");
}

std::optional<StorageTier> tier_from_name(std::string_view name) {
    for (StorageTier t : kAllTiers) {
        if (tier_name(t) == name) return t;
    }
    return std::nullopt;
}

namespace {

using literals::operator""_GB;

/// VM-local ephemeral SSD: fixed-size volumes, bounded count per VM, not
/// persistent.
class EphemeralSsdService final : public StorageService {
public:
    struct Params {
        std::string description;
        Dollars price_per_gb_month;
        double volume_gb;
        int max_volumes;
        double volume_mbps;
        double volume_iops;
    };

    explicit EphemeralSsdService(Params p)
        : StorageService(StorageTier::kEphemeralSsd, p.description,
                         /*persistent=*/false, p.price_per_gb_month),
          params_(std::move(p)) {
        CAST_EXPECTS(params_.volume_gb > 0.0);
        CAST_EXPECTS(params_.max_volumes >= 1);
        CAST_EXPECTS(params_.volume_mbps > 0.0);
    }

    [[nodiscard]] GigaBytes provision(GigaBytes requested) const override {
        CAST_EXPECTS(requested.value() >= 0.0);
        const int volumes =
            std::max(1, static_cast<int>(std::ceil(requested.value() / params_.volume_gb)));
        if (volumes > params_.max_volumes) {
            throw ValidationError("ephSSD: requested " + std::to_string(requested.value()) +
                                  " GB/VM exceeds " + std::to_string(params_.max_volumes) +
                                  " x " + std::to_string(params_.volume_gb) +
                                  " GB volumes");
        }
        return GigaBytes{volumes * params_.volume_gb};
    }

    [[nodiscard]] std::optional<GigaBytes> max_capacity_per_vm() const override {
        return GigaBytes{params_.max_volumes * params_.volume_gb};
    }

    [[nodiscard]] TierPerformance performance(GigaBytes provisioned) const override {
        const int volumes = std::clamp(
            static_cast<int>(std::llround(provisioned.value() / params_.volume_gb)), 1,
            params_.max_volumes);
        return TierPerformance{
            .read_bw = MBytesPerSec{params_.volume_mbps * volumes},
            .write_bw = MBytesPerSec{params_.volume_mbps * volumes},
            .iops = Iops{params_.volume_iops * volumes},
        };
    }

private:
    Params params_;
};

/// Network-attached persistent block storage (SSD or HDD flavour). The
/// throughput/IOPS samples come straight from Table 1; between and beyond
/// those points Google scales performance linearly with capacity until a
/// per-VM ceiling imposed by the VM's network egress allocation (the
/// documented 2015-era ceilings were ~400 MB/s for persSSD and ~180 MB/s
/// for persHDD on 16-vCPU machines; Fig. 2's flattening past ~200 GB/VM
/// reflects the framework, not these ceilings).
class PersistentBlockService final : public StorageService {
public:
    struct Params {
        StorageTier tier;
        std::string description;
        Dollars price_per_gb_month;
        // Table 1 sample points: capacity (GB) -> (MB/s, IOPS).
        std::array<double, 3> cap_gb;
        std::array<double, 3> mbps;
        std::array<double, 3> iops;
        double bw_ceiling_mbps;
        double iops_ceiling;
        double max_volume_gb;
    };

    explicit PersistentBlockService(Params p)
        : StorageService(p.tier, std::move(p.description), /*persistent=*/true,
                         p.price_per_gb_month),
          params_(p) {
        // Extend the Table 1 samples with the origin and the linear
        // continuation up to the per-VM ceiling, then interpolate with the
        // same monotone spline family the paper uses for REG.
        const double slope = p.mbps[2] / p.cap_gb[2];
        const double ceiling_cap = p.bw_ceiling_mbps / slope;
        const std::array<double, 5> xs = {0.0, p.cap_gb[0], p.cap_gb[1], p.cap_gb[2],
                                          ceiling_cap};
        const std::array<double, 5> bw_ys = {0.0, p.mbps[0], p.mbps[1], p.mbps[2],
                                             p.bw_ceiling_mbps};
        const double iops_slope = p.iops[2] / p.cap_gb[2];
        const std::array<double, 5> iops_ys = {0.0, p.iops[0], p.iops[1], p.iops[2],
                                               iops_slope * ceiling_cap};
        bw_curve_ = CubicHermiteSpline(xs, bw_ys);
        iops_curve_ = CubicHermiteSpline(xs, iops_ys);
    }

    [[nodiscard]] GigaBytes provision(GigaBytes requested) const override {
        CAST_EXPECTS(requested.value() >= 0.0);
        // Volumes are provisioned in whole GB with a 10 GB provider minimum.
        const double gb = std::max(10.0, std::ceil(requested.value()));
        if (gb > params_.max_volume_gb) {
            throw ValidationError(std::string(tier_name(tier())) + ": requested " +
                                  std::to_string(requested.value()) +
                                  " GB/VM exceeds the 10,240 GB volume limit");
        }
        return GigaBytes{gb};
    }

    [[nodiscard]] std::optional<GigaBytes> max_capacity_per_vm() const override {
        return GigaBytes{params_.max_volume_gb};
    }

    [[nodiscard]] TierPerformance performance(GigaBytes provisioned) const override {
        const double c = provisioned.value();
        const double bw = std::min(bw_curve_(c), params_.bw_ceiling_mbps);
        const double io = std::min(iops_curve_(c), params_.iops_ceiling);
        return TierPerformance{
            .read_bw = MBytesPerSec{bw},
            .write_bw = MBytesPerSec{bw},
            .iops = Iops{io},
        };
    }

private:
    Params params_;
    CubicHermiteSpline bw_curve_;
    CubicHermiteSpline iops_curve_;
};

/// RESTful object storage: unlimited capacity, flat per-VM streaming
/// bandwidth, a fixed per-object request overhead through the provider's
/// Hadoop connector, and bucket-level aggregate ceilings.
class ObjectStoreService final : public StorageService {
public:
    struct Params {
        std::string description;
        Dollars price_per_gb_month;
        double stream_mbps;
        double iops;
        double request_overhead_sec;
        // Bucket-level aggregate ceilings (2015-era object stores): reads
        // fan out well but saturate per bucket; writes (commit +
        // replication) saturate much earlier. These are what keep an
        // all-ephemeral cluster -- which funnels every byte through the
        // object store twice -- from dominating (Fig. 7's ephSSD-100%
        // penalty).
        double aggregate_read_mbps;
        double aggregate_write_mbps;
    };

    explicit ObjectStoreService(Params p)
        : StorageService(StorageTier::kObjectStore, p.description,
                         /*persistent=*/true, p.price_per_gb_month),
          params_(std::move(p)) {
        CAST_EXPECTS(params_.stream_mbps > 0.0);
        CAST_EXPECTS(params_.aggregate_read_mbps > 0.0);
        CAST_EXPECTS(params_.aggregate_write_mbps > 0.0);
        CAST_EXPECTS(params_.request_overhead_sec >= 0.0);
    }

    [[nodiscard]] GigaBytes provision(GigaBytes requested) const override {
        CAST_EXPECTS(requested.value() >= 0.0);
        return requested;  // pay-per-GB, no rounding, no limit
    }

    [[nodiscard]] std::optional<GigaBytes> max_capacity_per_vm() const override {
        return std::nullopt;
    }

    [[nodiscard]] TierPerformance performance(GigaBytes /*provisioned*/) const override {
        return TierPerformance{
            .read_bw = MBytesPerSec{params_.stream_mbps},
            .write_bw = MBytesPerSec{params_.stream_mbps},
            .iops = Iops{params_.iops},
        };
    }

    [[nodiscard]] MBytesPerSec cluster_read_bw(GigaBytes /*provisioned_per_vm*/,
                                               int worker_count) const override {
        CAST_EXPECTS(worker_count >= 1);
        return MBytesPerSec{
            std::min(params_.stream_mbps * worker_count, params_.aggregate_read_mbps)};
    }

    [[nodiscard]] MBytesPerSec cluster_write_bw(GigaBytes /*provisioned_per_vm*/,
                                                int worker_count) const override {
        CAST_EXPECTS(worker_count >= 1);
        return MBytesPerSec{
            std::min(params_.stream_mbps * worker_count, params_.aggregate_write_mbps)};
    }

    [[nodiscard]] Seconds request_overhead() const override {
        return Seconds{params_.request_overhead_sec};
    }

private:
    Params params_;
};

}  // namespace

StorageCatalog StorageCatalog::google_cloud() {
    StorageCatalog catalog;
    catalog.name_ = "google-cloud";
    catalog.services_[tier_index(StorageTier::kEphemeralSsd)] =
        std::make_shared<EphemeralSsdService>(EphemeralSsdService::Params{
            .description = "VM-local ephemeral SSD",
            .price_per_gb_month = Dollars{0.218},
            .volume_gb = 375.0,
            .max_volumes = 4,
            .volume_mbps = 733.0,
            .volume_iops = 100'000.0,
        });
    catalog.services_[tier_index(StorageTier::kPersistentSsd)] =
        std::make_shared<PersistentBlockService>(PersistentBlockService::Params{
            .tier = StorageTier::kPersistentSsd,
            .description = "network-attached persistent SSD",
            .price_per_gb_month = Dollars{0.17},
            .cap_gb = {100.0, 250.0, 500.0},
            .mbps = {48.0, 118.0, 234.0},
            .iops = {3000.0, 7500.0, 15000.0},
            // GCE's 2015-era documented per-instance persSSD read ceiling
            // (~240-250 MB/s); this is why Fig. 2's curve flattens.
            .bw_ceiling_mbps = 250.0,
            .iops_ceiling = 25000.0,
            .max_volume_gb = 10240.0,
        });
    catalog.services_[tier_index(StorageTier::kPersistentHdd)] =
        std::make_shared<PersistentBlockService>(PersistentBlockService::Params{
            .tier = StorageTier::kPersistentHdd,
            .description = "network-attached persistent HDD",
            .price_per_gb_month = Dollars{0.04},
            .cap_gb = {100.0, 250.0, 500.0},
            .mbps = {20.0, 45.0, 97.0},
            .iops = {150.0, 375.0, 750.0},
            .bw_ceiling_mbps = 180.0,
            .iops_ceiling = 3000.0,
            .max_volume_gb = 10240.0,
        });
    catalog.services_[tier_index(StorageTier::kObjectStore)] =
        std::make_shared<ObjectStoreService>(ObjectStoreService::Params{
            .description = "RESTful object storage (GCS)",
            .price_per_gb_month = Dollars{0.026},
            .stream_mbps = 265.0,
            .iops = 550.0,
            .request_overhead_sec = 0.5,
            .aggregate_read_mbps = 1200.0,
            .aggregate_write_mbps = 500.0,
        });
    return catalog;
}

StorageCatalog StorageCatalog::aws_like() {
    // 2015-era AWS public numbers, approximated: i2-family instance store,
    // EBS General Purpose (gp2, 3 IOPS/GB, 160 MB/s ceiling), EBS Magnetic,
    // and S3. EBS bandwidth scaling comes from RAID-0 striping multiple
    // volumes, which nets out to roughly capacity-proportional throughput
    // like GCE persistent disks.
    StorageCatalog catalog;
    catalog.name_ = "aws-like";
    catalog.services_[tier_index(StorageTier::kEphemeralSsd)] =
        std::make_shared<EphemeralSsdService>(EphemeralSsdService::Params{
            .description = "instance-store SSD (i2-style)",
            .price_per_gb_month = Dollars{0.11},
            .volume_gb = 800.0,
            .max_volumes = 2,
            .volume_mbps = 400.0,
            .volume_iops = 40'000.0,
        });
    catalog.services_[tier_index(StorageTier::kPersistentSsd)] =
        std::make_shared<PersistentBlockService>(PersistentBlockService::Params{
            .tier = StorageTier::kPersistentSsd,
            .description = "EBS General Purpose SSD (gp2, striped)",
            .price_per_gb_month = Dollars{0.10},
            .cap_gb = {100.0, 250.0, 500.0},
            .mbps = {31.0, 78.0, 156.0},
            .iops = {300.0, 750.0, 1500.0},
            .bw_ceiling_mbps = 160.0,
            .iops_ceiling = 10000.0,
            .max_volume_gb = 16384.0,
        });
    catalog.services_[tier_index(StorageTier::kPersistentHdd)] =
        std::make_shared<PersistentBlockService>(PersistentBlockService::Params{
            .tier = StorageTier::kPersistentHdd,
            .description = "EBS Magnetic (striped)",
            .price_per_gb_month = Dollars{0.05},
            .cap_gb = {100.0, 250.0, 500.0},
            .mbps = {12.0, 30.0, 60.0},
            .iops = {100.0, 100.0, 100.0},
            .bw_ceiling_mbps = 120.0,
            .iops_ceiling = 200.0,
            .max_volume_gb = 1024.0,
        });
    catalog.services_[tier_index(StorageTier::kObjectStore)] =
        std::make_shared<ObjectStoreService>(ObjectStoreService::Params{
            .description = "S3 object storage",
            .price_per_gb_month = Dollars{0.03},
            .stream_mbps = 180.0,
            .iops = 300.0,
            .request_overhead_sec = 0.6,
            .aggregate_read_mbps = 1000.0,
            .aggregate_write_mbps = 400.0,
        });
    return catalog;
}

StorageCatalog StorageCatalog::by_name(std::string_view name) {
    if (name == "google-cloud") return google_cloud();
    if (name == "aws-like") return aws_like();
    throw ValidationError("unknown storage catalog: " + std::string(name));
}

StorageCatalog StorageCatalog::custom(
    std::string name, std::array<std::shared_ptr<const StorageService>, kTierCount> services) {
    CAST_EXPECTS_MSG(!name.empty(), "custom catalog needs a name");
    for (StorageTier t : kAllTiers) {
        const auto& svc = services[tier_index(t)];
        CAST_EXPECTS_MSG(svc != nullptr, "custom catalog is missing a service");
        CAST_EXPECTS_MSG(svc->tier() == t, "custom catalog service is in the wrong slot");
    }
    StorageCatalog catalog;
    catalog.name_ = std::move(name);
    catalog.services_ = std::move(services);
    return catalog;
}

}  // namespace cast::cloud
