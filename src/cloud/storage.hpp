// Cloud storage service catalog (paper Table 1).
//
// Encodes the four Google Cloud storage services CAST plans over, with the
// measured capacity/throughput/IOPS/price points of Table 1 (as of
// 2015-01-14) and the provider-side provisioning rules:
//   * ephSSD   - VM-local ephemeral SSD: fixed 375 GB volumes, at most 4 per
//                VM, not persistent (data dies with the VM).
//   * persSSD  - network-attached persistent SSD: throughput and IOPS scale
//                with provisioned volume capacity, up to 10,240 GB/volume.
//   * persHDD  - network-attached persistent HDD: same scaling shape, lower
//                absolute numbers and price.
//   * objStore - object storage: no capacity limit, cheapest per GB, flat
//                sequential throughput, high per-request overhead.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cast::cloud {

enum class StorageTier : int {
    kEphemeralSsd = 0,
    kPersistentSsd = 1,
    kPersistentHdd = 2,
    kObjectStore = 3,
};

inline constexpr std::array<StorageTier, 4> kAllTiers = {
    StorageTier::kEphemeralSsd,
    StorageTier::kPersistentSsd,
    StorageTier::kPersistentHdd,
    StorageTier::kObjectStore,
};

inline constexpr std::size_t kTierCount = kAllTiers.size();

[[nodiscard]] constexpr std::size_t tier_index(StorageTier t) {
    return static_cast<std::size_t>(t);
}

[[nodiscard]] std::string_view tier_name(StorageTier t);

/// Parse "ephSSD"/"persSSD"/"persHDD"/"objStore" (case-sensitive, the
/// paper's spelling). Returns nullopt for anything else.
[[nodiscard]] std::optional<StorageTier> tier_from_name(std::string_view name);

/// Aggregate performance a single VM gets from one tier at a given
/// provisioned per-VM capacity.
struct TierPerformance {
    MBytesPerSec read_bw;
    MBytesPerSec write_bw;
    Iops iops;
};

/// Static description + capacity-dependent performance of one service.
class StorageService {
public:
    StorageService(StorageTier tier, std::string description, bool persistent,
                   Dollars price_per_gb_month)
        : tier_(tier),
          description_(std::move(description)),
          persistent_(persistent),
          price_per_gb_month_(price_per_gb_month) {
        CAST_EXPECTS(price_per_gb_month.value() >= 0.0);
    }
    virtual ~StorageService() = default;

    [[nodiscard]] StorageTier tier() const { return tier_; }
    [[nodiscard]] const std::string& description() const { return description_; }

    /// False for ephSSD: data is lost when the VM terminates, so workloads
    /// need objStore as a backing store (paper §3.1.2, Fig. 1 caption).
    [[nodiscard]] bool persistent() const { return persistent_; }

    [[nodiscard]] Dollars price_per_gb_month() const { return price_per_gb_month_; }

    /// Storage is billed hourly in the paper's cost model (Eq. 6); a month
    /// is 730 hours (Google's convention).
    [[nodiscard]] Dollars price_per_gb_hour() const {
        return Dollars{price_per_gb_month_.value() / 730.0};
    }

    /// Round a requested per-VM capacity up to what the provider will
    /// actually provision (e.g. whole 375 GB ephSSD volumes). Throws
    /// ValidationError if the request exceeds the per-VM maximum.
    [[nodiscard]] virtual GigaBytes provision(GigaBytes requested) const = 0;

    /// Largest capacity one VM can attach from this tier (nullopt when
    /// unlimited, i.e. objStore).
    [[nodiscard]] virtual std::optional<GigaBytes> max_capacity_per_vm() const = 0;

    /// Per-VM aggregate performance at a (provisioned) capacity.
    [[nodiscard]] virtual TierPerformance performance(GigaBytes provisioned) const = 0;

    /// Cluster-level aggregate bandwidth when `worker_count` VMs hit the
    /// service at once. Block devices are per-VM volumes, so they scale
    /// linearly; the object store is a shared, bucket-limited service and
    /// overrides this with its aggregate read/write ceilings.
    [[nodiscard]] virtual MBytesPerSec cluster_read_bw(GigaBytes provisioned_per_vm,
                                                       int worker_count) const {
        CAST_EXPECTS(worker_count >= 1);
        return MBytesPerSec{performance(provisioned_per_vm).read_bw.value() * worker_count};
    }
    [[nodiscard]] virtual MBytesPerSec cluster_write_bw(GigaBytes provisioned_per_vm,
                                                        int worker_count) const {
        CAST_EXPECTS(worker_count >= 1);
        return MBytesPerSec{performance(provisioned_per_vm).write_bw.value() * worker_count};
    }

    /// Fixed per-object request overhead (connection setup, HTTP round
    /// trips). Zero for block devices; substantial for objStore through the
    /// GCS connector — this is what sinks Join on objStore (Fig. 1b).
    [[nodiscard]] virtual Seconds request_overhead() const { return Seconds{0.0}; }

private:
    StorageTier tier_;
    std::string description_;
    bool persistent_;
    Dollars price_per_gb_month_;
};

/// Conventional persSSD volume (per VM) used as the intermediate store for
/// jobs placed on objStore (intermediate data cannot live in an object
/// store). The paper's testbed attaches a 100 GB volume (§3.1.1); when a
/// job's shuffle volume would not fit — or would bottleneck on such a small
/// volume — the convention grows it with 2x headroom over the job's
/// per-VM intermediate size. Shared by the model, the solvers and the
/// deployer so their cost/performance accounting agrees.
[[nodiscard]] inline GigaBytes object_store_intermediate_volume(GigaBytes job_intermediate,
                                                                int worker_count) {
    CAST_EXPECTS(worker_count >= 1);
    constexpr double kMinimumGb = 100.0;
    constexpr double kHeadroom = 2.0;
    return GigaBytes{
        std::max(kMinimumGb, kHeadroom * job_intermediate.value() / worker_count)};
}

/// The four-service catalog of Table 1.
class StorageCatalog {
public:
    /// Google Cloud catalog exactly as measured in Table 1.
    [[nodiscard]] static StorageCatalog google_cloud();

    /// An AWS-flavoured catalog with the same four service roles
    /// (instance-store SSD / EBS gp / EBS magnetic / S3), using 2015-era
    /// public price/performance points. The paper notes other providers
    /// "provide similar storage services with different performance-cost
    /// trade-offs" — this catalog demonstrates the planner is
    /// provider-agnostic. Note: EBS scales bandwidth by *striping* volumes
    /// (RAID-0), which this catalog models as capacity-proportional
    /// bandwidth like GCE's.
    [[nodiscard]] static StorageCatalog aws_like();

    /// Factory by name ("google-cloud" / "aws-like"); throws
    /// ValidationError for unknown names. Used by model-set serialization.
    [[nodiscard]] static StorageCatalog by_name(std::string_view name);

    /// Assemble a catalog from caller-provided services, one per tier (all
    /// four required). This is how tests and experiments model third-party
    /// or deliberately defective catalogs; the services' performance
    /// invariants are the caller's problem — lint_catalog is the checker.
    [[nodiscard]] static StorageCatalog custom(
        std::string name,
        std::array<std::shared_ptr<const StorageService>, kTierCount> services);

    /// The factory name this catalog was created under.
    [[nodiscard]] const std::string& name() const { return name_; }

    [[nodiscard]] const StorageService& service(StorageTier tier) const {
        const auto& ptr = services_[tier_index(tier)];
        CAST_ENSURES(ptr != nullptr);
        return *ptr;
    }

    /// Tier used to persist inputs/outputs of jobs placed on non-persistent
    /// tiers (objStore in the paper).
    [[nodiscard]] StorageTier backing_store() const { return StorageTier::kObjectStore; }

    /// Tier used for intermediate (shuffle) data of jobs whose primary data
    /// lives on objStore; the paper uses a 100 GB persSSD volume (§3.1.1).
    [[nodiscard]] StorageTier object_store_intermediate_tier() const {
        return StorageTier::kPersistentSsd;
    }

private:
    StorageCatalog() = default;
    std::string name_;
    std::array<std::shared_ptr<const StorageService>, kTierCount> services_{};
};

}  // namespace cast::cloud
