// Compute-side cloud model: machine types and cluster specifications.
//
// CAST's cost model (Eq. 5) charges for the VMs over the whole workload
// makespan; its runtime model (Eq. 1) needs the per-node map/reduce slot
// counts. This header captures both, with the two Google Cloud machine
// types the paper uses.
#pragma once

#include <string>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cast::cloud {

/// One VM flavour (e.g. n1-standard-16).
struct MachineType {
    std::string name;
    int vcpus = 0;
    double memory_gb = 0.0;
    /// Hadoop slots configured on this flavour (the paper's testbed runs
    /// one slot per two vCPUs for each of map and reduce, the stock
    /// heuristic for Hadoop 1.x on 16-vCPU nodes).
    int map_slots = 0;
    int reduce_slots = 0;
    Dollars price_per_hour;
    /// Effective per-VM throughput of the Hadoop shuffle path (parallel
    /// fetch + merge over the virtual NIC). Far below the nominal NIC
    /// rate for 2015-era Hadoop 1.x; this is why multi-node shuffles are
    /// framework-bound rather than storage-bound (§3.1.2's "other parts of
    /// the MapReduce framework"). Irrelevant on single-node clusters where
    /// the shuffle is local.
    MBytesPerSec shuffle_network_bw{140.0};

    [[nodiscard]] Dollars price_per_minute() const {
        return Dollars{price_per_hour.value() / 60.0};
    }

    void validate() const {
        CAST_EXPECTS(vcpus > 0);
        CAST_EXPECTS(map_slots > 0);
        CAST_EXPECTS(reduce_slots > 0);
        CAST_EXPECTS(price_per_hour.value() >= 0.0);
        CAST_EXPECTS(shuffle_network_bw.value() > 0.0);
    }

    /// The paper's 16-vCPU slave flavour (GCE list price, Jan 2015).
    [[nodiscard]] static MachineType n1_standard_16() {
        return MachineType{.name = "n1-standard-16",
                           .vcpus = 16,
                           .memory_gb = 60.0,
                           .map_slots = 8,
                           .reduce_slots = 8,
                           .price_per_hour = Dollars{0.836}};
    }

    /// The paper's 4-vCPU master flavour.
    [[nodiscard]] static MachineType n1_standard_4() {
        return MachineType{.name = "n1-standard-4",
                           .vcpus = 4,
                           .memory_gb = 15.0,
                           .map_slots = 2,
                           .reduce_slots = 2,
                           .price_per_hour = Dollars{0.209}};
    }
};

/// A homogeneous analytics cluster: one master plus `worker_count` slaves.
/// (The paper fixes a single slave VM type; heterogeneous VM mixes are
/// explicitly future work in §4.2.1 footnote 3.)
struct ClusterSpec {
    MachineType worker = MachineType::n1_standard_16();
    MachineType master = MachineType::n1_standard_4();
    int worker_count = 1;

    void validate() const {
        worker.validate();
        master.validate();
        CAST_EXPECTS(worker_count > 0);
    }

    [[nodiscard]] int total_map_slots() const { return worker_count * worker.map_slots; }
    [[nodiscard]] int total_reduce_slots() const { return worker_count * worker.reduce_slots; }
    [[nodiscard]] int total_worker_vcpus() const { return worker_count * worker.vcpus; }

    /// Combined master+workers price per minute (Eq. 5's price_vm).
    [[nodiscard]] Dollars price_per_minute() const {
        return Dollars{worker.price_per_minute().value() * worker_count +
                       master.price_per_minute().value()};
    }

    /// The paper's evaluation cluster: 400 worker cores = 25 x 16 vCPUs.
    [[nodiscard]] static ClusterSpec paper_400_core() {
        return ClusterSpec{.worker = MachineType::n1_standard_16(),
                           .master = MachineType::n1_standard_4(),
                           .worker_count = 25};
    }

    /// The single-slave setup of the §3 characterization experiments.
    [[nodiscard]] static ClusterSpec paper_single_node() {
        return ClusterSpec{.worker = MachineType::n1_standard_16(),
                           .master = MachineType::n1_standard_4(),
                           .worker_count = 1};
    }

    /// The 10-VM cluster of Fig. 2.
    [[nodiscard]] static ClusterSpec paper_10_node() {
        return ClusterSpec{.worker = MachineType::n1_standard_16(),
                           .master = MachineType::n1_standard_4(),
                           .worker_count = 10};
    }
};

}  // namespace cast::cloud
