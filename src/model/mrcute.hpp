// MRCute-style analytical job performance model (paper Eq. 1).
//
// EST(R̂, M̂(sᵢ, L̂ᵢ)) decomposes a MapReduce job into map, shuffle and
// reduce sub-models, each #waves × runtime-per-wave, where a wave is the
// number of tasks the cluster can run at once. The per-task bandwidths
// bw^f_phase come from offline profiling (the M̂ matrix, see profiler.hpp).
// Iterative applications (KMeans, PageRank) repeat all three phases once
// per iteration.
#pragma once

#include <cmath>

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "workload/job.hpp"

namespace cast::model {

/// One M̂ entry: effective per-task bandwidth of each phase for a given
/// (application, storage service) pair, at the profiling reference
/// capacity.
struct PhaseBandwidths {
    MBytesPerSec map{0.0};
    MBytesPerSec shuffle{0.0};
    MBytesPerSec reduce{0.0};

    void validate() const {
        CAST_EXPECTS(map.value() > 0.0);
        CAST_EXPECTS(shuffle.value() > 0.0);
        CAST_EXPECTS(reduce.value() > 0.0);
    }
};

/// Phase-level estimate breakdown (processing only; staging legs are
/// accounted separately, see estimate_staging()).
struct EstimateBreakdown {
    Seconds map{0.0};
    Seconds shuffle{0.0};
    Seconds reduce{0.0};

    [[nodiscard]] Seconds total() const { return map + shuffle + reduce; }
};

/// Eq. 1: number of waves for `tasks` over `slots` parallel slots.
[[nodiscard]] inline int wave_count(int tasks, int slots) {
    CAST_EXPECTS(tasks >= 1);
    CAST_EXPECTS(slots >= 1);
    return static_cast<int>((tasks + slots - 1) / slots);
}

/// EST(.) of Eq. 1 with an explicit per-phase breakdown.
[[nodiscard]] EstimateBreakdown estimate_breakdown(const cloud::ClusterSpec& cluster,
                                                   const workload::JobSpec& job,
                                                   const PhaseBandwidths& bw);

/// EST(.) of Eq. 1 (processing phases only).
[[nodiscard]] inline Seconds estimate(const cloud::ClusterSpec& cluster,
                                      const workload::JobSpec& job,
                                      const PhaseBandwidths& bw) {
    return estimate_breakdown(cluster, job, bw).total();
}

enum class StagingDirection {
    kDownload,  // objStore -> tier
    kUpload,    // tier -> objStore
};

/// Analytical estimate of the bulk-copy staging legs a placement needs
/// (download before / upload after): `volume` moved between the object
/// store and `tier` across all VMs in parallel, bounded by the object
/// store's cluster-level aggregate ceilings.
[[nodiscard]] Seconds estimate_staging(const cloud::ClusterSpec& cluster,
                                       const cloud::StorageCatalog& catalog,
                                       cloud::StorageTier tier, GigaBytes tier_capacity_per_vm,
                                       GigaBytes volume,
                                       StagingDirection direction = StagingDirection::kDownload);

}  // namespace cast::model
