// Persistence for profiled model sets.
//
// Offline profiling is the expensive step of the CAST pipeline (hundreds
// of calibration runs); a tenant profiles once per cluster shape and plans
// many times. This module saves/loads a PerfModelSet as a line-oriented,
// versioned, human-diffable text format (no external dependencies):
//
//   cast-model-set v1
//   catalog google-cloud
//   cluster <workers> <name> <vcpus> <mem> <mslots> <rslots> <price> <net>
//   master  <name> <vcpus> <mem> <mslots> <rslots> <price> <net>
//   model <app> <tier> <map> <shuffle> <reduce> <refcap> <interflag> <k> x... y...
//   end
//
// Numbers are printed with max_digits10 so round-trips are bit-exact.
#pragma once

#include <iosfwd>
#include <string>

#include "model/profiler.hpp"

namespace cast::model {

/// Serialize `models` to a stream. Throws ValidationError if any (app,
/// tier) model is missing (partial sets are not a valid interchange state).
void save_model_set(const PerfModelSet& models, std::ostream& os);

/// Parse a model set from a stream. Throws ValidationError on syntax
/// errors, version mismatch, unknown catalog/app/tier names, or missing
/// models.
[[nodiscard]] PerfModelSet load_model_set(std::istream& is);

/// File convenience wrappers. Throw ValidationError when the file cannot
/// be opened.
void save_model_set_file(const PerfModelSet& models, const std::string& path);
[[nodiscard]] PerfModelSet load_model_set_file(const std::string& path);

}  // namespace cast::model
