#include "model/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

namespace cast::model {

namespace {

constexpr std::string_view kMagic = "cast-model-set";
constexpr std::string_view kVersion = "v1";

void write_machine(std::ostream& os, std::string_view key, const cloud::MachineType& m) {
    os << key << ' ' << m.name << ' ' << m.vcpus << ' ' << m.memory_gb << ' ' << m.map_slots
       << ' ' << m.reduce_slots << ' ' << m.price_per_hour.value() << ' '
       << m.shuffle_network_bw.value() << '\n';
}

cloud::MachineType read_machine(std::istringstream& line) {
    cloud::MachineType m;
    double price = 0.0;
    double network = 0.0;
    line >> m.name >> m.vcpus >> m.memory_gb >> m.map_slots >> m.reduce_slots >> price >>
        network;
    if (!line) throw ValidationError("model set: malformed machine line");
    m.price_per_hour = Dollars{price};
    m.shuffle_network_bw = MBytesPerSec{network};
    m.validate();
    return m;
}

[[noreturn]] void fail(const std::string& what) {
    throw ValidationError("model set: " + what);
}

}  // namespace

void save_model_set(const PerfModelSet& models, std::ostream& os) {
    os << kMagic << ' ' << kVersion << '\n';
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "catalog " << models.catalog().name() << '\n';
    const auto& cluster = models.cluster();
    os << "workers " << cluster.worker_count << '\n';
    write_machine(os, "worker", cluster.worker);
    write_machine(os, "master", cluster.master);
    for (workload::AppKind app : workload::kAllApps) {
        for (cloud::StorageTier tier : cloud::kAllTiers) {
            if (!models.has_tier_model(app, tier)) {
                fail("incomplete model set: missing " +
                     std::string(workload::app_name(app)) + "/" +
                     std::string(cloud::tier_name(tier)));
            }
            const TierModel& m = models.tier_model(app, tier);
            os << "model " << workload::app_name(app) << ' ' << cloud::tier_name(tier) << ' '
               << m.bandwidths.map.value() << ' ' << m.bandwidths.shuffle.value() << ' '
               << m.bandwidths.reduce.value() << ' ' << m.reference_capacity_per_vm.value()
               << ' ' << (m.scales_with_intermediate_volume ? 1 : 0) << ' '
               << m.runtime_scale.size();
            for (double x : m.runtime_scale.knots_x()) os << ' ' << x;
            for (double y : m.runtime_scale.knots_y()) os << ' ' << y;
            os << '\n';
        }
    }
    os << "end\n";
    if (!os) fail("write failure");
}

PerfModelSet load_model_set(std::istream& is) {
    std::string line;
    if (!std::getline(is, line)) fail("empty input");
    {
        std::istringstream header(line);
        std::string magic;
        std::string version;
        header >> magic >> version;
        if (magic != kMagic) fail("bad magic '" + magic + "'");
        if (version != kVersion) fail("unsupported version '" + version + "'");
    }

    std::string catalog_name;
    cloud::ClusterSpec cluster;
    bool have_catalog = false;
    bool have_workers = false;
    bool have_worker = false;
    bool have_master = false;

    struct PendingModel {
        workload::AppKind app;
        cloud::StorageTier tier;
        TierModel model;
    };
    std::vector<PendingModel> pending;

    while (std::getline(is, line)) {
        if (line.empty()) continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "end") break;
        if (key == "catalog") {
            ls >> catalog_name;
            have_catalog = true;
        } else if (key == "workers") {
            ls >> cluster.worker_count;
            if (!ls || cluster.worker_count < 1) fail("bad worker count");
            have_workers = true;
        } else if (key == "worker") {
            cluster.worker = read_machine(ls);
            have_worker = true;
        } else if (key == "master") {
            cluster.master = read_machine(ls);
            have_master = true;
        } else if (key == "model") {
            std::string app_name;
            std::string tier_name;
            double map = 0.0;
            double shuffle = 0.0;
            double reduce = 0.0;
            double ref = 0.0;
            int inter_flag = 0;
            std::size_t knots = 0;
            ls >> app_name >> tier_name >> map >> shuffle >> reduce >> ref >> inter_flag >>
                knots;
            if (!ls) fail("malformed model line: " + line);
            const auto app = workload::app_from_name(app_name);
            if (!app) fail("unknown app '" + app_name + "'");
            const auto tier = cloud::tier_from_name(tier_name);
            if (!tier) fail("unknown tier '" + tier_name + "'");
            TierModel m;
            m.bandwidths = PhaseBandwidths{MBytesPerSec{map}, MBytesPerSec{shuffle},
                                           MBytesPerSec{reduce}};
            m.reference_capacity_per_vm = GigaBytes{ref};
            m.scales_with_intermediate_volume = inter_flag != 0;
            if (knots > 0) {
                std::vector<double> xs(knots);
                std::vector<double> ys(knots);
                for (auto& x : xs) ls >> x;
                for (auto& y : ys) ls >> y;
                if (!ls) fail("truncated spline knots: " + line);
                if (knots < 2) fail("spline needs at least 2 knots: " + line);
                m.runtime_scale = CubicHermiteSpline(xs, ys);
            }
            pending.push_back(PendingModel{*app, *tier, std::move(m)});
        } else {
            fail("unknown key '" + key + "'");
        }
    }
    if (!have_catalog || !have_workers || !have_worker || !have_master) {
        fail("missing header section");
    }
    PerfModelSet models(cluster, cloud::StorageCatalog::by_name(catalog_name));
    for (auto& p : pending) models.set_tier_model(p.app, p.tier, std::move(p.model));
    for (workload::AppKind app : workload::kAllApps) {
        for (cloud::StorageTier tier : cloud::kAllTiers) {
            if (!models.has_tier_model(app, tier)) {
                fail("incomplete model set after load: missing " +
                     std::string(workload::app_name(app)) + "/" +
                     std::string(cloud::tier_name(tier)));
            }
        }
    }
    return models;
}

void save_model_set_file(const PerfModelSet& models, const std::string& path) {
    std::ofstream file(path);
    if (!file) throw ValidationError("cannot open for writing: " + path);
    save_model_set(models, file);
}

PerfModelSet load_model_set_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw ValidationError("cannot open for reading: " + path);
    return load_model_set(file);
}

}  // namespace cast::model
