#include "model/profiler.hpp"

#include <string>

#include "common/annotations.hpp"
#include "sim/batch.hpp"

namespace cast::model {

namespace {
using cloud::StorageTier;
using workload::AppKind;
}  // namespace

Profiler::Profiler(cloud::ClusterSpec cluster, cloud::StorageCatalog catalog,
                   ProfilerOptions options)
    : cluster_(std::move(cluster)), catalog_(std::move(catalog)), options_(std::move(options)) {
    cluster_.validate();
    CAST_EXPECTS(options_.runs_per_point >= 1);
    CAST_EXPECTS(options_.chunks_per_slot >= 1);
    CAST_EXPECTS(options_.chunk.value() > 0.0);
    CAST_EXPECTS(!options_.block_capacity_points.empty());
    CAST_EXPECTS(!options_.eph_volume_points.empty());
}

workload::JobSpec Profiler::calibration_job(AppKind app) const {
    // Sized to exercise several full waves on this cluster so wave effects
    // are present in the measurement, exactly like the paper's profiling
    // runs on the real testbed.
    const int maps =
        cluster_.total_map_slots() * options_.chunks_per_slot;
    return workload::JobSpec{
        .id = 900000 + static_cast<int>(workload::app_index(app)),
        .name = "calibration-" + std::string(workload::app_name(app)),
        .app = app,
        .input = GigaBytes{maps * options_.chunk.value()},
        .map_tasks = maps,
        .reduce_tasks = std::max(1, maps / 4),
        .reuse_group = std::nullopt,
    };
}

sim::PhaseTimes Profiler::measure(AppKind app, StorageTier tier,
                                  GigaBytes per_vm_capacity, ThreadPool* pool) const {
    const workload::JobSpec job = calibration_job(app);

    sim::TierCapacities caps;
    if (tier == StorageTier::kObjectStore) {
        // objStore jobs keep shuffle data on a persSSD volume; for
        // profiling, per_vm_capacity names that volume's size (the REG
        // sweep for objStore is over the intermediate volume).
        const GigaBytes inter_vol =
            per_vm_capacity.value() > 0.0
                ? per_vm_capacity
                : cloud::object_store_intermediate_volume(job.intermediate(),
                                                          cluster_.worker_count);
        caps.set(StorageTier::kPersistentSsd, inter_vol);
    } else {
        caps.set(tier, per_vm_capacity);
    }

    const sim::JobPlacement placement = sim::JobPlacement::on_tier(job, tier);

    // The runs_per_point repetitions are independent configurations (each
    // with its own seed), so they batch over the pool; outcomes come back
    // indexed by run, and the sum below is in run order — bit-identical to
    // the old serial loop for any worker count.
    std::vector<sim::BatchConfig> configs;
    configs.reserve(static_cast<std::size_t>(options_.runs_per_point));
    for (int run = 0; run < options_.runs_per_point; ++run) {
        configs.push_back(sim::BatchConfig{
            placement, caps,
            sim::SimOptions{.seed = options_.seed + 1000 * static_cast<std::uint64_t>(run),
                            .jitter_sigma = options_.jitter_sigma}});
    }
    const sim::BatchRunner runner(cluster_, catalog_);
    const std::vector<sim::BatchOutcome> outcomes = runner.run(configs, pool);

    sim::PhaseTimes sum;
    for (const sim::BatchOutcome& outcome : outcomes) {
        CAST_ENSURES_MSG(!outcome.failed, "fault-free calibration run failed");
        sum.stage_in += outcome.result.phases.stage_in;
        sum.map += outcome.result.phases.map;
        sum.shuffle += outcome.result.phases.shuffle;
        sum.reduce += outcome.result.phases.reduce;
        sum.stage_out += outcome.result.phases.stage_out;
    }
    const double inv = 1.0 / options_.runs_per_point;
    return sim::PhaseTimes{.stage_in = sum.stage_in * inv,
                           .map = sum.map * inv,
                           .shuffle = sum.shuffle * inv,
                           .reduce = sum.reduce * inv,
                           .stage_out = sum.stage_out * inv};
}

TierModel Profiler::profile_pair(AppKind app, StorageTier tier, ThreadPool* pool) const {
    const workload::JobSpec job = calibration_job(app);
    const auto& profile = workload::ApplicationProfile::of(app);
    const auto& service = catalog_.service(tier);

    // Reference capacity per tier family. For objStore the service itself
    // is capacity-independent, but the conventional persSSD *intermediate*
    // volume is not — the REG sweep for objStore is over that volume, and
    // the reference is what the convention assigns the calibration job.
    GigaBytes ref_capacity{0.0};
    std::vector<double> sweep;
    switch (tier) {
        case StorageTier::kEphemeralSsd:
            ref_capacity = service.provision(GigaBytes{375.0});
            for (int v : options_.eph_volume_points) sweep.push_back(375.0 * v);
            break;
        case StorageTier::kPersistentSsd:
        case StorageTier::kPersistentHdd:
            ref_capacity = service.provision(options_.reference_block_capacity);
            sweep = options_.block_capacity_points;
            break;
        case StorageTier::kObjectStore:
            ref_capacity = cloud::object_store_intermediate_volume(job.intermediate(),
                                                                   cluster_.worker_count);
            sweep.push_back(ref_capacity.value());
            for (double c : options_.block_capacity_points) {
                if (c > ref_capacity.value()) sweep.push_back(c);
            }
            break;
    }

    // --- M̂: invert Eq. 1 on the measured per-iteration phase times.
    const sim::PhaseTimes ref = measure(app, tier, ref_capacity, pool);
    const int iters = profile.iterations();
    const int map_waves = wave_count(job.map_tasks, cluster_.total_map_slots());
    const int reduce_waves = wave_count(job.reduce_tasks, cluster_.total_reduce_slots());
    const double map_chunk_mb = job.input.megabytes() / job.map_tasks;
    const double shuffle_part_mb = job.intermediate().megabytes() / job.reduce_tasks;
    const double reduce_part_mb = job.output().megabytes() / job.reduce_tasks;

    auto invert = [](double per_task_mb, int waves, double phase_sec) {
        // Guard degenerate phases (e.g. Grep's near-empty shuffle): clamp
        // to a small positive bandwidth so Eq. 1 never divides by zero.
        if (phase_sec <= 1e-9 || per_task_mb <= 1e-9) return MBytesPerSec{1e6};
        return MBytesPerSec{waves * per_task_mb / phase_sec};
    };

    TierModel model;
    model.reference_capacity_per_vm = ref_capacity;
    model.scales_with_intermediate_volume = tier == StorageTier::kObjectStore;
    model.bandwidths = PhaseBandwidths{
        .map = invert(map_chunk_mb, map_waves, ref.map.value() / iters),
        .shuffle = invert(shuffle_part_mb, reduce_waves, ref.shuffle.value() / iters),
        .reduce = invert(reduce_part_mb, reduce_waves, ref.reduce.value() / iters),
    };

    // --- REG: runtime-scaling spline over provisioned per-VM capacity.
    if (!sweep.empty()) {
        const double ref_runtime = ref.processing().value();
        CAST_ENSURES(ref_runtime > 0.0);
        std::vector<double> xs;
        std::vector<double> ys;
        xs.reserve(sweep.size());
        ys.reserve(sweep.size());
        for (double c : sweep) {
            const GigaBytes provisioned = service.provision(GigaBytes{c});
            if (!xs.empty() && provisioned.value() <= xs.back()) continue;  // dedupe rounding
            const sim::PhaseTimes at = measure(app, tier, provisioned, pool);
            xs.push_back(provisioned.value());
            ys.push_back(at.processing().value() / ref_runtime);
        }
        if (xs.size() >= 2) {
            model.runtime_scale = CubicHermiteSpline(xs, ys);
        }
    }
    return model;
}

PerfModelSet Profiler::profile(ThreadPool* pool) const {
    PerfModelSet set(cluster_, catalog_);
    struct Task {
        AppKind app;
        StorageTier tier;
    };
    std::vector<Task> tasks;
    for (AppKind app : workload::kAllApps) {
        for (StorageTier tier : cloud::kAllTiers) tasks.push_back({app, tier});
    }
    Mutex mutex;
    // Passing the pool down makes the per-pair calibration batches nested
    // parallel_fors — safe with the work-stealing pool (a blocked worker
    // helps drain other tasks), and it keeps the pool busy at the tail of
    // the sweep when few pairs remain.
    auto run_one = [&](std::size_t i) {
        TierModel model = profile_pair(tasks[i].app, tasks[i].tier, pool);
        LockGuard lock(mutex);
        set.set_tier_model(tasks[i].app, tasks[i].tier, std::move(model));
    };
    if (pool != nullptr) {
        pool->parallel_for(tasks.size(), run_one, /*grain=*/1);
    } else {
        for (std::size_t i = 0; i < tasks.size(); ++i) run_one(i);
    }
    return set;
}

}  // namespace cast::model
