#include "model/mrcute.hpp"

namespace cast::model {

EstimateBreakdown estimate_breakdown(const cloud::ClusterSpec& cluster,
                                     const workload::JobSpec& job,
                                     const PhaseBandwidths& bw) {
    cluster.validate();
    job.validate();
    bw.validate();

    const auto& app = job.profile();
    const int nvm = cluster.worker_count;
    const int map_waves = wave_count(job.map_tasks, nvm * cluster.worker.map_slots);
    const int reduce_waves = wave_count(job.reduce_tasks, nvm * cluster.worker.reduce_slots);

    // Per-wave runtimes: the data one task handles divided by its profiled
    // per-task bandwidth on this tier (Eq. 1's three summands).
    const double map_chunk_mb = job.input.megabytes() / job.map_tasks;
    const double shuffle_part_mb = job.intermediate().megabytes() / job.reduce_tasks;
    const double reduce_part_mb = job.output().megabytes() / job.reduce_tasks;

    EstimateBreakdown est;
    est.map = Seconds{map_waves * (map_chunk_mb / bw.map.value()) * app.iterations()};
    est.shuffle =
        Seconds{reduce_waves * (shuffle_part_mb / bw.shuffle.value()) * app.iterations()};
    est.reduce =
        Seconds{reduce_waves * (reduce_part_mb / bw.reduce.value()) * app.iterations()};
    CAST_ENSURES(est.total().value() >= 0.0);
    return est;
}

Seconds estimate_staging(const cloud::ClusterSpec& cluster,
                         const cloud::StorageCatalog& catalog, cloud::StorageTier tier,
                         GigaBytes tier_capacity_per_vm, GigaBytes volume,
                         StagingDirection direction) {
    CAST_EXPECTS(volume.value() >= 0.0);
    if (volume.value() <= 0.0) return Seconds{0.0};
    CAST_EXPECTS_MSG(tier != cloud::StorageTier::kObjectStore,
                     "staging to/from objStore itself is meaningless");
    const int nvm = cluster.worker_count;
    const auto& obj = catalog.service(cloud::StorageTier::kObjectStore);
    const auto& blk = catalog.service(tier);
    const auto blk_perf = blk.performance(blk.provision(tier_capacity_per_vm));
    // Whole-cluster copy rate: the object store's aggregate ceiling for its
    // side of the transfer vs the block volumes' combined rate.
    double cluster_mbps = 0.0;
    if (direction == StagingDirection::kDownload) {
        cluster_mbps = std::min(obj.cluster_read_bw(GigaBytes{0.0}, nvm).value(),
                                blk_perf.write_bw.value() * nvm);
    } else {
        cluster_mbps = std::min(obj.cluster_write_bw(GigaBytes{0.0}, nvm).value(),
                                blk_perf.read_bw.value() * nvm);
    }
    CAST_ENSURES(cluster_mbps > 0.0);
    return Seconds{volume.megabytes() / cluster_mbps};
}

}  // namespace cast::model
