// Offline workload profiling (paper §4.1) and the resulting model set.
//
// CAST "performs offline profiling of different applications within an
// analytics workload and generates job performance prediction models based
// on different storage services". The Profiler does exactly that against
// the cluster simulator (our testbed substitute): for every (application,
// tier) pair it runs a calibration job, averages three runs, and inverts
// Eq. 1 to recover the per-task phase bandwidths (the M̂ matrix); for
// capacity-scaled tiers it additionally sweeps provisioned capacity and
// fits the cubic-Hermite-spline runtime-scaling curve that implements
// REG(sᵢ, capacity[sᵢ], R̂, L̂ᵢ) (§4.2.1, Fig. 2).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "common/spline.hpp"
#include "common/thread_pool.hpp"
#include "model/mrcute.hpp"
#include "sim/mapreduce.hpp"
#include "workload/application.hpp"

namespace cast::model {

/// Profiled model for one (application, tier) pair.
struct TierModel {
    PhaseBandwidths bandwidths;
    GigaBytes reference_capacity_per_vm{0.0};
    /// Per-VM capacity (GB) -> runtime multiplier relative to the reference
    /// capacity. For block tiers the x axis is the tier's own provisioned
    /// capacity; for objStore (whose streaming performance is flat) it is
    /// the conventional persSSD *intermediate* volume, which the job's
    /// shuffle data drains through.
    CubicHermiteSpline runtime_scale;
    bool scales_with_intermediate_volume = false;

    [[nodiscard]] double scale_at(GigaBytes per_vm_capacity) const {
        if (runtime_scale.empty()) return 1.0;
        return runtime_scale(per_vm_capacity.value());
    }
};

/// Which staging legs a placement performs (the tier conventions of §3).
struct StagingLegs {
    bool download_input = false;
    bool upload_output = false;

    /// The paper's convention for a whole-job placement on `tier`.
    [[nodiscard]] static StagingLegs for_tier(cloud::StorageTier tier) {
        const bool eph = tier == cloud::StorageTier::kEphemeralSsd;
        return StagingLegs{eph, eph};
    }
};

/// The complete M̂ + REG model set the solvers plan with.
class PerfModelSet {
public:
    PerfModelSet(cloud::ClusterSpec cluster, cloud::StorageCatalog catalog)
        : cluster_(std::move(cluster)), catalog_(std::move(catalog)) {
        cluster_.validate();
    }

    [[nodiscard]] const cloud::ClusterSpec& cluster() const { return cluster_; }
    [[nodiscard]] const cloud::StorageCatalog& catalog() const { return catalog_; }

    void set_tier_model(workload::AppKind app, cloud::StorageTier tier, TierModel m) {
        m.bandwidths.validate();
        models_[workload::app_index(app)][cloud::tier_index(tier)] = std::move(m);
    }

    [[nodiscard]] const TierModel& tier_model(workload::AppKind app,
                                              cloud::StorageTier tier) const {
        const auto& slot = models_[workload::app_index(app)][cloud::tier_index(tier)];
        CAST_EXPECTS_MSG(slot.has_value(), "no profiled model for this (app, tier) pair");
        return *slot;
    }

    [[nodiscard]] bool has_tier_model(workload::AppKind app, cloud::StorageTier tier) const {
        return models_[workload::app_index(app)][cloud::tier_index(tier)].has_value();
    }

    /// REG(sᵢ, capacity, R̂, L̂ᵢ): processing-time estimate of `job` on
    /// `tier` when the tier is provisioned at `per_vm_capacity` per VM.
    /// For objStore the scaling argument is the conventional persSSD
    /// intermediate volume the job gets, not `per_vm_capacity`.
    [[nodiscard]] Seconds processing_time(const workload::JobSpec& job,
                                          cloud::StorageTier tier,
                                          GigaBytes per_vm_capacity) const {
        const TierModel& m = tier_model(job.app, tier);
        const Seconds base = estimate(cluster_, job, m.bandwidths);
        const GigaBytes scale_arg =
            m.scales_with_intermediate_volume
                ? cloud::object_store_intermediate_volume(job.intermediate(),
                                                          cluster_.worker_count)
                : per_vm_capacity;
        return base * m.scale_at(scale_arg);
    }

    /// Processing plus the staging legs of `legs` (ephSSD convention or a
    /// workflow cross-tier hop).
    [[nodiscard]] Seconds job_runtime(const workload::JobSpec& job, cloud::StorageTier tier,
                                      GigaBytes per_vm_capacity, StagingLegs legs) const {
        Seconds t = processing_time(job, tier, per_vm_capacity);
        if (tier != cloud::StorageTier::kObjectStore) {
            if (legs.download_input) {
                t += estimate_staging(cluster_, catalog_, tier, per_vm_capacity, job.input,
                                      StagingDirection::kDownload);
            }
            if (legs.upload_output) {
                t += estimate_staging(cluster_, catalog_, tier, per_vm_capacity, job.output(),
                                      StagingDirection::kUpload);
            }
        }
        return t;
    }

    /// Convenience: runtime with the standard whole-job tier conventions.
    [[nodiscard]] Seconds job_runtime(const workload::JobSpec& job, cloud::StorageTier tier,
                                      GigaBytes per_vm_capacity) const {
        return job_runtime(job, tier, per_vm_capacity, StagingLegs::for_tier(tier));
    }

private:
    cloud::ClusterSpec cluster_;
    cloud::StorageCatalog catalog_;
    std::array<std::array<std::optional<TierModel>, cloud::kTierCount>, 5> models_{};
};

struct ProfilerOptions {
    std::uint64_t seed = 7;
    /// Runs averaged per configuration (the paper reports 3-run averages).
    int runs_per_point = 3;
    /// Reference per-VM capacity for the block tiers' M̂ entries.
    GigaBytes reference_block_capacity{500.0};
    /// Per-VM capacity sweep (GB) for the REG scaling spline on block
    /// tiers. Includes small volumes: workload plans frequently provision
    /// well under 100 GB/VM per tier, and the spline must cover that range
    /// rather than extrapolate optimistically.
    std::vector<double> block_capacity_points = {15.0,  30.0,  60.0,  100.0, 150.0,
                                                 200.0, 300.0, 400.0, 500.0, 700.0,
                                                 1000.0};
    /// ephSSD sweep in whole volumes (x 375 GB).
    std::vector<int> eph_volume_points = {1, 2, 3, 4};
    /// Calibration job size: chunks of input per map slot.
    int chunks_per_slot = 4;
    GigaBytes chunk{0.128};
    double jitter_sigma = 0.06;
};

class Profiler {
public:
    Profiler(cloud::ClusterSpec cluster, cloud::StorageCatalog catalog,
             ProfilerOptions options = {});

    /// Run the full offline profiling campaign. Independent configurations
    /// run on `pool` when provided.
    [[nodiscard]] PerfModelSet profile(ThreadPool* pool = nullptr) const;

    /// Profile a single (app, tier) pair (exposed for tests). The repeated
    /// calibration runs batch over `pool` when provided; results are
    /// bit-identical with any worker count (sim::BatchRunner's contract).
    [[nodiscard]] TierModel profile_pair(workload::AppKind app, cloud::StorageTier tier,
                                         ThreadPool* pool = nullptr) const;

private:
    [[nodiscard]] workload::JobSpec calibration_job(workload::AppKind app) const;
    /// Average processing phase times for the calibration job of `app` on
    /// `tier` at the given per-VM capacity. The runs_per_point repetitions
    /// are independent configurations batched over `pool`.
    [[nodiscard]] sim::PhaseTimes measure(workload::AppKind app, cloud::StorageTier tier,
                                          GigaBytes per_vm_capacity,
                                          ThreadPool* pool = nullptr) const;

    cloud::ClusterSpec cluster_;
    cloud::StorageCatalog catalog_;
    ProfilerOptions options_;
};

}  // namespace cast::model
