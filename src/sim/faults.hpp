// Deterministic fault injection for the cluster simulator.
//
// The seed simulator models a perfectly reliable cloud. Real object stores
// throttle (429/503 episodes), VMs get preempted, tasks fail and re-execute
// in extra waves, and some tasks simply straggle. A FaultProfile describes
// those behaviours as seed-reproducible random processes; a FaultInjector
// samples them in deterministic scheduling order so two runs with the same
// profile produce bit-identical makespans and fault logs. An all-zero
// profile is guaranteed to leave the simulator's output bit-identical to
// the fault-free code path: every injection site is gated on
// FaultProfile::enabled().
//
// The model has four ingredients:
//   * throttling episodes  — a tier's bandwidth is cut to `rate_factor` of
//     its provisioned value for a time window (applied to every pool of the
//     tier: provider-side incidents are correlated across VMs);
//   * per-request object-store errors — each objStore request fails with
//     probability `object_store_error_rate` and is retried with capped
//     exponential backoff + jitter; a request that exhausts its retries
//     fails the whole task attempt;
//   * task kills / VM preemptions — a task attempt is killed with
//     probability `task_kill_prob` and rejoins its VM's wave queue, exactly
//     like a Hadoop re-execution (this is what grows the tail);
//   * straggler amplification — with probability `straggler_prob` a task
//     attempt's demands are multiplied by `straggler_factor`.
// A task attempt that fails re-executes up to `task_max_attempts` times;
// exhausting the budget raises SimulationError (the "injected fault beat
// the retry policy" signal the failure-aware Deployer reacts to).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cloud/storage.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace cast::sim {

/// One transient throttling window: during [start, start + duration) the
/// tier delivers only `rate_factor` of its provisioned bandwidth. Times are
/// relative to job start (each job runs on a fresh engine clock).
struct ThrottleEpisode {
    cloud::StorageTier tier = cloud::StorageTier::kObjectStore;
    Seconds start{0.0};
    Seconds duration{0.0};
    double rate_factor = 1.0;  // in (0, 1]; 1 = no throttling

    void validate() const {
        CAST_EXPECTS_MSG(start.value() >= 0.0, "episode start must be non-negative");
        CAST_EXPECTS_MSG(duration.value() >= 0.0, "episode duration must be non-negative");
        CAST_EXPECTS_MSG(rate_factor > 0.0 && rate_factor <= 1.0,
                         "episode rate factor must be in (0, 1]");
    }
};

/// Exponential-backoff retry policy for transient object-store request
/// errors (the connector's 429/503 handling).
struct RetryPolicy {
    int max_request_retries = 4;     // retries per request before giving up
    Seconds backoff_base{0.5};       // first backoff
    double backoff_multiplier = 2.0; // growth per retry
    double backoff_jitter = 0.25;    // uniform +-fraction applied to each wait

    void validate() const {
        CAST_EXPECTS_MSG(max_request_retries >= 0, "retry count must be non-negative");
        CAST_EXPECTS_MSG(backoff_base.value() >= 0.0, "backoff base must be non-negative");
        CAST_EXPECTS_MSG(backoff_multiplier >= 1.0, "backoff must not shrink");
        CAST_EXPECTS_MSG(backoff_jitter >= 0.0 && backoff_jitter < 1.0,
                         "backoff jitter must be in [0, 1)");
    }

    /// Backoff before retry number `retry` (0-based), jittered by `u` in
    /// [0, 1).
    [[nodiscard]] Seconds wait(int retry, double u) const {
        double w = backoff_base.value();
        for (int i = 0; i < retry; ++i) w *= backoff_multiplier;
        return Seconds{w * (1.0 + backoff_jitter * (2.0 * u - 1.0))};
    }
};

/// Everything that can go wrong, as a seed-reproducible description. The
/// default-constructed profile injects nothing.
struct FaultProfile {
    /// Seed of the fault sampling stream. Independent of SimOptions::seed so
    /// enabling faults never perturbs the task-jitter stream.
    std::uint64_t seed = 0;
    /// Per-request objStore failure probability (429/503/connection reset).
    double object_store_error_rate = 0.0;
    /// Per-task-attempt kill probability (VM preemption, node blacklist).
    double task_kill_prob = 0.0;
    /// Per-task-attempt straggler probability and demand multiplier.
    double straggler_prob = 0.0;
    double straggler_factor = 1.0;  // >= 1
    /// Task attempts before the job is declared failed (Hadoop's
    /// mapred.map.max.attempts default).
    int task_max_attempts = 4;
    RetryPolicy retry;
    std::vector<ThrottleEpisode> episodes;

    /// True iff the profile can perturb a simulation at all. Every
    /// injection site is gated on this, which is what guarantees the
    /// all-zero profile reproduces the seed simulator bit-for-bit.
    [[nodiscard]] bool enabled() const {
        return object_store_error_rate > 0.0 || task_kill_prob > 0.0 ||
               (straggler_prob > 0.0 && straggler_factor != 1.0) || !episodes.empty();
    }

    void validate() const {
        CAST_EXPECTS_MSG(object_store_error_rate >= 0.0 && object_store_error_rate < 1.0,
                         "objStore error rate must be in [0, 1)");
        CAST_EXPECTS_MSG(task_kill_prob >= 0.0 && task_kill_prob < 1.0,
                         "task kill probability must be in [0, 1)");
        CAST_EXPECTS_MSG(straggler_prob >= 0.0 && straggler_prob <= 1.0,
                         "straggler probability must be in [0, 1]");
        CAST_EXPECTS_MSG(straggler_factor >= 1.0, "stragglers cannot speed tasks up");
        CAST_EXPECTS_MSG(task_max_attempts >= 1, "need at least one task attempt");
        retry.validate();
        for (const auto& e : episodes) e.validate();
    }

    [[nodiscard]] static FaultProfile none() { return {}; }

    /// A one-knob profile for sweeps: intensity 0 is fault-free, 1 is a
    /// severe incident day. Episode placement is derived from `seed`, so
    /// the whole sweep is reproducible.
    [[nodiscard]] static FaultProfile scaled(double intensity, std::uint64_t seed,
                                             Seconds horizon = Seconds::from_hours(2.0));
};

/// What the injector did to one job — surfaced through JobResult and
/// aggregated into the Deployer's fault log.
struct FaultStats {
    int task_retries = 0;      // task attempts re-executed (kills + exhausted requests)
    int request_retries = 0;   // objStore requests retried
    int stragglers = 0;        // attempts amplified
    int throttle_events = 0;   // capacity-change events that fired during the job
    Seconds backoff_delay{0.0};  // total injected retry/backoff wait

    [[nodiscard]] bool any() const {
        return task_retries > 0 || request_retries > 0 || stragglers > 0 ||
               throttle_events > 0 || backoff_delay.value() > 0.0;
    }

    FaultStats& operator+=(const FaultStats& o) {
        task_retries += o.task_retries;
        request_retries += o.request_retries;
        stragglers += o.stragglers;
        throttle_events += o.throttle_events;
        backoff_delay += o.backoff_delay;
        return *this;
    }

    [[nodiscard]] friend bool operator==(const FaultStats& a, const FaultStats& b) {
        return a.task_retries == b.task_retries && a.request_retries == b.request_retries &&
               a.stragglers == b.stragglers && a.throttle_events == b.throttle_events &&
               a.backoff_delay.value() == b.backoff_delay.value();
    }
};

/// Sampled plan for one task attempt, consumed by run_phase.
struct AttemptFaults {
    double demand_scale = 1.0;  // straggler amplification of every segment
    Seconds delay{0.0};         // retry/backoff wait charged before the segments
    bool fail = false;          // attempt fails on completion; task re-executes
};

/// Hook run_phase consults per task attempt. Kept abstract so tests can
/// script exact fault sequences.
class TaskFaultModel {
public:
    virtual ~TaskFaultModel() = default;
    /// Called once per (task, attempt) in deterministic scheduling order,
    /// just before the attempt occupies its slot.
    virtual AttemptFaults on_attempt(std::size_t task, int attempt) = 0;
    /// Attempts allowed per task before run_phase raises SimulationError.
    [[nodiscard]] virtual int max_attempts() const = 0;
};

/// Samples a FaultProfile for one job. Construct one per job with a
/// distinct `stream` (the job id), then point it at each phase in turn via
/// begin_phase(); the per-task objStore request count is a callback because
/// fine-grained input splits give different tasks different tiers.
class FaultInjector final : public TaskFaultModel {
public:
    using RequestCountFn = std::function<double(std::size_t task)>;

    FaultInjector(const FaultProfile& profile, std::uint64_t stream)
        : profile_(&profile), rng_(Rng(profile.seed).fork(stream)) {
        profile.validate();
    }

    /// Enter a phase: subsequent attempts charge `requests` objStore
    /// requests per task (nullptr = no objStore requests in this phase).
    void begin_phase(RequestCountFn requests) { requests_ = std::move(requests); }

    AttemptFaults on_attempt(std::size_t task, int attempt) override;
    [[nodiscard]] int max_attempts() const override { return profile_->task_max_attempts; }

    [[nodiscard]] const FaultStats& stats() const { return stats_; }
    /// Engine-side throttle event count is known only after the run;
    /// ClusterSim folds it in before reporting.
    void record_throttle_events(int n) { stats_.throttle_events += n; }

private:
    const FaultProfile* profile_;
    Rng rng_;
    FaultStats stats_;
    RequestCountFn requests_;
};

}  // namespace cast::sim
