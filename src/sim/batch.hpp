// Batched cluster simulation over the thread pool.
//
// The experiment drivers (model calibration, Fig. 2/8 benches, robustness
// sweeps, cluster planning) all share one shape: run many independent
// (job placement, tier capacities, sim options) configurations and collect
// per-configuration results. BatchRunner fans that shape over a
// cast::ThreadPool with a determinism contract:
//
//   * results are written by configuration index, never appended;
//   * each configuration carries its own SimOptions (seed included), and
//     run_job derives every random stream from (options.seed, job id), so
//     a configuration's result is independent of which worker runs it, in
//     what order, and how many workers exist — batch output is
//     bit-identical for 1, 2 or N workers;
//   * each worker thread reuses its own simulation scratch (arena flow
//     engine + wave buffers, thread-local inside ClusterSim::run_job), so
//     steady-state batches allocate almost nothing per job.
//
// A configuration that raises SimulationError (fault injection exhausting
// a task's attempt budget) is captured in its outcome instead of aborting
// the batch; precondition violations (malformed configs) still propagate.
#pragma once

#include <string>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "common/thread_pool.hpp"
#include "sim/mapreduce.hpp"

namespace cast::sim {

/// One independent simulation: a placed job on a provisioned cluster.
struct BatchConfig {
    JobPlacement placement;
    TierCapacities capacities;
    SimOptions options;
};

/// Result slot for one configuration, written by index.
struct BatchOutcome {
    JobResult result;
    /// True when the simulation raised SimulationError (injected faults
    /// exhausted a task's attempt budget); `result` is default-initialized.
    bool failed = false;
    std::string error;
};

struct BatchOptions {
    /// parallel_for grain: configurations per claimed chunk. Jobs are
    /// coarse units (one job simulates thousands of flow events), so the
    /// default claims one config at a time for best load balance.
    std::size_t grain = 1;
};

/// Fans a vector of configurations over a thread pool. Stateless between
/// runs apart from the cluster/catalog it simulates on.
class BatchRunner {
public:
    BatchRunner(cloud::ClusterSpec cluster, cloud::StorageCatalog catalog,
                BatchOptions options = {});

    /// Run every configuration; outcome[i] corresponds to configs[i].
    /// With a null pool (or a 1-worker pool) the batch runs serially on the
    /// calling thread — the results are bit-identical either way.
    [[nodiscard]] std::vector<BatchOutcome> run(const std::vector<BatchConfig>& configs,
                                                ThreadPool* pool = nullptr) const;

private:
    [[nodiscard]] BatchOutcome run_one(const BatchConfig& config) const;

    cloud::ClusterSpec cluster_;
    cloud::StorageCatalog catalog_;
    BatchOptions options_;
};

}  // namespace cast::sim
