#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>

namespace cast::sim {

FaultProfile FaultProfile::scaled(double intensity, std::uint64_t seed, Seconds horizon) {
    CAST_EXPECTS_MSG(intensity >= 0.0 && intensity <= 1.0, "intensity must be in [0, 1]");
    CAST_EXPECTS_MSG(horizon.value() > 0.0, "horizon must be positive");
    FaultProfile p;
    p.seed = seed;
    if (intensity <= 0.0) return p;  // enabled() == false: exact seed behaviour

    p.object_store_error_rate = 0.03 * intensity;
    p.task_kill_prob = 0.01 * intensity;
    p.straggler_prob = 0.05 * intensity;
    p.straggler_factor = 1.0 + 2.0 * intensity;

    // Throttling: each tier suffers periodic incident windows whose depth
    // and width grow with intensity. Offsets are jittered per tier from the
    // profile seed so tiers do not throttle in lock-step.
    Rng rng = Rng(seed).fork(0x7468726f74ULL);  // "throt"
    const double period_s = 300.0;
    const double duration_s = 20.0 + 70.0 * intensity;
    const double factor = std::max(0.25, 1.0 - 0.6 * intensity);
    for (cloud::StorageTier tier : cloud::kAllTiers) {
        const double offset = rng.uniform(0.0, period_s);
        for (double t = offset; t < horizon.value(); t += period_s) {
            p.episodes.push_back(ThrottleEpisode{tier, Seconds{t}, Seconds{duration_s},
                                                 factor});
        }
    }
    return p;
}

AttemptFaults FaultInjector::on_attempt(std::size_t task, int attempt) {
    AttemptFaults a;
    const FaultProfile& p = *profile_;
    if (attempt > 0) ++stats_.task_retries;

    // Straggler amplification: the attempt runs, just slowly.
    if (p.straggler_prob > 0.0 && rng_.uniform() < p.straggler_prob) {
        a.demand_scale = p.straggler_factor;
        ++stats_.stragglers;
    }

    // VM preemption / task kill: the attempt completes its work and is then
    // thrown away (we charge the full demand — the paper's speculative-
    // execution tail comes from exactly this wasted work).
    if (p.task_kill_prob > 0.0 && rng_.uniform() < p.task_kill_prob) {
        a.fail = true;
    }

    // Object-store request errors: each request retries with exponential
    // backoff; a request that exhausts its retries fails the attempt.
    if (p.object_store_error_rate > 0.0 && requests_) {
        const int n = static_cast<int>(std::llround(requests_(task)));
        for (int r = 0; r < n; ++r) {
            int tries = 0;
            while (rng_.uniform() < p.object_store_error_rate) {
                if (tries >= p.retry.max_request_retries) {
                    a.fail = true;  // retries exhausted: task attempt fails
                    break;
                }
                a.delay += p.retry.wait(tries, rng_.uniform());
                ++tries;
                ++stats_.request_retries;
            }
        }
    }

    stats_.backoff_delay += a.delay;
    return a;
}

}  // namespace cast::sim
