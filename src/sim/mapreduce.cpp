#include "sim/mapreduce.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <string>
#include <utility>

#include "sim/flow_engine.hpp"
#include "sim/phase_runner.hpp"

namespace cast::sim {

namespace {

using cloud::StorageTier;
using cloud::tier_index;
using workload::ApplicationProfile;

// Capacity of the uncontended resource used for CPU work and fixed delays.
constexpr double kUnboundedMbps = 1e15;

std::atomic<bool> g_scratch_reuse{true};

}  // namespace

void set_scratch_reuse(bool enabled) {
    g_scratch_reuse.store(enabled, std::memory_order_relaxed);
}

bool scratch_reuse_enabled() { return g_scratch_reuse.load(std::memory_order_relaxed); }

JobPlacement JobPlacement::on_tier(const workload::JobSpec& job, StorageTier tier) {
    JobPlacement p;
    p.job = job;
    p.input_splits = {InputSplit{tier, 1.0}};
    p.intermediate_tier = tier;
    p.output_tier = tier;
    if (tier == StorageTier::kEphemeralSsd) {
        // ephSSD offers no persistence: inputs come down from, and outputs
        // go back to, the object store (Fig. 1 caption).
        p.stage_in = true;
        p.stage_out = true;
    } else if (tier == StorageTier::kObjectStore) {
        // Intermediate (shuffle) data cannot live in the object store; the
        // paper attaches a persSSD volume for it (§3.1.1).
        p.intermediate_tier = StorageTier::kPersistentSsd;
    }
    return p;
}

void JobPlacement::validate() const {
    job.validate();
    CAST_EXPECTS_MSG(!input_splits.empty(), "placement needs at least one input split");
    double total = 0.0;
    for (const auto& s : input_splits) {
        CAST_EXPECTS_MSG(s.fraction > 0.0, "input split fraction must be positive");
        total += s.fraction;
    }
    CAST_EXPECTS_MSG(approx_equal(total, 1.0, 1e-6), "input split fractions must sum to 1");
    CAST_EXPECTS_MSG(intermediate_tier != StorageTier::kObjectStore,
                     "intermediate data cannot live in the object store");
}

ClusterSim::ClusterSim(cloud::ClusterSpec cluster, cloud::StorageCatalog catalog,
                       TierCapacities capacities, SimOptions options)
    : cluster_(std::move(cluster)),
      catalog_(std::move(catalog)),
      capacities_(capacities),
      options_(options) {
    cluster_.validate();
    CAST_EXPECTS(options_.jitter_sigma >= 0.0);
    options_.faults.validate();
    for (StorageTier t : cloud::kAllTiers) {
        const auto& service = catalog_.service(t);
        const GigaBytes per_vm = capacities_.of(t);
        if (t == StorageTier::kObjectStore) {
            // Always reachable; capacity only matters for billing.
            perf_[tier_index(t)] = service.performance(per_vm);
        } else if (per_vm.value() > 0.0) {
            const GigaBytes provisioned = service.provision(per_vm);
            capacities_.set(t, provisioned);
            perf_[tier_index(t)] = service.performance(provisioned);
        }
    }
}

MBytesPerSec ClusterSim::tier_bandwidth_per_vm(StorageTier t) const {
    const auto& p = perf_[tier_index(t)];
    CAST_EXPECTS_MSG(p.has_value(), std::string("tier not attached: ") +
                                        std::string(cloud::tier_name(t)));
    return p->read_bw;
}

namespace detail {

/// Per-thread reusable simulation state: the arena flow engine, the
/// resource ids for (vm, tier) volume pools plus the uncontended resource,
/// the per-wave task batch, and the phase-runner bookkeeping. Everything
/// keeps its buffer capacity across jobs; reset() re-registers resources
/// for the next job's topology. The scratch is storage, never state — a
/// fresh scratch and a reused one produce bit-identical simulations.
struct SimScratch {
    FlowEngine engine;
    TaskBatch tasks;
    PhaseScratch phase;

    int vm_count = 0;
    std::array<std::vector<ResourceId>, cloud::kTierCount> pools{};
    std::vector<ResourceId> network_pools;
    ResourceId unbounded = 0;
    // The object store is a shared service with bucket-level aggregate
    // ceilings, so it gets two cluster-wide pools (read / write) instead of
    // per-VM volume pools.
    std::optional<ResourceId> object_store_read;
    std::optional<ResourceId> object_store_write;

    /// Rewind the engine and re-register the base resources (uncontended +
    /// per-VM network pools), matching a freshly constructed engine's
    /// resource-id assignment exactly.
    void reset(int vms, MBytesPerSec network_bw) {
        engine.reset();
        tasks.clear();
        vm_count = vms;
        for (auto& v : pools) v.clear();
        network_pools.clear();
        object_store_read.reset();
        object_store_write.reset();
        unbounded = engine.add_resource(MBytesPerSec{kUnboundedMbps});
        network_pools.reserve(static_cast<std::size_t>(vms));
        for (int i = 0; i < vms; ++i) {
            network_pools.push_back(engine.add_resource(network_bw));
        }
    }

    [[nodiscard]] ResourceId network(int vm) const {
        CAST_EXPECTS(vm >= 0 && vm < static_cast<int>(network_pools.size()));
        return network_pools[static_cast<std::size_t>(vm)];
    }

    void attach_tier(StorageTier t, MBytesPerSec per_vm_bw) {
        CAST_EXPECTS(t != StorageTier::kObjectStore);
        auto& v = pools[tier_index(t)];
        if (!v.empty()) return;
        v.reserve(static_cast<std::size_t>(vm_count));
        for (int i = 0; i < vm_count; ++i) v.push_back(engine.add_resource(per_vm_bw));
    }

    void attach_object_store(MBytesPerSec cluster_read, MBytesPerSec cluster_write) {
        if (object_store_read) return;
        object_store_read = engine.add_resource(cluster_read);
        object_store_write = engine.add_resource(cluster_write);
    }

    [[nodiscard]] ResourceId pool(StorageTier t, int vm) const {
        CAST_EXPECTS_MSG(t != StorageTier::kObjectStore,
                         "objStore access must name a direction");
        const auto& v = pools[tier_index(t)];
        CAST_EXPECTS_MSG(!v.empty(), "tier pool not attached");
        CAST_EXPECTS(vm >= 0 && vm < static_cast<int>(v.size()));
        return v[static_cast<std::size_t>(vm)];
    }

    [[nodiscard]] ResourceId read_pool(StorageTier t, int vm) const {
        if (t == StorageTier::kObjectStore) {
            CAST_EXPECTS(object_store_read.has_value());
            return *object_store_read;
        }
        return pool(t, vm);
    }

    [[nodiscard]] ResourceId write_pool(StorageTier t, int vm) const {
        if (t == StorageTier::kObjectStore) {
            CAST_EXPECTS(object_store_write.has_value());
            return *object_store_write;
        }
        return pool(t, vm);
    }
};

}  // namespace detail

JobResult ClusterSim::run_job(const JobPlacement& placement) const {
    if (scratch_reuse_enabled()) {
        // One scratch per thread: BatchRunner workers, profiler calibration
        // threads and serial callers all reuse their own arena.
        static thread_local detail::SimScratch scratch;
        return run_job_impl(placement, scratch);
    }
    detail::SimScratch scratch;
    return run_job_impl(placement, scratch);
}

JobResult ClusterSim::run_job_impl(const JobPlacement& placement,
                                   detail::SimScratch& res) const {
    placement.validate();
    const workload::JobSpec& job = placement.job;
    const ApplicationProfile& app = job.profile();
    const int nvm = cluster_.worker_count;
    const int map_slots = cluster_.worker.map_slots;
    const int reduce_slots = cluster_.worker.reduce_slots;

    // Every tier the job touches must be attached (provisioned), except the
    // object store which is always reachable.
    auto require_tier = [&](StorageTier t) {
        if (t == StorageTier::kObjectStore) return;
        CAST_EXPECTS_MSG(perf_[tier_index(t)].has_value(),
                         std::string("job placed on unprovisioned tier ") +
                             std::string(cloud::tier_name(t)));
    };
    for (const auto& s : placement.input_splits) require_tier(s.tier);
    require_tier(placement.intermediate_tier);
    require_tier(placement.output_tier);

    // Per-stream ceiling: one task stream cannot exceed its slot share of
    // the volume even when other slots are idle. This models the
    // queue-depth-based throttling of provider block devices and HDFS's
    // per-reader pacing, and is what produces the paper's Fig. 5 result:
    // tasks on a slow tier run at slow-tier pace no matter how few they
    // are, so mixed placements track the slow tier.
    auto per_stream_cap = [&](StorageTier t) {
        const auto& p = perf_[tier_index(t)];
        CAST_EXPECTS(p.has_value());
        return p->read_bw.value() / static_cast<double>(map_slots);
    };

    FlowEngine& engine = res.engine;
    res.reset(nvm, cluster_.worker.shuffle_network_bw);
    for (StorageTier t : cloud::kAllTiers) {
        const bool used =
            std::any_of(placement.input_splits.begin(), placement.input_splits.end(),
                        [&](const InputSplit& s) { return s.tier == t; }) ||
            placement.intermediate_tier == t || placement.output_tier == t ||
            (t == StorageTier::kObjectStore && (placement.stage_in || placement.stage_out));
        if (used) {
            require_tier(t);
            if (t == StorageTier::kObjectStore) {
                const auto& svc = catalog_.service(t);
                res.attach_object_store(svc.cluster_read_bw(GigaBytes{0.0}, nvm),
                                        svc.cluster_write_bw(GigaBytes{0.0}, nvm));
            } else {
                res.attach_tier(t, perf_[tier_index(t)]->read_bw);
            }
        }
    }

    Rng rng = Rng(options_.seed).fork(static_cast<std::uint64_t>(job.id));
    auto jitter = [&]() {
        return options_.jitter_sigma > 0.0 ? rng.lognormal_jitter(options_.jitter_sigma) : 1.0;
    };

    // Fault injection: a per-job injector with its own stream (so enabling
    // faults never perturbs the jitter stream above), plus throttling
    // episodes scheduled onto every pool of the affected tiers. All of it
    // is gated on enabled(): a zero profile leaves this function
    // bit-identical to the fault-free simulator.
    std::optional<FaultInjector> injector;
    if (options_.faults.enabled()) {
        injector.emplace(options_.faults, static_cast<std::uint64_t>(job.id));
        for (const auto& ep : options_.faults.episodes) {
            if (ep.duration.value() <= 0.0 || ep.rate_factor >= 1.0) continue;
            auto throttle_pool = [&](ResourceId rid) {
                const double base = engine.resource_capacity(rid);
                engine.schedule_capacity_change(rid, ep.start,
                                                MBytesPerSec{base * ep.rate_factor});
                engine.schedule_capacity_change(rid, ep.start + ep.duration,
                                                MBytesPerSec{base});
            };
            if (ep.tier == StorageTier::kObjectStore) {
                // Bucket-level incident: both directions of the shared service.
                if (res.object_store_read) throttle_pool(*res.object_store_read);
                if (res.object_store_write) throttle_pool(*res.object_store_write);
            } else {
                // Provider-side volume incident, correlated across VMs.
                for (ResourceId rid : res.pools[tier_index(ep.tier)]) throttle_pool(rid);
            }
        }
    }

    // The wave batch, rebuilt (capacity-reusing) for every phase.
    TaskBatch& batch = res.tasks;

    // Run one phase through the injector (request counts are per-task
    // because fine-grained splits give tasks different input tiers), and
    // re-raise injected failures with (job, phase) context.
    auto run_faulted = [&](const char* phase_name, int slots,
                           FaultInjector::RequestCountFn requests) {
        if (injector) injector->begin_phase(std::move(requests));
        try {
            return run_phase(engine, batch, nvm, slots, res.phase,
                             injector ? &*injector : nullptr, res.unbounded);
        } catch (const SimulationError& e) {
            throw e.with_context(job.name, phase_name);
        }
    };

    const double input_mb = job.input.megabytes();
    const double inter_mb = job.intermediate().megabytes();
    const double output_mb = job.output().megabytes();
    const int m = job.map_tasks;
    const int r = job.reduce_tasks;
    const double chunk_mb = input_mb / m;
    const Seconds obj_overhead = catalog_.service(StorageTier::kObjectStore).request_overhead();

    PhaseTimes phases;

    // ---- Stage in: bulk parallel copy objStore -> input tiers. One
    // high-queue-depth stream per VM (distcp-style), so the per-stream
    // ceiling does not apply; the copy runs at the slower of the
    // object-store allocation and the destination volume's write bandwidth.
    if (placement.stage_in) {
        batch.clear();
        for (const auto& split : placement.input_splits) {
            CAST_EXPECTS_MSG(split.tier != StorageTier::kObjectStore,
                             "staging in to objStore makes no sense");
            const double per_vm_mb = input_mb * split.fraction / nvm;
            const double dest_bw = perf_[tier_index(split.tier)]->write_bw.value();
            for (int vm = 0; vm < nvm; ++vm) {
                batch.begin_task(vm);
                batch.add_segment(res.read_pool(StorageTier::kObjectStore, vm),
                                  per_vm_mb * jitter(), dest_bw);
            }
        }
        // Each stage task holds one bulk objStore session: one "request"
        // that can hit a transient error and back off.
        phases.stage_in =
            run_faulted("stage_in", /*slots=*/2, [](std::size_t) { return 1.0; });
    }

    // Assign each map task an input tier according to the split fractions:
    // the first ceil(f1*m) tasks read split 1, and so on (HDFS places a
    // file's blocks contiguously per tier).
    auto input_tier_of_task = [&](int t) {
        double cum = 0.0;
        for (const auto& split : placement.input_splits) {
            cum += split.fraction;
            if (static_cast<double>(t + 1) <= cum * m + 1e-9) return split.tier;
        }
        return placement.input_splits.back().tier;
    };

    for (int iter = 0; iter < app.iterations(); ++iter) {
        const bool last_iter = iter + 1 == app.iterations();
        const StorageTier out_tier =
            last_iter ? placement.output_tier : placement.intermediate_tier;

        // ---- Map phase.
        {
            batch.clear();
            batch.reserve(static_cast<std::size_t>(m), static_cast<std::size_t>(m) * 3);
            for (int t = 0; t < m; ++t) {
                const int vm = t % nvm;
                const StorageTier in_tier = input_tier_of_task(t);
                batch.begin_task(vm);
                if (in_tier == StorageTier::kObjectStore) {
                    // Connection setup per input object (GCS connector).
                    batch.add_segment(
                        res.unbounded,
                        app.files_per_map_task() * obj_overhead.value() * jitter(), 1.0);
                }
                // Streamed read + compute of this task's chunk.
                batch.add_segment(
                    res.read_pool(in_tier, vm), chunk_mb * jitter(),
                    std::min(app.map_compute_rate().value(), per_stream_cap(in_tier)));
                // Emit intermediate data.
                if (inter_mb > 0.0) {
                    batch.add_segment(
                        res.write_pool(placement.intermediate_tier, vm),
                        (inter_mb / m) * jitter(),
                        std::min(app.map_compute_rate().value(),
                                 per_stream_cap(placement.intermediate_tier)));
                }
            }
            const double files_per_map = app.files_per_map_task();
            phases.map += run_faulted(
                "map", map_slots, [&, files_per_map](std::size_t t) {
                    return input_tier_of_task(static_cast<int>(t)) ==
                                   StorageTier::kObjectStore
                               ? files_per_map
                               : 0.0;
                });
        }

        // ---- Shuffle phase: each reduce task fetches its partition of the
        // intermediate data from the map-side volumes. On a multi-node
        // cluster the fetches cross the network and drain through the
        // Hadoop shuffle path's per-VM throughput; on a single node the
        // shuffle is a local copy on the intermediate volume.
        if (inter_mb > 0.0) {
            batch.clear();
            batch.reserve(static_cast<std::size_t>(r), static_cast<std::size_t>(r));
            for (int t = 0; t < r; ++t) {
                const int vm = t % nvm;
                const ResourceId pool = nvm > 1
                                            ? res.network(vm)
                                            : res.pool(placement.intermediate_tier, vm);
                batch.begin_task(vm);
                batch.add_segment(pool, (inter_mb / r) * jitter(),
                                  std::min(app.shuffle_transfer_rate().value(),
                                           per_stream_cap(placement.intermediate_tier)));
            }
            phases.shuffle += run_faulted("shuffle", reduce_slots, /*requests=*/nullptr);
        }

        // ---- Reduce phase: merge-read the shuffled partition, compute,
        // write the output.
        {
            batch.clear();
            batch.reserve(static_cast<std::size_t>(r), static_cast<std::size_t>(r) * 4);
            const double out_this_iter_mb = last_iter ? output_mb : inter_mb * 0.05;
            for (int t = 0; t < r; ++t) {
                const int vm = t % nvm;
                batch.begin_task(vm);
                std::size_t segments = 0;
                if (inter_mb > 0.0) {
                    batch.add_segment(
                        res.pool(placement.intermediate_tier, vm), (inter_mb / r) * jitter(),
                        std::min(app.reduce_compute_rate().value(),
                                 per_stream_cap(placement.intermediate_tier)));
                    ++segments;
                }
                if (out_this_iter_mb > 0.0) {
                    if (out_tier == StorageTier::kObjectStore) {
                        // Connection setup + commit for every output object,
                        // then the write itself, then the rename-as-copy the
                        // Hadoop output committer performs on object stores.
                        batch.add_segment(
                            res.unbounded,
                            app.files_per_reduce_task() * obj_overhead.value() * jitter(),
                            1.0);
                        batch.add_segment(
                            res.write_pool(out_tier, vm), (out_this_iter_mb / r) * jitter(),
                            std::min(app.reduce_compute_rate().value(),
                                     per_stream_cap(out_tier)));
                        batch.add_segment(res.write_pool(out_tier, vm),
                                          (out_this_iter_mb / r) * jitter(),
                                          per_stream_cap(out_tier));
                    } else {
                        batch.add_segment(
                            res.write_pool(out_tier, vm), (out_this_iter_mb / r) * jitter(),
                            std::min(app.reduce_compute_rate().value(),
                                     per_stream_cap(out_tier)));
                    }
                    ++segments;
                }
                if (segments == 0) {
                    // Degenerate (no intermediate, no output): a token tick
                    // so the task still occupies its slot.
                    batch.add_segment(res.unbounded, 1e-3, 1.0);
                }
            }
            const double files_per_reduce =
                out_tier == StorageTier::kObjectStore ? app.files_per_reduce_task() : 0.0;
            phases.reduce += run_faulted(
                "reduce", reduce_slots,
                [files_per_reduce](std::size_t) { return files_per_reduce; });
        }
    }

    // ---- Stage out: bulk copy of the final output to the object store.
    if (placement.stage_out && output_mb > 0.0 &&
        placement.output_tier != StorageTier::kObjectStore) {
        batch.clear();
        const double src_bw = perf_[tier_index(placement.output_tier)]->read_bw.value();
        for (int vm = 0; vm < nvm; ++vm) {
            batch.begin_task(vm);
            batch.add_segment(res.write_pool(StorageTier::kObjectStore, vm),
                              (output_mb / nvm) * jitter(), src_bw);
        }
        phases.stage_out =
            run_faulted("stage_out", /*slots=*/2, [](std::size_t) { return 1.0; });
    }

    JobResult result;
    result.phases = phases;
    result.makespan = engine.now();
    if (injector) {
        injector->record_throttle_events(
            static_cast<int>(engine.applied_capacity_events()));
        result.faults = injector->stats();
    }
    CAST_ENSURES(result.makespan.value() >= 0.0);
    CAST_ENSURES(approx_equal(result.makespan.value(), phases.total().value(), 1e-6));
    return result;
}

Seconds ClusterSim::run_transfer(GigaBytes volume, StorageTier from, StorageTier to) const {
    CAST_EXPECTS(volume.value() >= 0.0);
    if (volume.value() <= 0.0 || from == to) return Seconds{0.0};
    const auto& src = perf_[tier_index(from)];
    const auto& dst = perf_[tier_index(to)];
    CAST_EXPECTS_MSG(src.has_value() && dst.has_value(),
                     "transfer endpoints must be provisioned tiers");
    const int nvm = cluster_.worker_count;
    // One bulk stream per VM between the source and destination (deep
    // queues, so no slot-share throttling). Block volumes scale with the
    // VM count; an objStore endpoint is bounded by its cluster-level
    // aggregate ceiling.
    auto side_bw = [&](StorageTier t, bool reading) {
        const auto& svc = catalog_.service(t);
        if (t == StorageTier::kObjectStore) {
            return reading ? svc.cluster_read_bw(GigaBytes{0.0}, nvm).value()
                           : svc.cluster_write_bw(GigaBytes{0.0}, nvm).value();
        }
        const auto& p = perf_[tier_index(t)];
        return (reading ? p->read_bw.value() : p->write_bw.value()) * nvm;
    };
    const double cluster_rate = std::min(side_bw(from, true), side_bw(to, false));
    CAST_ENSURES(cluster_rate > 0.0);
    return Seconds{volume.megabytes() / cluster_rate};
}

std::vector<JobResult> ClusterSim::run_serial(
    const std::vector<JobPlacement>& placements) const {
    std::vector<JobResult> results;
    results.reserve(placements.size());
    for (const auto& p : placements) results.push_back(run_job(p));
    return results;
}

}  // namespace cast::sim
