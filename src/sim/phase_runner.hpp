// Slot-limited task scheduling on top of the flow engine.
//
// A MapReduce phase is a bag of tasks, each a sequence of segments (flows
// or fixed delays), executed under per-VM slot limits exactly like Hadoop
// 1.x task slots: a VM runs at most `slots_per_vm` tasks of the phase at
// once, and a finishing task immediately yields its slot to the next queued
// task on that VM. Unlike the analytical model's whole-wave quantization
// (Eq. 1), slots free up task-by-task — one of the deliberate differences
// that gives the model-accuracy experiment (Fig. 8) a real gap to measure.
//
// With a TaskFaultModel attached (sim/faults.hpp), each task attempt may be
// amplified (stragglers), delayed (retry backoff) or failed outright; a
// failed attempt re-joins the back of its VM's queue — a Hadoop
// re-execution, which is what grows the tail into extra waves. A task that
// exhausts its attempt budget raises SimulationError.
//
// Storage discipline: a phase is described by a TaskBatch — tasks index
// into one contiguous segment pool — and executed against a PhaseScratch
// holding the queues and bookkeeping vectors. Both keep their capacity
// across phases and jobs, so a reused simulation allocates nothing per
// wave. The SimTask-vector overload remains as a convenience wrapper.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/faults.hpp"
#include "sim/flow_engine.hpp"

namespace cast::sim {

/// One unit of sequential work inside a task.
struct Segment {
    ResourceId resource = 0;
    double demand_mb = 0.0;
    double cap_mbps = 0.0;
};

/// A schedulable task: runs its segments in order on its VM's slot.
struct SimTask {
    int vm = 0;
    std::vector<Segment> segments;
};

/// Flat, reusable phase description: every task is a (vm, segment-range)
/// view into one shared segment pool. clear() keeps capacity, so building
/// the next wave into the same batch is allocation-free in steady state.
class TaskBatch {
public:
    void clear() {
        tasks_.clear();
        segments_.clear();
    }

    void reserve(std::size_t tasks, std::size_t segments) {
        tasks_.reserve(tasks);
        segments_.reserve(segments);
    }

    /// Start a new task on `vm`; subsequent add_segment calls append to it
    /// until the next begin_task.
    void begin_task(int vm) {
        tasks_.push_back(TaskRef{vm, static_cast<std::uint32_t>(segments_.size()), 0});
    }

    void add_segment(ResourceId resource, double demand_mb, double cap_mbps) {
        CAST_EXPECTS_MSG(!tasks_.empty(), "add_segment before begin_task");
        segments_.push_back(Segment{resource, demand_mb, cap_mbps});
        ++tasks_.back().seg_count;
    }

    [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
    [[nodiscard]] bool empty() const { return tasks_.empty(); }

    [[nodiscard]] int vm_of(std::size_t task) const { return tasks_[task].vm; }

    [[nodiscard]] std::size_t segment_count(std::size_t task) const {
        return tasks_[task].seg_count;
    }

    [[nodiscard]] const Segment& segment(std::size_t task, std::size_t index) const {
        return segments_[tasks_[task].seg_begin + index];
    }

private:
    struct TaskRef {
        int vm;
        std::uint32_t seg_begin;
        std::uint32_t seg_count;
    };

    std::vector<TaskRef> tasks_;
    std::vector<Segment> segments_;
};

/// Reusable bookkeeping for run_phase. All vectors keep their capacity
/// across phases; one scratch serves any number of sequential phases on
/// one thread.
struct PhaseScratch {
    /// Per-VM FIFO queues of pending task indices, flattened: queue[vm] is
    /// pending_[...] with a consumed-head cursor (avoids deque node churn;
    /// re-executions append at the back like Hadoop's wave queue).
    struct VmQueue {
        std::vector<std::size_t> items;
        std::size_t head = 0;

        [[nodiscard]] bool empty() const { return head >= items.size(); }
        [[nodiscard]] std::size_t pop_front() { return items[head++]; }
        void push_back(std::size_t v) { items.push_back(v); }
        void clear() {
            items.clear();
            head = 0;
        }
    };

    struct Running {
        std::size_t task = 0;
        std::size_t next_segment = 0;  // segment to start after current completes
    };

    std::vector<VmQueue> queues;
    std::vector<Running> by_flow;
    std::vector<int> free_slots;
    std::vector<int> attempts;
    std::vector<AttemptFaults> plans;
};

/// Run all tasks to completion under per-VM slot limits; returns the phase
/// makespan (time from call to last task completion). The engine's clock
/// carries across calls, so a caller can chain phases on one engine.
///
/// When `faults` is non-null, every task attempt is planned through it:
/// its demand scale multiplies every segment, its delay is charged first
/// (as a flow on `delay_resource`, which should be an uncontended resource
/// with demand interpreted as seconds at rate 1), and a failing attempt
/// re-enqueues the task at the back of its VM queue. A task whose attempts
/// are exhausted raises SimulationError. A null `faults` leaves the seed
/// scheduling bit-identical.
inline Seconds run_phase(FlowEngine& engine, const TaskBatch& tasks, int vm_count,
                         int slots_per_vm, PhaseScratch& scratch,
                         TaskFaultModel* faults = nullptr, ResourceId delay_resource = 0) {
    CAST_EXPECTS(vm_count >= 1);
    CAST_EXPECTS(slots_per_vm >= 1);
    const Seconds start = engine.now();
    if (tasks.empty()) return Seconds{0.0};

    for (std::size_t i = 0; i < tasks.task_count(); ++i) {
        CAST_EXPECTS_MSG(tasks.vm_of(i) >= 0 && tasks.vm_of(i) < vm_count,
                         "task assigned to unknown VM");
        CAST_EXPECTS_MSG(tasks.segment_count(i) > 0, "task with no segments");
    }

    auto& queues = scratch.queues;
    queues.resize(static_cast<std::size_t>(vm_count));
    for (auto& q : queues) q.clear();
    for (std::size_t i = 0; i < tasks.task_count(); ++i) {
        queues[static_cast<std::size_t>(tasks.vm_of(i))].push_back(i);
    }

    // flow id -> running record. Flow ids grow monotonically per engine, so
    // an offset-indexed vector works.
    auto& by_flow = scratch.by_flow;
    by_flow.clear();
    std::size_t flow_id_base = 0;
    bool base_known = false;

    auto& free_slots = scratch.free_slots;
    free_slots.assign(static_cast<std::size_t>(vm_count), slots_per_vm);
    std::size_t tasks_left = tasks.task_count();

    // Per-task fault state, allocated only when faults are injected.
    auto& attempts = scratch.attempts;
    auto& plans = scratch.plans;
    if (faults != nullptr) {
        attempts.assign(tasks.task_count(), 0);
        plans.assign(tasks.task_count(), AttemptFaults{});
    }

    auto record_flow = [&](FlowId id, std::size_t task_idx, std::size_t next_segment) {
        if (!base_known) {
            flow_id_base = id;
            base_known = true;
        }
        CAST_ENSURES_MSG(id >= flow_id_base, "flow ids must grow monotonically");
        const std::size_t slot = id - flow_id_base;
        if (slot >= by_flow.size()) by_flow.resize(slot + 1);
        by_flow[slot] = PhaseScratch::Running{task_idx, next_segment};
    };

    auto start_segment = [&](std::size_t task_idx, std::size_t seg_idx) {
        const Segment& seg = tasks.segment(task_idx, seg_idx);
        const double scale = faults != nullptr ? plans[task_idx].demand_scale : 1.0;
        const FlowId id =
            engine.start_flow(seg.resource, seg.demand_mb * scale, seg.cap_mbps);
        record_flow(id, task_idx, seg_idx + 1);
    };

    auto launch_attempt = [&](std::size_t task_idx) {
        if (faults != nullptr) {
            plans[task_idx] = faults->on_attempt(task_idx, attempts[task_idx]);
            if (plans[task_idx].delay.value() > 0.0) {
                // Backoff wait: a flow of `delay` "MB" capped at 1 MB/s on
                // the uncontended delay resource lasts exactly `delay`
                // seconds. Segment 0 starts when it completes.
                const FlowId id = engine.start_flow(delay_resource,
                                                    plans[task_idx].delay.value(), 1.0);
                record_flow(id, task_idx, 0);
                return;
            }
        }
        start_segment(task_idx, 0);
    };

    auto fill_slots = [&](int vm) {
        auto& q = queues[static_cast<std::size_t>(vm)];
        auto& slots = free_slots[static_cast<std::size_t>(vm)];
        while (slots > 0 && !q.empty()) {
            const std::size_t task_idx = q.pop_front();
            --slots;
            launch_attempt(task_idx);
        }
    };

    for (int vm = 0; vm < vm_count; ++vm) fill_slots(vm);

    while (tasks_left > 0) {
        const std::vector<FlowId>& completed = engine.advance();
        CAST_ENSURES_MSG(!completed.empty(), "phase deadlocked: tasks left but no active flow");
        for (FlowId id : completed) {
            if (id < flow_id_base || id - flow_id_base >= by_flow.size()) continue;
            const PhaseScratch::Running r = by_flow[id - flow_id_base];
            if (r.next_segment < tasks.segment_count(r.task)) {
                start_segment(r.task, r.next_segment);
                continue;
            }
            const int vm = tasks.vm_of(r.task);
            if (faults != nullptr && plans[r.task].fail) {
                // Injected failure: the attempt's work is wasted and the
                // task re-joins its VM's wave queue (Hadoop re-execution).
                const int next_attempt = ++attempts[r.task];
                if (next_attempt >= faults->max_attempts()) {
                    throw SimulationError("task " + std::to_string(r.task) +
                                          " exhausted " +
                                          std::to_string(faults->max_attempts()) +
                                          " attempts (injected faults)");
                }
                ++free_slots[static_cast<std::size_t>(vm)];
                queues[static_cast<std::size_t>(vm)].push_back(r.task);
                fill_slots(vm);
                continue;
            }
            --tasks_left;
            ++free_slots[static_cast<std::size_t>(vm)];
            fill_slots(vm);
        }
    }
    return engine.now() - start;
}

/// Convenience overload over a SimTask vector (tests, simple callers):
/// copies the tasks into a local TaskBatch and runs with local scratch.
inline Seconds run_phase(FlowEngine& engine, const std::vector<SimTask>& tasks,
                         int vm_count, int slots_per_vm, TaskFaultModel* faults = nullptr,
                         ResourceId delay_resource = 0) {
    TaskBatch batch;
    std::size_t segments = 0;
    for (const SimTask& t : tasks) segments += t.segments.size();
    batch.reserve(tasks.size(), segments);
    for (const SimTask& t : tasks) {
        batch.begin_task(t.vm);
        for (const Segment& s : t.segments) {
            batch.add_segment(s.resource, s.demand_mb, s.cap_mbps);
        }
    }
    PhaseScratch scratch;
    return run_phase(engine, batch, vm_count, slots_per_vm, scratch, faults,
                     delay_resource);
}

}  // namespace cast::sim
