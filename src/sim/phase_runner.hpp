// Slot-limited task scheduling on top of the flow engine.
//
// A MapReduce phase is a bag of tasks, each a sequence of segments (flows
// or fixed delays), executed under per-VM slot limits exactly like Hadoop
// 1.x task slots: a VM runs at most `slots_per_vm` tasks of the phase at
// once, and a finishing task immediately yields its slot to the next queued
// task on that VM. Unlike the analytical model's whole-wave quantization
// (Eq. 1), slots free up task-by-task — one of the deliberate differences
// that gives the model-accuracy experiment (Fig. 8) a real gap to measure.
//
// With a TaskFaultModel attached (sim/faults.hpp), each task attempt may be
// amplified (stragglers), delayed (retry backoff) or failed outright; a
// failed attempt re-joins the back of its VM's queue — a Hadoop
// re-execution, which is what grows the tail into extra waves. A task that
// exhausts its attempt budget raises SimulationError.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/faults.hpp"
#include "sim/flow_engine.hpp"

namespace cast::sim {

/// One unit of sequential work inside a task.
struct Segment {
    ResourceId resource = 0;
    double demand_mb = 0.0;
    double cap_mbps = 0.0;
};

/// A schedulable task: runs its segments in order on its VM's slot.
struct SimTask {
    int vm = 0;
    std::vector<Segment> segments;
};

/// Run all tasks to completion under per-VM slot limits; returns the phase
/// makespan (time from call to last task completion). The engine's clock
/// carries across calls, so a caller can chain phases on one engine.
///
/// When `faults` is non-null, every task attempt is planned through it:
/// its demand scale multiplies every segment, its delay is charged first
/// (as a flow on `delay_resource`, which should be an uncontended resource
/// with demand interpreted as seconds at rate 1), and a failing attempt
/// re-enqueues the task at the back of its VM queue. A task whose attempts
/// are exhausted raises SimulationError. A null `faults` leaves the seed
/// scheduling bit-identical.
inline Seconds run_phase(FlowEngine& engine, std::vector<SimTask> tasks, int vm_count,
                         int slots_per_vm, TaskFaultModel* faults = nullptr,
                         ResourceId delay_resource = 0) {
    CAST_EXPECTS(vm_count >= 1);
    CAST_EXPECTS(slots_per_vm >= 1);
    const Seconds start = engine.now();
    if (tasks.empty()) return Seconds{0.0};

    for (const SimTask& t : tasks) {
        CAST_EXPECTS_MSG(t.vm >= 0 && t.vm < vm_count, "task assigned to unknown VM");
        CAST_EXPECTS_MSG(!t.segments.empty(), "task with no segments");
    }

    // Per-VM FIFO queues of pending task indices.
    std::vector<std::deque<std::size_t>> queues(static_cast<std::size_t>(vm_count));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        queues[static_cast<std::size_t>(tasks[i].vm)].push_back(i);
    }

    struct Running {
        std::size_t task = 0;
        std::size_t next_segment = 0;  // segment to start after current completes
    };
    // flow id -> running record. Flow ids grow monotonically per engine, so
    // an offset-indexed vector works.
    std::vector<Running> by_flow;
    std::size_t flow_id_base = 0;
    bool base_known = false;

    std::vector<int> free_slots(static_cast<std::size_t>(vm_count), slots_per_vm);
    std::size_t tasks_left = tasks.size();

    // Per-task fault state, allocated only when faults are injected.
    std::vector<int> attempts;
    std::vector<AttemptFaults> plans;
    if (faults != nullptr) {
        attempts.assign(tasks.size(), 0);
        plans.assign(tasks.size(), AttemptFaults{});
    }

    auto record_flow = [&](FlowId id, std::size_t task_idx, std::size_t next_segment) {
        if (!base_known) {
            flow_id_base = id;
            base_known = true;
        }
        CAST_ENSURES_MSG(id >= flow_id_base, "flow ids must grow monotonically");
        const std::size_t slot = id - flow_id_base;
        if (slot >= by_flow.size()) by_flow.resize(slot + 1);
        by_flow[slot] = Running{task_idx, next_segment};
    };

    auto start_segment = [&](std::size_t task_idx, std::size_t seg_idx) {
        const Segment& seg = tasks[task_idx].segments[seg_idx];
        const double scale = faults != nullptr ? plans[task_idx].demand_scale : 1.0;
        const FlowId id =
            engine.start_flow(seg.resource, seg.demand_mb * scale, seg.cap_mbps);
        record_flow(id, task_idx, seg_idx + 1);
    };

    auto launch_attempt = [&](std::size_t task_idx) {
        if (faults != nullptr) {
            plans[task_idx] = faults->on_attempt(task_idx, attempts[task_idx]);
            if (plans[task_idx].delay.value() > 0.0) {
                // Backoff wait: a flow of `delay` "MB" capped at 1 MB/s on
                // the uncontended delay resource lasts exactly `delay`
                // seconds. Segment 0 starts when it completes.
                const FlowId id = engine.start_flow(delay_resource,
                                                    plans[task_idx].delay.value(), 1.0);
                record_flow(id, task_idx, 0);
                return;
            }
        }
        start_segment(task_idx, 0);
    };

    auto fill_slots = [&](int vm) {
        auto& q = queues[static_cast<std::size_t>(vm)];
        auto& slots = free_slots[static_cast<std::size_t>(vm)];
        while (slots > 0 && !q.empty()) {
            const std::size_t task_idx = q.front();
            q.pop_front();
            --slots;
            launch_attempt(task_idx);
        }
    };

    for (int vm = 0; vm < vm_count; ++vm) fill_slots(vm);

    while (tasks_left > 0) {
        const std::vector<FlowId> completed = engine.advance();
        CAST_ENSURES_MSG(!completed.empty(), "phase deadlocked: tasks left but no active flow");
        for (FlowId id : completed) {
            if (id < flow_id_base || id - flow_id_base >= by_flow.size()) continue;
            const Running r = by_flow[id - flow_id_base];
            const SimTask& t = tasks[r.task];
            if (r.next_segment < t.segments.size()) {
                start_segment(r.task, r.next_segment);
                continue;
            }
            if (faults != nullptr && plans[r.task].fail) {
                // Injected failure: the attempt's work is wasted and the
                // task re-joins its VM's wave queue (Hadoop re-execution).
                const int next_attempt = ++attempts[r.task];
                if (next_attempt >= faults->max_attempts()) {
                    throw SimulationError("task " + std::to_string(r.task) +
                                          " exhausted " +
                                          std::to_string(faults->max_attempts()) +
                                          " attempts (injected faults)");
                }
                ++free_slots[static_cast<std::size_t>(t.vm)];
                queues[static_cast<std::size_t>(t.vm)].push_back(r.task);
                fill_slots(t.vm);
                continue;
            }
            --tasks_left;
            ++free_slots[static_cast<std::size_t>(t.vm)];
            fill_slots(t.vm);
        }
    }
    return engine.now() - start;
}

}  // namespace cast::sim
