// Discrete-event fair-share flow engine.
//
// The simulator models every I/O-bound activity as a *flow*: a demand (MB)
// draining through one shared resource (a VM's attached volume bandwidth,
// its object-store streaming allocation, ...) at a rate set by max-min fair
// sharing with per-flow rate caps (water-filling). CPU-bound work is a flow
// through an uncontended resource with the compute rate as its cap. The
// engine advances time event-by-event: at each step it water-fills every
// resource whose membership or capacity changed, finds the earliest flow
// completion, advances the clock, and retires finished flows. Slot-limited
// task scheduling sits on top in phase_runner.hpp.
//
// This processor-sharing treatment is what lets the simulator reproduce
// the paper's contention phenomena: tasks on a slow tier starving a mixed
// placement (Fig. 5), capacity-scaled volume bandwidth saturating (Fig. 2),
// and wave-level interference that the analytical model (Eq. 1) does not
// capture (the honest error of Fig. 8).
//
// Hot-path storage discipline (the batch engine runs millions of steps):
//   * flows live in one arena vector whose capacity survives reset(), so a
//     reused engine allocates nothing in steady state;
//   * per-resource member lists are maintained incrementally (insert on
//     start_flow, erase on completion) and kept sorted by cap, so a step
//     re-water-fills only the resources it actually touched and never
//     re-sorts;
//   * capacity events sit in a binary heap (insertion-ordered for ties)
//     instead of a linearly re-sorted vector;
//   * advance() writes completions into a reused buffer and returns a
//     reference — no per-step allocation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cast::sim {

using ResourceId = std::size_t;
using FlowId = std::size_t;

class FlowEngine {
public:
    FlowEngine() = default;

    /// Drop all resources, flows and pending events and rewind the clock to
    /// zero, keeping every buffer's capacity. A reset engine is
    /// indistinguishable from a freshly constructed one (bit-identical
    /// simulations), but re-running a same-shaped job allocates nothing.
    void reset() {
        resources_.clear();
        flows_.clear();
        active_.clear();
        instantly_done_.clear();
        completed_.clear();
        for (auto& v : per_resource_active_) v.clear();
        // per_resource_active_ itself keeps its slots (and their inner
        // capacity); add_resource reuses them index-by-index.
        events_.clear();
        applied_events_ = 0;
        event_seq_ = 0;
        dirty_resources_.clear();
        now_ = 0.0;
    }

    /// Register a shared resource with the given aggregate capacity (MB/s).
    ResourceId add_resource(MBytesPerSec capacity) {
        CAST_EXPECTS_MSG(capacity.value() > 0.0, "resource capacity must be positive");
        resources_.push_back(Resource{capacity.value(), /*dirty=*/false});
        if (per_resource_active_.size() < resources_.size()) {
            per_resource_active_.emplace_back();
        }
        return resources_.size() - 1;
    }

    [[nodiscard]] std::size_t resource_count() const { return resources_.size(); }

    /// Start a flow of `demand` MB through `res`, individually capped at
    /// `cap` MB/s (use an enormous cap for "share-limited only"). A flow
    /// with zero demand is born complete (it is still reported by the next
    /// advance() so sequencing logic stays uniform).
    FlowId start_flow(ResourceId res, double demand_mb, double cap_mbps) {
        CAST_EXPECTS(res < resources_.size());
        CAST_EXPECTS_MSG(demand_mb >= 0.0, "flow demand must be non-negative");
        CAST_EXPECTS_MSG(cap_mbps > 0.0, "flow cap must be positive");
        const FlowId id = flows_.size();
        flows_.push_back(Flow{res, demand_mb, cap_mbps, /*rate=*/0.0,
                              /*done=*/false});
        if (demand_mb <= kCompletionEpsilonMb) {
            flows_.back().remaining_mb = 0.0;
            instantly_done_.push_back(id);
        } else {
            active_.push_back(id);
            insert_member(res, id);
            mark_dirty(res);
        }
        return id;
    }

    [[nodiscard]] bool flow_done(FlowId f) const {
        CAST_EXPECTS(f < flows_.size());
        return flows_[f].done;
    }

    /// Schedule a capacity change: at absolute engine time `at`, `res` will
    /// deliver `capacity` MB/s. Used by fault injection to model throttling
    /// episodes (schedule the cut at episode start and the restore at its
    /// end). Events never complete flows by themselves; advance() stops at
    /// each event boundary, re-water-fills, and continues to the next flow
    /// completion. Events in the past apply on the next advance().
    void schedule_capacity_change(ResourceId res, Seconds at, MBytesPerSec capacity) {
        CAST_EXPECTS(res < resources_.size());
        CAST_EXPECTS_MSG(capacity.value() > 0.0, "throttled capacity must stay positive");
        events_.push_back(CapacityEvent{at.value(), event_seq_++, res, capacity.value()});
        std::push_heap(events_.begin(), events_.end(), EventLater{});
    }

    /// Capacity-change events that have fired so far (fault-log accounting).
    [[nodiscard]] std::size_t applied_capacity_events() const { return applied_events_; }

    [[nodiscard]] double resource_capacity(ResourceId res) const {
        CAST_EXPECTS(res < resources_.size());
        return resources_[res].capacity_mbps;
    }

    [[nodiscard]] Seconds now() const { return Seconds{now_}; }

    [[nodiscard]] std::size_t active_flow_count() const {
        return active_.size() + instantly_done_.size();
    }

    /// Advance the clock to the next flow completion. Returns the ids of
    /// all flows that completed at the new time (empty iff no active flow).
    /// Zero-demand flows complete "now" without advancing the clock. The
    /// returned buffer is owned by the engine and overwritten by the next
    /// advance().
    const std::vector<FlowId>& advance() {
        completed_.clear();
        if (!instantly_done_.empty()) {
            completed_.swap(instantly_done_);
            for (FlowId f : completed_) flows_[f].done = true;
            return completed_;
        }
        if (active_.empty()) return completed_;
        while (completed_.empty()) {
            // Apply any capacity events that are due (at or before now).
            while (!events_.empty() && events_.front().at <= now_) {
                pop_apply_event();
            }
            recompute_rates();
            double min_dt = std::numeric_limits<double>::infinity();
            for (FlowId i : active_) {
                const Flow& f = flows_[i];
                CAST_ENSURES_MSG(f.rate > 0.0, "active flow has zero rate");
                min_dt = std::min(min_dt, f.remaining_mb / f.rate);
            }
            // Stop at the next capacity event if it arrives strictly before
            // the earliest completion: drain flows partially, re-share, go
            // around again. (Ties favour the completion; the event then
            // fires at the top of the next iteration or call.)
            if (!events_.empty()) {
                const double ev_dt = events_.front().at - now_;
                if (ev_dt < min_dt) {
                    now_ += ev_dt;
                    for (FlowId id : active_) {
                        Flow& f = flows_[id];
                        f.remaining_mb = std::max(0.0, f.remaining_mb - f.rate * ev_dt);
                    }
                    pop_apply_event();
                    continue;
                }
            }
            now_ += min_dt;
            std::size_t keep = 0;
            for (std::size_t k = 0; k < active_.size(); ++k) {
                const FlowId id = active_[k];
                Flow& f = flows_[id];
                f.remaining_mb -= f.rate * min_dt;
                if (f.remaining_mb <= kCompletionEpsilonMb) {
                    f.remaining_mb = 0.0;
                    f.done = true;
                    completed_.push_back(id);
                    erase_member(f.res, id);
                    mark_dirty(f.res);
                } else {
                    active_[keep++] = id;
                }
            }
            active_.resize(keep);
            CAST_ENSURES_MSG(!completed_.empty(), "time advanced without completing a flow");
        }
        return completed_;
    }

    /// Current fair-share rate of an active flow (after the last advance or
    /// an explicit recompute). Mainly for tests.
    [[nodiscard]] double flow_rate(FlowId f) {
        CAST_EXPECTS(f < flows_.size());
        recompute_rates();
        return flows_[f].rate;
    }

private:
    // Demands below a micro-MB count as complete; guards against float dust
    // keeping the loop alive.
    static constexpr double kCompletionEpsilonMb = 1e-9;

    struct Resource {
        double capacity_mbps;
        bool dirty;
    };

    struct Flow {
        ResourceId res;
        double remaining_mb;
        double cap_mbps;
        double rate;
        bool done;
    };

    struct CapacityEvent {
        double at;
        std::uint64_t seq;  // insertion order breaks time ties
        ResourceId res;
        double capacity_mbps;
    };

    /// Max-heap comparator inverted into a min-heap on (at, seq):
    /// earliest event first, insertion order preserved for ties.
    struct EventLater {
        bool operator()(const CapacityEvent& a, const CapacityEvent& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void pop_apply_event() {
        const CapacityEvent ev = events_.front();
        std::pop_heap(events_.begin(), events_.end(), EventLater{});
        events_.pop_back();
        ++applied_events_;
        resources_[ev.res].capacity_mbps = ev.capacity_mbps;
        mark_dirty(ev.res);
    }

    void mark_dirty(ResourceId res) {
        if (resources_[res].dirty) return;
        resources_[res].dirty = true;
        dirty_resources_.push_back(res);
    }

    /// Keep the resource's member list sorted ascending by cap (ties keep
    /// insertion order, matching the stable behaviour the water-fill needs).
    void insert_member(ResourceId res, FlowId id) {
        auto& ids = per_resource_active_[res];
        const double cap = flows_[id].cap_mbps;
        auto it = std::upper_bound(ids.begin(), ids.end(), cap,
                                   [this](double c, FlowId f) { return c < flows_[f].cap_mbps; });
        ids.insert(it, id);
    }

    void erase_member(ResourceId res, FlowId id) {
        auto& ids = per_resource_active_[res];
        ids.erase(std::find(ids.begin(), ids.end(), id));
    }

    /// Max-min fair allocation with per-flow caps (water-filling),
    /// recomputed only for resources whose membership or capacity changed:
    /// repeatedly give every unfrozen flow an equal share; flows whose cap
    /// is below the share freeze at their cap and return the surplus to the
    /// pool. The member lists stay cap-sorted, so one pass suffices.
    void recompute_rates() {
        for (ResourceId r : dirty_resources_) {
            resources_[r].dirty = false;
            const auto& ids = per_resource_active_[r];
            if (ids.empty()) continue;
            double remaining = resources_[r].capacity_mbps;
            std::size_t left = ids.size();
            for (FlowId id : ids) {
                const double share = remaining / static_cast<double>(left);
                const double rate = std::min(flows_[id].cap_mbps, share);
                flows_[id].rate = rate;
                remaining -= rate;
                --left;
            }
        }
        dirty_resources_.clear();
    }

    std::vector<Resource> resources_;
    std::vector<Flow> flows_;
    std::vector<FlowId> active_;
    std::vector<FlowId> instantly_done_;
    std::vector<FlowId> completed_;
    std::vector<std::vector<FlowId>> per_resource_active_;
    std::vector<ResourceId> dirty_resources_;
    std::vector<CapacityEvent> events_;  // binary heap, earliest on top
    std::size_t applied_events_ = 0;
    std::uint64_t event_seq_ = 0;
    double now_ = 0.0;
};

}  // namespace cast::sim
