// Discrete-event fair-share flow engine.
//
// The simulator models every I/O-bound activity as a *flow*: a demand (MB)
// draining through one shared resource (a VM's attached volume bandwidth,
// its object-store streaming allocation, ...) at a rate set by max-min fair
// sharing with per-flow rate caps (water-filling). CPU-bound work is a flow
// through an uncontended resource with the compute rate as its cap. The
// engine advances time event-by-event: at each step it water-fills every
// resource, finds the earliest flow completion, advances the clock, and
// retires finished flows. Slot-limited task scheduling sits on top in
// phase_runner.hpp.
//
// This processor-sharing treatment is what lets the simulator reproduce
// the paper's contention phenomena: tasks on a slow tier starving a mixed
// placement (Fig. 5), capacity-scaled volume bandwidth saturating (Fig. 2),
// and wave-level interference that the analytical model (Eq. 1) does not
// capture (the honest error of Fig. 8).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cast::sim {

using ResourceId = std::size_t;
using FlowId = std::size_t;

class FlowEngine {
public:
    FlowEngine() = default;

    /// Register a shared resource with the given aggregate capacity (MB/s).
    ResourceId add_resource(MBytesPerSec capacity) {
        CAST_EXPECTS_MSG(capacity.value() > 0.0, "resource capacity must be positive");
        resources_.push_back(Resource{capacity.value()});
        per_resource_active_.emplace_back();
        return resources_.size() - 1;
    }

    [[nodiscard]] std::size_t resource_count() const { return resources_.size(); }

    /// Start a flow of `demand` MB through `res`, individually capped at
    /// `cap` MB/s (use an enormous cap for "share-limited only"). A flow
    /// with zero demand is born complete (it is still reported by the next
    /// advance() so sequencing logic stays uniform).
    FlowId start_flow(ResourceId res, double demand_mb, double cap_mbps) {
        CAST_EXPECTS(res < resources_.size());
        CAST_EXPECTS_MSG(demand_mb >= 0.0, "flow demand must be non-negative");
        CAST_EXPECTS_MSG(cap_mbps > 0.0, "flow cap must be positive");
        const FlowId id = flows_.size();
        flows_.push_back(Flow{res, demand_mb, cap_mbps, /*rate=*/0.0,
                              /*done=*/false});
        if (demand_mb <= kCompletionEpsilonMb) {
            flows_.back().remaining_mb = 0.0;
            instantly_done_.push_back(id);
        } else {
            active_.push_back(id);
        }
        rates_dirty_ = true;
        return id;
    }

    [[nodiscard]] bool flow_done(FlowId f) const {
        CAST_EXPECTS(f < flows_.size());
        return flows_[f].done;
    }

    /// Schedule a capacity change: at absolute engine time `at`, `res` will
    /// deliver `capacity` MB/s. Used by fault injection to model throttling
    /// episodes (schedule the cut at episode start and the restore at its
    /// end). Events never complete flows by themselves; advance() stops at
    /// each event boundary, re-water-fills, and continues to the next flow
    /// completion. Events in the past apply on the next advance().
    void schedule_capacity_change(ResourceId res, Seconds at, MBytesPerSec capacity) {
        CAST_EXPECTS(res < resources_.size());
        CAST_EXPECTS_MSG(capacity.value() > 0.0, "throttled capacity must stay positive");
        const CapacityEvent ev{at.value(), res, capacity.value()};
        // Keep sorted by time, insertion order preserved for ties.
        auto it = std::upper_bound(
            events_.begin() + static_cast<std::ptrdiff_t>(next_event_), events_.end(), ev,
            [](const CapacityEvent& a, const CapacityEvent& b) { return a.at < b.at; });
        events_.insert(it, ev);
    }

    /// Capacity-change events that have fired so far (fault-log accounting).
    [[nodiscard]] std::size_t applied_capacity_events() const { return next_event_; }

    [[nodiscard]] double resource_capacity(ResourceId res) const {
        CAST_EXPECTS(res < resources_.size());
        return resources_[res].capacity_mbps;
    }

    [[nodiscard]] Seconds now() const { return Seconds{now_}; }

    [[nodiscard]] std::size_t active_flow_count() const {
        return active_.size() + instantly_done_.size();
    }

    /// Advance the clock to the next flow completion. Returns the ids of
    /// all flows that completed at the new time (empty iff no active flow).
    /// Zero-demand flows complete "now" without advancing the clock.
    std::vector<FlowId> advance() {
        std::vector<FlowId> completed;
        if (!instantly_done_.empty()) {
            completed.swap(instantly_done_);
            for (FlowId f : completed) flows_[f].done = true;
            return completed;
        }
        if (active_.empty()) return completed;
        while (completed.empty()) {
            // Apply any capacity events that are due (at or before now).
            while (next_event_ < events_.size() && events_[next_event_].at <= now_) {
                apply_event(events_[next_event_++]);
            }
            recompute_rates();
            double min_dt = std::numeric_limits<double>::infinity();
            for (FlowId i : active_) {
                const Flow& f = flows_[i];
                CAST_ENSURES_MSG(f.rate > 0.0, "active flow has zero rate");
                min_dt = std::min(min_dt, f.remaining_mb / f.rate);
            }
            // Stop at the next capacity event if it arrives strictly before
            // the earliest completion: drain flows partially, re-share, go
            // around again. (Ties favour the completion; the event then
            // fires at the top of the next iteration or call.)
            if (next_event_ < events_.size()) {
                const double ev_dt = events_[next_event_].at - now_;
                if (ev_dt < min_dt) {
                    now_ += ev_dt;
                    for (FlowId id : active_) {
                        Flow& f = flows_[id];
                        f.remaining_mb = std::max(0.0, f.remaining_mb - f.rate * ev_dt);
                    }
                    apply_event(events_[next_event_++]);
                    rates_dirty_ = true;
                    continue;
                }
            }
            now_ += min_dt;
            std::size_t keep = 0;
            for (std::size_t k = 0; k < active_.size(); ++k) {
                const FlowId id = active_[k];
                Flow& f = flows_[id];
                f.remaining_mb -= f.rate * min_dt;
                if (f.remaining_mb <= kCompletionEpsilonMb) {
                    f.remaining_mb = 0.0;
                    f.done = true;
                    completed.push_back(id);
                } else {
                    active_[keep++] = id;
                }
            }
            active_.resize(keep);
            rates_dirty_ = true;
            CAST_ENSURES_MSG(!completed.empty(), "time advanced without completing a flow");
        }
        return completed;
    }

    /// Current fair-share rate of an active flow (after the last advance or
    /// an explicit recompute). Mainly for tests.
    [[nodiscard]] double flow_rate(FlowId f) {
        CAST_EXPECTS(f < flows_.size());
        recompute_rates();
        return flows_[f].rate;
    }

private:
    // Demands below a micro-MB count as complete; guards against float dust
    // keeping the loop alive.
    static constexpr double kCompletionEpsilonMb = 1e-9;

    struct Resource {
        double capacity_mbps;
    };

    struct Flow {
        ResourceId res;
        double remaining_mb;
        double cap_mbps;
        double rate;
        bool done;
    };

    struct CapacityEvent {
        double at;
        ResourceId res;
        double capacity_mbps;
    };

    void apply_event(const CapacityEvent& ev) {
        resources_[ev.res].capacity_mbps = ev.capacity_mbps;
    }

    /// Max-min fair allocation with per-flow caps, per resource
    /// (water-filling): repeatedly give every unfrozen flow an equal share;
    /// flows whose cap is below the share freeze at their cap and return
    /// the surplus to the pool.
    void recompute_rates() {
        if (!rates_dirty_) return;
        for (auto& v : per_resource_active_) v.clear();
        for (FlowId i : active_) per_resource_active_[flows_[i].res].push_back(i);
        for (ResourceId r = 0; r < resources_.size(); ++r) {
            auto& ids = per_resource_active_[r];
            if (ids.empty()) continue;
            // Sort ascending by cap; then a single pass water-fills.
            std::sort(ids.begin(), ids.end(), [this](FlowId a, FlowId b) {
                return flows_[a].cap_mbps < flows_[b].cap_mbps;
            });
            double remaining = resources_[r].capacity_mbps;
            std::size_t left = ids.size();
            for (FlowId id : ids) {
                const double share = remaining / static_cast<double>(left);
                const double rate = std::min(flows_[id].cap_mbps, share);
                flows_[id].rate = rate;
                remaining -= rate;
                --left;
            }
        }
        rates_dirty_ = false;
    }

    std::vector<Resource> resources_;
    std::vector<Flow> flows_;
    std::vector<FlowId> active_;
    std::vector<FlowId> instantly_done_;
    std::vector<std::vector<FlowId>> per_resource_active_;
    std::vector<CapacityEvent> events_;
    std::size_t next_event_ = 0;
    double now_ = 0.0;
    bool rates_dirty_ = true;
};

}  // namespace cast::sim
