// MapReduce cluster simulator — the testbed substitute.
//
// Plays the role of the paper's 400-core Google Cloud Hadoop cluster: given
// a cluster spec, per-VM storage provisioning, and a job placement (which
// tier holds input / intermediate / output data), it executes the job's
// map, shuffle and reduce phases through the fair-share flow engine and
// reports the measured makespan with a per-phase breakdown. It implements
// the paper's deployment conventions:
//   * jobs on ephSSD stage their input in from objStore and their output
//     back out (ephSSD is not persistent) — Fig. 1's download/upload legs;
//   * jobs on objStore keep intermediate data on a persSSD volume (§3.1.1);
//   * object-store access pays a per-file request overhead and an output
//     commit (rename-as-copy) penalty through the GCS connector;
//   * input may be split across tiers at task granularity to reproduce the
//     fine-grained-partitioning straggler study (Fig. 5).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/faults.hpp"
#include "workload/job.hpp"

namespace cast::sim {

namespace detail {
struct SimScratch;
}  // namespace detail

/// Process-global switch for reuse of the thread-local simulation scratch
/// (arena flow engine, wave task batch, phase bookkeeping). On by default;
/// the sim_throughput bench turns it off to measure the per-job allocation
/// cost the scratch removes. Simulation results are bit-identical either
/// way — the scratch is storage, never state.
void set_scratch_reuse(bool enabled);
[[nodiscard]] bool scratch_reuse_enabled();

/// Per-VM provisioned capacity for each tier (zero = tier not attached).
/// objStore needs no provisioning to be readable; a nonzero value there
/// only matters for cost accounting, not simulation.
struct TierCapacities {
    std::array<GigaBytes, cloud::kTierCount> per_vm{};

    [[nodiscard]] GigaBytes of(cloud::StorageTier t) const {
        return per_vm[cloud::tier_index(t)];
    }
    void set(cloud::StorageTier t, GigaBytes c) { per_vm[cloud::tier_index(t)] = c; }
};

/// A share of a job's input living on one tier.
struct InputSplit {
    cloud::StorageTier tier = cloud::StorageTier::kPersistentSsd;
    double fraction = 1.0;
};

/// Where one job's data lives and how it is staged.
struct JobPlacement {
    workload::JobSpec job;
    std::vector<InputSplit> input_splits;
    cloud::StorageTier intermediate_tier = cloud::StorageTier::kPersistentSsd;
    cloud::StorageTier output_tier = cloud::StorageTier::kPersistentSsd;
    /// Download the input from the backing object store before the job
    /// (the ephSSD convention; also used for cross-tier workflow hops).
    bool stage_in = false;
    /// Upload the output to the backing object store after the job.
    bool stage_out = false;

    /// The paper's convention for running a job wholly on `tier`:
    /// input/intermediate/output all on the tier, except objStore
    /// placements keep intermediates on persSSD, and ephSSD placements
    /// stage in/out of objStore.
    [[nodiscard]] static JobPlacement on_tier(const workload::JobSpec& job,
                                              cloud::StorageTier tier);

    void validate() const;
};

struct PhaseTimes {
    Seconds stage_in{0.0};
    Seconds map{0.0};
    Seconds shuffle{0.0};
    Seconds reduce{0.0};
    Seconds stage_out{0.0};

    [[nodiscard]] Seconds processing() const { return map + shuffle + reduce; }
    [[nodiscard]] Seconds total() const { return stage_in + processing() + stage_out; }
};

struct JobResult {
    Seconds makespan{0.0};
    PhaseTimes phases;
    /// What fault injection did to this job (all zeros when the profile is
    /// disabled — the struct itself never perturbs the simulation).
    FaultStats faults;
};

struct SimOptions {
    std::uint64_t seed = 42;
    /// Lognormal sigma of per-task demand jitter (0 = deterministic).
    double jitter_sigma = 0.06;
    /// Injected failures (sim/faults.hpp). The default (all-zero) profile
    /// leaves every simulation bit-identical to the fault-free simulator;
    /// the fault stream is seeded by `faults.seed`, independent of `seed`.
    FaultProfile faults{};
};

class ClusterSim {
public:
    ClusterSim(cloud::ClusterSpec cluster, cloud::StorageCatalog catalog,
               TierCapacities capacities, SimOptions options = {});

    [[nodiscard]] const cloud::ClusterSpec& cluster() const { return cluster_; }
    [[nodiscard]] const TierCapacities& capacities() const { return capacities_; }

    /// Execute one job and report its measured phase times. Deterministic
    /// for a given (options.seed, options.faults, job id). Throws
    /// SimulationError carrying (job, phase) context when an injected fault
    /// outlives the task-attempt budget. Thread-safe: concurrent calls on
    /// one ClusterSim each use their own thread-local scratch.
    [[nodiscard]] JobResult run_job(const JobPlacement& placement) const;

    /// Execute jobs back-to-back (the paper's workloads run as a serial
    /// batch on the shared cluster); returns per-job results in order.
    [[nodiscard]] std::vector<JobResult> run_serial(
        const std::vector<JobPlacement>& placements) const;

    /// Bulk-copy `volume` between two tiers (a workflow's cross-tier hop:
    /// "the output of one job is pipelined to another storage service").
    /// One parallel stream per VM, rate-limited by the slower endpoint.
    [[nodiscard]] Seconds run_transfer(GigaBytes volume, cloud::StorageTier from,
                                       cloud::StorageTier to) const;

    /// Aggregate per-VM bandwidth a tier delivers at the provisioned
    /// capacity (exposed for tests and the Table 1 microbenchmark).
    [[nodiscard]] MBytesPerSec tier_bandwidth_per_vm(cloud::StorageTier t) const;

private:
    [[nodiscard]] JobResult run_job_impl(const JobPlacement& placement,
                                         detail::SimScratch& scratch) const;

    cloud::ClusterSpec cluster_;
    cloud::StorageCatalog catalog_;
    TierCapacities capacities_;
    SimOptions options_;
    std::array<std::optional<cloud::TierPerformance>, cloud::kTierCount> perf_{};
};

}  // namespace cast::sim
