#include "sim/batch.hpp"

#include <utility>

#include "common/error.hpp"

namespace cast::sim {

BatchRunner::BatchRunner(cloud::ClusterSpec cluster, cloud::StorageCatalog catalog,
                         BatchOptions options)
    : cluster_(std::move(cluster)), catalog_(std::move(catalog)), options_(options) {
    cluster_.validate();
    CAST_EXPECTS_MSG(options_.grain >= 1, "batch grain must be at least 1");
}

BatchOutcome BatchRunner::run_one(const BatchConfig& config) const {
    // Each configuration gets its own ClusterSim: construction is cheap
    // (the catalog holds shared_ptr services) and it keeps per-config
    // capacities/options fully independent of scheduling order.
    const ClusterSim sim(cluster_, catalog_, config.capacities, config.options);
    BatchOutcome outcome;
    try {
        outcome.result = sim.run_job(config.placement);
    } catch (const SimulationError& e) {
        // Injected faults exhausted a task's attempt budget — a legitimate
        // experiment outcome (the robustness sweep counts these), not a
        // reason to abort the other configurations.
        outcome.failed = true;
        outcome.error = e.what();
    }
    return outcome;
}

std::vector<BatchOutcome> BatchRunner::run(const std::vector<BatchConfig>& configs,
                                           ThreadPool* pool) const {
    std::vector<BatchOutcome> outcomes(configs.size());
    if (pool == nullptr || pool->worker_count() == 1 || configs.size() <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            outcomes[i] = run_one(configs[i]);
        }
        return outcomes;
    }
    pool->parallel_for(
        configs.size(),
        [&](std::size_t i) { outcomes[i] = run_one(configs[i]); },
        options_.grain);
    return outcomes;
}

}  // namespace cast::sim
