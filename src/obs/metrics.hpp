// Production metrics for the serving layer: a registry of named counters,
// gauges and fixed-bucket latency histograms.
//
// Until now the serve layer's internal state surfaced only as end-of-run
// ServiceStats totals — an operator watching a live service could not see
// queue depth, per-priority latency distributions, or shed decisions as
// they happen. MetricsRegistry is the first-class, always-current view:
// instruments are registered once at service construction, and every
// update on the request path is a handful of relaxed atomic operations on
// a pre-resolved instrument — no map lookup, no lock, no allocation.
//
// Instrument kinds:
//
//   Counter    monotonic event count (requests submitted, sheds, retries).
//   Gauge      last-written value (push) — or, registered via gauge_fn, a
//              pull callback evaluated at export time. Pull gauges are how
//              live state that already has an owner (queue depth, EWMA
//              solve latency, cache generation, open breakers) is exported
//              without duplicating it: observation reads, never copies.
//   Histogram  fixed upper-bound buckets with atomic per-bucket counts.
//              Quantiles (p50/p95/p99) are bucket-interpolated estimates —
//              cheap, mergeable, and bounded-error by construction, which
//              is the standard production trade (cf. Prometheus classic
//              histograms). An empty histogram has no quantiles: NaN, and
//              the JSON/table exporters omit the fields rather than print
//              a fake 0.0 (the same discipline as bench::percentile).
//
// Thread safety and lock discipline (PR-7 contracts): the registry's maps
// are mutex-guarded (CAST_GUARDED_BY) and touched only at registration and
// export; instrument values are std::atomic with relaxed ordering — the
// hot path never takes the registry mutex. Export snapshots instrument
// pointers under the lock, releases it, then reads atomics and evaluates
// pull callbacks lock-free, so a callback may safely acquire service
// mutexes (no lock-order edge registry -> service exists while a service
// lock is held). Counts read mid-update are approximate by design —
// monitoring reads tolerate a torn view across instruments, never within
// one (each value is a single atomic).
//
// Observation must never perturb results: nothing in this header touches
// solver state, seeds, or scheduling — the serve golden tests prove a
// metrics-on run is bit-identical to a metrics-off run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/annotations.hpp"

namespace cast::obs {

/// Monotonically increasing event count. Relaxed atomics: counters order
/// nothing, they only total.
class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (push form). For live state that already has an
/// owner, prefer a pull callback via MetricsRegistry::gauge_fn.
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: strictly increasing upper bounds plus an
/// implicit +inf overflow bucket. observe() is a binary search over the
/// bounds and two relaxed atomic increments.
class Histogram {
public:
    /// `bounds` must be non-empty and strictly increasing.
    explicit Histogram(std::vector<double> bounds);

    /// The default latency buckets (milliseconds): sub-millisecond queue
    /// waits through multi-second budget-exhausted solves.
    [[nodiscard]] static std::vector<double> default_latency_buckets_ms();

    void observe(double v);

    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

    /// Bucket-interpolated quantile estimate, q in [0, 1]. NaN when the
    /// histogram is empty (there is no "p99 of nothing" — exporters omit
    /// the field). Values in the overflow bucket clamp to the top bound.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket counts, overflow last (bounds().size() + 1 entries).
    [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

private:
    std::vector<double> bounds_;
    /// bounds_.size() + 1 slots; the last is the +inf overflow bucket.
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Named instrument registry with JSON and aligned-text export.
///
/// Registration (counter/gauge/histogram/gauge_fn) takes the registry
/// mutex and returns a stable reference — do it once at setup and cache
/// the reference; updates through the reference are lock-free. Registering
/// a name twice returns the existing instrument (a histogram's bounds are
/// fixed by its first registration).
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    [[nodiscard]] Counter& counter(const std::string& name) CAST_EXCLUDES(mutex_);
    [[nodiscard]] Gauge& gauge(const std::string& name) CAST_EXCLUDES(mutex_);
    [[nodiscard]] Histogram& histogram(const std::string& name,
                                       std::vector<double> bounds =
                                           Histogram::default_latency_buckets_ms())
        CAST_EXCLUDES(mutex_);

    /// Pull gauge: `fn` is evaluated at export time, outside the registry
    /// mutex (it may take its owner's locks). Replaces any previous
    /// callback under the same name.
    void gauge_fn(const std::string& name, std::function<double()> fn)
        CAST_EXCLUDES(mutex_);

    /// Point-in-time values by name; pull gauges are evaluated. Returns
    /// NaN / 0 semantics are the instrument's own — absent names signal
    /// via the optional-like bool pair below.
    [[nodiscard]] bool has_counter(const std::string& name) const CAST_EXCLUDES(mutex_);
    [[nodiscard]] std::uint64_t counter_value(const std::string& name) const
        CAST_EXCLUDES(mutex_);
    /// Total observations in the named histogram (0 when absent).
    [[nodiscard]] std::uint64_t histogram_count(const std::string& name) const
        CAST_EXCLUDES(mutex_);
    [[nodiscard]] double gauge_value(const std::string& name) const CAST_EXCLUDES(mutex_);

    /// One-line JSON document: {"counters": {...}, "gauges": {...},
    /// "histograms": {...}}. Names sort lexicographically so output diffs
    /// cleanly; empty-histogram quantile fields are omitted.
    [[nodiscard]] std::string json() const CAST_EXCLUDES(mutex_);
    void write_json(std::ostream& os) const CAST_EXCLUDES(mutex_);

    /// Aligned text tables (common/table.hpp), one per instrument kind.
    void write_table(std::ostream& os) const CAST_EXCLUDES(mutex_);

private:
    struct Snapshot;
    /// Instrument pointers + evaluated pull gauges, collected under the
    /// mutex, read lock-free afterwards.
    [[nodiscard]] Snapshot snapshot() const CAST_EXCLUDES(mutex_);

    mutable Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_ CAST_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_ CAST_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_ CAST_GUARDED_BY(mutex_);
    std::map<std::string, std::function<double()>> gauge_fns_ CAST_GUARDED_BY(mutex_);
};

}  // namespace cast::obs
