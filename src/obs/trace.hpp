// Structured per-request trace spans, ring-buffered per service.
//
// Metrics answer "how is the service doing"; traces answer "what happened
// to request 4711". Each span records the lifecycle of one request as a
// sequence of named events — admit → queue → governor decision → solve
// attempts/retries → respond — each stamped with milliseconds since the
// ring's creation (steady_clock, so spans order correctly even across
// wall-clock adjustments) plus a free-form detail string (degradation
// level, attempt count, shed reason).
//
// The ring keeps the last `capacity` completed spans: old traffic ages
// out, memory is bounded, and a post-incident dump (`cast_plan serve
// --trace`) shows the most recent window. Spans are built privately by
// the worker that owns the request and pushed once, complete — the ring
// mutex is taken once per request at push and once per dump, never while
// a span is being assembled, so tracing adds one short critical section
// per request and nothing to the solve path.
//
// A TraceRing with capacity 0 is disabled: enabled() is false, push() is
// a no-op, and callers skip span assembly entirely — the default-off
// configuration has zero overhead and trivially preserves bit-identity.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/annotations.hpp"

namespace cast::obs {

/// One named point in a request's lifecycle.
struct TraceEvent {
    std::string name;    ///< "admit", "dequeue", "governor", "solve", "respond", ...
    double at_ms = 0.0;  ///< milliseconds since the owning ring's origin
    std::string detail;  ///< e.g. degradation level, "attempts=2", shed reason
};

/// The full lifecycle of one request. Assembled by the owning worker,
/// pushed to the ring once, immutable afterwards.
struct TraceSpan {
    std::uint64_t id = 0;   ///< request id (coalesced dupes share one span)
    std::string label;      ///< request label: priority / dedup key
    std::string outcome;    ///< final status: "ok", "rejected", "error", ...
    std::vector<TraceEvent> events;

    [[nodiscard]] double start_ms() const {
        return events.empty() ? 0.0 : events.front().at_ms;
    }
    [[nodiscard]] double end_ms() const {
        return events.empty() ? 0.0 : events.back().at_ms;
    }
    [[nodiscard]] double duration_ms() const { return end_ms() - start_ms(); }
};

/// Bounded ring of completed spans. Thread-safe; push overwrites the
/// oldest span once `capacity` is reached (total_pushed() - size() spans
/// have been dropped).
class TraceRing {
public:
    /// capacity == 0 disables the ring entirely (enabled() == false).
    explicit TraceRing(std::size_t capacity);

    [[nodiscard]] bool enabled() const { return capacity_ > 0; }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Milliseconds since the ring was constructed (monotonic clock).
    /// Valid timestamp source even when the ring is disabled.
    [[nodiscard]] double now_ms() const;

    /// Milliseconds from the ring's origin to `tp` (same clock as now_ms;
    /// stamps an event with a time point captured before span assembly).
    [[nodiscard]] double at_ms(std::chrono::steady_clock::time_point tp) const;

    void push(TraceSpan span) CAST_EXCLUDES(mutex_);

    /// Completed spans, oldest first. Empty when disabled.
    [[nodiscard]] std::vector<TraceSpan> snapshot() const CAST_EXCLUDES(mutex_);

    [[nodiscard]] std::uint64_t total_pushed() const CAST_EXCLUDES(mutex_);
    [[nodiscard]] std::size_t size() const CAST_EXCLUDES(mutex_);

    /// Aligned text timeline of the buffered spans (common/table.hpp):
    /// one row per event, grouped by span, timestamps relative to span
    /// start.
    void write_table(std::ostream& os) const CAST_EXCLUDES(mutex_);

private:
    std::size_t capacity_;
    std::chrono::steady_clock::time_point origin_;

    mutable Mutex mutex_;
    std::vector<TraceSpan> ring_ CAST_GUARDED_BY(mutex_);  ///< ring storage
    std::size_t next_ CAST_GUARDED_BY(mutex_) = 0;         ///< next overwrite slot
    std::uint64_t total_ CAST_GUARDED_BY(mutex_) = 0;      ///< lifetime pushes
};

}  // namespace cast::obs
