#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/table.hpp"

namespace cast::obs {

namespace {

/// JSON number formatting shared by all exporters: integers print exact,
/// doubles print shortest-round-trip via max_digits10 (same digits always
/// reparse to the same double, so snapshots diff cleanly).
std::string json_num(double v) {
    std::ostringstream ss;
    ss << std::setprecision(17) << v;
    return ss.str();
}

std::string json_quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    CAST_EXPECTS_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
    CAST_EXPECTS_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                     "histogram bounds must be strictly increasing");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

std::vector<double> Histogram::default_latency_buckets_ms() {
    return {0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};
}

void Histogram::observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // C++17 atomic<double> has no fetch_add; CAS-loop the sum. Contention
    // is negligible at serve rates and the loop never blocks.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
}

double Histogram::quantile(double q) const {
    CAST_EXPECTS_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
    const std::vector<std::uint64_t> counts = bucket_counts();
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) total += c;
    if (total == 0) return std::numeric_limits<double>::quiet_NaN();

    const double rank = q * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::uint64_t prev = cum;
        cum += counts[i];
        if (static_cast<double>(cum) >= rank && counts[i] > 0) {
            // Overflow bucket has no upper bound: clamp to the top bound
            // (the estimate is conservative-low, and the bucket layout
            // should be widened if real latencies land here).
            if (i == bounds_.size()) return bounds_.back();
            const double lo = i == 0 ? 0.0 : bounds_[i - 1];
            const double hi = bounds_[i];
            const double frac =
                (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
            return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        }
    }
    return bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    LockGuard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    LockGuard lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
    LockGuard lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

void MetricsRegistry::gauge_fn(const std::string& name, std::function<double()> fn) {
    CAST_EXPECTS_MSG(fn != nullptr, "gauge_fn requires a callable");
    LockGuard lock(mutex_);
    gauge_fns_[name] = std::move(fn);
}

/// Point-in-time view: raw pointers stay valid because instruments are
/// never erased, and callbacks are copied so they run without the mutex.
struct MetricsRegistry::Snapshot {
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
    std::vector<std::pair<std::string, const Histogram*>> histograms;
    std::vector<std::pair<std::string, std::function<double()>>> gauge_fns;
};

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
    Snapshot snap;
    LockGuard lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c.get());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g.get());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h.get());
    snap.gauge_fns.reserve(gauge_fns_.size());
    for (const auto& [name, fn] : gauge_fns_) snap.gauge_fns.emplace_back(name, fn);
    return snap;
}

bool MetricsRegistry::has_counter(const std::string& name) const {
    LockGuard lock(mutex_);
    return counters_.count(name) > 0;
}

std::uint64_t MetricsRegistry::histogram_count(const std::string& name) const {
    const Histogram* h = nullptr;
    {
        LockGuard lock(mutex_);
        auto it = histograms_.find(name);
        if (it != histograms_.end()) h = it->second.get();
    }
    return h != nullptr ? h->count() : 0;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
    const Counter* c = nullptr;
    {
        LockGuard lock(mutex_);
        auto it = counters_.find(name);
        if (it != counters_.end()) c = it->second.get();
    }
    return c != nullptr ? c->value() : 0;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
    const Gauge* g = nullptr;
    std::function<double()> fn;
    {
        LockGuard lock(mutex_);
        if (auto it = gauges_.find(name); it != gauges_.end()) g = it->second.get();
        if (auto it = gauge_fns_.find(name); it != gauge_fns_.end()) fn = it->second;
    }
    // Evaluate outside the lock; a callback may take its owner's mutexes.
    if (fn) return fn();
    return g != nullptr ? g->value() : std::numeric_limits<double>::quiet_NaN();
}

void MetricsRegistry::write_json(std::ostream& os) const {
    const Snapshot snap = snapshot();

    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : snap.counters) {
        if (!first) os << ",";
        first = false;
        os << json_quote(name) << ":" << c->value();
    }
    os << "},\"gauges\":{";

    // Merge push gauges and (evaluated) pull gauges into one sorted block;
    // a pull callback shadows a push gauge of the same name.
    std::map<std::string, double> gauges;
    for (const auto& [name, g] : snap.gauges) gauges[name] = g->value();
    for (const auto& [name, fn] : snap.gauge_fns) gauges[name] = fn();
    first = true;
    for (const auto& [name, v] : gauges) {
        if (!first) os << ",";
        first = false;
        os << json_quote(name) << ":";
        if (std::isfinite(v)) {
            os << json_num(v);
        } else {
            os << "null";  // NaN/inf are not valid JSON tokens
        }
    }
    os << "},\"histograms\":{";

    first = true;
    for (const auto& [name, h] : snap.histograms) {
        if (!first) os << ",";
        first = false;
        os << json_quote(name) << ":{\"count\":" << h->count();
        const std::uint64_t n = h->count();
        if (n > 0) {
            os << ",\"sum\":" << json_num(h->sum());
            os << ",\"p50\":" << json_num(h->quantile(0.50));
            os << ",\"p95\":" << json_num(h->quantile(0.95));
            os << ",\"p99\":" << json_num(h->quantile(0.99));
        }
        os << "}";
    }
    os << "}}";
}

std::string MetricsRegistry::json() const {
    std::ostringstream ss;
    write_json(ss);
    return ss.str();
}

void MetricsRegistry::write_table(std::ostream& os) const {
    const Snapshot snap = snapshot();

    if (!snap.counters.empty()) {
        TextTable table({"counter", "value"});
        for (const auto& [name, c] : snap.counters) {
            table.add_row({name, std::to_string(c->value())});
        }
        table.print(os);
    }

    std::map<std::string, double> gauges;
    for (const auto& [name, g] : snap.gauges) gauges[name] = g->value();
    for (const auto& [name, fn] : snap.gauge_fns) gauges[name] = fn();
    if (!gauges.empty()) {
        TextTable table({"gauge", "value"});
        for (const auto& [name, v] : gauges) {
            table.add_row({name, std::isfinite(v) ? fmt(v, 3) : std::string("nan")});
        }
        table.print(os);
    }

    if (!snap.histograms.empty()) {
        TextTable table({"histogram", "count", "sum_ms", "p50", "p95", "p99"});
        for (const auto& [name, h] : snap.histograms) {
            const std::uint64_t n = h->count();
            if (n == 0) {
                table.add_row({name, "0", "-", "-", "-", "-"});
            } else {
                table.add_row({name, std::to_string(n), fmt(h->sum(), 1),
                               fmt(h->quantile(0.50), 2), fmt(h->quantile(0.95), 2),
                               fmt(h->quantile(0.99), 2)});
            }
        }
        table.print(os);
    }
}

}  // namespace cast::obs
