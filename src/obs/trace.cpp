#include "obs/trace.hpp"

#include <utility>

#include "common/table.hpp"

namespace cast::obs {

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity), origin_(std::chrono::steady_clock::now()) {
    // Reserve up front: push() must not allocate ring storage on the
    // request path once the ring is warm.
    ring_.reserve(capacity_);
}

double TraceRing::now_ms() const {
    return at_ms(std::chrono::steady_clock::now());
}

double TraceRing::at_ms(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::milli>(tp - origin_).count();
}

void TraceRing::push(TraceSpan span) {
    if (!enabled()) return;
    LockGuard lock(mutex_);
    ++total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(span));
    } else {
        ring_[next_] = std::move(span);
        next_ = (next_ + 1) % capacity_;
    }
}

std::vector<TraceSpan> TraceRing::snapshot() const {
    LockGuard lock(mutex_);
    std::vector<TraceSpan> out;
    out.reserve(ring_.size());
    // Once the ring has wrapped, next_ is the oldest slot.
    if (ring_.size() == capacity_ && capacity_ > 0) {
        for (std::size_t i = 0; i < ring_.size(); ++i) {
            out.push_back(ring_[(next_ + i) % capacity_]);
        }
    } else {
        out = ring_;
    }
    return out;
}

std::uint64_t TraceRing::total_pushed() const {
    LockGuard lock(mutex_);
    return total_;
}

std::size_t TraceRing::size() const {
    LockGuard lock(mutex_);
    return ring_.size();
}

void TraceRing::write_table(std::ostream& os) const {
    const std::vector<TraceSpan> spans = snapshot();
    if (spans.empty()) {
        os << "(no trace spans buffered)\n";
        return;
    }
    TextTable table({"span", "label", "outcome", "event", "t+ms", "detail"});
    for (const TraceSpan& span : spans) {
        const double t0 = span.start_ms();
        for (const TraceEvent& ev : span.events) {
            table.add_row({std::to_string(span.id), span.label, span.outcome, ev.name,
                           fmt(ev.at_ms - t0, 3), ev.detail});
        }
    }
    table.print(os);
}

}  // namespace cast::obs
