// Bounded multi-producer/multi-consumer submission queue with priorities.
//
// The planning service's admission layer: producers (request submitters)
// try_push and are told immediately when the queue is full — backpressure
// is an explicit reject, never an unbounded buffer — while the consumer
// (the dispatcher) pops the highest-priority items first, FIFO within a
// priority level, and can drain a whole compatible batch under one lock
// acquisition. close() wakes every waiter; items already admitted are
// still handed out after close so no accepted request is ever dropped.
//
// Deliberately mutex+cv rather than a lock-free ring: operations are a few
// pointer moves under a lock that is held for nanoseconds, while the work
// items they carry are multi-millisecond solves — the queue is never the
// bottleneck, and the simple implementation is trivially correct under
// TSan. The lock discipline is additionally compile-time checked: every
// level/size/closed access carries a CAST_GUARDED_BY contract the Clang
// thread-safety lane enforces.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"

namespace cast {

template <typename T>
class BoundedPriorityQueue {
public:
    /// `capacity` bounds the total item count across all priority levels;
    /// `levels` is the number of priority classes (0 = most urgent).
    explicit BoundedPriorityQueue(std::size_t capacity, std::size_t levels = 3)
        : levels_(levels), capacity_(capacity) {
        CAST_EXPECTS(capacity >= 1);
        CAST_EXPECTS(levels >= 1);
    }

    BoundedPriorityQueue(const BoundedPriorityQueue&) = delete;
    BoundedPriorityQueue& operator=(const BoundedPriorityQueue&) = delete;

    /// Admit an item at `priority` (clamped to the highest configured
    /// level). Returns false — and leaves `item` untouched beyond the
    /// failed move-attempt — when the queue is full or closed; the caller
    /// owns the reject path.
    [[nodiscard]] bool try_push(T item, std::size_t priority = 1) CAST_EXCLUDES(mutex_) {
        {
            LockGuard lock(mutex_);
            if (closed_ || size_ >= capacity_) return false;
            const std::size_t level = priority < levels_.size() ? priority
                                                                : levels_.size() - 1;
            levels_[level].push_back(std::move(item));
            ++size_;
        }
        cv_.notify_one();
        return true;
    }

    /// Pop the single highest-priority item. Blocks until an item arrives
    /// or the queue is closed AND drained (then returns nullopt).
    [[nodiscard]] std::optional<T> pop() CAST_EXCLUDES(mutex_) {
        UniqueLock lock(mutex_);
        // Plain while-loop wait (not the predicate overload): the guarded
        // reads stay in this scope, where the analysis can prove the lock.
        while (size_ == 0 && !closed_) cv_.wait(lock);
        if (size_ == 0) return std::nullopt;
        return pop_one_locked();
    }

    /// Drain up to `max` items into `out` (appended), highest priority
    /// first, under one lock acquisition. Blocks for the first item like
    /// pop(); returns the number appended — 0 only when closed and drained.
    std::size_t pop_batch(std::vector<T>& out, std::size_t max) CAST_EXCLUDES(mutex_) {
        CAST_EXPECTS(max >= 1);
        UniqueLock lock(mutex_);
        while (size_ == 0 && !closed_) cv_.wait(lock);
        std::size_t n = 0;
        while (size_ > 0 && n < max) {
            out.push_back(pop_one_locked());
            ++n;
        }
        return n;
    }

    /// Refuse new items and wake every blocked consumer. Items admitted
    /// before close() remain poppable (graceful drain).
    void close() CAST_EXCLUDES(mutex_) {
        {
            LockGuard lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] std::size_t size() const CAST_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        return size_;
    }

    [[nodiscard]] bool closed() const CAST_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    /// Precondition: mutex held (compiler-checked), size_ > 0.
    [[nodiscard]] T pop_one_locked() CAST_REQUIRES(mutex_) {
        for (auto& level : levels_) {
            if (level.empty()) continue;
            T item = std::move(level.front());
            level.pop_front();
            --size_;
            return item;
        }
        throw InvariantError("BoundedPriorityQueue: size/level bookkeeping diverged");
    }

    mutable Mutex mutex_;
    CondVar cv_;
    std::vector<std::deque<T>> levels_ CAST_GUARDED_BY(mutex_);
    std::size_t capacity_;
    std::size_t size_ CAST_GUARDED_BY(mutex_) = 0;
    bool closed_ CAST_GUARDED_BY(mutex_) = false;
};

}  // namespace cast
