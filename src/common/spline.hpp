// Monotone cubic Hermite spline (Fritsch–Carlson).
//
// CAST's REG(.) capacity->runtime regression is "a third degree
// polynomial-based cubic Hermite spline" (§4.2.1). We use the
// Fritsch–Carlson tangent limiter so that a monotone sample set yields a
// monotone interpolant: the annealing solver optimizes *over* this curve,
// and interpolation overshoot would let it exploit phantom minima that the
// underlying system does not have.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace cast {

class CubicHermiteSpline {
public:
    CubicHermiteSpline() = default;

    /// Build from sample points. xs must be strictly increasing and have the
    /// same length as ys (>= 2 points).
    CubicHermiteSpline(std::span<const double> xs, std::span<const double> ys) {
        CAST_EXPECTS(xs.size() == ys.size());
        CAST_EXPECTS(xs.size() >= 2);
        for (std::size_t i = 1; i < xs.size(); ++i) {
            CAST_EXPECTS_MSG(xs[i] > xs[i - 1], "spline knots must be strictly increasing");
        }
        x_.assign(xs.begin(), xs.end());
        y_.assign(ys.begin(), ys.end());
        compute_tangents();
    }

    [[nodiscard]] bool empty() const { return x_.empty(); }
    [[nodiscard]] std::size_t size() const { return x_.size(); }
    [[nodiscard]] double min_x() const {
        CAST_EXPECTS(!empty());
        return x_.front();
    }
    [[nodiscard]] double max_x() const {
        CAST_EXPECTS(!empty());
        return x_.back();
    }

    /// Evaluate at x. Outside the knot range the value is clamped to the
    /// boundary knot value (flat extrapolation): provisioning beyond the
    /// largest profiled capacity cannot be assumed to keep improving.
    [[nodiscard]] double operator()(double x) const {
        CAST_EXPECTS(!empty());
        if (x <= x_.front()) return y_.front();
        if (x >= x_.back()) return y_.back();
        const std::size_t i = segment_index(x);
        const double h = x_[i + 1] - x_[i];
        const double t = (x - x_[i]) / h;
        const double t2 = t * t;
        const double t3 = t2 * t;
        const double h00 = 2 * t3 - 3 * t2 + 1;
        const double h10 = t3 - 2 * t2 + t;
        const double h01 = -2 * t3 + 3 * t2;
        const double h11 = t3 - t2;
        return h00 * y_[i] + h10 * h * m_[i] + h01 * y_[i + 1] + h11 * h * m_[i + 1];
    }

    /// First derivative at x (zero outside the knot range, matching the flat
    /// extrapolation of operator()).
    [[nodiscard]] double derivative(double x) const {
        CAST_EXPECTS(!empty());
        if (x <= x_.front() || x >= x_.back()) return 0.0;
        const std::size_t i = segment_index(x);
        const double h = x_[i + 1] - x_[i];
        const double t = (x - x_[i]) / h;
        const double t2 = t * t;
        const double dh00 = (6 * t2 - 6 * t) / h;
        const double dh10 = 3 * t2 - 4 * t + 1;
        const double dh01 = (-6 * t2 + 6 * t) / h;
        const double dh11 = 3 * t2 - 2 * t;
        return dh00 * y_[i] + dh10 * m_[i] + dh01 * y_[i + 1] + dh11 * m_[i + 1];
    }

    [[nodiscard]] std::span<const double> knots_x() const { return x_; }
    [[nodiscard]] std::span<const double> knots_y() const { return y_; }

private:
    [[nodiscard]] std::size_t segment_index(double x) const {
        // Largest i with x_[i] <= x; callers guarantee interior x.
        const auto it = std::upper_bound(x_.begin(), x_.end(), x);
        return static_cast<std::size_t>(it - x_.begin()) - 1;
    }

    void compute_tangents() {
        const std::size_t n = x_.size();
        std::vector<double> delta(n - 1);
        for (std::size_t i = 0; i + 1 < n; ++i) {
            delta[i] = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
        }
        m_.resize(n);
        m_[0] = delta[0];
        m_[n - 1] = delta[n - 2];
        for (std::size_t i = 1; i + 1 < n; ++i) {
            if (delta[i - 1] * delta[i] <= 0.0) {
                m_[i] = 0.0;  // local extremum in the data: flat tangent
            } else {
                m_[i] = 0.5 * (delta[i - 1] + delta[i]);
            }
        }
        // Fritsch–Carlson limiter: clamp tangents so each segment stays
        // monotone wherever the data is.
        for (std::size_t i = 0; i + 1 < n; ++i) {
            if (delta[i] == 0.0) {
                m_[i] = 0.0;
                m_[i + 1] = 0.0;
                continue;
            }
            double alpha = m_[i] / delta[i];
            double beta = m_[i + 1] / delta[i];
            // A tangent opposing the secant is clamped to zero, and the
            // clamped value must feed the circle test below — using the
            // stale ratio would rescale against a tangent that no longer
            // exists and could leave α or β beyond 3, breaking monotonicity.
            if (alpha < 0.0) {
                m_[i] = 0.0;
                alpha = 0.0;
            }
            if (beta < 0.0) {
                m_[i + 1] = 0.0;
                beta = 0.0;
            }
            const double s = alpha * alpha + beta * beta;
            if (s > 9.0) {
                const double tau = 3.0 / std::sqrt(s);
                m_[i] = tau * alpha * delta[i];
                m_[i + 1] = tau * beta * delta[i];
            }
        }
    }

    std::vector<double> x_;
    std::vector<double> y_;
    std::vector<double> m_;
};

}  // namespace cast
