// Strong-typed physical/monetary quantities used throughout the library.
//
// The planner mixes gigabytes, MB/s, minutes, hours and dollars in one
// optimization objective; mixing those up silently is the classic failure
// mode of this kind of code. Each quantity is a distinct type wrapping a
// double, with arithmetic only where it is dimensionally meaningful
// (e.g. GigaBytes / MBytesPerSec -> Seconds).
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <ostream>

#include "common/error.hpp"

namespace cast {

namespace detail {

/// CRTP base providing the shared arithmetic of a scalar quantity.
template <typename Derived>
class Quantity {
public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double v) : value_(v) {}

    [[nodiscard]] constexpr double value() const { return value_; }

    friend constexpr Derived operator+(Derived a, Derived b) {
        return Derived{a.value_ + b.value_};
    }
    friend constexpr Derived operator-(Derived a, Derived b) {
        return Derived{a.value_ - b.value_};
    }
    friend constexpr Derived operator*(Derived a, double s) { return Derived{a.value_ * s}; }
    friend constexpr Derived operator*(double s, Derived a) { return Derived{a.value_ * s}; }
    friend constexpr Derived operator/(Derived a, double s) { return Derived{a.value_ / s}; }
    /// Ratio of two like quantities is a dimensionless double.
    friend constexpr double operator/(Derived a, Derived b) { return a.value_ / b.value_; }

    friend constexpr auto operator<=>(Derived a, Derived b) { return a.value_ <=> b.value_; }
    friend constexpr bool operator==(Derived a, Derived b) { return a.value_ == b.value_; }

    Derived& operator+=(Derived other) {
        value_ += other.value_;
        return static_cast<Derived&>(*this);
    }
    Derived& operator-=(Derived other) {
        value_ -= other.value_;
        return static_cast<Derived&>(*this);
    }
    Derived& operator*=(double s) {
        value_ *= s;
        return static_cast<Derived&>(*this);
    }

protected:
    double value_ = 0.0;
};

}  // namespace detail

/// Data volume in gigabytes (decimal GB, matching cloud-provider billing).
class GigaBytes : public detail::Quantity<GigaBytes> {
public:
    using Quantity::Quantity;
    [[nodiscard]] constexpr double megabytes() const { return value_ * 1000.0; }
    [[nodiscard]] static constexpr GigaBytes from_megabytes(double mb) {
        return GigaBytes{mb / 1000.0};
    }
};

/// Sequential bandwidth in MB/s (decimal, matching provider datasheets).
class MBytesPerSec : public detail::Quantity<MBytesPerSec> {
public:
    using Quantity::Quantity;
};

/// I/O operations per second (4 KB random, matching Table 1).
class Iops : public detail::Quantity<Iops> {
public:
    using Quantity::Quantity;
};

/// Wall-clock duration in seconds.
class Seconds : public detail::Quantity<Seconds> {
public:
    using Quantity::Quantity;
    [[nodiscard]] constexpr double minutes() const { return value_ / 60.0; }
    [[nodiscard]] constexpr double hours() const { return value_ / 3600.0; }
    [[nodiscard]] static constexpr Seconds from_minutes(double m) { return Seconds{m * 60.0}; }
    [[nodiscard]] static constexpr Seconds from_hours(double h) { return Seconds{h * 3600.0}; }
};

/// Monetary cost in US dollars.
class Dollars : public detail::Quantity<Dollars> {
public:
    using Quantity::Quantity;
};

/// GigaBytes / MBytesPerSec -> transfer time.
[[nodiscard]] constexpr Seconds operator/(GigaBytes volume, MBytesPerSec bandwidth) {
    return Seconds{volume.megabytes() / bandwidth.value()};
}

/// MBytesPerSec * Seconds -> data moved.
[[nodiscard]] constexpr GigaBytes operator*(MBytesPerSec bw, Seconds t) {
    return GigaBytes::from_megabytes(bw.value() * t.value());
}
[[nodiscard]] constexpr GigaBytes operator*(Seconds t, MBytesPerSec bw) { return bw * t; }

namespace literals {

constexpr GigaBytes operator""_GB(long double v) { return GigaBytes{static_cast<double>(v)}; }
constexpr GigaBytes operator""_GB(unsigned long long v) {
    return GigaBytes{static_cast<double>(v)};
}
constexpr MBytesPerSec operator""_MBps(long double v) {
    return MBytesPerSec{static_cast<double>(v)};
}
constexpr MBytesPerSec operator""_MBps(unsigned long long v) {
    return MBytesPerSec{static_cast<double>(v)};
}
constexpr Seconds operator""_sec(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_sec(unsigned long long v) {
    return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_min(long double v) {
    return Seconds::from_minutes(static_cast<double>(v));
}
constexpr Seconds operator""_min(unsigned long long v) {
    return Seconds::from_minutes(static_cast<double>(v));
}
constexpr Dollars operator""_usd(long double v) { return Dollars{static_cast<double>(v)}; }
constexpr Dollars operator""_usd(unsigned long long v) {
    return Dollars{static_cast<double>(v)};
}

}  // namespace literals

inline std::ostream& operator<<(std::ostream& os, GigaBytes v) { return os << v.value() << " GB"; }
inline std::ostream& operator<<(std::ostream& os, MBytesPerSec v) {
    return os << v.value() << " MB/s";
}
inline std::ostream& operator<<(std::ostream& os, Iops v) { return os << v.value() << " IOPS"; }
inline std::ostream& operator<<(std::ostream& os, Seconds v) { return os << v.value() << " s"; }
inline std::ostream& operator<<(std::ostream& os, Dollars v) { return os << "$" << v.value(); }

/// True when two doubles agree to within `rel` relative tolerance
/// (falls back to absolute tolerance near zero).
[[nodiscard]] inline bool approx_equal(double a, double b, double rel = 1e-9) {
    const double scale = std::fmax(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= rel * std::fmax(scale, 1.0);
}

}  // namespace cast
