// Compile-time concurrency contracts: Clang thread-safety-analysis macros
// and annotated lock types for the whole runtime.
//
// Every concurrent component (the MPMC priority queue, the work-stealing
// ThreadPool, CircuitBreaker, the sharded EvalCache, PlannerService and the
// OverloadGovernor) declares its lock discipline through these macros:
// which mutex guards which field (CAST_GUARDED_BY), which private methods
// may only run with a lock held (CAST_REQUIRES), and which public methods
// must not be entered with it held (CAST_EXCLUDES). Under Clang the
// annotations are enforced by `-Wthread-safety` — the CI thread-safety lane
// builds the tree with `-Werror=thread-safety-analysis`, so a guarded field
// read outside its mutex is a build break, not a race TSan has to catch in
// the right interleaving. Under GCC (the tier-1 build) every macro expands
// to nothing; the annotations are behavior-free by construction.
//
// The annotated types below replace the std primitives everywhere in src/:
// cast_check rule C001/C002 rejects naked std::mutex / std::lock_guard /
// std::condition_variable outside this header, because the analysis only
// sees capabilities it knows about. cast::Mutex is a std::mutex tagged as a
// capability; LockGuard/UniqueLock are scoped capabilities; CondVar wraps
// std::condition_variable to wait on a cast::UniqueLock.
//
// Escape hatch: CAST_NO_TSA disables the analysis for one function. The
// repo-wide budget is ≤ 3 uses, each requiring a same-line justification
// comment — enforced by cast_check rules C007 (justification) and C009
// (budget), so escapes stay an audited exception, never a habit.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

// ---------------------------------------------------------------------------
// Attribute macros (no-ops outside Clang).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CAST_TSA(x) __attribute__((x))
#endif
#endif
#ifndef CAST_TSA
#define CAST_TSA(x)
#endif

/// Tags a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define CAST_CAPABILITY(x) CAST_TSA(capability(x))
/// Tags a RAII type whose constructor acquires and destructor releases.
#define CAST_SCOPED_CAPABILITY CAST_TSA(scoped_lockable)
/// Field may only be read or written while holding `x`.
#define CAST_GUARDED_BY(x) CAST_TSA(guarded_by(x))
/// Pointed-to data (not the pointer itself) is guarded by `x`.
#define CAST_PT_GUARDED_BY(x) CAST_TSA(pt_guarded_by(x))
/// Function may only be called with the listed capabilities held.
#define CAST_REQUIRES(...) CAST_TSA(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities and does not release them.
#define CAST_ACQUIRE(...) CAST_TSA(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define CAST_RELEASE(...) CAST_TSA(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `ret`.
#define CAST_TRY_ACQUIRE(ret, ...) CAST_TSA(try_acquire_capability(ret, __VA_ARGS__))
/// Function must NOT be entered with the listed capabilities held
/// (deadlock prevention for self-locking public APIs).
#define CAST_EXCLUDES(...) CAST_TSA(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define CAST_RETURN_CAPABILITY(x) CAST_TSA(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Budgeted (≤ 3
/// repo-wide) and must carry a same-line justification comment — see
/// cast_check rules C007/C009.
#define CAST_NO_TSA CAST_TSA(no_thread_safety_analysis)

namespace cast {

/// std::mutex tagged as a thread-safety capability. All mutexes in src/ are
/// this type so every lock the analysis reasons about is visible to it.
class CAST_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() CAST_ACQUIRE() { m_.lock(); }
    void unlock() CAST_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() CAST_TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
    friend class CondVar;
    friend class UniqueLock;
    std::mutex m_;
};

/// RAII lock for the common hold-to-end-of-scope case (std::lock_guard).
class CAST_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& m) CAST_ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
    ~LockGuard() CAST_RELEASE() { mutex_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex& mutex_;
};

/// RAII lock that a CondVar can release and reacquire (std::unique_lock).
/// Deliberately minimal: no deferred/adopted modes, no manual unlock —
/// every UniqueLock in this codebase is held from construction to scope
/// exit, which is exactly the contract the scoped-capability annotation
/// can prove.
class CAST_SCOPED_CAPABILITY UniqueLock {
public:
    explicit UniqueLock(Mutex& m) CAST_ACQUIRE(m) : lock_(m.m_) {}
    ~UniqueLock() CAST_RELEASE() = default;

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/// Condition variable over cast::Mutex/UniqueLock. The analysis cannot
/// model wait()'s release-and-reacquire (the capability is held on entry
/// and on return, which is all callers can observe), so wait() is the one
/// place the analysis is switched off — callers still check their guarded
/// predicate in a while loop around wait(), where the lock is provably
/// held.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Atomically release `lock`, sleep until notified, reacquire. Spurious
    /// wakeups happen; always call from a predicate loop.
    void wait(UniqueLock& lock) CAST_NO_TSA {  // justified: TSA cannot model cv release/reacquire; lock is held on entry and return
        cv_.wait(lock.lock_);
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace cast
