// Cooperative cancellation for long-running solves.
//
// A CancelToken is a shared stop flag the planning service hands to every
// budgeted solve it dispatches: the solver polls stop_requested() at chain-
// segment boundaries (cheap relaxed load) and, when it fires, returns its
// best-so-far feasible result flagged budget_exhausted instead of throwing
// or blocking. One token may be observed by many solves at once (service
// shutdown cancels the whole in-flight set), so all operations are atomic
// and the token itself is immovable. Lock-free by design: there is no
// mutex here for the thread-safety analysis to track — the whole contract
// is the single atomic flag, which needs no capability annotations.
#pragma once

#include <atomic>

namespace cast {

class CancelToken {
public:
    CancelToken() = default;
    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /// Ask every observing solve to stop at its next segment boundary.
    /// Idempotent and safe from any thread.
    void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool stop_requested() const noexcept {
        return stop_.load(std::memory_order_relaxed);
    }

    /// Re-arm the token (between serving generations; never while solves
    /// that observe it are in flight).
    void reset() noexcept { stop_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> stop_{false};
};

}  // namespace cast
