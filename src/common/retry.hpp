// Retry-with-backoff and circuit-breaker primitives for the serving layer.
//
// The simulator already has a seeded RetryPolicy (sim/faults.hpp) for
// *modeled* objStore request errors; this header is the real-time
// counterpart the dispatcher uses to survive *actual* failures: a solve
// attempt that throws (an injected serve-layer fault, a poisoned request)
// is retried a bounded number of times with capped exponential backoff,
// and a CircuitBreaker remembers consecutive failures so a request
// template that keeps failing is failed fast instead of occupying a worker
// for its full retry budget every time it reappears.
//
// The breaker is the classic three-state machine:
//
//   kClosed   - everything flows; consecutive failures are counted, and
//               reaching `failure_threshold` trips the breaker open.
//   kOpen     - allow() refuses immediately (fail fast). After the cooldown
//               (wall-clock `open_ms`, or `open_ops` refused attempts when
//               configured - the deterministic mode tests use) the next
//               allow() transitions to half-open.
//   kHalfOpen - exactly one trial request is let through; its success
//               closes the breaker, its failure re-opens it for another
//               cooldown.
//
// All operations are internally synchronized; one breaker may be consulted
// from every pool worker at once.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/annotations.hpp"
#include "common/error.hpp"

namespace cast {

/// Capped exponential backoff between solve attempts. Deterministic —
/// jitter belongs to the *modeled* retry policy (sim/faults.hpp), not to
/// the real-time one, where reproducible waits make tests exact.
struct Backoff {
    /// Total attempts allowed (1 = no retry at all).
    int max_attempts = 1;
    double base_ms = 1.0;
    double multiplier = 2.0;
    double cap_ms = 100.0;

    void validate() const {
        CAST_EXPECTS_MSG(max_attempts >= 1, "need at least one attempt");
        CAST_EXPECTS_MSG(base_ms >= 0.0, "backoff base must be non-negative");
        CAST_EXPECTS_MSG(multiplier >= 1.0, "backoff must not shrink");
        CAST_EXPECTS_MSG(cap_ms >= base_ms, "backoff cap below its base");
    }

    /// Wait before retry number `retry` (0-based: the wait between attempt
    /// `retry` and attempt `retry + 1`).
    [[nodiscard]] double wait_ms(int retry) const {
        double w = base_ms;
        for (int i = 0; i < retry; ++i) w = std::min(w * multiplier, cap_ms);
        return std::min(w, cap_ms);
    }
};

/// Block the calling thread for `ms` milliseconds (no-op when <= 0). The
/// single real-sleep primitive for the retry/backoff and fault-injection
/// paths — cast_check rule C004 bans std::this_thread::sleep_for anywhere
/// else in src/, so every wall-clock stall in the runtime is grep-able to
/// this one function and the injector.
inline void sleep_backoff_ms(double ms) {
    if (ms <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct CircuitBreakerOptions {
    /// Consecutive failures that trip the breaker open.
    int failure_threshold = 3;
    /// Wall-clock cooldown before the half-open trial.
    double open_ms = 250.0;
    /// When > 0, the cooldown is counted in refused allow() calls instead
    /// of wall time — the deterministic mode unit tests and the swap-storm
    /// guard use (no clock reads, exactly reproducible transitions).
    int open_ops = 0;

    void validate() const {
        CAST_EXPECTS_MSG(failure_threshold >= 1, "breaker needs a failure threshold");
        CAST_EXPECTS_MSG(open_ms >= 0.0, "breaker cooldown must be non-negative");
        CAST_EXPECTS_MSG(open_ops >= 0, "breaker op cooldown must be non-negative");
    }
};

class CircuitBreaker {
public:
    explicit CircuitBreaker(CircuitBreakerOptions options = {}) : options_(options) {
        options_.validate();
    }

    CircuitBreaker(const CircuitBreaker&) = delete;
    CircuitBreaker& operator=(const CircuitBreaker&) = delete;

    /// True when the protected operation may proceed. In half-open state
    /// only the first caller gets a trial; everyone else keeps failing fast
    /// until record_success()/record_failure() resolves the trial.
    [[nodiscard]] bool allow() CAST_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        switch (state_) {
            case BreakerState::kClosed:
                return true;
            case BreakerState::kHalfOpen:
                // One trial is already in flight; fail fast.
                return false;
            case BreakerState::kOpen:
                break;
        }
        if (cooled_down_locked()) {
            state_ = BreakerState::kHalfOpen;
            return true;  // this caller is the half-open trial
        }
        ++refused_since_open_;
        return false;
    }

    void record_success() CAST_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        consecutive_failures_ = 0;
        state_ = BreakerState::kClosed;
    }

    void record_failure() CAST_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        if (state_ == BreakerState::kHalfOpen) {
            open_locked();  // the trial failed; back to open for another cooldown
            return;
        }
        ++consecutive_failures_;
        if (state_ == BreakerState::kClosed &&
            consecutive_failures_ >= options_.failure_threshold) {
            open_locked();
        }
    }

    [[nodiscard]] BreakerState state() const CAST_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        return state_;
    }

    /// Times the breaker transitioned closed/half-open -> open.
    [[nodiscard]] std::uint64_t trips() const CAST_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        return trips_;
    }

private:
    void open_locked() CAST_REQUIRES(mutex_) {
        state_ = BreakerState::kOpen;
        opened_at_ = std::chrono::steady_clock::now();
        refused_since_open_ = 0;
        ++trips_;
    }

    [[nodiscard]] bool cooled_down_locked() const CAST_REQUIRES(mutex_) {
        if (options_.open_ops > 0) return refused_since_open_ >= options_.open_ops;
        const auto elapsed = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - opened_at_);
        return elapsed.count() >= options_.open_ms;
    }

    CircuitBreakerOptions options_;
    mutable Mutex mutex_;
    BreakerState state_ CAST_GUARDED_BY(mutex_) = BreakerState::kClosed;
    int consecutive_failures_ CAST_GUARDED_BY(mutex_) = 0;
    int refused_since_open_ CAST_GUARDED_BY(mutex_) = 0;
    std::uint64_t trips_ CAST_GUARDED_BY(mutex_) = 0;
    std::chrono::steady_clock::time_point opened_at_ CAST_GUARDED_BY(mutex_){};
};

}  // namespace cast
