// Deterministic random-number utilities.
//
// Every stochastic component in the library (trace synthesis, task jitter,
// annealing moves) takes an explicit seed so that simulations and solver
// runs are exactly reproducible. We use xoshiro256** — fast, tiny state,
// and identical output on every platform, unlike std::mt19937 whose
// distributions are implementation-defined. Distribution sampling below is
// hand-rolled for the same reason.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "common/error.hpp"

namespace cast {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
    constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    constexpr std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** generator (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Rng {
public:
    using result_type = std::uint64_t;

    constexpr explicit Rng(std::uint64_t seed = 0x9d2c5680cafef00dULL) {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    constexpr result_type operator()() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        CAST_EXPECTS(lo <= hi);
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). n must be positive.
    std::uint64_t below(std::uint64_t n) {
        CAST_EXPECTS(n > 0);
        // Lemire's nearly-divisionless bounded sampling (rejection keeps it
        // exactly uniform).
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t between(std::int64_t lo, std::int64_t hi) {
        CAST_EXPECTS(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Standard normal via Marsaglia polar method (deterministic across
    /// platforms, unlike std::normal_distribution).
    double normal() {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double mul = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * mul;
        has_spare_ = true;
        return u * mul;
    }

    /// Normal with the given mean / stddev.
    double normal(double mean, double stddev) { return mean + stddev * normal(); }

    /// Log-normal multiplicative jitter with unit median; sigma is the
    /// stddev of the underlying normal. Used for per-task runtime noise.
    double lognormal_jitter(double sigma) { return std::exp(sigma * normal()); }

    /// Sample an index according to non-negative weights (need not sum to 1).
    std::size_t weighted_index(std::span<const double> weights) {
        CAST_EXPECTS(!weights.empty());
        double total = 0.0;
        for (double w : weights) {
            CAST_EXPECTS(w >= 0.0);
            total += w;
        }
        CAST_EXPECTS_MSG(total > 0.0, "all weights are zero");
        double r = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r < 0.0) return i;
        }
        return weights.size() - 1;  // numeric edge: r landed exactly on total
    }

    /// Derive an independent child generator; `stream` distinguishes children
    /// of the same parent deterministically.
    Rng fork(std::uint64_t stream) {
        return Rng((*this)() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x42ULL));
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    bool has_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace cast
