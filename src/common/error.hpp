// Contract-checking and error-reporting helpers used across the library.
//
// Follows the C++ Core Guidelines I.6/I.8 style: preconditions and
// postconditions are checked with Expects/Ensures-like macros that throw a
// typed exception carrying the failed expression and source location. We
// throw rather than abort so that library users (and the test suite) can
// observe and recover from contract violations.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cast {

/// Thrown when a CAST_EXPECTS precondition fails.
class PreconditionError : public std::logic_error {
public:
    explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a CAST_ENSURES postcondition or internal invariant fails.
class InvariantError : public std::logic_error {
public:
    explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an input (configuration, workload spec, plan) is semantically
/// invalid in a way the caller could have avoided.
class ValidationError : public std::invalid_argument {
public:
    explicit ValidationError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail_precondition(std::string_view expr,
                                                    std::string_view msg,
                                                    const std::source_location& loc) {
    std::string what = "precondition failed: ";
    what += expr;
    if (!msg.empty()) {
        what += " (";
        what += msg;
        what += ")";
    }
    what += " at ";
    what += loc.file_name();
    what += ":";
    what += std::to_string(loc.line());
    throw PreconditionError(what);
}

[[noreturn]] inline void contract_fail_invariant(std::string_view expr,
                                                 std::string_view msg,
                                                 const std::source_location& loc) {
    std::string what = "invariant failed: ";
    what += expr;
    if (!msg.empty()) {
        what += " (";
        what += msg;
        what += ")";
    }
    what += " at ";
    what += loc.file_name();
    what += ":";
    what += std::to_string(loc.line());
    throw InvariantError(what);
}

}  // namespace detail
}  // namespace cast

/// Precondition check: throws cast::PreconditionError on failure.
#define CAST_EXPECTS(cond)                                                               \
    do {                                                                                 \
        if (!(cond)) {                                                                   \
            ::cast::detail::contract_fail_precondition(#cond, "",                        \
                                                       std::source_location::current()); \
        }                                                                                \
    } while (false)

/// Precondition check with an explanatory message.
#define CAST_EXPECTS_MSG(cond, msg)                                                       \
    do {                                                                                  \
        if (!(cond)) {                                                                    \
            ::cast::detail::contract_fail_precondition(#cond, (msg),                      \
                                                       std::source_location::current());  \
        }                                                                                 \
    } while (false)

/// Postcondition / invariant check: throws cast::InvariantError on failure.
#define CAST_ENSURES(cond)                                                             \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::cast::detail::contract_fail_invariant(#cond, "",                         \
                                                    std::source_location::current());  \
        }                                                                              \
    } while (false)

/// Postcondition / invariant check with an explanatory message.
#define CAST_ENSURES_MSG(cond, msg)                                                    \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::cast::detail::contract_fail_invariant(#cond, (msg),                      \
                                                    std::source_location::current());  \
        }                                                                              \
    } while (false)
