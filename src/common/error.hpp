// Contract-checking and error-reporting helpers used across the library.
//
// Follows the C++ Core Guidelines I.6/I.8 style: preconditions and
// postconditions are checked with Expects/Ensures-like macros that throw a
// typed exception carrying the failed expression and source location. We
// throw rather than abort so that library users (and the test suite) can
// observe and recover from contract violations.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cast {

/// Thrown when a CAST_EXPECTS precondition fails.
class PreconditionError : public std::logic_error {
public:
    explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a CAST_ENSURES postcondition or internal invariant fails.
class InvariantError : public std::logic_error {
public:
    explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an input (configuration, workload spec, plan) is semantically
/// invalid in a way the caller could have avoided.
class ValidationError : public std::invalid_argument {
public:
    explicit ValidationError(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when a *simulated* execution fails for a modeled operational
/// reason — an injected fault exhausted its retry budget, a preempted task
/// ran out of re-execution attempts. Distinct from InvariantError (a bug in
/// the model itself) so callers such as the failure-aware Deployer can
/// retry or degrade instead of crashing. Carries the job/phase context of
/// the failure when known.
class SimulationError : public std::runtime_error {
public:
    explicit SimulationError(std::string detail, std::string job = "",
                             std::string phase = "")
        : std::runtime_error(compose(detail, job, phase)),
          detail_(std::move(detail)),
          job_(std::move(job)),
          phase_(std::move(phase)) {}

    /// The failure description without job/phase decoration.
    [[nodiscard]] const std::string& detail() const { return detail_; }
    /// Name of the failing job ("" when unknown).
    [[nodiscard]] const std::string& job() const { return job_; }
    /// Phase in which the failure occurred ("map", "stage_in", ...; "" when
    /// unknown).
    [[nodiscard]] const std::string& phase() const { return phase_; }

    /// Re-raise with (job, phase) context attached; used by layers that
    /// know more than the layer that threw.
    [[nodiscard]] SimulationError with_context(std::string job, std::string phase) const {
        return SimulationError(detail_, std::move(job), std::move(phase));
    }

private:
    static std::string compose(const std::string& detail, const std::string& job,
                               const std::string& phase) {
        std::string what = "simulated failure";
        if (!job.empty()) what += " in job '" + job + "'";
        if (!phase.empty()) what += " during " + phase;
        what += ": " + detail;
        return what;
    }

    std::string detail_;
    std::string job_;
    std::string phase_;
};

namespace detail {

[[noreturn]] inline void contract_fail_precondition(std::string_view expr,
                                                    std::string_view msg,
                                                    const std::source_location& loc) {
    std::string what = "precondition failed: ";
    what += expr;
    if (!msg.empty()) {
        what += " (";
        what += msg;
        what += ")";
    }
    what += " at ";
    what += loc.file_name();
    what += ":";
    what += std::to_string(loc.line());
    throw PreconditionError(what);
}

[[noreturn]] inline void contract_fail_invariant(std::string_view expr,
                                                 std::string_view msg,
                                                 const std::source_location& loc) {
    std::string what = "invariant failed: ";
    what += expr;
    if (!msg.empty()) {
        what += " (";
        what += msg;
        what += ")";
    }
    what += " at ";
    what += loc.file_name();
    what += ":";
    what += std::to_string(loc.line());
    throw InvariantError(what);
}

}  // namespace detail
}  // namespace cast

/// Precondition check: throws cast::PreconditionError on failure.
#define CAST_EXPECTS(cond)                                                               \
    do {                                                                                 \
        if (!(cond)) {                                                                   \
            ::cast::detail::contract_fail_precondition(#cond, "",                        \
                                                       std::source_location::current()); \
        }                                                                                \
    } while (false)

/// Precondition check with an explanatory message.
#define CAST_EXPECTS_MSG(cond, msg)                                                       \
    do {                                                                                  \
        if (!(cond)) {                                                                    \
            ::cast::detail::contract_fail_precondition(#cond, (msg),                      \
                                                       std::source_location::current());  \
        }                                                                                 \
    } while (false)

/// Postcondition / invariant check: throws cast::InvariantError on failure.
#define CAST_ENSURES(cond)                                                             \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::cast::detail::contract_fail_invariant(#cond, "",                         \
                                                    std::source_location::current());  \
        }                                                                              \
    } while (false)

/// Postcondition / invariant check with an explanatory message.
#define CAST_ENSURES_MSG(cond, msg)                                                    \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::cast::detail::contract_fail_invariant(#cond, (msg),                      \
                                                    std::source_location::current());  \
        }                                                                              \
    } while (false)
