// Minimal ASCII table / CSV writer for the benchmark harness.
//
// Every bench binary reprints a paper table or figure as rows; this keeps
// the formatting in one place so outputs are uniform and diffable.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cast {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {
        CAST_EXPECTS(!header_.empty());
    }

    /// Append a row of pre-formatted cells. Must match the header width.
    void add_row(std::vector<std::string> cells) {
        CAST_EXPECTS_MSG(cells.size() == header_.size(), "row width != header width");
        rows_.push_back(std::move(cells));
    }

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    /// Render as an aligned ASCII table.
    void print(std::ostream& os) const {
        std::vector<std::size_t> widths(header_.size());
        for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
        for (const auto& row : rows_) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                widths[c] = std::max(widths[c], row[c].size());
            }
        }
        print_separator(os, widths);
        print_row(os, header_, widths);
        print_separator(os, widths);
        for (const auto& row : rows_) print_row(os, row, widths);
        print_separator(os, widths);
    }

    /// Render as CSV (for downstream plotting).
    void print_csv(std::ostream& os) const {
        print_csv_row(os, header_);
        for (const auto& row : rows_) print_csv_row(os, row);
    }

private:
    static void print_separator(std::ostream& os, const std::vector<std::size_t>& widths) {
        os << '+';
        for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
        os << '\n';
    }

    static void print_row(std::ostream& os, const std::vector<std::string>& cells,
                          const std::vector<std::size_t>& widths) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : std::string{};
            os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cell << " |";
        }
        os << '\n';
    }

    static void print_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) os << ',';
            const std::string& cell = cells[c];
            if (cell.find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : cell) {
                    if (ch == '"') os << "\"\"";
                    else os << ch;
                }
                os << '"';
            } else {
                os << cell;
            }
        }
        os << '\n';
    }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 2 digits).
[[nodiscard]] inline std::string fmt(double v, int precision = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

/// Format a ratio as a percentage string, e.g. 0.514 -> "51.4%".
[[nodiscard]] inline std::string fmt_pct(double ratio, int precision = 1) {
    return fmt(ratio * 100.0, precision) + "%";
}

}  // namespace cast
