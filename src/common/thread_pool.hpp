// A small fixed-size thread pool with a parallel_for helper.
//
// Used by the annealing solver (independent chains) and the profiler
// (independent calibration runs). Work items are type-erased tasks; the
// pool is created once and joined in the destructor (RAII, no detached
// threads). parallel_for degrades gracefully to inline execution when the
// pool has a single worker, so behaviour is identical on 1-core machines.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace cast {

class ThreadPool {
public:
    /// Create a pool with `workers` threads (>= 1). Defaults to the hardware
    /// concurrency, with a floor of 1.
    explicit ThreadPool(std::size_t workers = default_workers()) {
        CAST_EXPECTS(workers >= 1);
        threads_.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            threads_.emplace_back([this] { worker_loop(); });
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            std::lock_guard lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

    /// Submit a callable; returns a future for its result.
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard lock(mutex_);
            CAST_EXPECTS_MSG(!stopping_, "submit on a stopping pool");
            queue_.emplace_back([task]() mutable { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Run body(i) for i in [0, n), distributing across workers, and wait for
    /// completion. The first exception thrown by any body is rethrown here.
    template <typename Body>
    void parallel_for(std::size_t n, Body&& body) {
        if (n == 0) return;
        if (worker_count() == 1 || n == 1) {
            for (std::size_t i = 0; i < n; ++i) body(i);
            return;
        }
        std::vector<std::future<void>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            futures.push_back(submit([&body, i] { body(i); }));
        }
        std::exception_ptr first_error;
        for (auto& f : futures) {
            try {
                f.get();
            } catch (...) {
                if (!first_error) first_error = std::current_exception();
            }
        }
        if (first_error) std::rethrow_exception(first_error);
    }

    [[nodiscard]] static std::size_t default_workers() {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<std::size_t>(hw);
    }

private:
    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock lock(mutex_);
                cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return;  // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

}  // namespace cast
