// Work-stealing thread pool with a chunked parallel_for.
//
// v2 design (the batch-simulation engine's substrate):
//   * Each worker owns a deque: it pushes/pops work at the back (LIFO, cache
//     warm) and thieves take from the front (FIFO, coarse chunks first).
//   * parallel_for claims *chunks* of the index space through one atomic
//     counter — no per-index heap task, no shared-queue traffic on the hot
//     path. The grain size is explicit (default: ~4 chunks per worker).
//   * Nested submission is safe: a thread blocked in parallel_for first
//     drains its own chunks inline and then helps execute other pool tasks
//     while it waits, so a worker calling parallel_for (annealing chains
//     profiling inside cluster planning, batch sims inside calibration)
//     can never deadlock the pool.
//   * Exceptions thrown by parallel_for bodies are aggregated: one failure
//     rethrows as-is, several are collected into a ParallelForError.
//   * CAST_THREADS overrides the default worker count (reproducible CI);
//     CAST_AFFINITY=1 (or the pin_threads constructor flag) pins worker i
//     to core i on Linux so replica scratch stays cache-resident across
//     tempering rounds (no-op elsewhere).
// The pool is created once and joined in the destructor (RAII, no detached
// threads). parallel_for degrades to inline execution whenever the
// effective parallelism is 1 — a 1-worker pool, a single index, or an
// index space that fits in one grain — so there is never a queue
// round-trip to pay on 1-core machines, and runner tasks are capped at
// the chunk count so small index spaces on wide pools do not enqueue
// no-op work.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace cast {

/// Aggregate of 2+ exceptions thrown by parallel_for bodies. A single
/// failing body rethrows its original exception instead.
class ParallelForError : public std::runtime_error {
public:
    explicit ParallelForError(std::vector<std::string> messages)
        : std::runtime_error(compose(messages)), messages_(std::move(messages)) {}

    /// what() of every body exception, in claim order.
    [[nodiscard]] const std::vector<std::string>& messages() const { return messages_; }

private:
    static std::string compose(const std::vector<std::string>& messages) {
        std::string what =
            "parallel_for: " + std::to_string(messages.size()) + " bodies failed: [";
        for (std::size_t i = 0; i < messages.size(); ++i) {
            if (i > 0) what += "; ";
            what += messages[i];
        }
        what += "]";
        return what;
    }

    std::vector<std::string> messages_;
};

class ThreadPool {
public:
    /// Create a pool with `workers` threads (>= 1). Defaults to CAST_THREADS
    /// when set, else the hardware concurrency, with a floor of 1. When
    /// `pin_threads` is set (default: the CAST_AFFINITY env var), worker i
    /// is pinned to core i % hardware_concurrency on Linux so per-worker
    /// replica scratch stays on one core's cache between exchange barriers;
    /// on other platforms the flag is accepted but has no effect.
    explicit ThreadPool(std::size_t workers = default_workers(),
                        bool pin_threads = default_pinning()) {
        CAST_EXPECTS(workers >= 1);
        queues_.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            queues_.push_back(std::make_unique<WorkerQueue>());
        }
        threads_.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            threads_.emplace_back([this, i] { worker_loop(i); });
        }
        if (pin_threads) pinned_ = pin_workers();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            // The store is atomic, but pairing it with the sleep mutex
            // closes the lost-wakeup window against a worker between its
            // predicate check and its wait.
            LockGuard lock(sleep_mutex_);
            stopping_.store(true, std::memory_order_relaxed);
        }
        cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

    /// True when affinity pinning was requested AND applied to every worker
    /// (always false off-Linux or when sched_setaffinity was refused).
    [[nodiscard]] bool pinned() const { return pinned_; }

    /// True when the calling thread is one of this pool's workers.
    [[nodiscard]] bool on_worker_thread() const { return current_worker(this) >= 0; }

    /// Submit a callable; returns a future for its result. Safe to call from
    /// worker threads (the task goes to the caller's own deque).
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        push_task([task]() mutable { (*task)(); });
        return fut;
    }

    /// Run body(i) for i in [0, n), distributing chunks of `grain`
    /// consecutive indices across workers, and wait for completion. The
    /// calling thread participates (and helps drain unrelated pool tasks
    /// while waiting, making nested parallel_for safe). grain == 0 picks
    /// ~4 chunks per worker. All body exceptions are collected: a single
    /// one is rethrown as-is, several become a ParallelForError.
    template <typename Body>
    void parallel_for(std::size_t n, Body&& body, std::size_t grain = 0) {
        CAST_EXPECTS_MSG(!stopping_.load(std::memory_order_relaxed),
                         "parallel_for on a stopping pool");
        if (n == 0) return;
        if (grain == 0) grain = std::max<std::size_t>(1, n / (worker_count() * 4));
        if (worker_count() == 1 || n == 1 || n <= grain) {
            for (std::size_t i = 0; i < n; ++i) body(i);
            return;
        }

        struct State {
            std::atomic<std::size_t> next{0};
            std::atomic<std::size_t> done{0};
            std::size_t n = 0;
            std::size_t grain = 1;
            Mutex error_mutex;
            std::vector<std::exception_ptr> errors CAST_GUARDED_BY(error_mutex);
        };
        auto state = std::make_shared<State>();
        state->n = n;
        state->grain = grain;

        // Claim chunks until the index space is exhausted. A failing chunk
        // still counts its indices as done so every waiter terminates.
        auto run_chunks = [state, &body] {
            for (;;) {
                const std::size_t begin =
                    state->next.fetch_add(state->grain, std::memory_order_relaxed);
                if (begin >= state->n) return;
                const std::size_t end = std::min(begin + state->grain, state->n);
                try {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                } catch (...) {
                    LockGuard lock(state->error_mutex);
                    state->errors.push_back(std::current_exception());
                }
                state->done.fetch_add(end - begin, std::memory_order_acq_rel);
            }
        };

        // Runner tasks drain as many chunks as they can, so enqueue at most
        // one per chunk beyond the calling thread's own share — a wide pool
        // handed a 2-chunk job must not pay worker_count()-2 wakeups for
        // tasks that find the counter already exhausted. The runners capture
        // `state` by shared_ptr (they may outlive this frame's wait when all
        // chunks were already claimed) but touch `body` only while done < n,
        // which the wait below outlasts.
        const std::size_t nchunks = (n + grain - 1) / grain;
        const std::size_t runners = std::min(worker_count(), nchunks - 1);
        for (std::size_t w = 0; w < runners; ++w) push_task(run_chunks);
        run_chunks();
        // Help execute unrelated pool tasks while waiting: if this thread is
        // itself a worker inside an outer parallel_for, the chunks it is
        // blocked on may be queued behind other runners.
        while (state->done.load(std::memory_order_acquire) < n) {
            if (!try_run_one_task()) std::this_thread::yield();
        }

        std::vector<std::exception_ptr> errors;
        {
            LockGuard lock(state->error_mutex);
            errors.swap(state->errors);
        }
        if (errors.empty()) return;
        if (errors.size() == 1) std::rethrow_exception(errors[0]);
        std::vector<std::string> messages;
        messages.reserve(errors.size());
        for (const auto& e : errors) {
            try {
                std::rethrow_exception(e);
            } catch (const std::exception& ex) {
                messages.emplace_back(ex.what());
            } catch (...) {
                messages.emplace_back("unknown exception");
            }
        }
        throw ParallelForError(std::move(messages));
    }

    /// CAST_THREADS env var (>= 1) when set, else hardware concurrency.
    [[nodiscard]] static std::size_t default_workers() {
        // Read once: getenv is unsynchronized against setenv, but CAST_THREADS
        // is only ever set before the first pool is created (CI harness).
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        if (const char* env = std::getenv("CAST_THREADS")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v >= 1) return static_cast<std::size_t>(v);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<std::size_t>(hw);
    }

    /// CAST_AFFINITY env var: any value other than empty/"0" requests
    /// worker pinning (the affinity-aware tempering mode).
    [[nodiscard]] static bool default_pinning() {
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char* env = std::getenv("CAST_AFFINITY");
        return env != nullptr && env[0] != '\0' &&
               !(env[0] == '0' && env[1] == '\0');
    }

private:
    using Task = std::function<void()>;

    struct WorkerQueue {
        Mutex mutex;
        std::deque<Task> deque CAST_GUARDED_BY(mutex);
    };

    /// Index of the calling thread in `pool`, or -1 for external threads.
    /// thread_local so one thread can be a worker of at most one pool at a
    /// time while other pools treat it as external (correct: pools do not
    /// share threads).
    static int& worker_slot(const ThreadPool* pool) {
        thread_local const ThreadPool* my_pool = nullptr;
        thread_local int my_index = -1;
        if (my_pool != pool) {
            my_pool = pool;
            my_index = -1;
        }
        return my_index;
    }

    [[nodiscard]] int current_worker(const ThreadPool* pool) const {
        return worker_slot(pool);
    }

    void push_task(Task task) {
        CAST_EXPECTS_MSG(!stopping_.load(std::memory_order_relaxed),
                         "submit on a stopping pool");
        const int self = current_worker(this);
        // Workers push to their own deque (back = LIFO, warm); external
        // producers round-robin across deques.
        const std::size_t q =
            self >= 0 ? static_cast<std::size_t>(self)
                      : next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
        {
            WorkerQueue& wq = *queues_[q];
            LockGuard lock(wq.mutex);
            wq.deque.push_back(std::move(task));
        }
        pending_.fetch_add(1, std::memory_order_release);
        {
            // Lock/unlock pairs the notify with the sleeper's predicate
            // check, closing the lost-wakeup window.
            LockGuard lock(sleep_mutex_);
        }
        cv_.notify_one();
    }

    /// Pop from own deque (back) or steal from another (front). Returns
    /// false when every deque is empty.
    [[nodiscard]] bool try_pop_task(Task& out) {
        const int self = current_worker(this);
        const std::size_t start =
            self >= 0 ? static_cast<std::size_t>(self)
                      : next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
        for (std::size_t k = 0; k < queues_.size(); ++k) {
            const std::size_t q = (start + k) % queues_.size();
            WorkerQueue& wq = *queues_[q];
            LockGuard lock(wq.mutex);
            if (wq.deque.empty()) continue;
            if (k == 0 && self >= 0) {
                out = std::move(wq.deque.back());
                wq.deque.pop_back();
            } else {
                out = std::move(wq.deque.front());
                wq.deque.pop_front();
            }
            pending_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /// Pin worker i to core i % hardware_concurrency. Returns true only
    /// when every pin call succeeded (containers may restrict the mask).
    [[nodiscard]] bool pin_workers() {
#ifdef __linux__
        const unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0) return false;
        bool all_ok = true;
        for (std::size_t i = 0; i < threads_.size(); ++i) {
            cpu_set_t set;
            CPU_ZERO(&set);
            CPU_SET(static_cast<int>(i % hw), &set);
            all_ok = pthread_setaffinity_np(threads_[i].native_handle(), sizeof(set), &set) ==
                         0 &&
                     all_ok;
        }
        return all_ok;
#else
        return false;
#endif
    }

    [[nodiscard]] bool try_run_one_task() {
        Task task;
        if (!try_pop_task(task)) return false;
        task();
        return true;
    }

    void worker_loop(std::size_t index) {
        worker_slot(this) = static_cast<int>(index);
        for (;;) {
            if (try_run_one_task()) continue;
            UniqueLock lock(sleep_mutex_);
            while (!stopping_.load(std::memory_order_relaxed) &&
                   pending_.load(std::memory_order_acquire) == 0) {
                cv_.wait(lock);
            }
            if (stopping_.load(std::memory_order_relaxed) &&
                pending_.load(std::memory_order_acquire) == 0) {
                return;  // stopping and drained
            }
        }
    }

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    /// Guards nothing directly (stopping_/pending_ are atomics); exists to
    /// pair notifies with the sleep predicate so wakeups are never lost.
    Mutex sleep_mutex_;
    CondVar cv_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> next_queue_{0};
    std::vector<std::thread> threads_;
    bool pinned_ = false;
};

}  // namespace cast
