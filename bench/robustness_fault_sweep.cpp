// Robustness sweep: degradation of CAST, CAST++ and non-tiered baselines
// under increasing fault intensity (object-store error bursts, tier
// throttling episodes, task kills, stragglers — sim/faults.hpp).
//
// Plans are computed once on the fault-free model (planning is
// fault-oblivious, as in the paper); each plan is then deployed under
// FaultProfile::scaled(intensity, seed) for intensity 0..1. The failure-
// aware Deployer retries failing jobs with backoff and degrades them to the
// backing object store when they keep failing.
//
// Output: a JSON document on stdout — per configuration, the degradation
// curve of cost, makespan, retry/degradation counts (workload part) and
// deadline-miss rate (workflow part). Progress goes to stderr so the JSON
// stays pipeable.
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "workload/facebook.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;

constexpr std::uint64_t kFaultSeed = 7;
constexpr std::uint64_t kSimSeed = 42;
const std::vector<double> kIntensities = {0.0, 0.25, 0.5, 0.75, 1.0};

std::string num(double v, int prec = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

core::Deployer make_deployer(double intensity) {
    sim::SimOptions options{.seed = kSimSeed, .jitter_sigma = 0.06};
    options.faults = sim::FaultProfile::scaled(intensity, kFaultSeed);
    return core::Deployer(options);
}

sim::FaultStats sum_stats(const std::vector<sim::JobResult>& results) {
    sim::FaultStats total;
    for (const auto& r : results) total += r.faults;
    return total;
}

/// One sample of a degradation curve, serialized as a JSON object.
struct Point {
    double intensity = 0.0;
    bool failed = false;  // deployment failed beyond retry + degradation
    double cost = 0.0;
    double makespan_min = 0.0;
    int retries = 0;
    int degraded = 0;
    sim::FaultStats faults;
    int deadline_misses = -1;  // workflow part only
    int workflow_count = 0;

    [[nodiscard]] std::string json() const {
        std::ostringstream os;
        os << "{\"intensity\": " << num(intensity, 2);
        if (failed) {
            os << ", \"failed\": true}";
            return os.str();
        }
        os << ", \"cost_usd\": " << num(cost, 2)
           << ", \"makespan_min\": " << num(makespan_min, 2)
           << ", \"job_retries\": " << retries << ", \"degraded_jobs\": " << degraded
           << ", \"task_reexecutions\": " << faults.task_retries
           << ", \"request_retries\": " << faults.request_retries
           << ", \"stragglers\": " << faults.stragglers
           << ", \"throttle_events\": " << faults.throttle_events;
        if (deadline_misses >= 0) {
            os << ", \"deadline_misses\": " << deadline_misses << ", \"miss_rate\": "
               << num(static_cast<double>(deadline_misses) / workflow_count, 2);
        }
        os << "}";
        return os.str();
    }
};

std::string curve_json(const std::string& name, const std::vector<Point>& points) {
    std::ostringstream os;
    os << "    {\"name\": \"" << name << "\", \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        os << "      " << points[i].json() << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "    ]}";
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    std::cerr << "robustness_fault_sweep: deployment degradation vs fault intensity\n"
              << "(fault model per DESIGN.md; plans computed fault-free, deployed "
                 "under FaultProfile::scaled)\n";
    const auto cluster = cloud::ClusterSpec::paper_400_core();
    model::ProfilerOptions popts;
    popts.runs_per_point = 2;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), popts);
    ThreadPool pool;
    const model::PerfModelSet models = profiler.profile(&pool);
    std::cerr << "[profiled " << cluster.worker_count << "x " << cluster.worker.name
              << "]\n";

    // ---------------- workload part: cost + makespan degradation ----------
    const auto workload = workload::synthesize_facebook_workload(42);
    core::PlanEvaluator oblivious(models, workload, core::EvalOptions{.reuse_aware = false});
    core::PlanEvaluator aware(models, workload, core::EvalOptions{.reuse_aware = true});

    core::CastOptions cast_opts;
    cast_opts.annealing.iter_max = 8000;
    cast_opts.annealing.chains = 2;
    cast_opts.annealing.seed = 2015;

    struct Config {
        std::string name;
        core::TieringPlan plan;
        bool reuse_aware = false;
    };
    std::vector<Config> configs;
    configs.push_back({"persSSD 100%",
                       core::TieringPlan::uniform(workload.size(), StorageTier::kPersistentSsd),
                       false});
    configs.push_back({"objStore 100%",
                       core::TieringPlan::uniform(workload.size(), StorageTier::kObjectStore),
                       false});
    configs.push_back(
        {"CAST", core::plan_cast(models, workload, cast_opts, &pool).plan, false});
    configs.push_back(
        {"CAST++", core::plan_cast_plus_plus(models, workload, cast_opts, &pool).plan, true});

    // The (intensity x config) grid cells are independent deployments;
    // fan them over the pool, each writing its preallocated Point by index
    // so the JSON curves come out in the same order as the serial sweep.
    // The shared PlanEvaluators are thread-safe (sharded EvalCache).
    std::vector<std::vector<Point>> workload_curves(
        configs.size(), std::vector<Point>(kIntensities.size()));
    pool.parallel_for(
        kIntensities.size() * configs.size(),
        [&](std::size_t cell) {
            const std::size_t i = cell / configs.size();
            const std::size_t c = cell % configs.size();
            const double intensity = kIntensities[i];
            const core::Deployer deployer = make_deployer(intensity);
            Point pt;
            pt.intensity = intensity;
            try {
                const auto& evaluator = configs[c].reuse_aware ? aware : oblivious;
                const auto dep = deployer.deploy(evaluator, configs[c].plan);
                pt.cost = dep.total_cost().value();
                pt.makespan_min = dep.total_runtime.minutes();
                pt.retries = dep.retry_count;
                pt.degraded = static_cast<int>(dep.degraded_jobs.size());
                pt.faults = sum_stats(dep.job_results);
            } catch (const SimulationError& e) {
                pt.failed = true;
                std::cerr << "  " << configs[c].name << " @" << num(intensity, 2)
                          << " failed: " << e.what() << "\n";
            }
            workload_curves[c][i] = pt;
            std::cerr << "  workload " << configs[c].name << " @" << num(intensity, 2)
                      << " done\n";
        },
        /*grain=*/1);

    // ---------------- workflow part: deadline-miss degradation ------------
    const auto workflows = workload::synthesize_deadline_workflows(11);
    struct WfConfig {
        std::string name;
        std::vector<core::WorkflowPlan> plans;  // one per workflow
    };
    std::vector<WfConfig> wf_configs;
    auto uniform_plans = [&](StorageTier tier) {
        // The §3.1 experiment convention: non-tiered baselines provision
        // the block tiers generously (~500 GB volumes per VM).
        std::vector<core::WorkflowPlan> plans;
        for (const auto& wf : workflows) {
            core::WorkflowEvaluator evaluator(models, wf);
            core::WorkflowPlan plan = core::WorkflowPlan::uniform(wf.size(), tier);
            double req = 0.0;
            for (std::size_t i = 0; i < wf.size(); ++i) {
                req += evaluator.job_requirement(plan, i).value();
            }
            const double k =
                std::max(1.0, 500.0 * models.cluster().worker_count / std::max(req, 1.0));
            for (auto& d : plan.decisions) d.overprovision = k;
            plans.push_back(std::move(plan));
        }
        return plans;
    };
    wf_configs.push_back({"ephSSD 100%", uniform_plans(StorageTier::kEphemeralSsd)});
    wf_configs.push_back({"persSSD 100%", uniform_plans(StorageTier::kPersistentSsd)});
    {
        core::AnnealingOptions wf_opts;
        wf_opts.iter_max = 8000;
        wf_opts.chains = 4;
        std::vector<core::WorkflowPlan> plans;
        for (const auto& wf : workflows) {
            core::WorkflowEvaluator evaluator(models, wf);
            plans.push_back(core::WorkflowSolver(evaluator, wf_opts).solve(&pool).plan);
        }
        wf_configs.push_back({"CAST++", std::move(plans)});
    }

    const int wf_count = static_cast<int>(workflows.size());
    std::vector<std::vector<Point>> workflow_curves(
        wf_configs.size(), std::vector<Point>(kIntensities.size()));
    pool.parallel_for(
        kIntensities.size() * wf_configs.size(),
        [&](std::size_t cell) {
            const std::size_t i = cell / wf_configs.size();
            const std::size_t c = cell % wf_configs.size();
            const double intensity = kIntensities[i];
            const core::Deployer deployer = make_deployer(intensity);
            Point pt;
            pt.intensity = intensity;
            pt.deadline_misses = 0;
            pt.workflow_count = wf_count;
            try {
                for (std::size_t w = 0; w < workflows.size(); ++w) {
                    core::WorkflowEvaluator evaluator(models, workflows[w]);
                    const auto dep =
                        deployer.deploy_workflow(evaluator, wf_configs[c].plans[w]);
                    pt.cost += dep.total_cost().value();
                    pt.makespan_min += dep.total_runtime.minutes();
                    pt.retries += dep.retry_count;
                    pt.degraded += static_cast<int>(dep.degraded_jobs.size());
                    pt.faults += sum_stats(dep.job_results);
                    pt.deadline_misses += dep.met_deadline ? 0 : 1;
                }
            } catch (const SimulationError& e) {
                pt.failed = true;
                std::cerr << "  " << wf_configs[c].name << " @" << num(intensity, 2)
                          << " failed: " << e.what() << "\n";
            }
            workflow_curves[c][i] = pt;
            std::cerr << "  workflow " << wf_configs[c].name << " @" << num(intensity, 2)
                      << " done\n";
        },
        /*grain=*/1);

    // ---------------- JSON document ---------------------------------------
    std::cout << "{\n"
              << "  \"bench\": \"robustness_fault_sweep\",\n"
              << "  \"fault_seed\": " << kFaultSeed << ",\n"
              << "  \"sim_seed\": " << kSimSeed << ",\n"
              << "  \"intensities\": [";
    for (std::size_t i = 0; i < kIntensities.size(); ++i) {
        std::cout << num(kIntensities[i], 2) << (i + 1 < kIntensities.size() ? ", " : "");
    }
    std::cout << "],\n  \"workload\": {\"jobs\": " << workload.size()
              << ", \"configs\": [\n";
    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::cout << curve_json(configs[c].name, workload_curves[c])
                  << (c + 1 < configs.size() ? "," : "") << "\n";
    }
    std::cout << "  ]},\n  \"workflows\": {\"count\": " << wf_count
              << ", \"configs\": [\n";
    for (std::size_t c = 0; c < wf_configs.size(); ++c) {
        std::cout << curve_json(wf_configs[c].name, workflow_curves[c])
                  << (c + 1 < wf_configs.size() ? "," : "") << "\n";
    }
    std::cout << "  ]}\n}\n";
    return 0;
}
