// Figure 2: impact of scaling persSSD volume capacity for Sort and Grep,
// observed (simulator) vs the REG regression model (§3.1.2, §4.2.1).
//
// The observed points are independent (job, capacity) configurations, so
// they run as one sim::BatchRunner batch over the thread pool; outcomes
// come back indexed, and the table below reads them in sweep order —
// bit-identical to the old serial per-point loop.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/characterization.hpp"
#include "sim/batch.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
using cloud::tier_index;
using workload::AppKind;
}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Figure 2: runtime vs per-VM persSSD capacity (10-VM cluster)",
                        "Figure 2");
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const auto models = bench::profile_models(cluster);

    // Paper datasets: Sort 100 GB, Grep 300 GB.
    const auto sort = bench::make_job(1, AppKind::kSort, 100.0);
    const auto grep = bench::make_job(2, AppKind::kGrep, 300.0);

    const std::vector<double> caps = {100.0, 200.0, 300.0, 400.0, 500.0,
                                      600.0, 700.0, 800.0, 900.0, 1000.0};

    // One batch config per (capacity, job), jobs interleaved per capacity.
    std::vector<sim::BatchConfig> configs;
    configs.reserve(caps.size() * 2);
    for (double cap : caps) {
        core::CharacterizationOptions opts;
        opts.block_volume_per_vm = GigaBytes{cap};
        for (const auto& job : {sort, grep}) {
            const core::CapacityBreakdown breakdown = core::characterization_capacities(
                cluster, catalog, job, StorageTier::kPersistentSsd, opts);
            sim::TierCapacities tc;
            for (StorageTier t : cloud::kAllTiers) {
                tc.set(t, breakdown.per_vm[tier_index(t)]);
            }
            configs.push_back(sim::BatchConfig{
                sim::JobPlacement::on_tier(job, StorageTier::kPersistentSsd), tc,
                opts.sim});
        }
    }
    const sim::BatchRunner runner(cluster, catalog);
    ThreadPool pool;
    const std::vector<sim::BatchOutcome> outcomes = runner.run(configs, &pool);

    TextTable t({"per-VM persSSD (GB)", "Sort obs (s)", "Sort reg (s)", "Grep obs (s)",
                 "Grep reg (s)"});
    double sort100 = 0.0;
    double sort200 = 0.0;
    double grep100 = 0.0;
    double grep200 = 0.0;
    for (std::size_t i = 0; i < caps.size(); ++i) {
        const double cap = caps[i];
        const double sort_obs = outcomes[2 * i].result.makespan.value();
        const double grep_obs = outcomes[2 * i + 1].result.makespan.value();
        const double sort_reg =
            models.processing_time(sort, StorageTier::kPersistentSsd, GigaBytes{cap}).value();
        const double grep_reg =
            models.processing_time(grep, StorageTier::kPersistentSsd, GigaBytes{cap}).value();
        t.add_row({fmt(cap, 0), fmt(sort_obs, 0), fmt(sort_reg, 0), fmt(grep_obs, 0),
                   fmt(grep_reg, 0)});
        if (cap == 100.0) {
            sort100 = sort_obs;
            grep100 = grep_obs;
        }
        if (cap == 200.0) {
            sort200 = sort_obs;
            grep200 = grep_obs;
        }
    }
    t.print(std::cout);
    std::cout << "\n100 -> 200 GB runtime reduction: Sort " << fmt_pct(1.0 - sort200 / sort100)
              << " (paper: 51.6%), Grep " << fmt_pct(1.0 - grep200 / grep100)
              << " (paper: 60.2%); further increases taper off.\n";
    return 0;
}
