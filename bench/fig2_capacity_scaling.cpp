// Figure 2: impact of scaling persSSD volume capacity for Sort and Grep,
// observed (simulator) vs the REG regression model (§3.1.2, §4.2.1).
#include <iostream>

#include "bench_util.hpp"
#include "core/characterization.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
using workload::AppKind;
}  // namespace

int main() {
    bench::print_header("Figure 2: runtime vs per-VM persSSD capacity (10-VM cluster)",
                        "Figure 2");
    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const auto models = bench::profile_models(cluster);

    // Paper datasets: Sort 100 GB, Grep 300 GB.
    const auto sort = bench::make_job(1, AppKind::kSort, 100.0);
    const auto grep = bench::make_job(2, AppKind::kGrep, 300.0);

    TextTable t({"per-VM persSSD (GB)", "Sort obs (s)", "Sort reg (s)", "Grep obs (s)",
                 "Grep reg (s)"});
    double sort100 = 0.0;
    double sort200 = 0.0;
    double grep100 = 0.0;
    double grep200 = 0.0;
    for (double cap : {100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0}) {
        core::CharacterizationOptions opts;
        opts.block_volume_per_vm = GigaBytes{cap};
        const double sort_obs =
            core::run_job_on_tier(cluster, catalog, sort, StorageTier::kPersistentSsd, opts)
                .sim.makespan.value();
        const double grep_obs =
            core::run_job_on_tier(cluster, catalog, grep, StorageTier::kPersistentSsd, opts)
                .sim.makespan.value();
        const double sort_reg =
            models.processing_time(sort, StorageTier::kPersistentSsd, GigaBytes{cap}).value();
        const double grep_reg =
            models.processing_time(grep, StorageTier::kPersistentSsd, GigaBytes{cap}).value();
        t.add_row({fmt(cap, 0), fmt(sort_obs, 0), fmt(sort_reg, 0), fmt(grep_obs, 0),
                   fmt(grep_reg, 0)});
        if (cap == 100.0) {
            sort100 = sort_obs;
            grep100 = grep_obs;
        }
        if (cap == 200.0) {
            sort200 = sort_obs;
            grep200 = grep_obs;
        }
    }
    t.print(std::cout);
    std::cout << "\n100 -> 200 GB runtime reduction: Sort " << fmt_pct(1.0 - sort200 / sort100)
              << " (paper: 51.6%), Grep " << fmt_pct(1.0 - grep200 / grep100)
              << " (paper: 60.2%); further increases taper off.\n";
    return 0;
}
