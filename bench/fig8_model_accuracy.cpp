// Figure 8: accuracy of the REG capacity-scaling regression — predicted vs
// observed runtime of a 16-job ~2 TB workload while varying the per-VM
// persSSD capacity (§5.1.4; paper reports 7.9% average error).
//
// The observed runtimes batch over the thread pool as one configuration
// per (capacity, job). Every random stream in the simulator derives from
// (seed, job id), so running the 16 jobs as independent batch configs is
// bit-identical to running them back-to-back on one ClusterSim — which is
// exactly what this bench did before the batch engine existed.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/deployer.hpp"
#include "core/utility.hpp"
#include "sim/batch.hpp"
#include "workload/facebook.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Figure 8: predicted vs observed runtime (model accuracy)",
                        "Figure 8");
    const auto cluster = cloud::ClusterSpec::paper_400_core();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const auto models = bench::profile_models(cluster);
    const auto workload = workload::synthesize_model_accuracy_workload(7);
    std::cout << "workload: " << workload.size() << " jobs, "
              << fmt(workload.total_input().value() / 1000.0, 2) << " TB total input\n\n";

    const std::vector<double> caps = {100.0, 200.0, 300.0, 400.0, 500.0};
    const std::size_t njobs = workload.size();

    std::vector<sim::BatchConfig> configs;
    configs.reserve(caps.size() * njobs);
    for (double cap : caps) {
        sim::TierCapacities tc;
        tc.set(StorageTier::kPersistentSsd, GigaBytes{cap});
        for (const auto& job : workload.jobs()) {
            configs.push_back(sim::BatchConfig{
                sim::JobPlacement::on_tier(job, StorageTier::kPersistentSsd), tc,
                sim::SimOptions{.seed = 8, .jitter_sigma = 0.06}});
        }
    }
    const sim::BatchRunner runner(cluster, catalog);
    ThreadPool pool;
    const std::vector<sim::BatchOutcome> outcomes = runner.run(configs, &pool);

    TextTable t({"per-VM persSSD (GB)", "predicted (min)", "observed (min)", "error"});
    double total_err = 0.0;
    int points = 0;
    for (std::size_t c = 0; c < caps.size(); ++c) {
        const double cap = caps[c];
        // Everything on persSSD at a pinned per-VM capacity: predict with
        // REG, then measure on the simulator.
        double predicted_s = 0.0;
        for (const auto& job : workload.jobs()) {
            predicted_s +=
                models.job_runtime(job, StorageTier::kPersistentSsd, GigaBytes{cap}).value();
        }
        double observed_s = 0.0;
        for (std::size_t j = 0; j < njobs; ++j) {
            observed_s += outcomes[c * njobs + j].result.makespan.value();
        }
        const double err = std::fabs(predicted_s - observed_s) / observed_s;
        total_err += err;
        ++points;
        t.add_row({fmt(cap, 0), fmt(predicted_s / 60.0, 1), fmt(observed_s / 60.0, 1),
                   fmt_pct(err, 1)});
    }
    t.print(std::cout);
    std::cout << "\naverage prediction error: " << fmt_pct(total_err / points, 1)
              << " (paper: 7.9%)\n";
    return 0;
}
