// Incremental re-planning throughput on a streaming Facebook job set.
// Three tracks replay the identical arrival/departure/drift trace
// (workload/stream.hpp, 10% churn per step) over the paper's 100-job
// workload, each carrying its own persistent EvalCache across steps:
//
//   cold_resolve        full plan_cast from scratch on every delta — what a
//                       service without the incremental engine pays
//   incremental_amend   IncrementalSolver::amend carrying (workload, plan)
//                       forward: survivors keep their placements, the
//                       tempered search is restricted to the affected
//                       neighborhood (core/incremental.hpp)
//   secretary_baseline  the irrevocable online baseline (arXiv:1901.07335):
//                       each arrival placed greedily once, never revisited
//
// Headline: plans/sec per track, the amend-vs-cold speedup, the worst
// per-step utility gap amend concedes to the cold re-solve, and the regret
// the secretary baseline concedes to amend. The amend track is re-run at
// 1/2/8 pool workers and must be bit-identical to the single-threaded
// timed run — that contract is enforced in smoke and full mode alike. The
// full run additionally gates the PR acceptance bars: >= 5x plans/sec over
// cold at <= 1% worst-step utility gap.
//
// Usage: incremental_replan [--smoke] [--threads N]
// `--smoke` shrinks the trace so the CTest smoke target finishes in
// seconds; the committed BENCH_incremental_replan.json comes from a full
// run.
#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/eval_cache.hpp"
#include "core/incremental.hpp"
#include "workload/facebook.hpp"
#include "workload/stream.hpp"

namespace {
using namespace cast;

struct TrackTiming {
    int steps = 0;
    double seconds = 0.0;
    std::vector<double> utilities;
    core::EvalCacheStats cache{};

    [[nodiscard]] double plans_per_sec() const {
        return seconds > 0.0 ? steps / seconds : 0.0;
    }
    [[nodiscard]] double mean_utility() const {
        double sum = 0.0;
        for (const double u : utilities) sum += u;
        return utilities.empty() ? 0.0 : sum / static_cast<double>(utilities.size());
    }
};

struct AmendTrack {
    TrackTiming timing;
    std::vector<core::TieringPlan> plans;
    int escalations = 0;
    long long iterations = 0;
    double mean_neighborhood = 0.0;
};

// Cold track: a full greedy+tempering solve from scratch per delta. The
// persistent cache is the fair comparison — a serving process keeps its
// snapshot-scoped cache warm across requests either way.
TrackTiming run_cold(const model::PerfModelSet& models, const workload::Workload& initial,
                     const std::vector<workload::JobDelta>& trace,
                     const core::CastOptions& opts) {
    core::EvalCache cache;
    TrackTiming t;
    workload::Workload live = initial;
    const auto start = std::chrono::steady_clock::now();
    for (const workload::JobDelta& delta : trace) {
        live = workload::apply_delta(live, delta).workload;
        const core::CastResult result = core::plan_cast(models, live, opts, nullptr, &cache);
        t.utilities.push_back(result.evaluation.utility);
        ++t.steps;
    }
    t.seconds = bench::seconds_since(start);
    t.cache = cache.stats();
    return t;
}

// Amend / secretary track: carry (workload, plan) forward through the
// trace. policy.greedy_only selects the irrevocable online baseline.
AmendTrack run_amend(const model::PerfModelSet& models, const workload::Workload& initial,
                     const core::TieringPlan& initial_plan,
                     const std::vector<workload::JobDelta>& trace,
                     const core::CastOptions& opts, const core::AmendPolicy& policy,
                     ThreadPool* pool) {
    const core::IncrementalSolver solver(models, opts, policy);
    core::EvalCache cache;
    AmendTrack track;
    workload::Workload live = initial;
    core::TieringPlan plan = initial_plan;
    double neighborhood_sum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (const workload::JobDelta& delta : trace) {
        core::AmendResult result = policy.greedy_only
                                       ? solver.place_online(live, plan, delta, &cache)
                                       : solver.amend(live, plan, delta, pool, &cache);
        live = std::move(result.workload);
        plan = std::move(result.plan);
        track.plans.push_back(plan);
        track.timing.utilities.push_back(result.evaluation.utility);
        if (result.escalated_cold) ++track.escalations;
        track.iterations += result.iterations;
        neighborhood_sum += static_cast<double>(result.neighborhood.size());
        ++track.timing.steps;
    }
    track.timing.seconds = bench::seconds_since(start);
    track.timing.cache = cache.stats();
    track.mean_neighborhood =
        track.timing.steps > 0 ? neighborhood_sum / track.timing.steps : 0.0;
    return track;
}

// Min-of-N merge keyed on wall time. Every track is deterministic, so
// repeats only differ in scheduler noise — keep the fastest.
void take_min(TrackTiming& best, const TrackTiming& t) {
    if (best.steps == 0 || t.seconds < best.seconds) best = t;
}
void take_min(AmendTrack& best, const AmendTrack& t) {
    if (best.timing.steps == 0 || t.timing.seconds < best.timing.seconds) best = t;
}

bool same_amend_tracks(const AmendTrack& a, const AmendTrack& b) {
    if (a.timing.utilities != b.timing.utilities) return false;
    if (a.plans.size() != b.plans.size()) return false;
    for (std::size_t s = 0; s < a.plans.size(); ++s) {
        const core::TieringPlan& pa = a.plans[s];
        const core::TieringPlan& pb = b.plans[s];
        if (pa.size() != pb.size()) return false;
        for (std::size_t j = 0; j < pa.size(); ++j) {
            if (pa.decision(j).tier != pb.decision(j).tier ||
                pa.decision(j).overprovision != pb.decision(j).overprovision) {
                return false;
            }
        }
    }
    return true;
}

std::string track_json(const TrackTiming& t) {
    bench::JsonObject json;
    json.add("steps", t.steps)
        .add("seconds", t.seconds, 4)
        .add("plans_per_sec", t.plans_per_sec(), 1)
        .add("mean_utility", t.mean_utility(), 6)
        .add("cache_hit_rate", t.cache.hit_rate(), 4);
    return json.inline_str();
}

std::string amend_json(const AmendTrack& t) {
    bench::JsonObject json;
    json.add("steps", t.timing.steps)
        .add("seconds", t.timing.seconds, 4)
        .add("plans_per_sec", t.timing.plans_per_sec(), 1)
        .add("mean_utility", t.timing.mean_utility(), 6)
        .add("cache_hit_rate", t.timing.cache.hit_rate(), 4)
        .add("escalations", t.escalations)
        .add("iterations", t.iterations)
        .add("mean_neighborhood", t.mean_neighborhood, 1);
    return json.inline_str();
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int steps = args.smoke ? 3 : 12;
    const int repeats = args.smoke ? 1 : 3;

    std::cerr << "incremental_replan: warm-start amend vs cold re-solve vs irrevocable "
                 "online baseline (streaming Facebook workload, "
              << (args.smoke ? "smoke" : "full") << " run)\n";

    const auto cluster = cloud::ClusterSpec::paper_400_core();
    model::ProfilerOptions popts;
    popts.runs_per_point = 1;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), popts);
    ThreadPool profile_pool;
    const model::PerfModelSet models = profiler.profile(&profile_pool);
    std::cerr << "[profiled " << cluster.worker_count << "x " << cluster.worker.name
              << "]\n";

    const workload::Workload initial = workload::synthesize_facebook_workload(42);

    core::CastOptions opts;
    opts.annealing.seed = 7;
    if (args.smoke) {
        opts.annealing.iter_max = 1500;
        opts.annealing.chains = 2;
    }
    const core::AmendPolicy amend_policy;
    core::AmendPolicy secretary_policy;
    secretary_policy.greedy_only = true;

    workload::StreamOptions stream_opts;
    stream_opts.steps = steps;
    stream_opts.churn = 0.10;
    const std::vector<workload::JobDelta> trace =
        workload::synthesize_stream(initial, 7, stream_opts);

    // Every track starts from the same untimed cold plan over the initial
    // set — the state a service holds when streaming begins.
    const core::CastResult start = core::plan_cast(models, initial, opts);
    std::cerr << "[initial plan: utility " << fmt(start.evaluation.utility, 6) << " over "
              << initial.size() << " jobs; " << steps << " steps at "
              << fmt(stream_opts.churn * 100.0, 0) << "% churn]\n";

    // Interleaved best-of-N: each repeat times all three tracks with fresh
    // caches (warmth *within* a track run is the effect under test; warmth
    // across repeats would flatter whichever track ran second).
    TrackTiming cold;
    AmendTrack amend, secretary;
    for (int rep = 0; rep < repeats; ++rep) {
        take_min(cold, run_cold(models, initial, trace, opts));
        take_min(amend, run_amend(models, initial, start.plan, trace, opts, amend_policy,
                                  nullptr));
        take_min(secretary, run_amend(models, initial, start.plan, trace, opts,
                                      secretary_policy, nullptr));
    }

    const double speedup = amend.timing.seconds > 0.0 && cold.seconds > 0.0
                               ? cold.seconds / amend.timing.seconds
                               : 0.0;
    double max_gap = 0.0;
    double gap_sum = 0.0;
    for (int s = 0; s < steps; ++s) {
        const double cold_u = cold.utilities[static_cast<std::size_t>(s)];
        const double amend_u = amend.timing.utilities[static_cast<std::size_t>(s)];
        const double gap = cold_u > 0.0 ? std::max(0.0, (cold_u - amend_u) / cold_u) : 0.0;
        std::cerr << "step " << s << ": cold " << fmt(cold_u, 7) << " amend "
                  << fmt(amend_u, 7) << " gap " << fmt(gap * 100.0, 2) << "%\n";
        max_gap = std::max(max_gap, gap);
        gap_sum += gap;
    }
    const double mean_gap = gap_sum / steps;
    const double amend_mean = amend.timing.mean_utility();
    const double regret = amend_mean > 0.0
                              ? (amend_mean - secretary.timing.mean_utility()) / amend_mean
                              : 0.0;

    std::cerr << "cold: " << fmt(cold.plans_per_sec(), 1) << " plans/s, amend: "
              << fmt(amend.timing.plans_per_sec(), 1) << " plans/s (" << fmt(speedup, 2)
              << "x), secretary: " << fmt(secretary.timing.plans_per_sec(), 1)
              << " plans/s; worst utility gap " << fmt(max_gap * 100.0, 2)
              << "%, secretary regret " << fmt(regret * 100.0, 2) << "%, "
              << amend.escalations << " escalations\n";

    // Bit-identity: the amend trajectory is a pure function of (plan,
    // delta, options) — any pool size must reproduce the single-threaded
    // timed run exactly. Enforced in smoke and full mode alike.
    bool identical = true;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ThreadPool pool(workers);
        const AmendTrack reran = run_amend(models, initial, start.plan, trace, opts,
                                           amend_policy, &pool);
        const bool same = same_amend_tracks(amend, reran);
        identical = identical && same;
        std::cerr << "bit-identity at " << workers << " workers: "
                  << (same ? "ok" : "MISMATCH") << "\n";
    }

    bench::JsonObject json;
    json.add("benchmark", "incremental_replan")
        .add("workload", "facebook_100_jobs_stream")
        .add("cluster",
             std::to_string(cluster.worker_count) + "x " + cluster.worker.name)
        .add("mode", args.smoke ? "smoke" : "full")
        .add("host_cores", std::thread::hardware_concurrency())
        .add("steps", steps)
        .add("churn", stream_opts.churn, 2)
        .add_raw("cold_resolve", track_json(cold))
        .add_raw("incremental_amend", amend_json(amend))
        .add_raw("secretary_baseline", amend_json(secretary))
        .add("amend_speedup_vs_cold", speedup, 2)
        .add("max_utility_gap", max_gap, 4)
        .add("mean_utility_gap", mean_gap, 4)
        .add("secretary_regret", regret, 4)
        .add("bit_identical_across_workers", identical);
    bench::write_bench_json("BENCH_incremental_replan.json", json);

    if (!identical) {
        std::cerr << "FAIL: amend trajectory differs across pool worker counts\n";
        return 1;
    }
    // The smoke lane only checks wiring and bit-identity; the full run
    // enforces the PR acceptance bars.
    if (!args.smoke && speedup < 5.0) {
        std::cerr << "FAIL: amend speedup " << fmt(speedup, 2)
                  << "x below the 5x target\n";
        return 1;
    }
    if (!args.smoke && max_gap > 0.01) {
        std::cerr << "FAIL: worst-step utility gap " << fmt(max_gap * 100.0, 2)
                  << "% above the 1% bar\n";
        return 1;
    }
    return 0;
}
