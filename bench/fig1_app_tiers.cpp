// Figure 1 (+ Table 2): application runtime breakdown and normalized
// tenant utility on each of the four storage services, single-slave
// cluster (§3.1.2).
#include <array>
#include <iostream>

#include "bench_util.hpp"
#include "core/characterization.hpp"

namespace {

using namespace cast;
using cloud::StorageTier;
using workload::AppKind;

void print_table2() {
    std::cout << "Table 2: characteristics of studied applications\n";
    TextTable t({"App", "Map I/O", "Shuffle I/O", "Reduce I/O", "CPU", "iterations",
                 "map sel.", "reduce sel."});
    for (AppKind a : {AppKind::kSort, AppKind::kJoin, AppKind::kGrep, AppKind::kKMeans}) {
        const auto& p = workload::ApplicationProfile::of(a);
        auto yn = [](bool b) { return std::string(b ? "yes" : "-"); };
        t.add_row({std::string(p.name()), yn(p.intensity().map_io),
                   yn(p.intensity().shuffle_io), yn(p.intensity().reduce_io),
                   yn(p.intensity().cpu), std::to_string(p.iterations()),
                   fmt(p.map_selectivity(), 3), fmt(p.reduce_selectivity(), 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Figure 1: app performance & tenant utility per storage tier",
                        "Figure 1 and Table 2");
    print_table2();

    const auto cluster = cloud::ClusterSpec::paper_single_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();

    struct Exp {
        AppKind app;
        double gb;
        const char* paper_best;
        const char* paper_note;
    };
    const Exp exps[] = {
        {AppKind::kSort, 100.0, "ephSSD",
         "paper: ephSSD best runtime AND utility despite transfer legs"},
        {AppKind::kJoin, 60.0, "persSSD",
         "paper: persSSD best utility; objStore worst (GCS small-file overheads)"},
        {AppKind::kGrep, 300.0, "objStore",
         "paper: persSSD ~= objStore runtime; objStore utility +34.3%"},
        {AppKind::kKMeans, 480.0, "persHDD",
         "paper: persSSD ~= persHDD runtime; persHDD utility best"},
    };

    for (const Exp& e : exps) {
        const auto job = bench::make_job(static_cast<int>(workload::app_index(e.app)) + 1,
                                         e.app, e.gb);
        std::array<core::TierRunResult, cloud::kTierCount> results;
        for (StorageTier t : cloud::kAllTiers) {
            results[cloud::tier_index(t)] = core::run_job_on_tier(cluster, catalog, job, t);
        }
        const double eph_utility =
            results[cloud::tier_index(StorageTier::kEphemeralSsd)].utility;

        std::cout << "Fig. 1 (" << workload::app_name(e.app) << " " << fmt(e.gb, 0)
                  << " GB)  —  " << e.paper_note << "\n";
        TextTable t({"tier", "download (s)", "processing (s)", "upload (s)", "total (s)",
                     "cost ($)", "utility (norm. to ephSSD)"});
        StorageTier best = StorageTier::kEphemeralSsd;
        for (StorageTier tier : cloud::kAllTiers) {
            const auto& r = results[cloud::tier_index(tier)];
            if (r.utility > results[cloud::tier_index(best)].utility) best = tier;
            t.add_row({std::string(cloud::tier_name(tier)),
                       fmt(r.sim.phases.stage_in.value(), 0),
                       fmt(r.sim.phases.processing().value(), 0),
                       fmt(r.sim.phases.stage_out.value(), 0),
                       fmt(r.sim.makespan.value(), 0), fmt(r.total_cost().value(), 2),
                       fmt(r.utility / eph_utility, 2)});
        }
        t.print(std::cout);
        std::cout << "best utility: " << cloud::tier_name(best) << " (paper: " << e.paper_best
                  << ")\n\n";
    }
    return 0;
}
