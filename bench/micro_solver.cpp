// Micro-benchmarks (google-benchmark): throughput of the pieces the planner
// is built from, plus ablations of the design decisions called out in
// DESIGN.md (monotone spline vs linear REG, single- vs multi-chain
// annealing, group moves).
#include <benchmark/benchmark.h>

#include "core/annealing.hpp"
#include "core/castpp.hpp"
#include "core/greedy.hpp"
#include "model/profiler.hpp"
#include "sim/mapreduce.hpp"
#include "workload/facebook.hpp"

namespace {

using namespace cast;
using cloud::StorageTier;

const model::PerfModelSet& bench_models() {
    static const model::PerfModelSet kModels = [] {
        model::ProfilerOptions opts;
        opts.runs_per_point = 1;
        return model::Profiler(cloud::ClusterSpec::paper_400_core(),
                               cloud::StorageCatalog::google_cloud(), opts)
            .profile();
    }();
    return kModels;
}

const workload::Workload& bench_workload() {
    static const workload::Workload kWorkload = workload::synthesize_facebook_workload(42);
    return kWorkload;
}

void BM_SplineEval(benchmark::State& state) {
    const auto& m = bench_models().tier_model(workload::AppKind::kSort,
                                              StorageTier::kPersistentSsd);
    double x = 80.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.scale_at(GigaBytes{x}));
        x = x < 900.0 ? x + 1.0 : 80.0;
    }
}
BENCHMARK(BM_SplineEval);

void BM_PlanEvaluation(benchmark::State& state) {
    core::PlanEvaluator eval(bench_models(), bench_workload());
    const auto plan =
        core::TieringPlan::uniform(bench_workload().size(), StorageTier::kPersistentSsd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.evaluate(plan));
    }
}
BENCHMARK(BM_PlanEvaluation);

void BM_AnnealingChain(benchmark::State& state) {
    core::PlanEvaluator eval(bench_models(), bench_workload());
    core::AnnealingOptions opts;
    opts.iter_max = static_cast<int>(state.range(0));
    opts.chains = 1;
    core::AnnealingSolver solver(eval, opts);
    const auto init =
        core::TieringPlan::uniform(bench_workload().size(), StorageTier::kPersistentSsd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.run_chain(init, 7));
    }
    state.SetItemsProcessed(state.iterations() * opts.iter_max);
}
BENCHMARK(BM_AnnealingChain)->Arg(1000)->Arg(4000);

void BM_GreedySolve(benchmark::State& state) {
    core::PlanEvaluator eval(bench_models(), bench_workload());
    core::GreedySolver greedy(eval);
    for (auto _ : state) {
        benchmark::DoNotOptimize(greedy.solve());
    }
}
BENCHMARK(BM_GreedySolve);

void BM_SimulateLargeJob(benchmark::State& state) {
    sim::TierCapacities caps;
    caps.set(StorageTier::kPersistentSsd, GigaBytes{500.0});
    const sim::ClusterSim simulator(cloud::ClusterSpec::paper_400_core(),
                                    cloud::StorageCatalog::google_cloud(), caps,
                                    sim::SimOptions{});
    workload::JobSpec job{.id = 1,
                          .name = "bench",
                          .app = workload::AppKind::kSort,
                          .input = GigaBytes{384.0},
                          .map_tasks = 3000,
                          .reduce_tasks = 750,
                          .reuse_group = std::nullopt};
    const auto placement = sim::JobPlacement::on_tier(job, StorageTier::kPersistentSsd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulator.run_job(placement));
    }
    state.SetItemsProcessed(state.iterations() * (job.map_tasks + 2 * job.reduce_tasks));
}
BENCHMARK(BM_SimulateLargeJob);

// --- Ablation: monotone cubic Hermite spline vs linear interpolation for
// REG. Linear interpolation through the same knots is cheaper but kinks at
// the knots; the benchmark quantifies the eval-cost gap (the accuracy gap
// is covered in tests/EXPERIMENTS.md).
void BM_Ablation_LinearInterp(benchmark::State& state) {
    const auto& m = bench_models().tier_model(workload::AppKind::kSort,
                                              StorageTier::kPersistentSsd);
    const auto xs = m.runtime_scale.knots_x();
    const auto ys = m.runtime_scale.knots_y();
    double x = 80.0;
    auto linear = [&](double q) {
        if (q <= xs.front()) return ys.front();
        if (q >= xs.back()) return ys.back();
        std::size_t i = 0;
        while (xs[i + 1] < q) ++i;
        const double f = (q - xs[i]) / (xs[i + 1] - xs[i]);
        return ys[i] + f * (ys[i + 1] - ys[i]);
    };
    for (auto _ : state) {
        benchmark::DoNotOptimize(linear(x));
        x = x < 900.0 ? x + 1.0 : 80.0;
    }
}
BENCHMARK(BM_Ablation_LinearInterp);

// --- Ablation: group moves (CAST++'s Eq. 7 projection) vs plain moves.
void BM_Ablation_GroupMoves(benchmark::State& state) {
    const bool group_moves = state.range(0) != 0;
    core::PlanEvaluator eval(bench_models(), bench_workload(),
                             core::EvalOptions{.reuse_aware = group_moves});
    core::AnnealingOptions opts;
    opts.iter_max = 2000;
    opts.chains = 1;
    opts.group_moves = group_moves;
    core::AnnealingSolver solver(eval, opts);
    const auto init =
        core::TieringPlan::uniform(bench_workload().size(), StorageTier::kPersistentSsd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.run_chain(init, 13));
    }
}
BENCHMARK(BM_Ablation_GroupMoves)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
