// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports,
// alongside the published values where the paper states them, so the shape
// comparison is immediate.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "model/profiler.hpp"
#include "workload/job.hpp"

namespace cast::bench {

/// Build a job sized the way the paper's experiments are: one map task per
/// 128 MB chunk, reduce parallelism at a quarter of the maps.
inline workload::JobSpec make_job(int id, workload::AppKind app, double input_gb) {
    const int maps = std::max(1, static_cast<int>(input_gb / 0.128));
    return workload::JobSpec{
        .id = id,
        .name = std::string(workload::app_name(app)) + "-" + fmt(input_gb, 0) + "G",
        .app = app,
        .input = GigaBytes{input_gb},
        .map_tasks = maps,
        .reduce_tasks = std::max(1, maps / 4),
        .reuse_group = std::nullopt};
}

/// Run the offline profiling campaign for `cluster`, timing it.
inline model::PerfModelSet profile_models(const cloud::ClusterSpec& cluster,
                                          int runs_per_point = 2) {
    const auto start = std::chrono::steady_clock::now();
    model::ProfilerOptions opts;
    opts.runs_per_point = runs_per_point;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), opts);
    ThreadPool pool;
    model::PerfModelSet models = profiler.profile(&pool);
    const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    std::cout << "[offline profiling: " << fmt(elapsed.count(), 1) << " s on "
              << cluster.worker_count << "x " << cluster.worker.name << "]\n\n";
    return models;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
    std::cout << "==============================================================\n"
              << title << "\n"
              << "(reproduces " << paper_ref
              << " of CAST, HPDC'15; testbed = discrete-event cluster simulator)\n"
              << "==============================================================\n\n";
}

}  // namespace cast::bench
