// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports,
// alongside the published values where the paper states them, so the shape
// comparison is immediate.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/storage.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "model/profiler.hpp"
#include "workload/job.hpp"

namespace cast::bench {

/// Shared CLI surface of the throughput benches: `[--smoke] [--threads N]`.
/// --smoke shrinks the run for the CTest smoke lane; --threads pins the
/// worker count of every pool the process creates.
struct BenchArgs {
    bool smoke = false;
    std::size_t threads = 0;  ///< 0 = CAST_THREADS / hardware default

    /// Parse or die (usage to stderr, exit 2). --threads is applied by
    /// exporting CAST_THREADS before any pool exists, so pools constructed
    /// deep inside helpers (profile_models) size themselves identically to
    /// ones the bench builds itself.
    static BenchArgs parse(int argc, char** argv) {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            std::string threads_value;
            if (arg == "--smoke") {
                args.smoke = true;
                continue;
            }
            if (arg == "--threads" && i + 1 < argc) {
                threads_value = argv[++i];
            } else if (arg.rfind("--threads=", 0) == 0) {
                threads_value = arg.substr(std::string("--threads=").size());
            } else {
                std::cerr << "unknown argument '" << arg << "'\nusage: " << argv[0]
                          << " [--smoke] [--threads N]\n";
                std::exit(2);
            }
            const long v = std::strtol(threads_value.c_str(), nullptr, 10);
            if (v < 1) {
                std::cerr << "--threads wants a positive integer, got '" << threads_value
                          << "'\n";
                std::exit(2);
            }
            args.threads = static_cast<std::size_t>(v);
        }
        if (args.threads > 0) {
            setenv("CAST_THREADS", std::to_string(args.threads).c_str(), 1);
        }
        return args;
    }
};

/// Minimal ordered JSON-object emitter for the BENCH_*.json documents.
/// Numbers print through fmt() with explicit precision so committed
/// baselines diff cleanly run-to-run; nested documents are pre-composed
/// strings via add_raw.
class JsonObject {
public:
    JsonObject& add(const std::string& key, const std::string& value) {
        return add_raw(key, "\"" + value + "\"");
    }
    JsonObject& add(const std::string& key, const char* value) {
        return add(key, std::string(value));
    }
    JsonObject& add(const std::string& key, double value, int precision = 3) {
        return add_raw(key, fmt(value, precision));
    }
    JsonObject& add(const std::string& key, int value) {
        return add_raw(key, std::to_string(value));
    }
    JsonObject& add(const std::string& key, long long value) {
        return add_raw(key, std::to_string(value));
    }
    JsonObject& add(const std::string& key, unsigned long long value) {
        return add_raw(key, std::to_string(value));
    }
    JsonObject& add(const std::string& key, unsigned long value) {
        return add_raw(key, std::to_string(value));
    }
    JsonObject& add(const std::string& key, unsigned value) {
        return add_raw(key, std::to_string(value));
    }
    JsonObject& add(const std::string& key, bool value) {
        return add_raw(key, value ? "true" : "false");
    }
    JsonObject& add_raw(const std::string& key, const std::string& json) {
        fields_.emplace_back(key, json);
        return *this;
    }

    /// One-line form, for nesting inside another document via add_raw.
    [[nodiscard]] std::string inline_str() const {
        std::string out = "{";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            if (i > 0) out += ", ";
            out += "\"" + fields_[i].first + "\": " + fields_[i].second;
        }
        out += "}";
        return out;
    }

    [[nodiscard]] std::string str(int indent = 2) const {
        const std::string pad(static_cast<std::size_t>(indent), ' ');
        std::string out = "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            out += pad + "\"" + fields_[i].first + "\": " + fields_[i].second;
            out += i + 1 < fields_.size() ? ",\n" : "\n";
        }
        out += "}";
        return out;
    }

private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write `json` to `path` and echo it to stdout (the CI log copy). Throws
/// std::runtime_error naming the path when the file cannot be written —
/// a silently dropped baseline would make every later bench_gate compare
/// against stale numbers while the stdout echo makes the run look fine.
inline void write_bench_json(const std::string& path, const JsonObject& json) {
    std::ofstream out(path);
    out << json.str() << "\n";
    out.flush();
    if (!out) {
        throw std::runtime_error("write_bench_json: cannot write '" + path + "'");
    }
    std::cout << json.str() << "\n";
}

/// Linear-interpolated percentile (p in [0, 100]) of an unsorted sample.
/// An empty sample has no percentiles: returns NaN (0.0 would read as
/// "instant", which is exactly wrong for e.g. a sweep point where every
/// request was shed). Callers must isfinite-guard before emitting JSON.
inline double percentile(std::vector<double> values, double p) {
    if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
    std::sort(values.begin(), values.end());
    const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    return values[lo] + (values[hi] - values[lo]) * (rank - static_cast<double>(lo));
}

/// Seconds elapsed since `start` (steady clock).
inline double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Build a job sized the way the paper's experiments are: one map task per
/// 128 MB chunk, reduce parallelism at a quarter of the maps.
inline workload::JobSpec make_job(int id, workload::AppKind app, double input_gb) {
    const int maps = std::max(1, static_cast<int>(input_gb / 0.128));
    return workload::JobSpec{
        .id = id,
        .name = std::string(workload::app_name(app)) + "-" + fmt(input_gb, 0) + "G",
        .app = app,
        .input = GigaBytes{input_gb},
        .map_tasks = maps,
        .reduce_tasks = std::max(1, maps / 4),
        .reuse_group = std::nullopt};
}

/// Run the offline profiling campaign for `cluster`, timing it.
inline model::PerfModelSet profile_models(const cloud::ClusterSpec& cluster,
                                          int runs_per_point = 2) {
    const auto start = std::chrono::steady_clock::now();
    model::ProfilerOptions opts;
    opts.runs_per_point = runs_per_point;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), opts);
    ThreadPool pool;
    model::PerfModelSet models = profiler.profile(&pool);
    const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    std::cout << "[offline profiling: " << fmt(elapsed.count(), 1) << " s on "
              << cluster.worker_count << "x " << cluster.worker.name << "]\n\n";
    return models;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
    std::cout << "==============================================================\n"
              << title << "\n"
              << "(reproduces " << paper_ref
              << " of CAST, HPDC'15; testbed = discrete-event cluster simulator)\n"
              << "==============================================================\n\n";
}

}  // namespace cast::bench
