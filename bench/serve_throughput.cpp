// Closed/open-loop throughput of the cast::serve planning service, vs the
// one-shot pipeline it replaces. Writes BENCH_serve_throughput.json.
//
// The serial baseline is the true per-request cost of today's CLI flow:
// every request re-loads the profiled model set from disk and builds a
// fresh EvalCache before solving (exactly what one cast_plan invocation
// does). The service keeps one immutable Snapshot warm and shares its
// snapshot-scoped cache across requests, so request N+1 reuses every REG
// runtime request N computed. Requests replay a small set of popular
// workload templates — the serving scenario the snapshot cache is built
// for.
//
// Measured per configuration (1/2/8 workers x closed/open loop):
// sustained plans/sec, p50/p95/p99 end-to-end latency, and the shared
// cache's hit rate. A final budgeted configuration sets a per-request
// max_wall_ms with an iteration count that could not finish in time, and
// checks p99 solve latency respects the budget within 10%.
//
// Determinism is asserted, not assumed: every unbudgeted service response
// must carry exactly the utility the cold baseline computed for the same
// request (the cache is bit-transparent and solvers are deterministic).
//
// Usage: serve_throughput [--smoke] [--threads N]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "model/serialize.hpp"
#include "serve/service.hpp"
#include "workload/job.hpp"

namespace {
using namespace cast;
using workload::AppKind;

/// Popular workload templates over one pool of quantized job shapes (sizes
/// snap to a few values, as production job mixes do). Templates overlap in
/// shapes, so the snapshot cache amortizes both within and across them.
std::vector<workload::Workload> make_templates() {
    const std::vector<std::pair<AppKind, double>> shapes = {
        {AppKind::kSort, 15.0},   {AppKind::kSort, 30.0},  {AppKind::kGrep, 30.0},
        {AppKind::kGrep, 60.0},   {AppKind::kKMeans, 8.0}, {AppKind::kKMeans, 15.0},
        {AppKind::kJoin, 15.0},   {AppKind::kJoin, 30.0},  {AppKind::kSort, 60.0},
        {AppKind::kGrep, 120.0},  {AppKind::kKMeans, 30.0}, {AppKind::kJoin, 60.0},
    };
    // Each template draws 8 of the 12 shapes, offset per template.
    std::vector<workload::Workload> templates;
    for (int t = 0; t < 6; ++t) {
        std::vector<workload::JobSpec> jobs;
        for (int j = 0; j < 8; ++j) {
            const auto& [app, gb] = shapes[(t * 2 + j) % shapes.size()];
            jobs.push_back(bench::make_job(j + 1, app, gb));
        }
        templates.emplace_back(std::move(jobs));
    }
    return templates;
}

std::vector<serve::PlanRequest> make_requests(const std::vector<workload::Workload>& templates,
                                              int count) {
    std::vector<serve::PlanRequest> requests;
    for (int i = 0; i < count; ++i) {
        serve::PlanRequest req;
        req.id = static_cast<std::uint64_t>(i + 1);
        req.kind = serve::RequestKind::kBatch;
        // Zipf-flavoured popularity: the two hottest templates take half
        // the traffic, the tail shares the rest.
        static constexpr std::size_t kSchedule[] = {0, 1, 0, 2, 1, 3, 0, 4, 1, 5, 2, 1};
        req.workload = templates[kSchedule[i % std::size(kSchedule)] % templates.size()];
        requests.push_back(std::move(req));
    }
    return requests;
}

struct RunStats {
    std::string name;
    std::size_t workers = 0;
    double wall_s = 0.0;
    double plans_per_sec = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double cache_hit_rate = 0.0;
    unsigned long long coalesced = 0;

    [[nodiscard]] std::string json() const {
        bench::JsonObject o;
        o.add("config", name)
            .add("workers", static_cast<unsigned long long>(workers))
            .add("wall_s", wall_s, 4)
            .add("plans_per_sec", plans_per_sec, 2);
        // percentile() of an empty sample is NaN — omit rather than emit a
        // fake 0.0 (and NaN is not a valid JSON token anyway).
        if (std::isfinite(p50_ms)) o.add("p50_ms", p50_ms, 3);
        if (std::isfinite(p95_ms)) o.add("p95_ms", p95_ms, 3);
        if (std::isfinite(p99_ms)) o.add("p99_ms", p99_ms, 3);
        o.add("cache_hit_rate", cache_hit_rate, 4)
            .add("coalesced", coalesced);
        return o.inline_str();
    }
};

RunStats finish_stats(std::string name, std::size_t workers, double wall_s,
                      std::vector<double> latencies_ms, double hit_rate) {
    RunStats s;
    s.name = std::move(name);
    s.workers = workers;
    s.wall_s = wall_s;
    s.plans_per_sec = wall_s > 0.0 ? static_cast<double>(latencies_ms.size()) / wall_s : 0.0;
    s.p50_ms = bench::percentile(latencies_ms, 50.0);
    s.p95_ms = bench::percentile(latencies_ms, 95.0);
    s.p99_ms = bench::percentile(latencies_ms, 99.0);
    s.cache_hit_rate = hit_rate;
    return s;
}

/// Utility of a response, for the bit-identity cross-check.
double utility_of(const serve::PlanResponse& resp) {
    return resp.batch ? resp.batch->evaluation.utility : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int request_count = args.smoke ? 12 : 60;
    const int iter_max = args.smoke ? 300 : 2000;
    const double budget_ms = args.smoke ? 30.0 : 50.0;

    std::cerr << "serve_throughput: planning service vs one-shot pipeline ("
              << request_count << " requests, " << (args.smoke ? "smoke" : "full")
              << " run)\n";

    // --- One-time offline profiling, persisted the way a deployment would.
    const auto cluster = cloud::ClusterSpec::paper_400_core();
    model::ProfilerOptions popts;
    popts.runs_per_point = 1;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), popts);
    model::PerfModelSet profiled = [&] {
        ThreadPool pool;
        return profiler.profile(&pool);
    }();
    const std::string model_path = "serve_throughput_models.tmp";
    model::save_model_set_file(profiled, model_path);
    std::cerr << "[profiled " << cluster.worker_count << "x " << cluster.worker.name
              << ", model set saved]\n";

    const std::vector<workload::Workload> templates = make_templates();
    const std::vector<serve::PlanRequest> requests = make_requests(templates, request_count);

    serve::ServiceOptions sopts;
    sopts.queue_capacity = requests.size() + 8;
    // Deep dispatches give the coalescer more duplicates to fold under
    // open-loop load; closed-loop runs never see a batch deeper than 1.
    sopts.max_batch = 32;
    sopts.solver.annealing.iter_max = iter_max;
    sopts.solver.annealing.chains = 2;
    // Metrics + tracing stay ON for every service run: the numbers this
    // bench commits (and bench_gate compares) are for the instrumented
    // service, so the observability overhead is itself under the perf gate,
    // and the bit-identity check below proves observation never perturbs
    // the plans.
    sopts.obs.metrics = true;
    sopts.obs.trace_capacity = 64;

    // --- Cold serial baseline: the one-shot pipeline, once per request.
    std::vector<double> base_lat;
    std::map<std::uint64_t, double> expected_utility;
    const auto base_t0 = std::chrono::steady_clock::now();
    for (const serve::PlanRequest& req : requests) {
        const auto t0 = std::chrono::steady_clock::now();
        const serve::Snapshot cold(model::load_model_set_file(model_path));
        const serve::PlanResponse resp = serve::PlannerService::solve_direct(cold, req, sopts);
        base_lat.push_back(bench::seconds_since(t0) * 1000.0);
        expected_utility[req.id] = utility_of(resp);
    }
    const double base_wall = bench::seconds_since(base_t0);
    const RunStats baseline =
        finish_stats("serial_cold_baseline", 1, base_wall, base_lat, 0.0);
    std::cerr << "cold baseline: " << fmt(baseline.plans_per_sec, 1) << " plans/s, p50 "
              << fmt(baseline.p50_ms, 1) << " ms\n";

    // --- Warm serial reference: one snapshot, direct solves back to back.
    // Separates the cache's contribution from the model-reload savings.
    std::vector<double> warm_lat;
    const serve::SnapshotPtr warm_snap =
        serve::make_snapshot(model::load_model_set_file(model_path));
    const auto warm_t0 = std::chrono::steady_clock::now();
    for (const serve::PlanRequest& req : requests) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)serve::PlannerService::solve_direct(*warm_snap, req, sopts);
        warm_lat.push_back(bench::seconds_since(t0) * 1000.0);
    }
    const RunStats warm_serial = finish_stats("serial_warm_snapshot", 1,
                                              bench::seconds_since(warm_t0), warm_lat,
                                              warm_snap->cache().stats().hit_rate());
    std::cerr << "warm serial:   " << fmt(warm_serial.plans_per_sec, 1)
              << " plans/s, cache hit rate " << fmt(warm_serial.cache_hit_rate, 3) << "\n";

    // --- Service configurations: workers x loop discipline. Every config
    // starts from a fresh (cold) snapshot so runs are independent.
    std::vector<RunStats> runs;
    std::string metrics_snapshot;
    bool identical = true;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        for (const bool open_loop : {false, true}) {
            serve::ServiceOptions opts = sopts;
            opts.workers = workers;
            serve::PlannerService service(
                serve::make_snapshot(model::load_model_set_file(model_path)), opts);
            std::vector<double> lat;
            const auto t0 = std::chrono::steady_clock::now();
            if (open_loop) {
                std::vector<std::future<serve::PlanResponse>> futures;
                futures.reserve(requests.size());
                for (const serve::PlanRequest& req : requests) {
                    futures.push_back(service.submit(req));
                }
                for (auto& f : futures) {
                    const serve::PlanResponse resp = f.get();
                    lat.push_back(resp.queue_ms + resp.solve_ms);
                    identical &= resp.ok() &&
                                 utility_of(resp) == expected_utility.at(resp.id);
                }
            } else {
                for (const serve::PlanRequest& req : requests) {
                    const auto r0 = std::chrono::steady_clock::now();
                    const serve::PlanResponse resp = service.submit(req).get();
                    lat.push_back(bench::seconds_since(r0) * 1000.0);
                    identical &= resp.ok() &&
                                 utility_of(resp) == expected_utility.at(resp.id);
                }
            }
            const double wall = bench::seconds_since(t0);
            const std::string name = (open_loop ? "service_open_" : "service_closed_") +
                                     std::to_string(workers) + "w";
            const serve::ServiceStats stats = service.stats();
            // Keep the freshest registry export; the last config (8-worker
            // open loop) wins and becomes the committed CI artifact.
            metrics_snapshot = service.metrics().json();
            runs.push_back(finish_stats(name, workers, wall, lat, stats.cache.hit_rate()));
            runs.back().coalesced = stats.coalesced;
            std::cerr << name << ": " << fmt(runs.back().plans_per_sec, 1)
                      << " plans/s, p99 " << fmt(runs.back().p99_ms, 1)
                      << " ms, hit rate " << fmt(runs.back().cache_hit_rate, 3)
                      << ", coalesced " << stats.coalesced << "\n";
        }
    }

    // --- Budgeted configuration: iteration counts that cannot finish in
    // max_wall_ms, so the wall budget is what bounds latency. Workers are
    // capped at the host's cores: the budget bounds a solve's wall time
    // while it holds a core, and oversubscribed workers would add scheduler
    // wait between deadline polls that no in-solve clock can mask.
    serve::ServiceOptions bopts = sopts;
    bopts.workers = std::max(1u, std::min(8u, std::thread::hardware_concurrency()));
    bopts.solver.annealing.iter_max = 2'000'000;
    bopts.default_max_wall_ms = budget_ms;
    std::vector<double> budget_solve_ms;
    bool budget_flagged = true;
    {
        serve::PlannerService service(
            serve::make_snapshot(model::load_model_set_file(model_path)), bopts);
        std::vector<std::future<serve::PlanResponse>> futures;
        for (const serve::PlanRequest& req : requests) {
            futures.push_back(service.submit(req));
        }
        for (auto& f : futures) {
            const serve::PlanResponse resp = f.get();
            budget_solve_ms.push_back(resp.solve_ms);
            budget_flagged &= resp.ok() && resp.budget_exhausted();
        }
    }
    const double budget_p99 = bench::percentile(budget_solve_ms, 99.0);
    const bool budget_respected = budget_p99 <= budget_ms * 1.10;
    std::cerr << "budgeted (" << fmt(budget_ms, 0) << " ms): p99 solve "
              << fmt(budget_p99, 1) << " ms, all flagged budget_exhausted: "
              << (budget_flagged ? "yes" : "no") << "\n";

    const double service_8w_open = runs.back().plans_per_sec;
    const double speedup = baseline.plans_per_sec > 0.0
                               ? service_8w_open / baseline.plans_per_sec
                               : 0.0;
    std::cerr << "speedup (8-worker open loop vs cold serial): " << fmt(speedup, 2)
              << "x, bit-identical: " << (identical ? "yes" : "NO") << "\n";

    std::string runs_json = "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i > 0) runs_json += ", ";
        runs_json += runs[i].json();
    }
    runs_json += "]";

    bench::JsonObject json;
    json.add("bench", "serve_throughput")
        .add("mode", args.smoke ? "smoke" : "full")
        .add("requests", request_count)
        .add("templates", static_cast<unsigned long long>(templates.size()))
        .add("iter_max", iter_max)
        .add("host_cores", std::thread::hardware_concurrency())
        .add_raw("serial_cold_baseline", baseline.json())
        .add_raw("serial_warm_snapshot", warm_serial.json())
        .add_raw("service_runs", runs_json)
        .add("speedup_8w_open_vs_cold", speedup, 2)
        .add("bit_identical_utilities", identical)
        .add("budget_ms", budget_ms, 1);
    if (std::isfinite(budget_p99)) json.add("budget_p99_solve_ms", budget_p99, 3);
    json.add("budget_respected_within_10pct", budget_respected)
        .add("budget_all_flagged_exhausted", budget_flagged);
    bench::write_bench_json("BENCH_serve_throughput.json", json);

    // Live-registry export from the last service run: the CI artifact that
    // shows what an operator would scrape (counters, queue/cache gauges,
    // per-priority latency histograms) — one line of JSON.
    {
        const std::string metrics_path = "BENCH_serve_throughput_metrics.json";
        std::ofstream mout(metrics_path);
        mout << metrics_snapshot << "\n";
        mout.flush();
        if (!mout) {
            std::cerr << "FAIL: cannot write '" << metrics_path << "'\n";
            return 1;
        }
    }
    std::remove(model_path.c_str());

    if (!identical) {
        std::cerr << "FAIL: service responses diverge from the cold baseline\n";
        return 1;
    }
    if (!budget_respected) {
        std::cerr << "FAIL: budgeted p99 " << fmt(budget_p99, 1) << " ms exceeds "
                  << fmt(budget_ms * 1.10, 1) << " ms\n";
        return 1;
    }
    // Smoke checks contracts only; the full run must clear the 3x bar.
    if (!args.smoke && speedup < 3.0) {
        std::cerr << "FAIL: speedup " << fmt(speedup, 2) << "x below the 3x target\n";
        return 1;
    }
    return 0;
}
