// Figure 4: four tiering plans for the 4-job search-log workflow and their
// cost/runtime trade-offs against an 8,000 s deadline (§3.1.3).
#include <iostream>

#include "bench_util.hpp"
#include "core/castpp.hpp"
#include "core/deployer.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Figure 4: workflow tiering plans, cost vs runtime", "Figure 4");
    const auto cluster = cloud::ClusterSpec::paper_single_node();
    const auto models = bench::profile_models(cluster);
    // The paper's deadline is 8,000 s on its testbed; our simulated
    // pipeline runs ~1.4x faster end-to-end, so the equivalent knife-edge
    // deadline — between the hybrid plans and the single-service plans —
    // is ~6,000 s.
    const auto wf = workload::make_search_log_workflow(Seconds{6000.0});
    core::WorkflowEvaluator evaluator(models, wf);

    const std::size_t grep = wf.index_of(1);
    const std::size_t pagerank = wf.index_of(2);
    const std::size_t sort = wf.index_of(3);
    const std::size_t join = wf.index_of(4);

    auto plan_of = [&](StorageTier g, StorageTier p, StorageTier s, StorageTier j) {
        core::WorkflowPlan plan = core::WorkflowPlan::uniform(4, g);
        plan.decisions[grep] = {g, 1.0};
        plan.decisions[pagerank] = {p, 1.0};
        plan.decisions[sort] = {s, 1.0};
        plan.decisions[join] = {j, 1.0};
        return plan;
    };

    struct Candidate {
        const char* name;
        core::WorkflowPlan plan;
    };
    const Candidate candidates[] = {
        {"(i) objStore", plan_of(StorageTier::kObjectStore, StorageTier::kObjectStore,
                                 StorageTier::kObjectStore, StorageTier::kObjectStore)},
        {"(ii) persSSD", plan_of(StorageTier::kPersistentSsd, StorageTier::kPersistentSsd,
                                 StorageTier::kPersistentSsd, StorageTier::kPersistentSsd)},
        {"(iii) objStore+ephSSD",
         plan_of(StorageTier::kObjectStore, StorageTier::kObjectStore,
                 StorageTier::kEphemeralSsd, StorageTier::kEphemeralSsd)},
        {"(iv) objStore+ephSSD+persSSD",
         plan_of(StorageTier::kObjectStore, StorageTier::kObjectStore,
                 StorageTier::kEphemeralSsd, StorageTier::kPersistentSsd)},
    };

    core::Deployer deployer;
    TextTable t({"plan", "modeled runtime (s)", "measured runtime (s)", "cost ($)",
                 "meets deadline"});
    for (const auto& c : candidates) {
        const auto modeled = evaluator.evaluate(c.plan);
        const auto dep = deployer.deploy_workflow(evaluator, c.plan);
        t.add_row({c.name, fmt(modeled.total_runtime.value(), 0),
                   fmt(dep.total_runtime.value(), 0), fmt(dep.total_cost().value(), 2),
                   dep.met_deadline ? "yes" : "MISS"});
    }
    // And what the CAST++ workflow solver itself picks for this deadline.
    core::AnnealingOptions solver_opts;
    solver_opts.iter_max = 8000;
    solver_opts.chains = 2;
    core::WorkflowSolver solver(evaluator, solver_opts);
    const auto solved = solver.solve();
    const auto solved_dep = deployer.deploy_workflow(evaluator, solved.plan);
    std::string solved_name = "CAST++ solver [";
    for (std::size_t i = 0; i < wf.size(); ++i) {
        if (i) solved_name += " ";
        solved_name += cloud::tier_name(solved.plan.decisions[i].tier);
    }
    solved_name += "]";
    t.add_row({solved_name, fmt(solved.evaluation.total_runtime.value(), 0),
               fmt(solved_dep.total_runtime.value(), 0),
               fmt(solved_dep.total_cost().value(), 2),
               solved_dep.met_deadline ? "yes" : "MISS"});
    t.print(std::cout);
    std::cout << "\npaper: single-service plans (i)/(ii) miss the deadline at higher cost;\n"
                 "hybrid plans meet it. (In this reproduction plan (iii) dominates (iv):\n"
                 "pooling Sort+Join capacity on one fast tier beats splitting them —\n"
                 "see EXPERIMENTS.md.)\n";
    return 0;
}
