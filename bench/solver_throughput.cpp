// Annealing-solver throughput on the 100-job Facebook workload the paper
// evaluates with (§5.1.1). Four single-chain rows share one trajectory:
//
//   uncached_full_evaluation     full AoS re-evaluation every iteration
//   cached_incremental_evaluation EvalCache + PlanEvaluator::evaluate_delta
//                                (the AoS incremental path, kept for
//                                baseline-history comparability)
//   soa_incremental_evaluation   the flat struct-of-arrays core
//                                (core/soa_eval.hpp) — same cache, zero
//                                per-iteration allocations
//
// plus two multi-chain solve rows: the legacy independent chains and the
// replica-exchange tempering ladder (same iteration budget).
//
// Every configuration runs the identical search trajectory (the cache is
// bit-transparent and the SoA core is draw-for-draw identical to AoS; the
// bench asserts the single-chain utilities match exactly), so the
// comparisons isolate evaluation cost. Output: a JSON document written
// to BENCH_solver_throughput.json in the working directory and echoed to
// stdout — iterations/sec for each configuration, the speedups, and the
// memo-table hit rate. Progress goes to stderr.
//
// Usage: solver_throughput [--smoke] [--threads N]
// `--smoke` shrinks the iteration counts so the CTest smoke target finishes
// in seconds; the committed BENCH_solver_throughput.json comes from a full
// run.
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "core/annealing.hpp"
#include "core/eval_cache.hpp"
#include "workload/facebook.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;

struct ChainTiming {
    int iterations = 0;
    double seconds = 0.0;
    double utility = 0.0;
    core::EvalCacheStats cache;

    [[nodiscard]] double iters_per_sec() const {
        return seconds > 0.0 ? iterations / seconds : 0.0;
    }
};

ChainTiming time_chain(const core::AnnealingSolver& solver, const core::TieringPlan& init,
                       std::uint64_t seed, bool use_cache) {
    core::EvalCache cache;
    const auto start = std::chrono::steady_clock::now();
    const core::AnnealingResult result =
        solver.run_chain(init, seed, use_cache ? &cache : nullptr);
    ChainTiming t;
    t.iterations = result.iterations;
    t.seconds = bench::seconds_since(start);
    t.utility = result.evaluation.utility;
    if (use_cache) t.cache = cache.stats();
    return t;
}

// Min-of-N merge. The trajectory is deterministic, so every repeat produces
// the same utility and (with a fresh cache each repeat) the same hit/miss
// counts — only the wall clock varies, and keeping the fastest repeat
// strips the scheduler noise that otherwise flakes the speedup gates.
void take_min(ChainTiming& best, const ChainTiming& t) {
    if (best.iterations == 0 || t.seconds < best.seconds) best = t;
}

std::string timing_json(const ChainTiming& t, bool with_cache) {
    bench::JsonObject json;
    json.add("iterations", t.iterations)
        .add("seconds", t.seconds, 4)
        .add("iters_per_sec", t.iters_per_sec(), 1);
    if (with_cache) {
        json.add("cache_hits", static_cast<unsigned long long>(t.cache.hits))
            .add("cache_misses", static_cast<unsigned long long>(t.cache.misses))
            .add("cache_hit_rate", t.cache.hit_rate(), 4);
    }
    return json.inline_str();
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int chain_iters = args.smoke ? 500 : 20000;
    const int solve_iters = args.smoke ? 300 : 8000;

    std::cerr << "solver_throughput: annealing iterations/sec, memoized+incremental vs "
                 "full evaluation (Facebook workload, "
              << (args.smoke ? "smoke" : "full") << " run)\n";

    const auto cluster = cloud::ClusterSpec::paper_400_core();
    model::ProfilerOptions popts;
    popts.runs_per_point = 1;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), popts);
    ThreadPool pool;
    const model::PerfModelSet models = profiler.profile(&pool);
    std::cerr << "[profiled " << cluster.worker_count << "x " << cluster.worker.name
              << "]\n";

    const workload::Workload workload = workload::synthesize_facebook_workload(42);
    core::PlanEvaluator evaluator(models, workload);
    const core::TieringPlan init =
        core::TieringPlan::uniform(workload.size(), StorageTier::kPersistentSsd);

    // --- Single chain, identical seed: uncached AoS, cached AoS, cached SoA.
    core::AnnealingOptions uncached_opts;
    uncached_opts.iter_max = chain_iters;
    uncached_opts.use_evaluation_cache = false;
    uncached_opts.use_soa_evaluation = false;
    core::AnnealingOptions cached_opts = uncached_opts;
    cached_opts.use_evaluation_cache = true;  // the historical AoS+cache row
    core::AnnealingOptions soa_opts = cached_opts;
    soa_opts.use_soa_evaluation = true;

    const core::AnnealingSolver uncached_solver(evaluator, uncached_opts);
    const core::AnnealingSolver cached_solver(evaluator, cached_opts);
    const core::AnnealingSolver soa_solver(evaluator, soa_opts);

    // Warm-up pass (page in splines, size the allocator), then interleaved
    // best-of-5 timed runs in full mode. Interleaving matters: host clock
    // drift over the bench's lifetime is slow and systematic, so timing the
    // three configurations back-to-back inside each repeat (rather than
    // five repeats of one, then the next) keeps the speedup ratios honest.
    const int repeats = args.smoke ? 1 : 5;
    (void)time_chain(uncached_solver, init, 1, false);
    ChainTiming uncached, cached, soa;
    for (int rep = 0; rep < repeats; ++rep) {
        take_min(uncached, time_chain(uncached_solver, init, 99, false));
        take_min(cached, time_chain(cached_solver, init, 99, true));
        take_min(soa, time_chain(soa_solver, init, 99, true));
    }
    const double speedup =
        uncached.seconds > 0.0 && cached.seconds > 0.0 ? uncached.seconds / cached.seconds
                                                       : 0.0;
    const double soa_speedup =
        cached.seconds > 0.0 && soa.seconds > 0.0 ? cached.seconds / soa.seconds : 0.0;
    const bool identical =
        uncached.utility == cached.utility && cached.utility == soa.utility;
    std::cerr << "uncached: " << fmt(uncached.iters_per_sec(), 0) << " it/s, cached: "
              << fmt(cached.iters_per_sec(), 0) << " it/s (" << fmt(speedup, 2)
              << "x), soa: " << fmt(soa.iters_per_sec(), 0) << " it/s ("
              << fmt(soa_speedup, 2) << "x over cached), hit rate "
              << fmt(cached.cache.hit_rate(), 3)
              << (identical ? "" : "  [WARNING: utilities differ!]") << "\n";

    // --- Multi-chain solves sharing one cache: legacy independent chains
    // vs the replica-exchange tempering ladder, same iteration budget.
    core::AnnealingOptions solve_opts;
    solve_opts.iter_max = solve_iters;
    solve_opts.chains = 6;
    solve_opts.seed = 7;
    solve_opts.tempering = false;
    const core::AnnealingSolver solve_solver(evaluator, solve_opts);
    core::EvalCache solve_cache;
    const auto solve_start = std::chrono::steady_clock::now();
    const core::AnnealingResult solve_result = solve_solver.solve(init, &pool, &solve_cache);
    const double solve_seconds = bench::seconds_since(solve_start);
    std::cerr << "independent chains: " << solve_result.iterations << " iterations in "
              << fmt(solve_seconds, 2) << " s, shared-cache hit rate "
              << fmt(solve_result.cache_stats.hit_rate(), 3) << "\n";

    core::AnnealingOptions temper_opts = solve_opts;
    temper_opts.tempering = true;
    const core::AnnealingSolver temper_solver(evaluator, temper_opts);
    core::EvalCache temper_cache;
    const auto temper_start = std::chrono::steady_clock::now();
    const core::AnnealingResult temper_result =
        temper_solver.solve(init, &pool, &temper_cache);
    const double temper_seconds = bench::seconds_since(temper_start);
    const double temper_speedup =
        solve_seconds > 0.0 && temper_seconds > 0.0 ? solve_seconds / temper_seconds : 0.0;
    std::cerr << "tempering solve: " << temper_result.iterations << " iterations in "
              << fmt(temper_seconds, 2) << " s, "
              << static_cast<unsigned long long>(temper_result.tempering.total_accepts())
              << "/"
              << static_cast<unsigned long long>(temper_result.tempering.total_attempts())
              << " exchanges accepted, utility " << fmt(temper_result.evaluation.utility, 4)
              << " (independent: " << fmt(solve_result.evaluation.utility, 4) << ")\n";

    bench::JsonObject multi_chain;
    multi_chain.add("chains", solve_opts.chains)
        .add("iterations", solve_result.iterations)
        .add("seconds", solve_seconds, 4)
        .add("iters_per_sec", solve_result.iterations / solve_seconds, 1)
        .add("best_chain", solve_result.best_chain)
        .add("cache_hit_rate", solve_result.cache_stats.hit_rate(), 4);

    bench::JsonObject tempering;
    tempering.add("chains", temper_opts.chains)
        .add("iterations", temper_result.iterations)
        .add("seconds", temper_seconds, 4)
        .add("iters_per_sec", temper_result.iterations / temper_seconds, 1)
        .add("best_chain", temper_result.best_chain)
        .add("rounds", temper_result.tempering.rounds)
        .add("exchanges_attempted",
             static_cast<unsigned long long>(temper_result.tempering.total_attempts()))
        .add("exchanges_accepted",
             static_cast<unsigned long long>(temper_result.tempering.total_accepts()))
        .add("utility", temper_result.evaluation.utility, 6)
        .add("cache_hit_rate", temper_result.cache_stats.hit_rate(), 4);

    bench::JsonObject json;
    json.add("benchmark", "solver_throughput")
        .add("workload", "facebook_100_jobs")
        .add("cluster",
             std::to_string(cluster.worker_count) + "x " + cluster.worker.name)
        .add("mode", args.smoke ? "smoke" : "full")
        .add("host_cores", std::thread::hardware_concurrency())
        .add_raw("uncached_full_evaluation", timing_json(uncached, false))
        .add_raw("cached_incremental_evaluation", timing_json(cached, true))
        .add_raw("soa_incremental_evaluation", timing_json(soa, true))
        .add("speedup", speedup, 2)
        .add("soa_speedup", soa_speedup, 2)
        .add("bit_identical_utility", identical)
        .add_raw("multi_chain_solve", multi_chain.inline_str())
        .add_raw("tempering_solve", tempering.inline_str())
        .add("tempering_vs_independent_speedup", temper_speedup, 2);
    bench::write_bench_json("BENCH_solver_throughput.json", json);

    if (!identical) {
        std::cerr << "FAIL: cached/soa/uncached utilities differ\n";
        return 1;
    }
    // The smoke lane only checks it runs and stays bit-identical; the full
    // run is expected to clear the perf bars. The PR 9 acceptance number
    // (SoA >= 1.3x the AoS incremental evaluator, single-threaded) is
    // documented by the committed BENCH_solver_throughput.json, and
    // bench_gate.py defends it as a relative comparison against that
    // baseline. The in-binary bar only asserts the SoA core never *loses*
    // to AoS: on shared single-core hosts the 20 ms timing windows see
    // CPU-steal bursts that swing the measured ratio by +-0.2x even
    // best-of-5, so any absolute bar near the true ~1.3x would flake.
    if (!args.smoke && speedup < 3.0) {
        std::cerr << "FAIL: speedup " << fmt(speedup, 2) << "x below the 3x target\n";
        return 1;
    }
    if (!args.smoke && soa_speedup < 1.05) {
        std::cerr << "FAIL: SoA speedup " << fmt(soa_speedup, 2)
                  << "x below the 1.05x floor\n";
        return 1;
    }
    return 0;
}
