// Annealing-solver throughput: memoized + incremental evaluation (EvalCache
// + PlanEvaluator::evaluate_delta) vs. the full uncached evaluator, on the
// 100-job Facebook workload the paper evaluates with (§5.1.1).
//
// Both configurations run the identical search trajectory (the cache is
// bit-transparent; the bench asserts the final utilities match exactly), so
// the comparison isolates evaluation cost. Output: a JSON document written
// to BENCH_solver_throughput.json in the working directory and echoed to
// stdout — iterations/sec for each configuration, the speedup, and the
// memo-table hit rate. Progress goes to stderr.
//
// Usage: solver_throughput [--smoke] [--threads N]
// `--smoke` shrinks the iteration counts so the CTest smoke target finishes
// in seconds; the committed BENCH_solver_throughput.json comes from a full
// run.
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "core/annealing.hpp"
#include "core/eval_cache.hpp"
#include "workload/facebook.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;

struct ChainTiming {
    int iterations = 0;
    double seconds = 0.0;
    double utility = 0.0;
    core::EvalCacheStats cache;

    [[nodiscard]] double iters_per_sec() const {
        return seconds > 0.0 ? iterations / seconds : 0.0;
    }
};

ChainTiming time_chain(const core::AnnealingSolver& solver, const core::TieringPlan& init,
                       std::uint64_t seed, core::EvalCache* cache) {
    const auto start = std::chrono::steady_clock::now();
    const core::AnnealingResult result = solver.run_chain(init, seed, cache);
    ChainTiming t;
    t.iterations = result.iterations;
    t.seconds = bench::seconds_since(start);
    t.utility = result.evaluation.utility;
    if (cache != nullptr) t.cache = cache->stats();
    return t;
}

std::string timing_json(const ChainTiming& t, bool with_cache) {
    bench::JsonObject json;
    json.add("iterations", t.iterations)
        .add("seconds", t.seconds, 4)
        .add("iters_per_sec", t.iters_per_sec(), 1);
    if (with_cache) {
        json.add("cache_hits", static_cast<unsigned long long>(t.cache.hits))
            .add("cache_misses", static_cast<unsigned long long>(t.cache.misses))
            .add("cache_hit_rate", t.cache.hit_rate(), 4);
    }
    return json.inline_str();
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int chain_iters = args.smoke ? 500 : 20000;
    const int solve_iters = args.smoke ? 300 : 8000;

    std::cerr << "solver_throughput: annealing iterations/sec, memoized+incremental vs "
                 "full evaluation (Facebook workload, "
              << (args.smoke ? "smoke" : "full") << " run)\n";

    const auto cluster = cloud::ClusterSpec::paper_400_core();
    model::ProfilerOptions popts;
    popts.runs_per_point = 1;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), popts);
    ThreadPool pool;
    const model::PerfModelSet models = profiler.profile(&pool);
    std::cerr << "[profiled " << cluster.worker_count << "x " << cluster.worker.name
              << "]\n";

    const workload::Workload workload = workload::synthesize_facebook_workload(42);
    core::PlanEvaluator evaluator(models, workload);
    const core::TieringPlan init =
        core::TieringPlan::uniform(workload.size(), StorageTier::kPersistentSsd);

    // --- Single chain, identical seed, with and without the cache.
    core::AnnealingOptions uncached_opts;
    uncached_opts.iter_max = chain_iters;
    uncached_opts.use_evaluation_cache = false;
    core::AnnealingOptions cached_opts = uncached_opts;
    cached_opts.use_evaluation_cache = true;

    const core::AnnealingSolver uncached_solver(evaluator, uncached_opts);
    const core::AnnealingSolver cached_solver(evaluator, cached_opts);

    // Warm-up pass (page in splines, size the allocator) then the timed run.
    (void)time_chain(uncached_solver, init, 1, nullptr);
    const ChainTiming uncached = time_chain(uncached_solver, init, 99, nullptr);
    core::EvalCache chain_cache;
    const ChainTiming cached = time_chain(cached_solver, init, 99, &chain_cache);
    const double speedup =
        uncached.seconds > 0.0 && cached.seconds > 0.0 ? uncached.seconds / cached.seconds
                                                       : 0.0;
    const bool identical = uncached.utility == cached.utility;
    std::cerr << "uncached: " << fmt(uncached.iters_per_sec(), 0) << " it/s, cached: "
              << fmt(cached.iters_per_sec(), 0) << " it/s, speedup " << fmt(speedup, 2)
              << "x, hit rate " << fmt(cached.cache.hit_rate(), 3)
              << (identical ? "" : "  [WARNING: utilities differ!]") << "\n";

    // --- Multi-chain solve sharing one cache across the thread pool.
    core::AnnealingOptions solve_opts;
    solve_opts.iter_max = solve_iters;
    solve_opts.chains = 6;
    solve_opts.seed = 7;
    const core::AnnealingSolver solve_solver(evaluator, solve_opts);
    core::EvalCache solve_cache;
    const auto solve_start = std::chrono::steady_clock::now();
    const core::AnnealingResult solve_result = solve_solver.solve(init, &pool, &solve_cache);
    const double solve_seconds = bench::seconds_since(solve_start);
    std::cerr << "multi-chain solve: " << solve_result.iterations << " iterations in "
              << fmt(solve_seconds, 2) << " s, shared-cache hit rate "
              << fmt(solve_result.cache_stats.hit_rate(), 3) << "\n";

    bench::JsonObject multi_chain;
    multi_chain.add("chains", solve_opts.chains)
        .add("iterations", solve_result.iterations)
        .add("seconds", solve_seconds, 4)
        .add("iters_per_sec", solve_result.iterations / solve_seconds, 1)
        .add("best_chain", solve_result.best_chain)
        .add("cache_hit_rate", solve_result.cache_stats.hit_rate(), 4);

    bench::JsonObject json;
    json.add("benchmark", "solver_throughput")
        .add("workload", "facebook_100_jobs")
        .add("cluster",
             std::to_string(cluster.worker_count) + "x " + cluster.worker.name)
        .add("mode", args.smoke ? "smoke" : "full")
        .add("host_cores", std::thread::hardware_concurrency())
        .add_raw("uncached_full_evaluation", timing_json(uncached, false))
        .add_raw("cached_incremental_evaluation", timing_json(cached, true))
        .add("speedup", speedup, 2)
        .add("bit_identical_utility", identical)
        .add_raw("multi_chain_solve", multi_chain.inline_str());
    bench::write_bench_json("BENCH_solver_throughput.json", json);

    if (!identical) {
        std::cerr << "FAIL: cached and uncached utilities differ\n";
        return 1;
    }
    // The smoke lane only checks it runs and stays bit-identical; the full
    // run is expected to clear the 3x bar.
    if (!args.smoke && speedup < 3.0) {
        std::cerr << "FAIL: speedup " << fmt(speedup, 2) << "x below the 3x target\n";
        return 1;
    }
    return 0;
}
