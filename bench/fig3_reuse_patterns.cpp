// Figure 3: tenant utility under data reuse patterns — no reuse, 7
// re-accesses over 1 hour, 7 re-accesses over 1 week (§3.1.3).
#include <iostream>

#include "bench_util.hpp"
#include "core/castpp.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
using workload::AppKind;
using workload::ReusePattern;
}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Figure 3: tenant utility under data reuse patterns", "Figure 3");
    const auto models = bench::profile_models(cloud::ClusterSpec::paper_single_node());

    struct Exp {
        AppKind app;
        double gb;
        const char* paper_note;
    };
    const Exp exps[] = {
        {AppKind::kSort, 100.0, "paper: 1-week reuse flips Sort to objStore"},
        {AppKind::kJoin, 60.0, "paper: 1-hr reuse flips Join to ephSSD"},
        {AppKind::kGrep, 300.0, "paper: 1-hr reuse flips Grep to ephSSD"},
        {AppKind::kKMeans, 480.0, "paper: KMeans stays persHDD across patterns"},
    };
    const std::pair<const char*, ReusePattern> patterns[] = {
        {"no reuse", ReusePattern::none()},
        {"reuse-lifetime (1-hr)", ReusePattern::one_hour()},
        {"reuse-lifetime (1-week)", ReusePattern::one_week()},
    };

    for (const Exp& e : exps) {
        const auto job = bench::make_job(static_cast<int>(workload::app_index(e.app)) + 1,
                                         e.app, e.gb);
        std::cout << "Fig. 3 (" << workload::app_name(e.app) << " " << fmt(e.gb, 0)
                  << " GB)  —  " << e.paper_note << "\n";
        TextTable t({"pattern", "ephSSD", "persSSD", "persHDD", "objStore", "best"});
        for (const auto& [name, pattern] : patterns) {
            std::vector<std::string> row = {name};
            double eph_u = 0.0;
            StorageTier best = StorageTier::kEphemeralSsd;
            double best_u = -1.0;
            for (StorageTier tier : cloud::kAllTiers) {
                const auto r = core::evaluate_reuse_scenario(models, job, tier, pattern);
                if (tier == StorageTier::kEphemeralSsd) eph_u = r.utility;
                if (r.utility > best_u) {
                    best_u = r.utility;
                    best = tier;
                }
                row.push_back(fmt(r.utility / eph_u, 2));  // normalized to ephSSD
            }
            row.push_back(std::string(cloud::tier_name(best)));
            t.add_row(std::move(row));
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "(utilities normalized to ephSSD within each pattern, as in the paper)\n";
    return 0;
}
