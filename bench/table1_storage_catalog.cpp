// Table 1: Google Cloud storage details — the catalog the planner uses,
// plus a simulated fio/gsutil-style microbenchmark verifying the modeled
// services deliver the published numbers.
#include <iostream>

#include "bench_util.hpp"
#include "sim/flow_engine.hpp"

namespace {

using namespace cast;
using cloud::StorageCatalog;
using cloud::StorageTier;

/// Simulated single-volume streaming measurement ("fio"/"gsutil"): one
/// saturating flow through the service's bandwidth pool.
double measured_stream_mbps(const cloud::StorageService& service, double capacity_gb) {
    sim::FlowEngine engine;
    const auto perf = service.performance(GigaBytes{capacity_gb});
    const auto pool = engine.add_resource(perf.read_bw);
    const double demand_mb = 10'000.0;
    (void)engine.start_flow(pool, demand_mb, 1e12);
    while (!engine.advance().empty()) {
    }
    return demand_mb / engine.now().value();
}

}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Table 1: Google Cloud storage details", "Table 1");
    const StorageCatalog catalog = StorageCatalog::google_cloud();

    TextTable table({"Storage type", "Capacity (GB/volume)", "Throughput (MB/s)",
                     "Measured (MB/s)", "IOPS (4KB)", "Cost ($/month)"});

    struct Row {
        StorageTier tier;
        double capacity;
    };
    const Row rows[] = {
        {StorageTier::kEphemeralSsd, 375.0},  {StorageTier::kPersistentSsd, 100.0},
        {StorageTier::kPersistentSsd, 250.0}, {StorageTier::kPersistentSsd, 500.0},
        {StorageTier::kPersistentHdd, 100.0}, {StorageTier::kPersistentHdd, 250.0},
        {StorageTier::kPersistentHdd, 500.0}, {StorageTier::kObjectStore, 0.0},
    };
    for (const Row& r : rows) {
        const auto& svc = catalog.service(r.tier);
        const auto perf = svc.performance(GigaBytes{r.capacity});
        const bool unlimited = r.tier == StorageTier::kObjectStore;
        const double monthly = unlimited ? svc.price_per_gb_month().value()
                                         : svc.price_per_gb_month().value() * r.capacity;
        table.add_row({std::string(cloud::tier_name(r.tier)),
                       unlimited ? "N/A" : fmt(r.capacity, 0),
                       fmt(perf.read_bw.value(), 0),
                       fmt(measured_stream_mbps(svc, r.capacity), 0),
                       fmt(perf.iops.value(), 0),
                       unlimited ? fmt(monthly, 3) + "/GB" : fmt(monthly, 2)});
    }
    table.print(std::cout);

    std::cout << "\nProvisioning rules: ephSSD = whole 375 GB volumes, max 4/VM;\n"
                 "persSSD/persHDD up to 10,240 GB/volume (perf scales with size,\n"
                 "read ceilings 250 / 180 MB/s per VM); objStore unlimited, "
              << fmt(catalog.service(StorageTier::kObjectStore).request_overhead().value(), 2)
              << " s/object request overhead.\n";
    return 0;
}
