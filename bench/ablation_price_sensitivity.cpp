// Ablation: price sensitivity of the tiering decision.
//
// The paper's Fig. 1/3 insights hinge on the 2015 price points of Table 1.
// This ablation asks how robust they are: sweep a single tier's $/GB-month
// and report where each application's best-utility tier flips. (Storage
// prices move constantly; a tenant wants to know how far from the
// published prices the plan stays valid.)
#include <iostream>

#include "bench_util.hpp"
#include "core/castpp.hpp"
#include "model/profiler.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
using workload::AppKind;

/// Best tier for one job under the reuse-free scenario economics, with the
/// named tier's storage price scaled by `factor` (post-hoc on the cost side
/// — prices do not affect performance).
StorageTier best_tier_with_scaled_price(const model::PerfModelSet& models,
                                        const workload::JobSpec& job,
                                        StorageTier scaled_tier, double factor) {
    StorageTier best = StorageTier::kEphemeralSsd;
    double best_u = -1.0;
    for (StorageTier tier : cloud::kAllTiers) {
        auto r = core::evaluate_reuse_scenario(models, job, tier,
                                               workload::ReusePattern::none());
        double storage = r.storage_cost.value();
        if (tier == scaled_tier) storage *= factor;
        const double cost = r.vm_cost.value() + storage;
        const double u = (1.0 / r.total_runtime.minutes()) / cost;
        if (u > best_u) {
            best_u = u;
            best = tier;
        }
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Ablation: storage price sensitivity of tier choices",
                        "robustness of the Fig. 1 insights (not a paper figure)");
    const auto models = bench::profile_models(cloud::ClusterSpec::paper_single_node());

    struct Exp {
        AppKind app;
        double gb;
        StorageTier swept;  // the tier whose price we perturb
    };
    const Exp exps[] = {
        {AppKind::kSort, 100.0, StorageTier::kEphemeralSsd},
        {AppKind::kGrep, 300.0, StorageTier::kObjectStore},
        {AppKind::kKMeans, 480.0, StorageTier::kPersistentHdd},
    };
    const double factors[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

    for (const Exp& e : exps) {
        const auto job = bench::make_job(1, e.app, e.gb);
        std::cout << workload::app_name(e.app) << " " << fmt(e.gb, 0) << " GB — sweeping "
                  << cloud::tier_name(e.swept) << " price:\n";
        TextTable t({"price factor", "$/GB/month", "best tier"});
        const double base = cloud::StorageCatalog::google_cloud()
                                .service(e.swept)
                                .price_per_gb_month()
                                .value();
        for (double f : factors) {
            t.add_row({fmt(f, 2) + "x", fmt(base * f, 3),
                       std::string(cloud::tier_name(
                           best_tier_with_scaled_price(models, job, e.swept, f)))});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "reading: at 1.00x the Table 1 winners hold (Fig. 1); the flip points\n"
                 "show how much headroom each recommendation has against price drift.\n";
    return 0;
}
