// Graceful-degradation curves for the governed planning service under
// seeded serve-layer fault injection. Writes BENCH_serve_degradation.json.
//
// Two phases:
//
//  1. Zero-fault contract (hard gate): a governed service with an idle
//     governor (generous latency target, zero fault profile) must answer
//     every request bit-identically to the direct serial solve, entirely at
//     ladder level kFull, with zero retries/sheds/injected faults. This is
//     the acceptance check that the whole governor + fault apparatus is
//     observationally free when quiet, wired in as the CTest smoke test.
//
//  2. Intensity sweep (the curves): ServeFaultProfile::scaled(i) for rising
//     i injects worker stalls and transient solver exceptions, scales the
//     open-loop request flood (flood_factor x base), and fires snapshot
//     swap storms mid-run. Per intensity the bench reports plans/sec,
//     p50/p99 end-to-end latency, per-ladder-level serve counts,
//     shed/reject/retry/breaker counters and injected-fault totals — the
//     JSON degradation curve. The gate here is survival: every intensity
//     must complete with nonzero throughput (the service degrades to
//     cheaper levels rather than collapsing), and any intensity that sheds
//     must also be serving at a degraded level (cheaper-before-reject).
//
// Usage: serve_degradation [--smoke] [--threads N]
#include <cmath>
#include <cstdio>
#include <future>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "model/serialize.hpp"
#include "serve/service.hpp"
#include "workload/job.hpp"

namespace {
using namespace cast;
using workload::AppKind;

constexpr std::uint64_t kFaultSeed = 1234;

/// Same popular-template mix the serve_throughput bench replays.
std::vector<workload::Workload> make_templates() {
    const std::vector<std::pair<AppKind, double>> shapes = {
        {AppKind::kSort, 15.0},  {AppKind::kSort, 30.0},   {AppKind::kGrep, 30.0},
        {AppKind::kGrep, 60.0},  {AppKind::kKMeans, 8.0},  {AppKind::kKMeans, 15.0},
        {AppKind::kJoin, 15.0},  {AppKind::kJoin, 30.0},   {AppKind::kSort, 60.0},
        {AppKind::kGrep, 120.0}, {AppKind::kKMeans, 30.0}, {AppKind::kJoin, 60.0},
    };
    std::vector<workload::Workload> templates;
    for (int t = 0; t < 6; ++t) {
        std::vector<workload::JobSpec> jobs;
        for (int j = 0; j < 8; ++j) {
            const auto& [app, gb] = shapes[(t * 2 + j) % shapes.size()];
            jobs.push_back(bench::make_job(j + 1, app, gb));
        }
        templates.emplace_back(std::move(jobs));
    }
    return templates;
}

std::vector<serve::PlanRequest> make_requests(const std::vector<workload::Workload>& templates,
                                              int count, bool with_deadlines) {
    std::vector<serve::PlanRequest> requests;
    for (int i = 0; i < count; ++i) {
        serve::PlanRequest req;
        req.id = static_cast<std::uint64_t>(i + 1);
        req.kind = serve::RequestKind::kBatch;
        static constexpr std::size_t kSchedule[] = {0, 1, 0, 2, 1, 3, 0, 4, 1, 5, 2, 1};
        req.workload = templates[kSchedule[i % std::size(kSchedule)] % templates.size()];
        // Distinct per-request seeds defeat the coalescer on purpose: this
        // bench measures the governor's ladder, and folding the flood into
        // six representative solves would mask the very pressure under test
        // (serve_throughput covers the coalescing win).
        req.seed = 1000 + static_cast<std::uint64_t>(i);
        // A quarter of the flood declares a deadline, exercising
        // deadline-aware admission once queue pressure builds.
        if (with_deadlines && i % 4 == 3) req.deadline_ms = 250.0;
        requests.push_back(std::move(req));
    }
    return requests;
}

double utility_of(const serve::PlanResponse& resp) {
    return resp.batch ? resp.batch->evaluation.utility : 0.0;
}

struct SweepPoint {
    double intensity = 0.0;
    int requests = 0;
    double wall_s = 0.0;
    double plans_per_sec = 0.0;  ///< ok responses only
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    serve::ServiceStats stats;
    serve::ServeFaultStats faults;

    [[nodiscard]] std::string json() const {
        bench::JsonObject o;
        o.add("intensity", intensity, 2)
            .add("requests", requests)
            .add("wall_s", wall_s, 4)
            .add("plans_per_sec", plans_per_sec, 2);
        // A point where every request was shed has no ok-latency sample:
        // percentile() returns NaN and the fields are omitted (0.0 here
        // would read as "instant", indistinguishable from a healthy point).
        if (std::isfinite(p50_ms)) o.add("p50_ms", p50_ms, 3);
        if (std::isfinite(p99_ms)) o.add("p99_ms", p99_ms, 3);
        o.add("served_full", stats.served_full)
            .add("served_trimmed", stats.served_trimmed)
            .add("served_greedy", stats.served_greedy)
            .add("governor_shed", stats.governor_shed)
            .add("deadline_shed", stats.deadline_shed)
            .add("rejected", stats.rejected)
            .add("errors", stats.errors)
            .add("solve_retries", stats.solve_retries)
            .add("breaker_fastfail", stats.breaker_fastfail)
            .add("breaker_trips", stats.breaker_trips)
            .add("snapshot_swaps", stats.snapshot_swaps)
            .add("swap_clears_suppressed", stats.swap_clears_suppressed)
            .add("injected_stalls", faults.stalls)
            .add("injected_stall_ms", faults.stall_ms, 1)
            .add("injected_exceptions", faults.injected_exceptions)
            .add("ewma_solve_ms", stats.ewma_solve_ms, 3)
            .add("ewma_seeded", stats.ewma_seeded);
        return o.inline_str();
    }
};

/// Run the governed service over `requests` open-loop at one fault
/// intensity, firing the profile's swap storm halfway through submission.
SweepPoint run_point(double intensity, const std::string& model_path,
                     const std::vector<serve::PlanRequest>& requests,
                     const serve::ServiceOptions& opts) {
    SweepPoint point;
    point.intensity = intensity;
    point.requests = static_cast<int>(requests.size());

    serve::PlannerService service(
        serve::make_snapshot(model::load_model_set_file(model_path)), opts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::PlanResponse>> futures;
    futures.reserve(requests.size());
    const std::size_t storm_at = requests.size() / 2;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (i == storm_at) {
            // Swap storm: a burst of snapshot installs racing the solves in
            // flight. Same model file each time, so the plans themselves
            // stay comparable; only the churn is under test.
            for (int s = 0; s < opts.faults.swap_storm_swaps; ++s) {
                service.swap_snapshot(
                    serve::make_snapshot(model::load_model_set_file(model_path)));
                std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                    opts.faults.swap_storm_interval_ms));
            }
        }
        futures.push_back(service.submit(requests[i]));
    }

    std::vector<double> ok_latency_ms;
    std::size_t ok = 0;
    for (auto& f : futures) {
        const serve::PlanResponse resp = f.get();
        if (resp.ok()) {
            ++ok;
            ok_latency_ms.push_back(resp.queue_ms + resp.solve_ms);
        }
    }
    point.wall_s = bench::seconds_since(t0);
    point.plans_per_sec =
        point.wall_s > 0.0 ? static_cast<double>(ok) / point.wall_s : 0.0;
    point.p50_ms = bench::percentile(ok_latency_ms, 50.0);
    point.p99_ms = bench::percentile(ok_latency_ms, 99.0);
    point.stats = service.stats();
    point.faults = point.stats.faults;
    return point;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const int base_requests = args.smoke ? 16 : 60;
    const int iter_max = args.smoke ? 300 : 2000;
    const std::vector<double> intensities =
        args.smoke ? std::vector<double>{0.0, 1.0}
                   : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};

    std::cerr << "serve_degradation: governed service under fault injection ("
              << (args.smoke ? "smoke" : "full") << " run)\n";

    const auto cluster = cloud::ClusterSpec::paper_400_core();
    model::ProfilerOptions popts;
    popts.runs_per_point = 1;
    model::Profiler profiler(cluster, cloud::StorageCatalog::google_cloud(), popts);
    model::PerfModelSet profiled = [&] {
        ThreadPool pool;
        return profiler.profile(&pool);
    }();
    const std::string model_path = "serve_degradation_models.tmp";
    model::save_model_set_file(profiled, model_path);
    std::cerr << "[profiled " << cluster.worker_count << "x " << cluster.worker.name
              << ", model set saved]\n";

    const std::vector<workload::Workload> templates = make_templates();

    serve::ServiceOptions base_opts;
    base_opts.workers = 2;
    // Capacity far above any flood in this bench: the drain-time estimate,
    // not the queue-occupancy backstop, should be what walks the ladder.
    base_opts.queue_capacity = 4096;
    base_opts.max_batch = 16;
    base_opts.solver.annealing.iter_max = iter_max;
    base_opts.solver.annealing.chains = 2;
    base_opts.governor.enabled = true;
    base_opts.governor.latency_target_ms = 250.0;

    // ---- Phase 1: zero-fault contract. Idle governor (a latency target no
    // realistic hiccup reaches), zero fault profile; every response must be
    // bit-identical to the direct serial solve and served at kFull.
    const std::vector<serve::PlanRequest> contract_requests =
        make_requests(templates, base_requests, /*with_deadlines=*/false);
    std::map<std::uint64_t, double> expected_utility;
    {
        const serve::SnapshotPtr snap =
            serve::make_snapshot(model::load_model_set_file(model_path));
        for (const serve::PlanRequest& req : contract_requests) {
            expected_utility[req.id] =
                utility_of(serve::PlannerService::solve_direct(*snap, req, base_opts));
        }
    }
    bool zero_fault_identical = true;
    bool zero_fault_all_full = true;
    {
        serve::ServiceOptions idle = base_opts;
        idle.governor.latency_target_ms = 60'000.0;
        serve::PlannerService service(
            serve::make_snapshot(model::load_model_set_file(model_path)), idle);
        std::vector<std::future<serve::PlanResponse>> futures;
        for (const serve::PlanRequest& req : contract_requests) {
            futures.push_back(service.submit(req));
        }
        for (auto& f : futures) {
            const serve::PlanResponse resp = f.get();
            zero_fault_identical &=
                resp.ok() && utility_of(resp) == expected_utility.at(resp.id);
            zero_fault_all_full &=
                resp.degradation_level == serve::DegradationLevel::kFull &&
                resp.attempts == 1;
        }
        const serve::ServiceStats stats = service.stats();
        zero_fault_all_full &= stats.served_trimmed == 0 && stats.served_greedy == 0 &&
                               stats.governor_shed == 0 && stats.deadline_shed == 0 &&
                               stats.solve_retries == 0 && !stats.faults.any();
    }
    std::cerr << "zero-fault contract: bit-identical "
              << (zero_fault_identical ? "yes" : "NO") << ", all-kFull "
              << (zero_fault_all_full ? "yes" : "NO") << "\n";

    // ---- Phase 2: the intensity sweep.
    std::vector<SweepPoint> sweep;
    for (const double intensity : intensities) {
        serve::ServiceOptions opts = base_opts;
        opts.faults = serve::ServeFaultProfile::scaled(intensity, kFaultSeed);
        const int flooded = static_cast<int>(
            static_cast<double>(base_requests) * opts.faults.flood_factor);
        const std::vector<serve::PlanRequest> requests =
            make_requests(templates, flooded, /*with_deadlines=*/intensity > 0.0);
        sweep.push_back(run_point(intensity, model_path, requests, opts));
        const SweepPoint& p = sweep.back();
        std::cerr << "intensity " << fmt(intensity, 2) << ": "
                  << fmt(p.plans_per_sec, 1) << " plans/s, p99 " << fmt(p.p99_ms, 1)
                  << " ms, full/trim/greedy " << p.stats.served_full << "/"
                  << p.stats.served_trimmed << "/" << p.stats.served_greedy
                  << ", shed " << p.stats.governor_shed << "+" << p.stats.deadline_shed
                  << ", retries " << p.stats.solve_retries << ", breaker fastfail "
                  << p.stats.breaker_fastfail << "\n";
    }

    // Survival gates: the ladder must keep producing plans at every
    // intensity, and an intensity that sheds must also be serving degraded
    // (cheaper-before-reject, not straight to the cliff).
    bool never_zero_throughput = true;
    bool degraded_before_shed = true;
    for (const SweepPoint& p : sweep) {
        never_zero_throughput &= p.plans_per_sec > 0.0;
        if (p.stats.governor_shed > 0) {
            degraded_before_shed &=
                (p.stats.served_trimmed + p.stats.served_greedy) > 0;
        }
    }

    std::string sweep_json = "[";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        if (i > 0) sweep_json += ", ";
        sweep_json += sweep[i].json();
    }
    sweep_json += "]";

    bench::JsonObject json;
    json.add("bench", "serve_degradation")
        .add("mode", args.smoke ? "smoke" : "full")
        .add("base_requests", base_requests)
        .add("iter_max", iter_max)
        .add("workers", static_cast<unsigned long long>(base_opts.workers))
        .add("latency_target_ms", base_opts.governor.latency_target_ms, 1)
        .add("fault_seed", static_cast<unsigned long long>(kFaultSeed))
        .add("host_cores", std::thread::hardware_concurrency())
        .add("zero_fault_bit_identical", zero_fault_identical)
        .add("zero_fault_all_level_full", zero_fault_all_full)
        .add("never_zero_throughput", never_zero_throughput)
        .add("degraded_before_shed", degraded_before_shed)
        .add_raw("sweep", sweep_json);
    bench::write_bench_json("BENCH_serve_degradation.json", json);
    std::remove(model_path.c_str());

    if (!zero_fault_identical || !zero_fault_all_full) {
        std::cerr << "FAIL: governed service is not bit-identical/idle at zero faults\n";
        return 1;
    }
    if (!never_zero_throughput) {
        std::cerr << "FAIL: throughput collapsed to zero at some intensity\n";
        return 1;
    }
    if (!degraded_before_shed) {
        std::cerr << "FAIL: service shed without serving at a degraded level first\n";
        return 1;
    }
    return 0;
}
