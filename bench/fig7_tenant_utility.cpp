// Figure 7: the headline experiment. Tenant utility, cost/runtime, and
// capacity distribution for eight storage configurations on the 100-job
// Facebook-derived workload, 400-core cluster (§5.1).
#include <iostream>

#include "bench_util.hpp"
#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "workload/facebook.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;

struct Config {
    std::string name;
    core::TieringPlan plan;
    bool reuse_aware = false;
};
}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header(
        "Figure 7: tenant utility / cost / capacity mix across configurations",
        "Figure 7 (a)-(c)");
    const auto cluster = cloud::ClusterSpec::paper_400_core();
    const auto models = bench::profile_models(cluster);
    const auto workload = workload::synthesize_facebook_workload(42);
    ThreadPool pool;

    core::PlanEvaluator oblivious(models, workload, core::EvalOptions{.reuse_aware = false});
    core::PlanEvaluator aware(models, workload, core::EvalOptions{.reuse_aware = true});
    core::GreedySolver greedy(oblivious);

    core::CastOptions cast_opts;
    cast_opts.annealing.iter_max = 25000;
    cast_opts.annealing.chains = 6;
    cast_opts.annealing.seed = 2015;

    std::vector<Config> configs;
    for (StorageTier t : cloud::kAllTiers) {
        configs.push_back({std::string(cloud::tier_name(t)) + " 100%",
                           core::TieringPlan::uniform(workload.size(), t), false});
    }
    configs.push_back({"Greedy exact-fit",
                       greedy.solve(core::GreedyOptions{.over_provision = false}), false});
    configs.push_back({"Greedy over-prov",
                       greedy.solve(core::GreedyOptions{.over_provision = true}), false});
    const auto cast_result = core::plan_cast(models, workload, cast_opts, &pool);
    configs.push_back({"CAST", cast_result.plan, false});
    const auto castpp_result = core::plan_cast_plus_plus(models, workload, cast_opts, &pool);
    configs.push_back({"CAST++", castpp_result.plan, true});

    core::Deployer deployer;
    struct Row {
        std::string name;
        core::WorkloadDeployment dep;
    };
    std::vector<Row> rows;
    for (const auto& c : configs) {
        const auto& evaluator = c.reuse_aware ? aware : oblivious;
        rows.push_back({c.name, deployer.deploy(evaluator, c.plan)});
    }

    const double cast_utility = rows[6].dep.utility;

    std::cout << "Fig. 7a/7b: normalized tenant utility, cost and runtime (measured on the "
                 "simulated 400-core deployment)\n";
    TextTable main_table({"configuration", "utility (norm. to CAST)", "cost ($)",
                          "runtime (min)"});
    for (const auto& r : rows) {
        main_table.add_row({r.name, fmt_pct(r.dep.utility / cast_utility, 1),
                            fmt(r.dep.total_cost().value(), 2),
                            fmt(r.dep.total_runtime.minutes(), 1)});
    }
    main_table.print(std::cout);

    std::cout << "\nFig. 7c: capacity breakdown per configuration\n";
    TextTable caps_table({"configuration", "ephSSD", "persSSD", "persHDD", "objStore",
                          "total (TB)"});
    for (const auto& r : rows) {
        const double total = r.dep.capacities.total().value();
        std::vector<std::string> row = {r.name};
        for (StorageTier t : cloud::kAllTiers) {
            row.push_back(fmt_pct(r.dep.capacities.aggregate_of(t).value() / total, 0));
        }
        row.push_back(fmt(total / 1000.0, 2));
        caps_table.add_row(std::move(row));
    }
    caps_table.print(std::cout);

    // Headline numbers.
    const double vs_best_nontiered =
        rows[7].dep.utility /
        std::max({rows[0].dep.utility, rows[1].dep.utility, rows[2].dep.utility,
                  rows[3].dep.utility});
    const double vs_eph_cost = 1.0 - rows[7].dep.total_cost().value() /
                                         rows[0].dep.total_cost().value();
    const double vs_eph_perf =
        rows[0].dep.total_runtime.value() / rows[7].dep.total_runtime.value();
    std::cout << "\nCAST++ vs best non-tiered config: utility x" << fmt(vs_best_nontiered, 2)
              << " (paper: +33.7% .. +178% over non-tiered; +52.9% .. +211.8% incl. greedy)\n"
              << "CAST++ vs local (ephSSD) config:   " << fmt(vs_eph_perf, 2)
              << "x performance, " << fmt_pct(vs_eph_cost, 1)
              << " cost reduction (paper abstract: 1.21x and 51.4%)\n"
              << "CAST++ vs CAST:                    utility "
              << fmt_pct(rows[7].dep.utility / rows[6].dep.utility - 1.0, 1)
              << " (paper: +14.4%)\n"
              << "\nCAST plan:   " << cast_result.plan.summarize() << "\nCAST++ plan: "
              << castpp_result.plan.summarize() << "\n";
    return 0;
}
