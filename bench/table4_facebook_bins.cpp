// Table 4: distribution of job sizes in the Facebook traces and the
// synthesized 100-job evaluation workload (§5.1.1).
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "workload/facebook.hpp"

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    using namespace cast;
    bench::print_header("Table 4: Facebook trace bins and synthesized workload", "Table 4");

    TextTable t({"Bin", "# Maps at Facebook", "% Jobs at Facebook", "% Data at Facebook",
                 "# Maps in workload", "# Jobs in workload"});
    for (const auto& b : workload::facebook_bins()) {
        std::string fb_range = b.fb_maps_lo == b.fb_maps_hi
                                   ? std::to_string(b.fb_maps_lo)
                                   : std::to_string(b.fb_maps_lo) + "-" +
                                         std::to_string(b.fb_maps_hi);
        t.add_row({std::to_string(b.bin), fb_range,
                   b.fb_jobs_fraction > 0 ? fmt_pct(b.fb_jobs_fraction, 0) : "-",
                   b.fb_data_fraction > 0 ? fmt_pct(b.fb_data_fraction, 1) : "-",
                   std::to_string(b.workload_maps), std::to_string(b.workload_jobs)});
    }
    t.print(std::cout);

    const auto w = workload::synthesize_facebook_workload(42);
    std::map<std::string, int> apps;
    int sharing = 0;
    for (const auto& j : w.jobs()) {
        apps[std::string(workload::app_name(j.app))]++;
        sharing += j.reuse_group.has_value() ? 1 : 0;
    }
    std::cout << "\nSynthesized workload: " << w.size() << " jobs, "
              << fmt(w.total_input().value() / 1000.0, 2) << " TB total input, " << sharing
              << "% of jobs share input (paper: 15%).\nApp mix:";
    for (const auto& [name, n] : apps) std::cout << " " << name << "=" << n;
    std::cout << "\n";
    return 0;
}
