// Figure 9: workflow deadline miss rate and cost — four non-tiered
// configurations vs basic CAST vs workflow-aware CAST++ on five workflows
// (31 jobs, deadlines 15-40 min) (§5.2).
#include <iostream>

#include "bench_util.hpp"
#include "core/castpp.hpp"
#include "core/deployer.hpp"
#include "workload/facebook.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Figure 9: workflow deadline miss rate vs cost", "Figure 9");
    const auto cluster = cloud::ClusterSpec::paper_400_core();
    const auto models = bench::profile_models(cluster);
    const auto workflows = workload::synthesize_deadline_workflows(11);
    ThreadPool pool;
    core::Deployer deployer;

    struct Outcome {
        double cost = 0.0;
        int misses = 0;
    };
    auto deploy_uniform = [&](StorageTier tier) {
        Outcome o;
        for (const auto& wf : workflows) {
            core::WorkflowEvaluator evaluator(models, wf);
            // Non-tiered baselines provision the block tiers generously
            // (the experiment convention of §3.1: ~500 GB volumes per VM),
            // not at pathological exact fit.
            core::WorkflowPlan plan = core::WorkflowPlan::uniform(wf.size(), tier);
            double req = 0.0;
            for (std::size_t i = 0; i < wf.size(); ++i) {
                req += evaluator.job_requirement(plan, i).value();
            }
            const double k = std::max(
                1.0, 500.0 * models.cluster().worker_count / std::max(req, 1.0));
            for (auto& d : plan.decisions) d.overprovision = k;
            const auto dep = deployer.deploy_workflow(evaluator, plan);
            o.cost += dep.total_cost().value();
            o.misses += dep.met_deadline ? 0 : 1;
        }
        return o;
    };

    // Basic CAST: utility-maximizing, dependency-oblivious — plan each
    // workflow's jobs as a flat workload (no transfer accounting), then
    // deploy with the real cross-tier transfers (§5.2.2's comparison).
    auto deploy_cast = [&]() {
        Outcome o;
        core::CastOptions opts;
        opts.annealing.iter_max = 12000;
        opts.annealing.chains = 2;
        for (const auto& wf : workflows) {
            const workload::Workload flat(wf.jobs());
            const auto planned = core::plan_cast(models, flat, opts, &pool);
            core::WorkflowPlan wf_plan{planned.plan.decisions()};
            core::WorkflowEvaluator evaluator(models, wf);
            const auto dep = deployer.deploy_workflow(evaluator, wf_plan);
            o.cost += dep.total_cost().value();
            o.misses += dep.met_deadline ? 0 : 1;
        }
        return o;
    };

    // CAST++: per-workflow cost minimization under the deadline (Eq. 8-10).
    auto deploy_castpp = [&]() {
        Outcome o;
        core::AnnealingOptions opts;
        opts.iter_max = 25000;
        opts.chains = 8;
        for (const auto& wf : workflows) {
            core::WorkflowEvaluator evaluator(models, wf);
            core::WorkflowSolver solver(evaluator, opts);
            const auto solved = solver.solve(&pool);
            const auto dep = deployer.deploy_workflow(evaluator, solved.plan);
            o.cost += dep.total_cost().value();
            o.misses += dep.met_deadline ? 0 : 1;
        }
        return o;
    };

    TextTable t({"configuration", "cost ($)", "deadline misses", "miss rate",
                 "paper miss rate"});
    const int n = static_cast<int>(workflows.size());
    auto add = [&](const std::string& name, Outcome o, const char* paper) {
        t.add_row({name, fmt(o.cost, 2), std::to_string(o.misses),
                   fmt_pct(static_cast<double>(o.misses) / n, 0), paper});
    };
    add("ephSSD 100%", deploy_uniform(StorageTier::kEphemeralSsd), "20%");
    add("persSSD 100%", deploy_uniform(StorageTier::kPersistentSsd), "40%");
    add("persHDD 100%", deploy_uniform(StorageTier::kPersistentHdd), "100%");
    add("objStore 100%", deploy_uniform(StorageTier::kObjectStore), "100%");
    add("CAST", deploy_cast(), "60%");
    add("CAST++", deploy_castpp(), "0%");
    t.print(std::cout);
    std::cout << "\npaper: CAST++ meets every deadline at the lowest cost (comparable to\n"
                 "persHDD, the cheapest-but-slowest tier, which misses all of them).\n";
    return 0;
}
