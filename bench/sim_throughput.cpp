// Batch-simulation throughput bench: measures the two layers the parallel
// experiment engine adds on top of the seed simulator and writes
// BENCH_sim_throughput.json.
//
//   1. hot path — the same batch run serially with per-job allocation
//      (scratch reuse off: fresh engine, fresh wave vectors per job, the
//      seed behaviour) vs the reused thread-local arena;
//   2. parallelism — the batch fanned over the work-stealing pool.
//
// Determinism is asserted, not assumed: the serial and pooled runs must
// produce bit-identical makespans (exact double equality) before any
// number is reported. host_cores is recorded so a single-core CI host's
// ~1x parallel factor is legible next to a multi-core host's scaling.
//
// Usage: sim_throughput [--smoke] [--threads N]
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/batch.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
using workload::AppKind;

/// A mixed batch shaped like the experiment drivers' workloads: every
/// (app, tier, capacity, seed) combination the sweeps touch.
std::vector<sim::BatchConfig> make_batch(int repeats) {
    const std::vector<std::pair<AppKind, double>> jobs = {
        {AppKind::kSort, 25.0}, {AppKind::kGrep, 60.0}, {AppKind::kKMeans, 12.0}};
    const std::vector<StorageTier> tiers = {StorageTier::kPersistentSsd,
                                            StorageTier::kPersistentHdd,
                                            StorageTier::kEphemeralSsd};
    std::vector<sim::BatchConfig> configs;
    int id = 1;
    for (int rep = 0; rep < repeats; ++rep) {
        for (const auto& [app, gb] : jobs) {
            for (StorageTier tier : tiers) {
                const workload::JobSpec job = bench::make_job(id++, app, gb);
                sim::TierCapacities caps;
                caps.set(tier, GigaBytes{300.0 + 100.0 * (rep % 8)});
                if (tier == StorageTier::kObjectStore) {
                    caps.set(StorageTier::kPersistentSsd, GigaBytes{300.0});
                }
                configs.push_back(sim::BatchConfig{
                    sim::JobPlacement::on_tier(job, tier), caps,
                    sim::SimOptions{.seed = 42 + static_cast<std::uint64_t>(rep),
                                    .jitter_sigma = 0.06}});
            }
        }
    }
    return configs;
}

bool identical(const std::vector<sim::BatchOutcome>& a,
               const std::vector<sim::BatchOutcome>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].failed != b[i].failed) return false;
        if (a[i].result.makespan.value() != b[i].result.makespan.value()) return false;
        if (a[i].result.phases.total().value() != b[i].result.phases.total().value()) {
            return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    // Full mode needs enough jobs that each timed mode runs ~1 s — per-job
    // cost is ~0.3 ms, so timing noise swamps anything much smaller.
    const int repeats = args.smoke ? 1 : 300;

    const auto cluster = cloud::ClusterSpec::paper_10_node();
    const auto catalog = cloud::StorageCatalog::google_cloud();
    const sim::BatchRunner runner(cluster, catalog);
    const std::vector<sim::BatchConfig> configs = make_batch(repeats);
    const auto n = static_cast<double>(configs.size());
    std::cerr << "sim_throughput: " << configs.size() << " configs"
              << (args.smoke ? " (smoke)" : "") << "\n";

    // Warm-up: fault in code paths and page in the catalog before timing.
    (void)runner.run({configs.front()});

    // 1. Serial, per-job allocation (the seed simulator's storage behaviour).
    sim::set_scratch_reuse(false);
    auto t0 = std::chrono::steady_clock::now();
    const auto serial_alloc = runner.run(configs);
    const double serial_alloc_s = bench::seconds_since(t0);

    // 2. Serial, reused thread-local arena (the new hot path).
    sim::set_scratch_reuse(true);
    t0 = std::chrono::steady_clock::now();
    const auto serial_reuse = runner.run(configs);
    const double serial_reuse_s = bench::seconds_since(t0);

    // 3. Fanned over the work-stealing pool.
    ThreadPool pool;
    t0 = std::chrono::steady_clock::now();
    const auto pooled = runner.run(configs, &pool);
    const double pooled_s = bench::seconds_since(t0);

    const bool deterministic =
        identical(serial_alloc, serial_reuse) && identical(serial_reuse, pooled);
    if (!deterministic) {
        std::cerr << "FAIL: batch outcomes differ across modes\n";
        return 1;
    }

    const double hot_path_speedup = serial_alloc_s / serial_reuse_s;
    const double parallel_speedup = serial_reuse_s / pooled_s;
    const double batch_speedup = serial_alloc_s / pooled_s;
    const unsigned host_cores = std::thread::hardware_concurrency();

    std::cerr << "serial (per-job alloc): " << fmt(serial_alloc_s, 2) << " s ("
              << fmt(n / serial_alloc_s, 1) << " jobs/s)\n"
              << "serial (arena reuse):   " << fmt(serial_reuse_s, 2) << " s ("
              << fmt(n / serial_reuse_s, 1) << " jobs/s, " << fmt(hot_path_speedup, 2)
              << "x)\n"
              << "pooled (" << pool.worker_count() << " workers):     "
              << fmt(pooled_s, 2) << " s (" << fmt(n / pooled_s, 1) << " jobs/s, "
              << fmt(batch_speedup, 2) << "x vs seed)\n"
              << "determinism: serial and pooled outcomes bit-identical\n";

    bench::JsonObject json;
    json.add("bench", "sim_throughput")
        .add("smoke", args.smoke)
        .add("configs", static_cast<unsigned long long>(configs.size()))
        .add("host_cores", host_cores)
        .add("pool_workers", static_cast<unsigned long long>(pool.worker_count()))
        .add("serial_alloc_s", serial_alloc_s, 4)
        .add("serial_reuse_s", serial_reuse_s, 4)
        .add("pooled_s", pooled_s, 4)
        .add("jobs_per_s_serial_alloc", n / serial_alloc_s, 2)
        .add("jobs_per_s_serial_reuse", n / serial_reuse_s, 2)
        .add("jobs_per_s_pooled", n / pooled_s, 2)
        .add("hot_path_speedup", hot_path_speedup, 3)
        .add("parallel_speedup", parallel_speedup, 3)
        .add("batch_speedup_vs_seed", batch_speedup, 3)
        .add("deterministic_across_modes", true);
    bench::write_bench_json("BENCH_sim_throughput.json", json);
    return 0;
}
