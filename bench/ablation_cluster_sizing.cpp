// Ablation: joint compute + storage provisioning (the paper's §4.2.1 fn. 3
// future-work extension). Sweeps cluster shapes for the 100-job Facebook
// workload and shows where tenant utility peaks — more VMs shrink the
// makespan (1/T up) but grow the VM bill linearly, and the utility metric
// arbitrates.
#include <iostream>

#include "bench_util.hpp"
#include "core/cluster_planner.hpp"
#include "workload/facebook.hpp"

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    using namespace cast;
    bench::print_header("Ablation: cluster sizing x storage tiering",
                        "the future-work extension of §4.2.1 (not a paper figure)");
    const auto workload = workload::synthesize_facebook_workload(42);
    core::ClusterPlannerOptions opts;
    opts.profiler.runs_per_point = 1;
    opts.cast.annealing.iter_max = 8000;
    opts.cast.annealing.chains = 4;
    core::ClusterPlanner planner(cloud::StorageCatalog::google_cloud(),
                                 core::ClusterPlanner::default_candidates(), opts);
    ThreadPool pool;
    const auto outcomes = planner.evaluate(workload, &pool);

    TextTable t({"cluster", "cores", "runtime (min)", "cost ($)", "utility",
                 "storage plan"});
    for (const auto& o : outcomes) {
        t.add_row({o.candidate.label,
                   std::to_string(o.candidate.cluster.total_worker_vcpus()),
                   fmt(o.evaluation.total_runtime.minutes(), 1),
                   fmt(o.evaluation.total_cost().value(), 2),
                   fmt(o.utility() * 1e4, 2) + "e-4", o.plan.summarize()});
    }
    t.print(std::cout);
    std::cout << "\n(best cluster first; the paper fixes n1-standard-16 x 25 and plans\n"
                 "storage only — this sweep adds the compute dimension to the same\n"
                 "tenant-utility objective)\n";
    return 0;
}
