// Figure 5: Grep under hybrid tier configurations and fine-grained
// within-job data partitioning — the case for all-or-nothing job-level
// placement (§3.2).
#include <iostream>

#include "bench_util.hpp"
#include "core/characterization.hpp"

namespace {
using namespace cast;
using cloud::StorageTier;
}  // namespace

int main(int argc, char** argv) {
    (void)cast::bench::BenchArgs::parse(argc, argv);  // --threads N pins pool sizes

    bench::print_header("Figure 5: fine-grained partitioning cannot avoid stragglers",
                        "Figure 5");
    // The paper's setup: 6 GB input, 24 map tasks scheduled as ONE wave.
    cloud::ClusterSpec cluster = cloud::ClusterSpec::paper_single_node();
    cluster.worker.map_slots = 24;
    cluster.worker.reduce_slots = 24;
    const auto catalog = cloud::StorageCatalog::google_cloud();
    auto grep = bench::make_job(1, workload::AppKind::kGrep, 6.0);
    grep.map_tasks = 24;
    grep.reduce_tasks = 6;

    auto run = [&](std::vector<sim::InputSplit> splits) {
        return core::run_job_with_input_split(cluster, catalog, grep, splits).value();
    };
    const double eph100 = run({{StorageTier::kEphemeralSsd, 1.0}});

    std::cout << "Fig. 5a: hybrid storage configurations (runtime normalized to ephSSD "
                 "100%)\n";
    TextTable a({"configuration", "runtime (s)", "normalized"});
    auto add_a = [&](const std::string& name, double t) {
        a.add_row({name, fmt(t, 1), fmt_pct(t / eph100, 0)});
    };
    add_a("ephSSD 100%", eph100);
    add_a("persSSD 100%", run({{StorageTier::kPersistentSsd, 1.0}}));
    add_a("persHDD 100%", run({{StorageTier::kPersistentHdd, 1.0}}));
    add_a("ephSSD 50% + persSSD 50%", run({{StorageTier::kEphemeralSsd, 0.5},
                                           {StorageTier::kPersistentSsd, 0.5}}));
    add_a("ephSSD 50% + persHDD 50%", run({{StorageTier::kEphemeralSsd, 0.5},
                                           {StorageTier::kPersistentHdd, 0.5}}));
    a.print(std::cout);

    std::cout << "\nFig. 5b: %-age of input on ephSSD vs persHDD\n";
    TextTable b({"% data on ephSSD", "runtime (s)", "normalized to ephSSD 100%"});
    for (double f : {0.0, 0.3, 0.7, 0.9, 1.0}) {
        std::vector<sim::InputSplit> splits;
        if (f > 0.0) splits.push_back({StorageTier::kEphemeralSsd, f});
        if (f < 1.0) splits.push_back({StorageTier::kPersistentHdd, 1.0 - f});
        const double t = run(splits);
        b.add_row({fmt_pct(f, 0), fmt(t, 1), fmt_pct(t / eph100, 0)});
    }
    b.print(std::cout);
    std::cout << "\npaper: even with 90% of data on the faster tier, runtime stays at the\n"
                 "slow tier's level — job-level, all-or-nothing placement is needed.\n";
    return 0;
}
