file(REMOVE_RECURSE
  "CMakeFiles/facebook_campaign.dir/facebook_campaign.cpp.o"
  "CMakeFiles/facebook_campaign.dir/facebook_campaign.cpp.o.d"
  "facebook_campaign"
  "facebook_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facebook_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
