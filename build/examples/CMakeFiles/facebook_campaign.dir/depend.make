# Empty dependencies file for facebook_campaign.
# This may be replaced when dependencies are built.
