file(REMOVE_RECURSE
  "CMakeFiles/workflow_deadline.dir/workflow_deadline.cpp.o"
  "CMakeFiles/workflow_deadline.dir/workflow_deadline.cpp.o.d"
  "workflow_deadline"
  "workflow_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
