# Empty dependencies file for workflow_deadline.
# This may be replaced when dependencies are built.
