# Empty compiler generated dependencies file for fig2_capacity_scaling.
# This may be replaced when dependencies are built.
