# Empty dependencies file for table4_facebook_bins.
# This may be replaced when dependencies are built.
