file(REMOVE_RECURSE
  "CMakeFiles/table4_facebook_bins.dir/table4_facebook_bins.cpp.o"
  "CMakeFiles/table4_facebook_bins.dir/table4_facebook_bins.cpp.o.d"
  "table4_facebook_bins"
  "table4_facebook_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_facebook_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
