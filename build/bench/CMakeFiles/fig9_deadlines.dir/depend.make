# Empty dependencies file for fig9_deadlines.
# This may be replaced when dependencies are built.
