file(REMOVE_RECURSE
  "CMakeFiles/fig9_deadlines.dir/fig9_deadlines.cpp.o"
  "CMakeFiles/fig9_deadlines.dir/fig9_deadlines.cpp.o.d"
  "fig9_deadlines"
  "fig9_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
