file(REMOVE_RECURSE
  "CMakeFiles/ablation_price_sensitivity.dir/ablation_price_sensitivity.cpp.o"
  "CMakeFiles/ablation_price_sensitivity.dir/ablation_price_sensitivity.cpp.o.d"
  "ablation_price_sensitivity"
  "ablation_price_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_price_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
