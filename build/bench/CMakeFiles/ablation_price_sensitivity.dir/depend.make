# Empty dependencies file for ablation_price_sensitivity.
# This may be replaced when dependencies are built.
