file(REMOVE_RECURSE
  "CMakeFiles/fig7_tenant_utility.dir/fig7_tenant_utility.cpp.o"
  "CMakeFiles/fig7_tenant_utility.dir/fig7_tenant_utility.cpp.o.d"
  "fig7_tenant_utility"
  "fig7_tenant_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tenant_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
