# Empty dependencies file for fig7_tenant_utility.
# This may be replaced when dependencies are built.
