file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_sizing.dir/ablation_cluster_sizing.cpp.o"
  "CMakeFiles/ablation_cluster_sizing.dir/ablation_cluster_sizing.cpp.o.d"
  "ablation_cluster_sizing"
  "ablation_cluster_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
