# Empty compiler generated dependencies file for fig4_workflow_plans.
# This may be replaced when dependencies are built.
