
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_workflow_plans.cpp" "bench/CMakeFiles/fig4_workflow_plans.dir/fig4_workflow_plans.cpp.o" "gcc" "bench/CMakeFiles/fig4_workflow_plans.dir/fig4_workflow_plans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
