file(REMOVE_RECURSE
  "CMakeFiles/fig4_workflow_plans.dir/fig4_workflow_plans.cpp.o"
  "CMakeFiles/fig4_workflow_plans.dir/fig4_workflow_plans.cpp.o.d"
  "fig4_workflow_plans"
  "fig4_workflow_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_workflow_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
