file(REMOVE_RECURSE
  "CMakeFiles/fig1_app_tiers.dir/fig1_app_tiers.cpp.o"
  "CMakeFiles/fig1_app_tiers.dir/fig1_app_tiers.cpp.o.d"
  "fig1_app_tiers"
  "fig1_app_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_app_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
