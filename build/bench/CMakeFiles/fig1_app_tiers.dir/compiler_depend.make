# Empty compiler generated dependencies file for fig1_app_tiers.
# This may be replaced when dependencies are built.
