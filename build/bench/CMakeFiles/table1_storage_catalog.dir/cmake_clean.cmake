file(REMOVE_RECURSE
  "CMakeFiles/table1_storage_catalog.dir/table1_storage_catalog.cpp.o"
  "CMakeFiles/table1_storage_catalog.dir/table1_storage_catalog.cpp.o.d"
  "table1_storage_catalog"
  "table1_storage_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_storage_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
