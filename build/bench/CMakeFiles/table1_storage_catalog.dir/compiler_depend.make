# Empty compiler generated dependencies file for table1_storage_catalog.
# This may be replaced when dependencies are built.
