# Empty compiler generated dependencies file for fig5_fine_grained.
# This may be replaced when dependencies are built.
