file(REMOVE_RECURSE
  "CMakeFiles/fig5_fine_grained.dir/fig5_fine_grained.cpp.o"
  "CMakeFiles/fig5_fine_grained.dir/fig5_fine_grained.cpp.o.d"
  "fig5_fine_grained"
  "fig5_fine_grained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fine_grained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
