# Empty dependencies file for fig3_reuse_patterns.
# This may be replaced when dependencies are built.
