file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/flow_engine_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/flow_engine_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/mapreduce_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/mapreduce_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/network_shuffle_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/network_shuffle_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/phase_runner_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/phase_runner_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
