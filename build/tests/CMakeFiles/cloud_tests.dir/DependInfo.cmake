
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloud/catalog_variants_test.cpp" "tests/CMakeFiles/cloud_tests.dir/cloud/catalog_variants_test.cpp.o" "gcc" "tests/CMakeFiles/cloud_tests.dir/cloud/catalog_variants_test.cpp.o.d"
  "/root/repo/tests/cloud/cluster_test.cpp" "tests/CMakeFiles/cloud_tests.dir/cloud/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/cloud_tests.dir/cloud/cluster_test.cpp.o.d"
  "/root/repo/tests/cloud/storage_test.cpp" "tests/CMakeFiles/cloud_tests.dir/cloud/storage_test.cpp.o" "gcc" "tests/CMakeFiles/cloud_tests.dir/cloud/storage_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
