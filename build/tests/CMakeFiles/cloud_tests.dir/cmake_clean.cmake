file(REMOVE_RECURSE
  "CMakeFiles/cloud_tests.dir/cloud/catalog_variants_test.cpp.o"
  "CMakeFiles/cloud_tests.dir/cloud/catalog_variants_test.cpp.o.d"
  "CMakeFiles/cloud_tests.dir/cloud/cluster_test.cpp.o"
  "CMakeFiles/cloud_tests.dir/cloud/cluster_test.cpp.o.d"
  "CMakeFiles/cloud_tests.dir/cloud/storage_test.cpp.o"
  "CMakeFiles/cloud_tests.dir/cloud/storage_test.cpp.o.d"
  "cloud_tests"
  "cloud_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
