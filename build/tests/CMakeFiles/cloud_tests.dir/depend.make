# Empty dependencies file for cloud_tests.
# This may be replaced when dependencies are built.
