file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/properties/cloud_property_test.cpp.o"
  "CMakeFiles/property_tests.dir/properties/cloud_property_test.cpp.o.d"
  "CMakeFiles/property_tests.dir/properties/evaluator_property_test.cpp.o"
  "CMakeFiles/property_tests.dir/properties/evaluator_property_test.cpp.o.d"
  "CMakeFiles/property_tests.dir/properties/model_property_test.cpp.o"
  "CMakeFiles/property_tests.dir/properties/model_property_test.cpp.o.d"
  "CMakeFiles/property_tests.dir/properties/sim_property_test.cpp.o"
  "CMakeFiles/property_tests.dir/properties/sim_property_test.cpp.o.d"
  "CMakeFiles/property_tests.dir/properties/solver_property_test.cpp.o"
  "CMakeFiles/property_tests.dir/properties/solver_property_test.cpp.o.d"
  "CMakeFiles/property_tests.dir/properties/workflow_property_test.cpp.o"
  "CMakeFiles/property_tests.dir/properties/workflow_property_test.cpp.o.d"
  "property_tests"
  "property_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
