file(REMOVE_RECURSE
  "CMakeFiles/model_tests.dir/model/mrcute_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/mrcute_test.cpp.o.d"
  "CMakeFiles/model_tests.dir/model/profiler_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/profiler_test.cpp.o.d"
  "CMakeFiles/model_tests.dir/model/serialize_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/serialize_test.cpp.o.d"
  "model_tests"
  "model_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
