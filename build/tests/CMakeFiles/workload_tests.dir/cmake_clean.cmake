file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/application_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/application_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/facebook_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/facebook_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/job_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/job_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/spec_parser_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/spec_parser_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/workflow_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/workflow_test.cpp.o.d"
  "workload_tests"
  "workload_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
