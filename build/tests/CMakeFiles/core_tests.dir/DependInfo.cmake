
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/annealing_test.cpp" "tests/CMakeFiles/core_tests.dir/core/annealing_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/annealing_test.cpp.o.d"
  "/root/repo/tests/core/castpp_test.cpp" "tests/CMakeFiles/core_tests.dir/core/castpp_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/castpp_test.cpp.o.d"
  "/root/repo/tests/core/characterization_test.cpp" "tests/CMakeFiles/core_tests.dir/core/characterization_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/characterization_test.cpp.o.d"
  "/root/repo/tests/core/cluster_planner_test.cpp" "tests/CMakeFiles/core_tests.dir/core/cluster_planner_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cluster_planner_test.cpp.o.d"
  "/root/repo/tests/core/deployer_test.cpp" "tests/CMakeFiles/core_tests.dir/core/deployer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/deployer_test.cpp.o.d"
  "/root/repo/tests/core/greedy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o.d"
  "/root/repo/tests/core/plan_test.cpp" "tests/CMakeFiles/core_tests.dir/core/plan_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/plan_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/utility_test.cpp" "tests/CMakeFiles/core_tests.dir/core/utility_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/utility_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
