file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/annealing_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/annealing_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/castpp_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/castpp_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/characterization_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/characterization_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/cluster_planner_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cluster_planner_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/deployer_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/deployer_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/greedy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/greedy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/plan_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/plan_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/utility_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/utility_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
