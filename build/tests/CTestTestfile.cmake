# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_tests "/root/repo/build/tests/common_tests")
set_tests_properties(common_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cloud_tests "/root/repo/build/tests/cloud_tests")
set_tests_properties(cloud_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_tests "/root/repo/build/tests/workload_tests")
set_tests_properties(workload_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;24;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_tests "/root/repo/build/tests/sim_tests")
set_tests_properties(sim_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;31;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_tests "/root/repo/build/tests/model_tests")
set_tests_properties(model_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;37;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_tests "/root/repo/build/tests/integration_tests")
set_tests_properties(integration_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;43;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_tests "/root/repo/build/tests/property_tests")
set_tests_properties(property_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;48;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_tests "/root/repo/build/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;57;cast_add_test;/root/repo/tests/CMakeLists.txt;0;")
