file(REMOVE_RECURSE
  "libcast_workload.a"
)
