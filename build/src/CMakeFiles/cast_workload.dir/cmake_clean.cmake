file(REMOVE_RECURSE
  "CMakeFiles/cast_workload.dir/workload/application.cpp.o"
  "CMakeFiles/cast_workload.dir/workload/application.cpp.o.d"
  "CMakeFiles/cast_workload.dir/workload/facebook.cpp.o"
  "CMakeFiles/cast_workload.dir/workload/facebook.cpp.o.d"
  "CMakeFiles/cast_workload.dir/workload/spec_parser.cpp.o"
  "CMakeFiles/cast_workload.dir/workload/spec_parser.cpp.o.d"
  "CMakeFiles/cast_workload.dir/workload/workflow.cpp.o"
  "CMakeFiles/cast_workload.dir/workload/workflow.cpp.o.d"
  "libcast_workload.a"
  "libcast_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
