
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/application.cpp" "src/CMakeFiles/cast_workload.dir/workload/application.cpp.o" "gcc" "src/CMakeFiles/cast_workload.dir/workload/application.cpp.o.d"
  "/root/repo/src/workload/facebook.cpp" "src/CMakeFiles/cast_workload.dir/workload/facebook.cpp.o" "gcc" "src/CMakeFiles/cast_workload.dir/workload/facebook.cpp.o.d"
  "/root/repo/src/workload/spec_parser.cpp" "src/CMakeFiles/cast_workload.dir/workload/spec_parser.cpp.o" "gcc" "src/CMakeFiles/cast_workload.dir/workload/spec_parser.cpp.o.d"
  "/root/repo/src/workload/workflow.cpp" "src/CMakeFiles/cast_workload.dir/workload/workflow.cpp.o" "gcc" "src/CMakeFiles/cast_workload.dir/workload/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
