# Empty compiler generated dependencies file for cast_workload.
# This may be replaced when dependencies are built.
