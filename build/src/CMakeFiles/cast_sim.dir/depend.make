# Empty dependencies file for cast_sim.
# This may be replaced when dependencies are built.
