file(REMOVE_RECURSE
  "libcast_sim.a"
)
