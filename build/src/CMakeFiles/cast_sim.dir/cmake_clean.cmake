file(REMOVE_RECURSE
  "CMakeFiles/cast_sim.dir/sim/mapreduce.cpp.o"
  "CMakeFiles/cast_sim.dir/sim/mapreduce.cpp.o.d"
  "libcast_sim.a"
  "libcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
