# Empty compiler generated dependencies file for cast_core.
# This may be replaced when dependencies are built.
