file(REMOVE_RECURSE
  "CMakeFiles/cast_core.dir/core/annealing.cpp.o"
  "CMakeFiles/cast_core.dir/core/annealing.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/castpp.cpp.o"
  "CMakeFiles/cast_core.dir/core/castpp.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/characterization.cpp.o"
  "CMakeFiles/cast_core.dir/core/characterization.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/cluster_planner.cpp.o"
  "CMakeFiles/cast_core.dir/core/cluster_planner.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/deployer.cpp.o"
  "CMakeFiles/cast_core.dir/core/deployer.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/greedy.cpp.o"
  "CMakeFiles/cast_core.dir/core/greedy.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/plan.cpp.o"
  "CMakeFiles/cast_core.dir/core/plan.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/report.cpp.o"
  "CMakeFiles/cast_core.dir/core/report.cpp.o.d"
  "CMakeFiles/cast_core.dir/core/utility.cpp.o"
  "CMakeFiles/cast_core.dir/core/utility.cpp.o.d"
  "libcast_core.a"
  "libcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
