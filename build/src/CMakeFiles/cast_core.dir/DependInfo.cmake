
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annealing.cpp" "src/CMakeFiles/cast_core.dir/core/annealing.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/annealing.cpp.o.d"
  "/root/repo/src/core/castpp.cpp" "src/CMakeFiles/cast_core.dir/core/castpp.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/castpp.cpp.o.d"
  "/root/repo/src/core/characterization.cpp" "src/CMakeFiles/cast_core.dir/core/characterization.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/characterization.cpp.o.d"
  "/root/repo/src/core/cluster_planner.cpp" "src/CMakeFiles/cast_core.dir/core/cluster_planner.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/cluster_planner.cpp.o.d"
  "/root/repo/src/core/deployer.cpp" "src/CMakeFiles/cast_core.dir/core/deployer.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/deployer.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/CMakeFiles/cast_core.dir/core/greedy.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/greedy.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/cast_core.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/plan.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/cast_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/CMakeFiles/cast_core.dir/core/utility.cpp.o" "gcc" "src/CMakeFiles/cast_core.dir/core/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cast_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cast_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
