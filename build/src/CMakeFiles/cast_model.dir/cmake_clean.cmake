file(REMOVE_RECURSE
  "CMakeFiles/cast_model.dir/model/mrcute.cpp.o"
  "CMakeFiles/cast_model.dir/model/mrcute.cpp.o.d"
  "CMakeFiles/cast_model.dir/model/profiler.cpp.o"
  "CMakeFiles/cast_model.dir/model/profiler.cpp.o.d"
  "CMakeFiles/cast_model.dir/model/serialize.cpp.o"
  "CMakeFiles/cast_model.dir/model/serialize.cpp.o.d"
  "libcast_model.a"
  "libcast_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
