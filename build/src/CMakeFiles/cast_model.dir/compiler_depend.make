# Empty compiler generated dependencies file for cast_model.
# This may be replaced when dependencies are built.
