file(REMOVE_RECURSE
  "libcast_model.a"
)
