# Empty compiler generated dependencies file for cast_cloud.
# This may be replaced when dependencies are built.
