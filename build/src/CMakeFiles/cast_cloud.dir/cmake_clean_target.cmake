file(REMOVE_RECURSE
  "libcast_cloud.a"
)
